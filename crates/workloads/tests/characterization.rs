//! Characterisation guards: the calibrated properties of the 20 kernels
//! that the paper's figures depend on must not silently drift.

use ehs_compress::{Algorithm, Compressor};
use ehs_model::inst::InstKind;
use ehs_workloads::App;
use proptest::prelude::*;

/// Apps whose data the paper treats as essentially incompressible (crypto
/// state, entropy-coded payloads).
const INCOMPRESSIBLE: [App; 4] = [App::Blowfish, App::Blowfishd, App::Rijndael, App::Crc32];

/// Apps whose primary data region must compress well under BDI.
const COMPRESSIBLE: [App; 5] = [App::Jpeg, App::Epic, App::G721d, App::Gsm, App::Adpcmd];

/// Measures the mean BDI compression ratio over the blocks a program's
/// first ten thousand loads actually touch.
fn touched_ratio(app: App) -> f64 {
    let program = app.build(0.05);
    let bdi = Algorithm::Bdi.compressor();
    let image = program.image();
    let mut total = 0.0;
    let mut count = 0u32;
    let mut i = 0;
    while count < 400 && i < program.len().min(10_000) {
        if let InstKind::Load { addr } = program.inst_at(i).kind {
            let block = image.materialize(addr.get() / 32, 32);
            total += bdi.compress(block.as_slice()).ratio();
            count += 1;
        }
        i += 1;
    }
    assert!(count > 0, "{app}: no loads found");
    total / count as f64
}

#[test]
fn crypto_data_is_incompressible_and_media_data_is_not() {
    for app in INCOMPRESSIBLE {
        let ratio = touched_ratio(app);
        assert!(ratio > 0.85, "{app}: ratio {ratio:.2} should be near 1 (incompressible)");
    }
    for app in COMPRESSIBLE {
        let ratio = touched_ratio(app);
        assert!(ratio < 0.75, "{app}: ratio {ratio:.2} should compress well");
    }
}

#[test]
fn arithmetic_intensity_spans_the_fig17_range() {
    let ai: Vec<(App, f64)> =
        App::ALL.iter().map(|&a| (a, a.build(0.05).arithmetic_intensity())).collect();
    let min = ai.iter().map(|&(_, v)| v).fold(f64::MAX, f64::min);
    let max = ai.iter().map(|&(_, v)| v).fold(f64::MIN, f64::max);
    assert!(min < 0.5, "need a memory-bound app, min AI = {min}");
    assert!(max > 4.0, "need a compute-bound app, max AI = {max}");
}

#[test]
fn memory_op_density_is_realistic() {
    // Embedded code spans memory-bound decoders (~85% mem ops) to
    // pointer-chasing search kernels (~15%).
    for app in App::ALL {
        let p = app.build(0.05);
        let (mem, alu) = p.op_mix();
        let frac = mem as f64 / (mem + alu) as f64;
        assert!((0.1..=0.9).contains(&frac), "{app}: mem fraction {frac:.2}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_access_equals_replay(app_idx in 0usize..20, probe in any::<u64>()) {
        // inst_at must be a pure function: probing out of order cannot
        // change anything (this is what makes JIT-checkpoint resume exact).
        let app = App::ALL[app_idx];
        let p = app.build(0.05);
        let i = probe % p.len();
        let before = p.inst_at(i);
        let _ = p.inst_at((i + 13) % p.len());
        let _ = p.inst_at(i / 2);
        prop_assert_eq!(p.inst_at(i), before);
    }

    #[test]
    fn repetitions_are_identical(app_idx in 0usize..20, probe in any::<u64>()) {
        let app = App::ALL[app_idx];
        let p = app.build(1.0);
        if p.len() < 2 * p.rep_len() {
            return Ok(()); // single repetition at this scale
        }
        let i = probe % p.rep_len();
        prop_assert_eq!(p.inst_at(i), p.inst_at(i + p.rep_len()));
    }
}
