//! Deterministic synthetic workloads standing in for the paper's 20
//! MiBench/MediaBench applications.
//!
//! The paper compiles real embedded benchmarks to ARMv7-M and runs them
//! under gem5. We cannot ship those binaries or that ISA — instead, each
//! application is modelled as a [`KernelProgram`]: a deterministic,
//! randomly-addressable instruction stream with the four properties that
//! actually drive Kagura's behaviour (see DESIGN.md):
//!
//! 1. **Memory-op density** (arithmetic intensity) — calibrated per app to
//!    the paper's Fig 17 ordering (jpegd lowest, strings highest).
//! 2. **Locality vs the 256 B caches** — loop working sets sized from
//!    well-under to well-over cache capacity.
//! 3. **Data compressibility** — each app initialises its address space
//!    with a [`MemoryImage`](ehs_mem::MemoryImage) matching its domain (gradient pixels for
//!    jpeg/epic, random state for crypto, ASCII for strings/typeset,
//!    small-int coefficient tables for codecs).
//! 4. **Phase consistency across power cycles** — kernels are steady
//!    loops, so neighbouring power cycles see similar behaviour (Fig 12),
//!    which is the property Kagura's history predictor relies on.
//!
//! Programs are *pure functions of the instruction index*
//! ([`KernelProgram::inst_at`]), so JIT-checkpoint resume is exact: the
//! simulator restores the committed-instruction count and continues.
//!
//! # Examples
//!
//! ```
//! use ehs_workloads::App;
//!
//! let prog = App::Jpegd.build(1.0);
//! assert!(prog.len() > 100_000);
//! let first = prog.inst_at(0);
//! assert_eq!(first, prog.inst_at(0)); // deterministic
//! ```

pub mod apps;
pub mod kernel;

pub use apps::App;
pub use kernel::{AddrGen, InstCursor, KernelProgram, KernelSpec, Op, Phase, ValGen};
