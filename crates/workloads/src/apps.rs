//! The 20 MiBench/MediaBench-like applications of the paper's evaluation.
//!
//! Each app is a [`KernelSpec`] calibrated on three axes (see the crate
//! docs): arithmetic intensity, working-set size relative to the 256 B
//! caches, and data compressibility via its [`MemoryImage`]. Names match
//! the paper's figures (`jpegd`, `blowfishd`, `strings`, …).
//!
//! Layout of the synthetic address space (byte addresses):
//!
//! * `0x0010_0000` — code (per-app phase bodies live at small offsets)
//! * `0x0020_0000` — primary input region
//! * `0x0030_0000` — secondary region (tables, state)
//! * `0x0040_0000` — output region
//! * `0x0050_0000` — scratch/globals

use ehs_mem::{ImageKind, MemoryImage};

use crate::kernel::{AddrGen, KernelProgram, KernelSpec, Op, Phase, ValGen};

const CODE: u64 = 0x0010_0000;
// Data regions are staggered by one cache set each (32 B blocks, 4 sets in
// the Table-I geometry) so that lock-step streams do not collide in the
// same set forever — real linkers scatter sections similarly.
const IN: u64 = 0x0020_0000;
const TAB: u64 = 0x0030_0020;
const OUT: u64 = 0x0040_0040;
const GLOB: u64 = 0x0050_0060;

/// One of the 20 evaluated applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are the benchmark names themselves
pub enum App {
    Adpcmd,
    Adpcme,
    Epic,
    G721d,
    G721e,
    Gsm,
    Jpeg,
    Jpegd,
    Mpeg2d,
    Mpeg2e,
    Susans,
    Blowfish,
    Blowfishd,
    Rijndael,
    Sha,
    Crc32,
    Dijkstra,
    Patricia,
    Strings,
    Typeset,
}

impl App {
    /// All 20 applications in the paper's figure order.
    pub const ALL: [App; 20] = [
        App::Adpcmd,
        App::Adpcme,
        App::Epic,
        App::G721d,
        App::G721e,
        App::Gsm,
        App::Jpeg,
        App::Jpegd,
        App::Mpeg2d,
        App::Mpeg2e,
        App::Susans,
        App::Blowfish,
        App::Blowfishd,
        App::Rijndael,
        App::Sha,
        App::Crc32,
        App::Dijkstra,
        App::Patricia,
        App::Strings,
        App::Typeset,
    ];

    /// The six apps of the paper's arithmetic-intensity study (Fig 17),
    /// lowest intensity first.
    pub const FIG17: [App; 6] =
        [App::Jpegd, App::Jpeg, App::Mpeg2d, App::G721d, App::Patricia, App::Strings];

    /// Benchmark name as printed in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            App::Adpcmd => "adpcmd",
            App::Adpcme => "adpcme",
            App::Epic => "epic",
            App::G721d => "g721d",
            App::G721e => "g721e",
            App::Gsm => "gsm",
            App::Jpeg => "jpeg",
            App::Jpegd => "jpegd",
            App::Mpeg2d => "mpeg2d",
            App::Mpeg2e => "mpeg2e",
            App::Susans => "susans",
            App::Blowfish => "blowfish",
            App::Blowfishd => "blowfishd",
            App::Rijndael => "rijndael",
            App::Sha => "sha",
            App::Crc32 => "crc32",
            App::Dijkstra => "dijkstra",
            App::Patricia => "patricia",
            App::Strings => "strings",
            App::Typeset => "typeset",
        }
    }

    /// Parses a benchmark name.
    pub fn from_name(name: &str) -> Option<App> {
        App::ALL.into_iter().find(|a| a.name() == name)
    }

    /// Builds the program. `scale` multiplies every trip count (1.0 ≈
    /// 300–600 k dynamic instructions).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn build(self, scale: f64) -> KernelProgram {
        assert!(scale > 0.0, "scale must be positive");
        KernelProgram::new(self.spec(scale))
    }

    fn spec(self, scale: f64) -> KernelSpec {
        // `scale` multiplies the outer repetition count only, so one
        // repetition's phase structure (and therefore its locality) is
        // identical at every scale.
        let it = |n: u64| ((n as f64 * scale).round() as u64).max(1);
        let seed = self as u64 + 1;
        // Shorthands.
        let seq = |base, stride, span| Op::Load(AddrGen::Seq { base, stride, span });
        let rnd = |base, span, salt| Op::Load(AddrGen::Rand { base, span, salt });
        let stseq = |base: u64, stride: u64, span: u64, v: ValGen| {
            Op::Store(AddrGen::Seq { base, stride, span }, v)
        };
        let strnd = |base: u64, span: u64, salt: u64, v: ValGen| {
            Op::Store(AddrGen::Rand { base, span, salt }, v)
        };
        #[allow(unused_variables)]
        let tile = |base: u64, tile_span: u64, iters_per_tile: u64| {
            Op::Load(AddrGen::Tiled { base, tile_span, iters_per_tile, stride: 4 })
        };
        let trand = |base: u64, tile_span: u64, iters_per_tile: u64, salt: u64| {
            Op::Load(AddrGen::TiledRand { base, tile_span, iters_per_tile, salt })
        };
        #[allow(unused_variables)]
        let sttile = |base: u64, tile_span: u64, iters_per_tile: u64, v: ValGen| {
            Op::Store(AddrGen::Tiled { base, tile_span, iters_per_tile, stride: 4 }, v)
        };
        let small = ValGen::Small { magnitude: 256, salt: seed };
        let a = Op::Alu;

        // Common image fragments.
        let code_img = (CODE, ImageKind::SmallInts { seed: 0xC0DE ^ seed, magnitude: 1 << 22 });

        let (phases, repeats, image) = match self {
            // --- MediaBench audio: streaming samples, modest compute. ---
            App::Adpcmd => (
                vec![Phase {
                    body: vec![
                        seq(IN, 4, 64),
                        a,
                        a,
                        stseq(OUT, 4, 64, small),
                        trand(IN + 0x8000, 4096, 110, seed),
                        a,
                        a,
                    ],
                    iterations: 4000,
                    code_base: CODE,
                    code_paths: 10,
                }],
                it(20),
                MemoryImage::builder(ImageKind::Zeros)
                    .region(code_img.0, code_img.1)
                    .region(IN, ImageKind::SmallInts { seed, magnitude: 128 })
                    .region(OUT, ImageKind::Zeros)
                    .build(),
            ),
            App::Adpcme => (
                vec![Phase {
                    body: vec![
                        seq(IN, 4, 64),
                        a,
                        a,
                        a,
                        stseq(OUT, 4, 64, small),
                        trand(IN + 0x8000, 4096, 110, seed),
                        a,
                        a,
                    ],
                    iterations: 3500,
                    code_base: CODE,
                    code_paths: 10,
                }],
                it(20),
                MemoryImage::builder(ImageKind::Zeros)
                    .region(code_img.0, code_img.1)
                    .region(IN, ImageKind::SmallInts { seed, magnitude: 4096 })
                    .build(),
            ),
            // --- epic: wavelet image compression, 2D sweeps on gradients. ---
            App::Epic => (
                vec![
                    Phase {
                        // Wavelet filtering over 352B tiles, two passes.
                        body: vec![
                            trand(IN, 4096, 100, seed),
                            seq(TAB, 4, 64),
                            a,
                            a,
                            stseq(TAB + 0x40, 4, 64, ValGen::Iter),
                            a,
                        ],
                        iterations: 2500,
                        code_base: CODE,
                        code_paths: 10,
                    },
                    Phase {
                        body: vec![
                            trand(OUT, 4096, 100, seed + 23),
                            seq(TAB, 4, 64),
                            a,
                            a,
                            stseq(TAB + 0x40, 4, 64, small),
                            a,
                        ],
                        iterations: 1500,
                        code_base: CODE + 0x100,
                        code_paths: 10,
                    },
                ],
                it(12),
                MemoryImage::builder(ImageKind::Zeros)
                    .region(code_img.0, code_img.1)
                    .region(IN, ImageKind::Gradient { base: 0x8000, step: 5 })
                    .build(),
            ),
            // --- g721: ADPCM with heavy quantisation-table lookups. ---
            App::G721d => (
                vec![Phase {
                    body: vec![
                        seq(IN, 4, 64),
                        rnd(TAB, 1024, seed),
                        a,
                        a,
                        a,
                        a,
                        stseq(OUT, 4, 64, small),
                    ],
                    iterations: 3000,
                    code_base: CODE,
                    code_paths: 10,
                }],
                it(18),
                MemoryImage::builder(ImageKind::Zeros)
                    .region(code_img.0, code_img.1)
                    .region(IN, ImageKind::SmallInts { seed, magnitude: 128 })
                    .region(TAB, ImageKind::SmallInts { seed: seed + 1, magnitude: 2048 })
                    .build(),
            ),
            App::G721e => (
                vec![Phase {
                    body: vec![
                        seq(IN, 4, 64),
                        rnd(TAB, 1024, seed),
                        a,
                        a,
                        a,
                        a,
                        a,
                        stseq(OUT, 4, 64, small),
                    ],
                    iterations: 2800,
                    code_base: CODE,
                    code_paths: 10,
                }],
                it(18),
                MemoryImage::builder(ImageKind::Zeros)
                    .region(code_img.0, code_img.1)
                    .region(IN, ImageKind::SmallInts { seed, magnitude: 4096 })
                    .region(TAB, ImageKind::SmallInts { seed: seed + 1, magnitude: 2048 })
                    .build(),
            ),
            // --- gsm: frame-based speech coding. ---
            App::Gsm => (
                vec![
                    Phase {
                        // LPC analysis: five passes over each 384B frame.
                        body: vec![
                            trand(IN, 4096, 100, seed),
                            a,
                            a,
                            seq(TAB, 4, 64),
                            a,
                            stseq(OUT, 4, 64, small),
                        ],
                        iterations: 3000,
                        code_base: CODE,
                        code_paths: 10,
                    },
                    Phase {
                        body: vec![
                            seq(TAB, 4, 64),
                            a,
                            a,
                            a,
                            stseq(OUT, 4, 64, small),
                            trand(IN, 4096, 100, seed + 9),
                        ],
                        iterations: 2000,
                        code_base: CODE + 0x80,
                        code_paths: 10,
                    },
                ],
                it(16),
                MemoryImage::builder(ImageKind::Zeros)
                    .region(code_img.0, code_img.1)
                    .region(IN, ImageKind::SmallInts { seed, magnitude: 8192 })
                    .region(TAB, ImageKind::SmallInts { seed: seed + 1, magnitude: 512 })
                    .build(),
            ),
            // --- jpeg encode: DCT over gradient pixels; memory-heavy. ---
            App::Jpeg => (
                vec![
                    Phase {
                        // DCT over 384B pixel tiles: two passes per tile.
                        body: vec![
                            trand(IN, 6144, 130, seed),
                            seq(TAB, 4, 64),
                            a,
                            stseq(TAB + 0x40, 4, 64, ValGen::Iter),
                        ],
                        iterations: 3000,
                        code_base: CODE,
                        code_paths: 10,
                    },
                    Phase {
                        // Entropy coding of the coefficient tiles.
                        body: vec![
                            trand(OUT, 6144, 130, seed + 23),
                            seq(TAB, 4, 64),
                            a,
                            stseq(TAB + 0x40, 4, 64, small),
                        ],
                        iterations: 2500,
                        code_base: CODE + 0x100,
                        code_paths: 10,
                    },
                ],
                it(14),
                MemoryImage::builder(ImageKind::Zeros)
                    .region(code_img.0, code_img.1)
                    .region(IN, ImageKind::Gradient { base: 0x40_0000, step: 3 })
                    .build(),
            ),
            // --- jpeg decode: lowest arithmetic intensity; Kagura's best. ---
            App::Jpegd => (
                vec![
                    Phase {
                        // Huffman decode into 384B coefficient tiles.
                        body: vec![
                            trand(IN, 6144, 130, seed),
                            stseq(TAB, 4, 64, small),
                            seq(TAB + 0x40, 4, 64),
                            stseq(TAB + 0x40, 4, 64, ValGen::Iter),
                            a,
                        ],
                        iterations: 3500,
                        code_base: CODE,
                        code_paths: 10,
                    },
                    Phase {
                        // IDCT + color conversion over the pixel tiles.
                        body: vec![
                            trand(OUT, 6144, 130, seed + 23),
                            stseq(TAB, 4, 64, ValGen::Iter),
                        ],
                        iterations: 3500,
                        code_base: CODE + 0x100,
                        code_paths: 10,
                    },
                ],
                it(14),
                MemoryImage::builder(ImageKind::Zeros)
                    .region(code_img.0, code_img.1)
                    .region(IN, ImageKind::Mixed { seed, compressible_pct: 70 })
                    .build(),
            ),
            // --- mpeg2 decode: motion compensation over a big frame. ---
            App::Mpeg2d => (
                vec![Phase {
                    // Motion compensation: random reference fetches plus
                    // tiled macroblock reconstruction.
                    body: vec![
                        rnd(IN, 4096, seed),
                        seq(TAB, 4, 64),
                        a,
                        a,
                        stseq(OUT, 4, 64, ValGen::Iter),
                        a,
                    ],
                    iterations: 4500,
                    code_base: CODE,
                    code_paths: 10,
                }],
                it(16),
                MemoryImage::builder(ImageKind::Zeros)
                    .region(code_img.0, code_img.1)
                    .region(IN, ImageKind::Mixed { seed, compressible_pct: 70 })
                    .region(TAB, ImageKind::SmallInts { seed, magnitude: 256 })
                    .build(),
            ),
            App::Mpeg2e => (
                vec![Phase {
                    body: vec![
                        rnd(IN, 4096, seed),
                        seq(TAB, 4, 64),
                        a,
                        a,
                        a,
                        stseq(OUT, 4, 64, small),
                        a,
                    ],
                    iterations: 3500,
                    code_base: CODE,
                    code_paths: 10,
                }],
                it(16),
                MemoryImage::builder(ImageKind::Zeros)
                    .region(code_img.0, code_img.1)
                    .region(IN, ImageKind::Gradient { base: 0x10_0000, step: 11 })
                    .build(),
            ),
            // --- susan smoothing: windowed 2D loads. ---
            App::Susans => (
                vec![Phase {
                    // 3x3 smoothing window over 416B image tiles.
                    body: vec![
                        trand(IN, 4096, 100, seed),
                        seq(TAB, 4, 64),
                        a,
                        a,
                        stseq(OUT, 4, 64, small),
                        a,
                    ],
                    iterations: 3200,
                    code_base: CODE,
                    code_paths: 10,
                }],
                it(15),
                MemoryImage::builder(ImageKind::Zeros)
                    .region(code_img.0, code_img.1)
                    .region(IN, ImageKind::Mixed { seed, compressible_pct: 70 })
                    .build(),
            ),
            // --- crypto: random S-box lookups over incompressible state. ---
            App::Blowfish => (
                vec![Phase {
                    body: vec![
                        seq(IN, 4, 4096),
                        rnd(TAB, 2048, seed),
                        rnd(TAB + 2048, 2048, seed + 1),
                        a,
                        a,
                        a,
                        stseq(OUT, 4, 4096, ValGen::Rand { salt: seed }),
                    ],
                    iterations: 3000,
                    code_base: CODE,
                    code_paths: 10,
                }],
                it(14),
                MemoryImage::builder(ImageKind::Zeros)
                    .region(code_img.0, code_img.1)
                    .region(IN, ImageKind::Random { seed })
                    .region(TAB, ImageKind::Random { seed: seed + 2 })
                    .build(),
            ),
            App::Blowfishd => (
                vec![Phase {
                    body: vec![
                        seq(IN, 4, 4096),
                        rnd(TAB, 2048, seed + 3),
                        rnd(TAB + 2048, 2048, seed + 4),
                        a,
                        a,
                        a,
                        stseq(OUT, 4, 4096, ValGen::Rand { salt: seed + 5 }),
                    ],
                    iterations: 3000,
                    code_base: CODE,
                    code_paths: 10,
                }],
                it(14),
                MemoryImage::builder(ImageKind::Zeros)
                    .region(code_img.0, code_img.1)
                    .region(IN, ImageKind::Random { seed: seed + 6 })
                    .region(TAB, ImageKind::Random { seed: seed + 7 })
                    .build(),
            ),
            App::Rijndael => (
                vec![Phase {
                    body: vec![
                        seq(IN, 4, 4096),
                        rnd(TAB, 2048, seed),
                        a,
                        a,
                        strnd(GLOB, 256, seed + 1, ValGen::Rand { salt: seed }),
                    ],
                    iterations: 3600,
                    code_base: CODE,
                    code_paths: 10,
                }],
                it(14),
                MemoryImage::builder(ImageKind::Zeros)
                    .region(code_img.0, code_img.1)
                    .region(IN, ImageKind::Random { seed: seed + 8 })
                    .region(TAB, ImageKind::Random { seed: seed + 9 })
                    .build(),
            ),
            // --- sha: high reuse of one message block, ALU-heavy. ---
            App::Sha => (
                vec![Phase {
                    body: vec![
                        seq(IN, 4, 64),
                        a,
                        a,
                        a,
                        a,
                        a,
                        a,
                        Op::Store(AddrGen::Fixed { addr: GLOB }, ValGen::Rand { salt: seed }),
                    ],
                    iterations: 4500,
                    code_base: CODE,
                    code_paths: 10,
                }],
                it(14),
                MemoryImage::builder(ImageKind::Zeros)
                    .region(code_img.0, code_img.1)
                    .region(IN, ImageKind::Text { seed })
                    .build(),
            ),
            // --- crc32: pure streaming, no reuse. ---
            App::Crc32 => (
                vec![Phase {
                    body: vec![
                        seq(IN, 4, 16384),
                        a,
                        rnd(TAB, 256, seed),
                        a,
                        Op::Store(AddrGen::Fixed { addr: GLOB }, ValGen::Iter),
                    ],
                    iterations: 5500,
                    code_base: CODE,
                    code_paths: 10,
                }],
                it(12),
                MemoryImage::builder(ImageKind::Zeros)
                    .region(code_img.0, code_img.1)
                    .region(IN, ImageKind::Text { seed })
                    .region(TAB, ImageKind::Random { seed: seed + 10 })
                    .build(),
            ),
            // --- dijkstra: graph relaxation over adjacency + dist arrays. ---
            App::Dijkstra => (
                vec![Phase {
                    body: vec![
                        rnd(IN, 2048, seed),
                        seq(TAB, 4, 384),
                        a,
                        a,
                        strnd(OUT, 512, seed + 1, ValGen::Small { magnitude: 1 << 16, salt: seed }),
                    ],
                    iterations: 4200,
                    code_base: CODE,
                    code_paths: 10,
                }],
                it(14),
                MemoryImage::builder(ImageKind::Zeros)
                    .region(code_img.0, code_img.1)
                    .region(IN, ImageKind::SmallInts { seed, magnitude: 1 << 14 })
                    .region(TAB, ImageKind::Gradient { base: 0, step: 1 })
                    .build(),
            ),
            // --- patricia: pointer chasing, high arithmetic intensity. ---
            App::Patricia => (
                vec![Phase {
                    body: vec![rnd(IN, 1024, seed), a, a, a, a, a],
                    iterations: 6000,
                    code_base: CODE,
                    code_paths: 10,
                }],
                it(14),
                MemoryImage::builder(ImageKind::Zeros)
                    .region(code_img.0, code_img.1)
                    .region(IN, ImageKind::SmallInts { seed, magnitude: 1 << 20 })
                    .build(),
            ),
            // --- stringsearch: text scanning, highest intensity. ---
            App::Strings => (
                vec![Phase {
                    body: vec![seq(IN, 4, 4096), a, a, a, a, a, a],
                    iterations: 5200,
                    code_base: CODE,
                    code_paths: 10,
                }],
                it(12),
                MemoryImage::builder(ImageKind::Zeros)
                    .region(code_img.0, code_img.1)
                    .region(IN, ImageKind::Text { seed })
                    .build(),
            ),
            // --- typeset: layout over text, memory-heavy, mixed access. ---
            App::Typeset => (
                vec![
                    Phase {
                        // Glyph layout: random dictionary lookups + tiled
                        // line buffers.
                        body: vec![
                            rnd(IN, 2048, seed),
                            seq(TAB, 4, 192),
                            a,
                            stseq(OUT, 4, 64, small),
                        ],
                        iterations: 3200,
                        code_base: CODE,
                        code_paths: 12,
                    },
                    Phase {
                        body: vec![seq(OUT, 4, 64), a, strnd(GLOB, 128, seed, ValGen::Iter)],
                        iterations: 2000,
                        code_base: CODE + 0x100,
                        code_paths: 12,
                    },
                ],
                it(14),
                MemoryImage::builder(ImageKind::Zeros)
                    .region(code_img.0, code_img.1)
                    .region(IN, ImageKind::Text { seed })
                    .region(TAB, ImageKind::SmallInts { seed, magnitude: 64 })
                    .build(),
            ),
        };
        KernelSpec { name: self.name(), phases, repeats, image }
    }
}

impl std::fmt::Display for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehs_model::inst::InstKind;

    #[test]
    fn all_apps_build_and_have_sane_lengths() {
        for app in App::ALL {
            let p = app.build(1.0);
            assert!((100_000..3_000_000).contains(&p.len()), "{app}: {} instructions", p.len());
        }
    }

    #[test]
    fn names_round_trip() {
        for app in App::ALL {
            assert_eq!(App::from_name(app.name()), Some(app));
        }
        assert_eq!(App::from_name("nope"), None);
        assert_eq!(App::ALL.len(), 20);
    }

    #[test]
    fn scale_multiplies_length() {
        let small = App::Sha.build(0.1);
        let big = App::Sha.build(1.0);
        assert!(big.len() > 5 * small.len());
    }

    #[test]
    fn fig17_ordering_by_arithmetic_intensity() {
        // The six Fig-17 apps must be ordered low->high intensity.
        let ai: Vec<f64> = App::FIG17.iter().map(|a| a.build(0.2).arithmetic_intensity()).collect();
        for w in ai.windows(2) {
            assert!(w[0] <= w[1] + 1e-9, "intensities not monotonic: {ai:?}");
        }
        // jpegd must be clearly memory-bound; strings clearly compute-bound.
        assert!(ai[0] < 1.0, "jpegd AI = {}", ai[0]);
        assert!(*ai.last().unwrap() >= 5.0, "strings AI = {:?}", ai.last());
    }

    #[test]
    fn instruction_streams_are_deterministic() {
        let a = App::Dijkstra.build(0.1);
        let b = App::Dijkstra.build(0.1);
        for i in (0..a.len()).step_by(997) {
            assert_eq!(a.inst_at(i), b.inst_at(i));
        }
    }

    #[test]
    fn data_addresses_fall_in_declared_regions() {
        for app in App::ALL {
            let p = app.build(0.05);
            for i in (0..p.len()).step_by(31) {
                if let InstKind::Load { addr } | InstKind::Store { addr, .. } = p.inst_at(i).kind {
                    assert!(
                        addr.get() >= IN && addr.get() < GLOB + 0x10_0000,
                        "{app}: data address {addr} outside data regions"
                    );
                }
            }
        }
    }

    #[test]
    fn pcs_fall_in_code_region() {
        for app in App::ALL {
            let p = app.build(0.05);
            for i in (0..p.len()).step_by(53) {
                let pc = p.inst_at(i).pc.get();
                assert!((CODE..CODE + 0x1000).contains(&pc), "{app}: pc {pc:#x}");
            }
        }
    }

    #[test]
    fn crypto_images_are_incompressible_media_images_are_not() {
        use ehs_compress::{Algorithm, Compressor};
        let bdi = Algorithm::Bdi.compressor();

        let crypto = App::Blowfish.build(0.05);
        let media = App::Jpeg.build(0.05);
        let block_of = |prog: &KernelProgram, addr: u64| prog.image().materialize(addr / 32, 32);

        let c = bdi.compress(block_of(&crypto, TAB + 256).as_slice());
        assert!(!c.is_compressed(), "crypto table should be incompressible");
        let m = bdi.compress(block_of(&media, IN + 256).as_slice());
        assert!(m.is_compressed(), "gradient pixels should compress");
    }
}
