//! The kernel IR: loop phases over address/value generators, compiled to a
//! randomly-addressable instruction stream.

use ehs_mem::MemoryImage;
use ehs_model::{Address, Instruction};

/// SplitMix64 hash for deterministic pseudo-random address/value streams.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generates the data address of a memory op from the loop iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddrGen {
    /// `base + (iter * stride) % span`, word-aligned. Streaming/array
    /// sweeps; `span` bounds the working set.
    Seq {
        /// Region base address.
        base: u64,
        /// Bytes advanced per iteration.
        stride: u64,
        /// Working-set size in bytes (wraps).
        span: u64,
    },
    /// `base + hash(iter, salt) % span`, word-aligned. Table lookups,
    /// pointer chasing, hash probes.
    Rand {
        /// Region base address.
        base: u64,
        /// Working-set size in bytes.
        span: u64,
        /// Stream discriminator.
        salt: u64,
    },
    /// A single hot location (accumulators, globals).
    Fixed {
        /// The address.
        addr: u64,
    },
    /// Like [`AddrGen::Tiled`] but touching *random* words within the
    /// current tile instead of scanning it cyclically. Random reuse gives
    /// an LRU cache a hit rate proportional to the resident fraction of
    /// the tile (a cyclic scan of an over-sized tile degenerates to ~0%),
    /// which is how real loop nests with scattered accesses behave.
    TiledRand {
        /// Region base address.
        base: u64,
        /// Bytes per tile.
        tile_span: u64,
        /// Loop iterations spent on one tile.
        iters_per_tile: u64,
        /// Stream discriminator.
        salt: u64,
    },
    /// Tiled processing (JPEG macroblocks, wavelet tiles, speech frames):
    /// the stream works on one `tile_span`-byte tile for `iters_per_tile`
    /// iterations — walking it with `stride`, wrapping, so later passes
    /// re-touch the tile — then moves to the next tile and never returns.
    /// The *instantaneous* working set is one tile; the *total* footprint
    /// is unbounded. This is the access shape that makes compression
    /// useful-but-perishable: a tile in flight benefits from the stretched
    /// cache, a tile in flight at power failure is pure loss.
    Tiled {
        /// Region base address.
        base: u64,
        /// Bytes per tile.
        tile_span: u64,
        /// Loop iterations spent on one tile.
        iters_per_tile: u64,
        /// Bytes advanced per iteration within the tile (wraps).
        stride: u64,
    },
}

impl AddrGen {
    fn at(&self, iter: u64) -> Address {
        let raw = match *self {
            AddrGen::Seq { base, stride, span } => base + (iter.wrapping_mul(stride)) % span,
            AddrGen::Rand { base, span, salt } => base + mix(iter ^ salt.rotate_left(17)) % span,
            AddrGen::Fixed { addr } => addr,
            AddrGen::Tiled { base, tile_span, iters_per_tile, stride } => {
                let tile = iter / iters_per_tile;
                let within = (iter % iters_per_tile).wrapping_mul(stride) % tile_span;
                base + tile * tile_span + within
            }
            AddrGen::TiledRand { base, tile_span, iters_per_tile, salt } => {
                let tile = iter / iters_per_tile;
                let within = mix(iter ^ salt.rotate_left(29)) % tile_span;
                base + tile * tile_span + within
            }
        };
        Address::new(raw & !3)
    }
}

/// Generates the stored value of a store op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValGen {
    /// Always zero (zero-fill loops; maximally compressible output).
    Zero,
    /// The iteration count (ramps; BDI-friendly output).
    Iter,
    /// Small values below `magnitude` (coefficients; FPC-friendly).
    Small {
        /// Exclusive upper bound of generated values.
        magnitude: u32,
        /// Stream discriminator.
        salt: u64,
    },
    /// Uniform random words (crypto/compressed output; incompressible).
    Rand {
        /// Stream discriminator.
        salt: u64,
    },
}

impl ValGen {
    fn at(&self, iter: u64) -> u32 {
        match *self {
            ValGen::Zero => 0,
            ValGen::Iter => iter as u32,
            ValGen::Small { magnitude, salt } => {
                (mix(iter ^ salt) % magnitude.max(1) as u64) as u32
            }
            ValGen::Rand { salt } => mix(iter.wrapping_add(salt) << 1) as u32,
        }
    }
}

/// One operation slot in a loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Arithmetic/logic (no data-memory traffic).
    Alu,
    /// 4-byte load.
    Load(AddrGen),
    /// 4-byte store.
    Store(AddrGen, ValGen),
}

/// A loop: a body of [`Op`]s executed for `iterations` trips.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// The loop body, one instruction per op.
    pub body: Vec<Op>,
    /// Trip count.
    pub iterations: u64,
    /// Code address of the loop's first instruction (drives the ICache).
    pub code_base: u64,
    /// Number of alternative code paths through the body (data-dependent
    /// branches / helper calls). Each iteration hashes to one path, whose
    /// instructions live at a distinct code offset — this is what gives
    /// the ICache a realistic footprint beyond one tiny loop body.
    pub code_paths: u32,
}

impl Phase {
    /// Dynamic instruction count of this phase.
    pub fn len(&self) -> u64 {
        self.body.len() as u64 * self.iterations
    }

    /// Always `false` for valid phases.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty() || self.iterations == 0
    }
}

/// A whole application: a sequence of phases repeated `repeats` times.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpec {
    /// Display name.
    pub name: &'static str,
    /// Phases executed in order within one repetition.
    pub phases: Vec<Phase>,
    /// How many times the phase sequence repeats (reuse across
    /// repetitions gives the program its steady-state locality).
    pub repeats: u64,
    /// Initial contents of the address space.
    pub image: MemoryImage,
}

/// A compiled kernel: prefix sums over the phases for O(log #phases)
/// random access to any dynamic instruction.
#[derive(Debug, Clone)]
pub struct KernelProgram {
    name: &'static str,
    phases: Vec<Phase>,
    /// Cumulative instruction counts; `starts[i]` = first index of phase i.
    starts: Vec<u64>,
    per_rep: u64,
    repeats: u64,
    image: MemoryImage,
}

impl KernelProgram {
    /// Compiles a spec.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no phases, an empty phase, or zero repeats.
    pub fn new(spec: KernelSpec) -> Self {
        assert!(!spec.phases.is_empty(), "kernel needs at least one phase");
        assert!(spec.repeats > 0, "kernel needs at least one repetition");
        let mut starts = Vec::with_capacity(spec.phases.len());
        let mut acc = 0u64;
        for p in &spec.phases {
            assert!(!p.is_empty(), "phase with empty body or zero iterations");
            starts.push(acc);
            acc += p.len();
        }
        KernelProgram {
            name: spec.name,
            phases: spec.phases,
            starts,
            per_rep: acc,
            repeats: spec.repeats,
            image: spec.image,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Total dynamic instruction count.
    pub fn len(&self) -> u64 {
        self.per_rep * self.repeats
    }

    /// Always `false`: programs are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Instructions per repetition of the phase sequence.
    pub fn rep_len(&self) -> u64 {
        self.per_rep
    }

    /// The initial memory image.
    pub fn image(&self) -> &MemoryImage {
        &self.image
    }

    /// The dynamic instruction at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn inst_at(&self, index: u64) -> Instruction {
        assert!(index < self.len(), "instruction index {index} out of range");
        let within = index % self.per_rep;
        // Find the phase via binary search on the prefix sums.
        let pi = match self.starts.binary_search(&within) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let phase = &self.phases[pi];
        let offset = within - self.starts[pi];
        let body_len = phase.body.len() as u64;
        let iter = offset / body_len;
        let slot = (offset % body_len) as usize;
        // Pick this iteration's code path; each path's body sits at its own
        // block-aligned code offset.
        let path = if phase.code_paths > 1 {
            mix(iter ^ 0x5EED_C0DE) % phase.code_paths as u64
        } else {
            0
        };
        let body_span = (body_len * 4).next_multiple_of(32);
        let pc = Address::new(phase.code_base + path * body_span + 4 * slot as u64);
        match phase.body[slot] {
            Op::Alu => Instruction::alu(pc),
            Op::Load(a) => Instruction::load(pc, a.at(iter)),
            Op::Store(a, v) => Instruction::store(pc, a.at(iter), v.at(iter)),
        }
    }

    /// An incremental decoder positioned at instruction `index`.
    ///
    /// The cursor yields exactly the stream [`KernelProgram::inst_at`]
    /// produces, but amortises the per-instruction binary search and
    /// per-iteration code-path hash across a whole loop body.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn cursor(&self, index: u64) -> InstCursor<'_> {
        let mut c = InstCursor {
            program: self,
            index: 0,
            pi: 0,
            iter: 0,
            slot: 0,
            path: 0,
            body_span: 0,
            alu_runs: self
                .phases
                .iter()
                .map(|p| {
                    // alu_runs[pi][slot] = consecutive Alu ops from `slot`.
                    let mut runs = vec![0u32; p.body.len()];
                    for (i, op) in p.body.iter().enumerate().rev() {
                        if matches!(op, Op::Alu) {
                            runs[i] = 1 + runs.get(i + 1).copied().unwrap_or(0);
                        }
                    }
                    runs
                })
                .collect(),
        };
        c.seek(index);
        c
    }

    /// Counts static properties: `(mem_ops, alu_ops)` per repetition.
    pub fn op_mix(&self) -> (u64, u64) {
        let mut mem = 0;
        let mut alu = 0;
        for p in &self.phases {
            for op in &p.body {
                match op {
                    Op::Alu => alu += p.iterations,
                    _ => mem += p.iterations,
                }
            }
        }
        (mem, alu)
    }

    /// Arithmetic intensity: ALU ops per memory op.
    pub fn arithmetic_intensity(&self) -> f64 {
        let (mem, alu) = self.op_mix();
        if mem == 0 {
            f64::INFINITY
        } else {
            alu as f64 / mem as f64
        }
    }
}

/// An incremental decoder over a [`KernelProgram`]'s dynamic instruction
/// stream.
///
/// [`KernelProgram::inst_at`] pays a binary search over the phase prefix
/// sums plus a SplitMix64 hash for *every* instruction; the cursor keeps a
/// `(phase, iteration, slot)` position and advances it in O(1), hashing the
/// code path once per loop iteration. The stream is bit-identical to
/// `inst_at` by construction (asserted by the `cursor_matches_inst_at`
/// test over every app).
///
/// # Examples
///
/// ```
/// # use ehs_workloads::App;
/// let program = App::Sha.build(0.01);
/// let mut cursor = program.cursor(0);
/// for i in 0..program.len() {
///     assert_eq!(cursor.next_inst(), program.inst_at(i));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct InstCursor<'p> {
    program: &'p KernelProgram,
    /// Next dynamic instruction index to decode.
    index: u64,
    /// Current phase index.
    pi: usize,
    /// Loop iteration within the current phase.
    iter: u64,
    /// Op slot within the loop body.
    slot: usize,
    /// This iteration's code path (hashed once per iteration).
    path: u64,
    /// Code bytes spanned by one path's body (block-aligned).
    body_span: u64,
    /// Per phase: `alu_runs[pi][slot]` = consecutive [`Op::Alu`] slots
    /// starting at `slot` (0 when the slot is a memory op).
    alu_runs: Vec<Vec<u32>>,
}

impl<'p> InstCursor<'p> {
    /// The index of the next instruction [`InstCursor::next_inst`] yields.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// Repositions the cursor at `index` (used after SweepCache rollback,
    /// where the committed-instruction pointer moves backwards).
    ///
    /// # Panics
    ///
    /// Panics if `index >= program.len()`.
    pub fn seek(&mut self, index: u64) {
        let p = self.program;
        assert!(index < p.len(), "instruction index {index} out of range");
        let within = index % p.per_rep;
        let pi = match p.starts.binary_search(&within) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let phase = &p.phases[pi];
        let offset = within - p.starts[pi];
        let body_len = phase.body.len() as u64;
        self.index = index;
        self.pi = pi;
        self.iter = offset / body_len;
        self.slot = (offset % body_len) as usize;
        self.enter_iteration();
    }

    /// Recomputes the per-iteration decode state (code path, body span).
    fn enter_iteration(&mut self) {
        let phase = &self.program.phases[self.pi];
        self.path = if phase.code_paths > 1 {
            mix(self.iter ^ 0x5EED_C0DE) % phase.code_paths as u64
        } else {
            0
        };
        self.body_span = (phase.body.len() as u64 * 4).next_multiple_of(32);
    }

    /// Program counter of the instruction at the current position.
    pub fn pc(&self) -> Address {
        let phase = &self.program.phases[self.pi];
        Address::new(phase.code_base + self.path * self.body_span + 4 * self.slot as u64)
    }

    /// Number of consecutive [`Op::Alu`] slots starting at the current
    /// position, clipped to the end of the loop body and of the program
    /// (0 when the current op is a memory access). Within such a run the
    /// program counter advances by 4 per instruction.
    pub fn alu_run_len(&self) -> u64 {
        let run = self.alu_runs[self.pi][self.slot] as u64;
        run.min(self.program.len() - self.index)
    }

    /// Decodes the instruction at the current position and advances.
    ///
    /// # Panics
    ///
    /// Panics when the cursor is past the last instruction.
    pub fn next_inst(&mut self) -> Instruction {
        let phase = &self.program.phases[self.pi];
        let pc = self.pc();
        let inst = match phase.body[self.slot] {
            Op::Alu => Instruction::alu(pc),
            Op::Load(a) => Instruction::load(pc, a.at(self.iter)),
            Op::Store(a, v) => Instruction::store(pc, a.at(self.iter), v.at(self.iter)),
        };
        self.advance(1);
        inst
    }

    /// Advances the position by `n` instructions without decoding them
    /// (the fast-forward loop consumes ALU runs this way). Positions past
    /// the last instruction saturate at `program.len()`.
    pub fn advance(&mut self, n: u64) {
        debug_assert!(self.index + n <= self.program.len(), "cursor advanced out of range");
        self.index += n;
        if self.index >= self.program.len() {
            return;
        }
        let mut left = n as usize + self.slot;
        loop {
            let phase = &self.program.phases[self.pi];
            let body_len = phase.body.len();
            if left < body_len {
                self.slot = left;
                return;
            }
            left -= body_len;
            self.slot = 0;
            self.iter += 1;
            if self.iter >= phase.iterations {
                self.iter = 0;
                self.pi += 1;
                if self.pi >= self.program.phases.len() {
                    self.pi = 0; // next repetition
                }
            }
            self.enter_iteration();
            if left == 0 {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehs_model::inst::InstKind;

    fn tiny_spec() -> KernelSpec {
        KernelSpec {
            name: "tiny",
            phases: vec![
                Phase {
                    body: vec![
                        Op::Load(AddrGen::Seq { base: 0x1000, stride: 4, span: 64 }),
                        Op::Alu,
                        Op::Store(AddrGen::Fixed { addr: 0x2000 }, ValGen::Iter),
                    ],
                    iterations: 10,
                    code_base: 0x100,
                    code_paths: 1,
                },
                Phase {
                    body: vec![Op::Alu, Op::Alu],
                    iterations: 5,
                    code_base: 0x200,
                    code_paths: 1,
                },
            ],
            repeats: 3,
            image: MemoryImage::zeros(),
        }
    }

    #[test]
    fn lengths_and_prefix_sums() {
        let p = KernelProgram::new(tiny_spec());
        assert_eq!(p.rep_len(), 30 + 10);
        assert_eq!(p.len(), 120);
    }

    #[test]
    fn instruction_stream_is_deterministic_and_phase_correct() {
        let p = KernelProgram::new(tiny_spec());
        // First phase: load/alu/store cycle.
        assert!(matches!(p.inst_at(0).kind, InstKind::Load { .. }));
        assert!(matches!(p.inst_at(1).kind, InstKind::Alu));
        assert!(matches!(p.inst_at(2).kind, InstKind::Store { .. }));
        // Second phase starts at index 30.
        assert!(matches!(p.inst_at(30).kind, InstKind::Alu));
        assert_eq!(p.inst_at(30).pc, Address::new(0x200));
        // Repetition 2 replays repetition 1 exactly.
        for i in 0..40 {
            assert_eq!(p.inst_at(i), p.inst_at(i + 40));
        }
    }

    #[test]
    fn seq_addresses_wrap_at_span() {
        let gen = AddrGen::Seq { base: 0x1000, stride: 4, span: 64 };
        assert_eq!(gen.at(0), Address::new(0x1000));
        assert_eq!(gen.at(1), Address::new(0x1004));
        assert_eq!(gen.at(16), Address::new(0x1000)); // wrapped
    }

    #[test]
    fn tiled_addresses_reuse_within_a_tile_then_advance() {
        let gen = AddrGen::Tiled { base: 0x1000, tile_span: 64, iters_per_tile: 32, stride: 4 };
        // First pass walks the tile sequentially.
        assert_eq!(gen.at(0), Address::new(0x1000));
        assert_eq!(gen.at(15), Address::new(0x103C));
        // Second pass (iters 16..32) wraps back over the same 64 bytes.
        assert_eq!(gen.at(16), Address::new(0x1000));
        assert_eq!(gen.at(31), Address::new(0x103C));
        // Next tile starts fresh, one tile_span further.
        assert_eq!(gen.at(32), Address::new(0x1040));
        // A tile is never revisited after the stream moves on.
        for i in 32..64 {
            assert!(gen.at(i).get() >= 0x1040);
        }
    }

    #[test]
    fn tiled_rand_stays_within_the_current_tile() {
        let gen = AddrGen::TiledRand { base: 0x1000, tile_span: 64, iters_per_tile: 32, salt: 5 };
        for i in 0..32 {
            let a = gen.at(i).get();
            assert!((0x1000..0x1040).contains(&a), "iter {i}: {a:#x}");
        }
        for i in 32..64 {
            let a = gen.at(i).get();
            assert!((0x1040..0x1080).contains(&a), "iter {i}: {a:#x}");
        }
        // Random within the tile: more than 4 distinct words touched.
        let distinct: std::collections::HashSet<u64> = (0..32).map(|i| gen.at(i).get()).collect();
        assert!(distinct.len() > 4);
    }

    #[test]
    fn rand_addresses_stay_in_span_and_are_aligned() {
        let gen = AddrGen::Rand { base: 0x8000, span: 1024, salt: 7 };
        for i in 0..500 {
            let a = gen.at(i).get();
            assert!((0x8000..0x8000 + 1024).contains(&a));
            assert_eq!(a % 4, 0);
        }
        // Different salts give different streams.
        let other = AddrGen::Rand { base: 0x8000, span: 1024, salt: 8 };
        assert!((0..100).any(|i| gen.at(i) != other.at(i)));
    }

    #[test]
    fn value_generators() {
        assert_eq!(ValGen::Zero.at(5), 0);
        assert_eq!(ValGen::Iter.at(5), 5);
        let small = ValGen::Small { magnitude: 100, salt: 3 };
        for i in 0..200 {
            assert!(small.at(i) < 100);
        }
        let r = ValGen::Rand { salt: 1 };
        assert_ne!(r.at(0), r.at(1));
        assert_eq!(r.at(7), r.at(7));
    }

    #[test]
    fn op_mix_and_intensity() {
        let p = KernelProgram::new(tiny_spec());
        let (mem, alu) = p.op_mix();
        assert_eq!(mem, 20); // (1 load + 1 store) * 10 iters
        assert_eq!(alu, 20); // 10 + 2*5
        assert_eq!(p.arithmetic_intensity(), 1.0);
    }

    #[test]
    fn cursor_matches_inst_at_across_whole_stream() {
        let p = KernelProgram::new(tiny_spec());
        let mut c = p.cursor(0);
        for i in 0..p.len() {
            assert_eq!(c.index(), i);
            assert_eq!(c.next_inst(), p.inst_at(i), "index {i}");
        }
    }

    #[test]
    fn cursor_matches_inst_at_with_code_paths_and_mem_ops() {
        let p = KernelProgram::new(KernelSpec {
            name: "paths",
            phases: vec![
                Phase {
                    body: vec![
                        Op::Alu,
                        Op::Alu,
                        Op::Load(AddrGen::Rand { base: 0x4000, span: 512, salt: 3 }),
                        Op::Alu,
                        Op::Store(
                            AddrGen::Tiled {
                                base: 0x8000,
                                tile_span: 64,
                                iters_per_tile: 8,
                                stride: 4,
                            },
                            ValGen::Small { magnitude: 50, salt: 9 },
                        ),
                    ],
                    iterations: 37,
                    code_base: 0x1000,
                    code_paths: 5,
                },
                Phase { body: vec![Op::Alu; 9], iterations: 11, code_base: 0x9000, code_paths: 3 },
            ],
            repeats: 4,
            image: MemoryImage::zeros(),
        });
        let mut c = p.cursor(0);
        for i in 0..p.len() {
            assert_eq!(c.next_inst(), p.inst_at(i), "index {i}");
        }
    }

    #[test]
    fn cursor_seek_lands_anywhere() {
        let p = KernelProgram::new(tiny_spec());
        let mut c = p.cursor(0);
        for &i in &[0, 1, 29, 30, 39, 40, 77, 119, 3, 0] {
            c.seek(i);
            assert_eq!(c.next_inst(), p.inst_at(i), "seek {i}");
        }
    }

    #[test]
    fn cursor_alu_runs_cover_exactly_the_alu_slots() {
        let p = KernelProgram::new(tiny_spec());
        let mut c = p.cursor(0);
        for i in 0..p.len() {
            let run = c.alu_run_len();
            let is_alu = matches!(p.inst_at(i).kind, InstKind::Alu);
            assert_eq!(run > 0, is_alu, "index {i}");
            // Every instruction a claimed run covers is an ALU op with a
            // PC advancing by 4.
            for k in 0..run {
                let inst = p.inst_at(i + k);
                assert!(matches!(inst.kind, InstKind::Alu), "index {i} + {k}");
                assert_eq!(inst.pc, p.inst_at(i).pc + 4 * k);
            }
            c.advance(1);
        }
    }

    #[test]
    fn cursor_advance_over_runs_stays_in_sync() {
        let p = KernelProgram::new(tiny_spec());
        let mut c = p.cursor(0);
        let mut i = 0;
        while i < p.len() {
            let run = c.alu_run_len();
            if run > 1 {
                c.advance(run);
                i += run;
            } else {
                assert_eq!(c.next_inst(), p.inst_at(i));
                i += 1;
            }
        }
        assert_eq!(c.index(), p.len());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let p = KernelProgram::new(tiny_spec());
        let _ = p.inst_at(p.len());
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_spec_rejected() {
        let _ = KernelProgram::new(KernelSpec {
            name: "empty",
            phases: vec![],
            repeats: 1,
            image: MemoryImage::zeros(),
        });
    }
}
