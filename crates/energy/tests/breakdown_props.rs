//! Property-based tests on the energy-accounting layer: `EnergyBreakdown`
//! is an additive six-bucket vector, its JSON form is lossless, and the
//! ledger audit accepts exactly the rows its own identity constructs.

use ehs_energy::{EnergyBreakdown, EnergyCategory, LedgerRow};
use ehs_model::Energy;
use proptest::prelude::*;

/// Six bucket magnitudes, one per [`EnergyCategory::ALL`] slot.
fn buckets() -> impl Strategy<Value = [f64; 6]> {
    (0.0f64..1e9, 0.0f64..1e9, 0.0f64..1e9, 0.0f64..1e9, 0.0f64..1e9, 0.0f64..1e9)
        .prop_map(|(a, b, c, d, e, f)| [a, b, c, d, e, f])
}

fn breakdown(pj: [f64; 6]) -> EnergyBreakdown {
    let mut b = EnergyBreakdown::default();
    for (cat, v) in EnergyCategory::ALL.iter().zip(pj) {
        b.record(*cat, Energy::from_picojoules(v));
    }
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn addition_is_componentwise_and_total_preserving(a in buckets(), b in buckets()) {
        let (x, y) = (breakdown(a), breakdown(b));
        let sum = x + y;
        for cat in EnergyCategory::ALL {
            prop_assert_eq!(
                sum[cat].picojoules(),
                x[cat].picojoules() + y[cat].picojoules(),
                "bucket {} must add componentwise", cat.label()
            );
        }
        // `+` and `+=` agree.
        let mut acc = x;
        acc += y;
        prop_assert_eq!(acc, sum);
        // The total is the sum of totals (floats: exact here, since both
        // sides reduce the same addends in the same order).
        prop_assert!(
            (sum.total().picojoules() - (x.total() + y.total()).picojoules()).abs()
                <= 1e-9 * sum.total().picojoules().max(1.0)
        );
    }

    #[test]
    fn indexing_is_consistent_with_iteration(a in buckets()) {
        let b = breakdown(a);
        let mut seen = 0usize;
        for (cat, e) in b.iter() {
            prop_assert_eq!(b[cat], e, "iter and Index must agree on {}", cat.label());
            seen += 1;
        }
        prop_assert_eq!(seen, EnergyCategory::ALL.len());
        // record() accumulates into exactly one bucket.
        let mut c = b;
        c.record(EnergyCategory::Memory, Energy::from_picojoules(7.0));
        for cat in EnergyCategory::ALL {
            let expect = if cat == EnergyCategory::Memory {
                b[cat].picojoules() + 7.0
            } else {
                b[cat].picojoules()
            };
            prop_assert_eq!(c[cat].picojoules(), expect);
        }
    }

    #[test]
    fn json_roundtrip_is_lossless(a in buckets()) {
        let b = breakdown(a);
        let v = b.to_json();
        let back = EnergyBreakdown::from_json(&v).expect("own JSON must parse");
        // f64 pJ values survive the JSON number formatter exactly.
        prop_assert_eq!(back, b);
    }

    #[test]
    fn subtraction_inverts_addition(a in buckets(), b in buckets()) {
        let (x, y) = (breakdown(a), breakdown(b));
        let mut back = x + y;
        back -= y;
        for cat in EnergyCategory::ALL {
            prop_assert!(
                (back[cat].picojoules() - x[cat].picojoules()).abs()
                    <= 1e-9 * x[cat].picojoules().max(1.0),
                "(x + y) - y must recover x in bucket {}", cat.label()
            );
        }
    }

    #[test]
    fn ledger_rows_built_from_the_identity_always_audit_clean(
        a in buckets(),
        harvest_extra in 0.0f64..1e9,
        leak in 0.0f64..1e6,
    ) {
        // Construct a row satisfying harvested = consumed + Δstored by
        // definition; audit must accept it at any magnitude.
        let consumed = breakdown(a);
        let harvested = Energy::from_picojoules(
            consumed.total().picojoules() + harvest_extra
        );
        let row = LedgerRow {
            cycle: 0,
            harvested,
            consumed,
            cap_leak: Energy::from_picojoules(leak),
            delta_stored: harvested - consumed.total(),
        };
        prop_assert!(
            row.audit(ehs_energy::ledger::DEFAULT_EPSILON).is_ok(),
            "self-consistent row must balance: residual {}",
            row.imbalance()
        );
        // JSON round trip preserves the audited quantities.
        let back = LedgerRow::from_json(&row.to_json()).expect("own JSON must parse");
        prop_assert_eq!(back.harvested, row.harvested);
        prop_assert_eq!(back.consumed, row.consumed);
        prop_assert_eq!(back.delta_stored, row.delta_stored);
    }
}
