//! Property-based tests on the energy front end: the capacitor respects
//! physics-shaped invariants under arbitrary charge/drain sequences, and
//! the trace generators stay in their documented envelopes.

use ehs_energy::{Capacitor, CapacitorConfig, PowerTrace, TraceKind};
use ehs_model::{Energy, Power, SimTime};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Step {
    Charge { uw: f64, us: f64 },
    Drain { pj: f64 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0.0f64..500.0, 0.1f64..100.0).prop_map(|(uw, us)| Step::Charge { uw, us }),
        (0.0f64..10_000.0).prop_map(|pj| Step::Drain { pj }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn capacitor_stays_within_physical_bounds(
        uf in 0.1f64..1000.0,
        v0 in 0.0f64..2.2,
        steps in proptest::collection::vec(step_strategy(), 0..200),
    ) {
        let cfg = CapacitorConfig::with_capacitance_uf(uf);
        let mut cap = Capacitor::new(cfg);
        cap.set_voltage(v0.min(cfg.v_max));
        let e_max = cfg.energy_at(cfg.v_max);
        for step in &steps {
            match *step {
                Step::Charge { uw, us } => {
                    let leaked = cap.charge(
                        Power::from_microwatts(uw),
                        SimTime::from_micros(us),
                    );
                    prop_assert!(leaked.picojoules() >= 0.0);
                }
                Step::Drain { pj } => cap.drain(Energy::from_picojoules(pj)),
            }
            // Stored energy stays in [0, E(v_max)].
            prop_assert!(cap.stored().picojoules() >= 0.0);
            prop_assert!(cap.stored().picojoules() <= e_max.picojoules() * (1.0 + 1e-9));
            // Voltage derives consistently: E = ½CV².
            let v = cap.voltage();
            prop_assert!((0.0..=cfg.v_max + 1e-9).contains(&v));
            let back = cfg.energy_at(v);
            prop_assert!((back.picojoules() - cap.stored().picojoules()).abs()
                <= 1e-6 * e_max.picojoules().max(1.0));
        }
    }

    #[test]
    fn charging_never_exceeds_harvested_energy(
        uw in 1.0f64..500.0,
        us in 1.0f64..1000.0,
    ) {
        // Energy gained can never exceed the harvested input (leakage only
        // removes energy; the regulator clamp only discards it).
        let mut cap = Capacitor::new(CapacitorConfig::default_4u7());
        cap.set_voltage(2.0);
        let before = cap.stored();
        cap.charge(Power::from_microwatts(uw), SimTime::from_micros(us));
        let gained = cap.stored() - before;
        let input = Power::from_microwatts(uw) * SimTime::from_micros(us);
        prop_assert!(gained.picojoules() <= input.picojoules() + 1e-9);
    }

    #[test]
    fn usable_energy_scales_linearly_with_capacitance(factor in 1.5f64..100.0) {
        let small = CapacitorConfig::with_capacitance_uf(1.0);
        let large = CapacitorConfig::with_capacitance_uf(factor);
        let ratio = large.usable_energy() / small.usable_energy();
        prop_assert!((ratio - factor).abs() < 1e-6 * factor);
    }

    #[test]
    fn traces_are_non_negative_and_seed_deterministic(
        seed in any::<u64>(),
        len in 100usize..5000,
    ) {
        for kind in TraceKind::ALL {
            let a = PowerTrace::generate(kind, seed, len);
            let b = PowerTrace::generate(kind, seed, len);
            prop_assert_eq!(a.samples().len(), len);
            prop_assert!(a.samples().iter().all(|p| p.watts() >= 0.0));
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn trace_text_format_round_trips(seed in any::<u64>(), len in 1usize..500) {
        let trace = PowerTrace::generate(TraceKind::Solar, seed, len);
        let mut buf = Vec::new();
        trace.write_text(&mut buf).expect("write to Vec cannot fail");
        let back = PowerTrace::read_text(buf.as_slice()).expect("own output parses");
        prop_assert_eq!(back.len(), trace.len());
        for (a, b) in trace.samples().iter().zip(back.samples()) {
            prop_assert!((a.microwatts() - b.microwatts()).abs() < 1e-5);
        }
    }
}
