//! Conservation-audited energy ledger.
//!
//! Every power cycle closes one [`LedgerRow`]: harvested input,
//! per-category consumption, capacitor leakage and the change in stored
//! energy over the cycle. The row audits the conservation invariant
//!
//! ```text
//! harvested == consumed.total() + delta_stored
//! ```
//!
//! (capacitor leakage is *inside* `consumed` — it is booked to
//! [`EnergyCategory::Other`](crate::EnergyCategory::Other), matching the
//! paper's Fig 16 "Others" portion — and is carried separately on the row
//! only for reporting). The invariant holds by construction on the charge
//! path: the simulator integrates harvested input as
//! `gained = (Δstored + leak).clamp_non_negative()`, so any clamping
//! there self-balances. The one genuine imbalance source is
//! `Capacitor::drain` zero-clamping when a spend exceeds the stored
//! energy, which can only happen on nearly-dead traces; a violation is
//! therefore a real accounting bug or a degenerate trace, never noise.
//!
//! Floating-point tolerance: rows are produced by snapshot-diffing f64
//! accumulators that grow over the whole run, so cancellation error grows
//! with the *accumulated* magnitudes, not the per-cycle flow. The audit
//! tolerance is an absolute epsilon (default [`DEFAULT_EPSILON`]) plus a
//! `1e-9` relative term on the per-cycle magnitudes, comfortably above
//! worst-case double-precision cancellation for µJ-scale capacitors.

use std::error::Error;
use std::fmt;

use ehs_model::Energy;
use serde_json::Value;

use crate::accounting::EnergyBreakdown;

/// Default absolute audit tolerance: 0.5 pJ.
///
/// Run-total accumulators sit at µJ scale (~1e6 pJ) by end of run;
/// double precision gives ~1e-10 relative error, so snapshot-diff
/// cancellation is bounded well below 0.1 pJ per cycle. 0.5 pJ leaves a
/// 5× margin while still being ~4 orders of magnitude below the cheapest
/// single event the simulator books.
pub const DEFAULT_EPSILON: Energy = Energy::from_picojoules(0.5);

/// One power cycle's energy flows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LedgerRow {
    /// Power-cycle index (0-based).
    pub cycle: u64,
    /// Energy harvested from the ambient trace during the cycle.
    pub harvested: Energy,
    /// Per-category consumption during the cycle. Includes capacitor
    /// leakage and monitor draw (both under `Other`).
    pub consumed: EnergyBreakdown,
    /// Capacitor leakage during the cycle — informational; already
    /// counted inside `consumed`, so it does NOT enter the audit sum.
    pub cap_leak: Energy,
    /// Change in capacitor stored energy over the cycle (end − start).
    /// Negative when the cycle ran the capacitor down.
    pub delta_stored: Energy,
}

impl LedgerRow {
    /// Signed conservation residual: `harvested − consumed − Δstored`.
    /// Zero (within tolerance) when the books balance.
    pub fn imbalance(&self) -> Energy {
        self.harvested - self.consumed.total() - self.delta_stored
    }

    /// Audit tolerance for this row: `epsilon + 1e-9 × (harvested +
    /// consumed)` — absolute floor plus a relative term that scales with
    /// the cycle's flow magnitudes.
    pub fn tolerance(&self, epsilon: Energy) -> Energy {
        epsilon + (self.harvested + self.consumed.total()) * 1e-9
    }

    /// Checks the conservation invariant within `epsilon` (see
    /// [`LedgerRow::tolerance`]).
    pub fn audit(&self, epsilon: Energy) -> Result<(), LedgerImbalance> {
        let imbalance = self.imbalance();
        let tolerance = self.tolerance(epsilon);
        if imbalance.abs() <= tolerance {
            Ok(())
        } else {
            Err(LedgerImbalance { cycle: self.cycle, imbalance, tolerance })
        }
    }

    /// Flat JSON object — the wire format used by the flight recorder.
    pub fn to_json(&self) -> Value {
        let mut members: Vec<(String, Value)> = vec![
            ("cycle".into(), self.cycle.into()),
            ("harvested_pj".into(), self.harvested.picojoules().into()),
        ];
        match self.consumed.to_json() {
            Value::Object(breakdown) => members.extend(breakdown),
            _ => unreachable!("EnergyBreakdown::to_json yields an object"),
        }
        members.push(("cap_leak_pj".into(), self.cap_leak.picojoules().into()));
        members.push(("delta_stored_pj".into(), self.delta_stored.picojoules().into()));
        Value::Object(members)
    }

    /// Inverse of [`LedgerRow::to_json`].
    pub fn from_json(v: &Value) -> Option<LedgerRow> {
        Some(LedgerRow {
            cycle: v.get("cycle")?.as_u64()?,
            harvested: Energy::from_picojoules(v.get("harvested_pj")?.as_f64()?),
            consumed: EnergyBreakdown::from_json(v)?,
            cap_leak: Energy::from_picojoules(v.get("cap_leak_pj")?.as_f64()?),
            delta_stored: Energy::from_picojoules(v.get("delta_stored_pj")?.as_f64()?),
        })
    }
}

/// A failed conservation audit: the residual exceeded the tolerance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LedgerImbalance {
    /// Power cycle whose row failed the audit.
    pub cycle: u64,
    /// Signed residual `harvested − consumed − Δstored`.
    pub imbalance: Energy,
    /// Tolerance the residual was checked against.
    pub tolerance: Energy,
}

impl fmt::Display for LedgerImbalance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "energy ledger imbalance at power cycle {}: residual {} exceeds tolerance {}",
            self.cycle, self.imbalance, self.tolerance
        )
    }
}

impl Error for LedgerImbalance {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accounting::EnergyCategory;

    fn balanced_row() -> LedgerRow {
        let mut consumed = EnergyBreakdown::default();
        consumed.record(EnergyCategory::Memory, Energy::from_nanojoules(40.0));
        consumed.record(EnergyCategory::Other, Energy::from_nanojoules(10.0));
        LedgerRow {
            cycle: 3,
            harvested: Energy::from_nanojoules(60.0),
            consumed,
            cap_leak: Energy::from_nanojoules(2.0),
            delta_stored: Energy::from_nanojoules(10.0),
        }
    }

    #[test]
    fn balanced_row_passes_audit() {
        let row = balanced_row();
        assert_eq!(row.imbalance(), Energy::ZERO);
        assert!(row.audit(DEFAULT_EPSILON).is_ok());
    }

    #[test]
    fn imbalance_beyond_tolerance_is_reported() {
        let mut row = balanced_row();
        row.harvested += Energy::from_picojoules(10.0);
        let err = row.audit(DEFAULT_EPSILON).unwrap_err();
        assert_eq!(err.cycle, 3);
        assert!(err.imbalance > Energy::ZERO);
        assert!(err.to_string().contains("power cycle 3"));
    }

    #[test]
    fn tolerance_scales_with_flow_magnitude() {
        let row = balanced_row();
        // Absolute floor plus 1e-9 of (harvested + consumed) ≈ 0.5 pJ + 0.11 pJ.
        let tol = row.tolerance(DEFAULT_EPSILON).picojoules();
        assert!(tol > 0.5 && tol < 1.0, "tolerance {tol} pJ out of expected band");
    }

    #[test]
    fn sub_tolerance_drift_is_accepted() {
        let mut row = balanced_row();
        row.harvested += Energy::from_picojoules(0.25);
        assert!(row.audit(DEFAULT_EPSILON).is_ok());
    }

    #[test]
    fn json_roundtrip() {
        let row = balanced_row();
        let back = LedgerRow::from_json(&row.to_json()).unwrap();
        assert_eq!(back, row);
    }
}
