//! The energy-buffer capacitor.
//!
//! State is tracked as stored energy `E`; voltage derives from
//! `E = ½ C V²`. Three thresholds define the intermittent state machine:
//!
//! * `v_max` — the harvester's regulator clamps charging here.
//! * `v_rst` — restoration threshold: once the capacitor recharges past
//!   this, the EHS reboots and resumes.
//! * `v_ckpt` — checkpoint threshold: when discharge reaches this, the
//!   voltage monitor fires a JIT checkpoint and the core halts.
//!
//! The usable window `½C(v_rst² − v_ckpt²)` determines how many
//! instructions fit in one power cycle; the defaults are chosen so a 4.7 µF
//! capacitor yields the paper's power-cycle regime of thousands of
//! instructions (Fig 14). Leakage is `P = k·C·V²`, growing with capacitance
//! and reproducing Table III's trend.

use ehs_model::{Energy, Power, SimTime};
use serde::{Deserialize, Serialize};

/// Static description of a capacitor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacitorConfig {
    /// Capacitance in farads.
    pub capacitance: f64,
    /// Regulator clamp voltage.
    pub v_max: f64,
    /// Restoration threshold (reboot when recharged past this).
    pub v_rst: f64,
    /// Checkpoint threshold (JIT checkpoint when discharged to this).
    pub v_ckpt: f64,
    /// Leakage coefficient `k` in `P_leak = k · C · V²` (1/s).
    pub leak_coeff: f64,
}

impl CapacitorConfig {
    /// Leakage coefficient calibrated so a 1000 µF capacitor loses a few
    /// percent of the total budget (paper Table III reports 5.91 % there
    /// and ~0.01 % at the default 4.7 µF).
    pub const DEFAULT_LEAK_COEFF: f64 = 1.1e-3;

    /// The paper's default 4.7 µF capacitor.
    pub fn default_4u7() -> Self {
        Self::with_capacitance_uf(4.7)
    }

    /// A capacitor of the given size in microfarads with default thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `uf` is not positive.
    pub fn with_capacitance_uf(uf: f64) -> Self {
        assert!(uf > 0.0, "capacitance must be positive");
        CapacitorConfig {
            capacitance: uf * 1e-6,
            v_max: 2.20,
            v_rst: 2.016,
            v_ckpt: 2.00,
            leak_coeff: Self::DEFAULT_LEAK_COEFF,
        }
    }

    /// Energy stored at voltage `v`.
    pub fn energy_at(&self, v: f64) -> Energy {
        Energy::from_joules(0.5 * self.capacitance * v * v)
    }

    /// Usable energy per power cycle: `½C(v_rst² − v_ckpt²)`.
    pub fn usable_energy(&self) -> Energy {
        self.energy_at(self.v_rst) - self.energy_at(self.v_ckpt)
    }

    /// Validates threshold ordering.
    ///
    /// # Panics
    ///
    /// Panics if `v_max >= v_rst > v_ckpt > 0` does not hold.
    pub fn validate(&self) {
        assert!(
            self.v_max >= self.v_rst && self.v_rst > self.v_ckpt && self.v_ckpt > 0.0,
            "capacitor thresholds must satisfy v_max >= v_rst > v_ckpt > 0, got \
             v_max={} v_rst={} v_ckpt={}",
            self.v_max,
            self.v_rst,
            self.v_ckpt
        );
    }
}

impl Default for CapacitorConfig {
    fn default() -> Self {
        Self::default_4u7()
    }
}

/// The live capacitor: config plus current stored energy.
///
/// # Examples
///
/// ```
/// use ehs_energy::{Capacitor, CapacitorConfig};
/// use ehs_model::{Power, SimTime};
///
/// let mut cap = Capacitor::new(CapacitorConfig::default_4u7());
/// // Harvest 50 uW for 1 ms.
/// let leaked = cap.charge(Power::from_microwatts(50.0), SimTime::from_millis(1.0));
/// assert!(cap.stored().nanojoules() > 0.0);
/// assert!(leaked.picojoules() >= 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Capacitor {
    config: CapacitorConfig,
    stored: Energy,
}

impl Capacitor {
    /// Creates an empty capacitor.
    ///
    /// # Panics
    ///
    /// Panics if the config's thresholds are inconsistent.
    pub fn new(config: CapacitorConfig) -> Self {
        config.validate();
        Capacitor { config, stored: Energy::ZERO }
    }

    /// The static configuration.
    pub fn config(&self) -> &CapacitorConfig {
        &self.config
    }

    /// Currently stored energy.
    pub fn stored(&self) -> Energy {
        self.stored
    }

    /// Current voltage, from `E = ½CV²`.
    pub fn voltage(&self) -> f64 {
        (2.0 * self.stored.joules() / self.config.capacitance).sqrt()
    }

    /// Instantaneous leakage power at the current voltage.
    pub fn leakage_power(&self) -> Power {
        let v = self.voltage();
        Power::from_watts(self.config.leak_coeff * self.config.capacitance * v * v)
    }

    /// Integrates `harvest` power over `dt`, minus leakage, clamped to
    /// `v_max`. Returns the energy lost to leakage during the window (for
    /// accounting).
    pub fn charge(&mut self, harvest: Power, dt: SimTime) -> Energy {
        let leak = self.leakage_power() * dt;
        let gained = harvest * dt;
        let cap_max = self.config.energy_at(self.config.v_max);
        self.stored = (self.stored + gained - leak).clamp_non_negative().min(cap_max);
        leak.min(self.stored + leak) // cannot leak more than what existed
    }

    /// Removes `amount` from the buffer (consumption), clamping at zero.
    pub fn drain(&mut self, amount: Energy) {
        self.stored = (self.stored - amount).clamp_non_negative();
    }

    /// Fills the buffer to `v_max` instantly (testing / initial condition).
    pub fn charge_to_full(&mut self) {
        self.stored = self.config.energy_at(self.config.v_max);
    }

    /// Sets the voltage directly (testing / scenario setup).
    ///
    /// # Panics
    ///
    /// Panics if `v` is negative or above `v_max`.
    pub fn set_voltage(&mut self, v: f64) {
        assert!((0.0..=self.config.v_max).contains(&v), "voltage {v} out of range");
        self.stored = self.config.energy_at(v);
    }

    /// `true` when discharge has reached the checkpoint threshold.
    pub fn below_checkpoint(&self) -> bool {
        self.voltage() < self.config.v_ckpt
    }

    /// `true` when recharge has reached the restoration threshold.
    pub fn above_restore(&self) -> bool {
        self.voltage() >= self.config.v_rst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_usable_window_is_in_the_paper_regime() {
        // ~150 nJ usable at 4.7 uF -> thousands of ~15 pJ instructions.
        let cfg = CapacitorConfig::default_4u7();
        let usable = cfg.usable_energy().nanojoules();
        assert!((100.0..300.0).contains(&usable), "usable = {usable} nJ");
    }

    #[test]
    fn voltage_energy_round_trip() {
        let cfg = CapacitorConfig::default_4u7();
        let mut cap = Capacitor::new(cfg);
        cap.set_voltage(2.1);
        assert!((cap.voltage() - 2.1).abs() < 1e-12);
        assert!((cap.stored().joules() - 0.5 * cfg.capacitance * 2.1 * 2.1).abs() < 1e-18);
    }

    #[test]
    fn charging_respects_vmax_clamp() {
        let mut cap = Capacitor::new(CapacitorConfig::default_4u7());
        cap.charge_to_full();
        let v_before = cap.voltage();
        cap.charge(Power::from_milliwatts(100.0), SimTime::from_millis(10.0));
        assert!((cap.voltage() - v_before).abs() < 1e-9, "must stay clamped at v_max");
    }

    #[test]
    fn drain_clamps_at_zero() {
        let mut cap = Capacitor::new(CapacitorConfig::default_4u7());
        cap.set_voltage(0.1);
        cap.drain(Energy::from_joules(1.0));
        assert_eq!(cap.stored(), Energy::ZERO);
        assert_eq!(cap.voltage(), 0.0);
    }

    #[test]
    fn thresholds_drive_state_predicates() {
        let cfg = CapacitorConfig::default_4u7();
        let mut cap = Capacitor::new(cfg);
        cap.set_voltage(cfg.v_ckpt - 0.01);
        assert!(cap.below_checkpoint());
        assert!(!cap.above_restore());
        cap.set_voltage(cfg.v_rst);
        assert!(cap.above_restore());
        assert!(!cap.below_checkpoint());
    }

    #[test]
    fn leakage_grows_with_capacitance_and_voltage() {
        let mut small = Capacitor::new(CapacitorConfig::with_capacitance_uf(4.7));
        let mut large = Capacitor::new(CapacitorConfig::with_capacitance_uf(1000.0));
        small.set_voltage(2.0);
        large.set_voltage(2.0);
        assert!(large.leakage_power().watts() > small.leakage_power().watts() * 100.0);
        let mut hi = Capacitor::new(CapacitorConfig::with_capacitance_uf(4.7));
        hi.set_voltage(2.2);
        assert!(hi.leakage_power().watts() > small.leakage_power().watts());
    }

    #[test]
    fn charging_integrates_harvest_minus_leak() {
        let mut cap = Capacitor::new(CapacitorConfig::default_4u7());
        cap.set_voltage(2.0);
        let e0 = cap.stored();
        let dt = SimTime::from_micros(10.0);
        let harvest = Power::from_microwatts(50.0);
        let leak = cap.charge(harvest, dt);
        let expected_gain = harvest * dt - leak;
        assert!((cap.stored() - e0 - expected_gain).picojoules().abs() < 1e-6);
    }

    #[test]
    fn discharge_to_checkpoint_counts_instructions() {
        // Draining in 15 pJ steps from v_rst to v_ckpt takes thousands of
        // steps: the power-cycle length regime of paper Fig 14.
        let cfg = CapacitorConfig::default_4u7();
        let mut cap = Capacitor::new(cfg);
        cap.set_voltage(cfg.v_rst);
        let mut steps = 0u64;
        while !cap.below_checkpoint() {
            cap.drain(Energy::from_picojoules(15.0));
            steps += 1;
        }
        assert!((2_000..50_000).contains(&steps), "power cycle = {steps} instructions");
    }

    #[test]
    #[should_panic(expected = "thresholds")]
    fn invalid_threshold_ordering_rejected() {
        let cfg = CapacitorConfig { v_rst: 1.0, v_ckpt: 2.0, ..CapacitorConfig::default_4u7() };
        let _ = Capacitor::new(cfg);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_voltage_validates() {
        let mut cap = Capacitor::new(CapacitorConfig::default_4u7());
        cap.set_voltage(5.0);
    }
}
