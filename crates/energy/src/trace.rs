//! Ambient power traces.
//!
//! The paper records real harvester output as *average power per 10 µs
//! window* in a text file and replays it so every configuration sees the
//! same energy budget. We reproduce the format exactly and substitute the
//! proprietary recordings with seeded stochastic generators whose first- and
//! second-order statistics match the paper's Fig 11 characterisation:
//!
//! * **RFHome** — bursty RF: a two-state (burst/quiet) Markov process with
//!   heavy-tailed burst amplitudes; lowest stable-energy fraction.
//! * **Solar** — slowly varying irradiance plus flicker; highest mean,
//!   large stable fraction.
//! * **Thermal** — near-constant gradient with small noise; the most stable
//!   source.
//!
//! Traces are cyclic: reading past the end wraps, so arbitrarily long runs
//! draw from the same (deterministic) energy sequence.

use std::fmt;
use std::io::{self, BufRead, Write};

use ehs_model::{Power, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Sampling interval used by the paper's harvester logger: 10 µs.
pub const TRACE_INTERVAL: SimTime = SimTime::from_micros(10.0);

/// Why a power-trace file failed to parse, with the 1-based line that
/// broke (where one exists): harness error reports can point the user at
/// the exact offending sample rather than a generic I/O failure.
#[derive(Debug)]
pub enum TraceError {
    /// The underlying stream failed before parsing could finish.
    Io(io::Error),
    /// A line did not parse as a number.
    Malformed {
        /// 1-based line number of the bad sample.
        line: u64,
        /// The offending text (trimmed).
        text: String,
    },
    /// A line parsed but is NaN/infinite or negative — physically
    /// meaningless as harvested power.
    OutOfRange {
        /// 1-based line number of the bad sample.
        line: u64,
        /// The parsed value.
        value: f64,
    },
    /// The file held no samples at all (blank lines excluded).
    Empty,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace read failed: {e}"),
            TraceError::Malformed { line, text } => {
                write!(f, "line {line}: not a power sample: {text:?}")
            }
            TraceError::OutOfRange { line, value } => {
                write!(f, "line {line}: power must be finite and non-negative, got {value}")
            }
            TraceError::Empty => f.write_str("empty power trace"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Which ambient source a synthetic trace mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceKind {
    /// Bursty home RF harvesting (paper default).
    RfHome,
    /// Outdoor solar.
    Solar,
    /// Thermoelectric gradient.
    Thermal,
}

impl TraceKind {
    /// All sources, in the paper's presentation order (Fig 30).
    pub const ALL: [TraceKind; 3] = [TraceKind::RfHome, TraceKind::Solar, TraceKind::Thermal];

    /// Human-readable name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::RfHome => "RFHome",
            TraceKind::Solar => "Solar",
            TraceKind::Thermal => "Thermal",
        }
    }
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A replayable harvested-power trace: one average-power sample per
/// [`TRACE_INTERVAL`].
///
/// # Examples
///
/// ```
/// use ehs_energy::{PowerTrace, TraceKind};
/// use ehs_model::SimTime;
///
/// let trace = PowerTrace::generate(TraceKind::RfHome, 42, 10_000);
/// let p = trace.power_at(SimTime::from_millis(1.0));
/// assert!(p.microwatts() >= 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerTrace {
    samples: Vec<Power>,
}

impl PowerTrace {
    /// Wraps raw samples into a trace.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: Vec<Power>) -> Self {
        assert!(!samples.is_empty(), "a power trace needs at least one sample");
        PowerTrace { samples }
    }

    /// A constant-power trace (useful for tests and idealised studies).
    pub fn constant(power: Power, len: usize) -> Self {
        Self::from_samples(vec![power; len.max(1)])
    }

    /// Generates a synthetic trace of `len` 10 µs samples for the given
    /// source, deterministically from `seed`.
    pub fn generate(kind: TraceKind, seed: u64, len: usize) -> Self {
        assert!(len > 0, "trace length must be positive");
        let mut rng = StdRng::seed_from_u64(seed ^ (kind as u64) << 32);
        let mut samples = Vec::with_capacity(len);
        match kind {
            TraceKind::RfHome => {
                // Two-state Markov: bursts of strong RF between quiet gaps.
                // Mean ~50 uW with high variance.
                let mut bursting = false;
                let mut level_uw = 0.0f64;
                for _ in 0..len {
                    if bursting {
                        // Bursts last ~2 ms on average.
                        if rng.gen::<f64>() < 0.005 {
                            bursting = false;
                        }
                    } else if rng.gen::<f64>() < 0.003 {
                        bursting = true;
                        // Heavy-tailed burst amplitude: 60..400 uW.
                        level_uw = 60.0 + 340.0 * rng.gen::<f64>().powi(3);
                    }
                    let base = if bursting { level_uw } else { 8.0 };
                    let noise = 1.0 + 0.15 * (rng.gen::<f64>() - 0.5);
                    samples.push(Power::from_microwatts((base * noise).max(0.0)));
                }
            }
            TraceKind::Solar => {
                // Slow irradiance drift (OU process) around 60 uW plus
                // small flicker; rarely drops low.
                let mut x = 0.0f64; // OU state
                for i in 0..len {
                    let slow = 60.0 + 15.0 * ((i as f64) * 2.0e-5).sin();
                    x += 0.002 * (0.0 - x) + 0.8 * (rng.gen::<f64>() - 0.5);
                    let flicker = 1.0 + 0.05 * (rng.gen::<f64>() - 0.5);
                    samples.push(Power::from_microwatts(((slow + x) * flicker).max(0.0)));
                }
            }
            TraceKind::Thermal => {
                // Nearly constant gradient: 50 uW with 3% noise.
                for _ in 0..len {
                    let noise = 1.0 + 0.06 * (rng.gen::<f64>() - 0.5);
                    samples.push(Power::from_microwatts(50.0 * noise));
                }
            }
        }
        PowerTrace { samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Always `false`: traces are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Duration covered before the trace wraps.
    pub fn duration(&self) -> SimTime {
        TRACE_INTERVAL * self.samples.len() as f64
    }

    /// Average power at simulated time `t` (cyclic).
    pub fn power_at(&self, t: SimTime) -> Power {
        let idx = (t.seconds() / TRACE_INTERVAL.seconds()) as u64 as usize;
        // Runs rarely outrun the trace, so branch around the wrap: an
        // integer division per sample is measurable at simulator speed.
        let n = self.samples.len();
        self.samples[if idx < n { idx } else { idx % n }]
    }

    /// Borrows the raw samples.
    pub fn samples(&self) -> &[Power] {
        &self.samples
    }

    /// Summary statistics (mean/std/stable fraction), as characterised in
    /// the paper's Fig 11.
    pub fn stats(&self) -> TraceStats {
        let n = self.samples.len() as f64;
        let mean = self.samples.iter().map(|p| p.microwatts()).sum::<f64>() / n;
        let var = self
            .samples
            .iter()
            .map(|p| {
                let d = p.microwatts() - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        // "Stable" samples sit within +/-50% of the mean.
        let stable =
            self.samples.iter().filter(|p| (p.microwatts() - mean).abs() <= 0.5 * mean).count()
                as f64
                / n;
        TraceStats {
            mean: Power::from_microwatts(mean),
            std_dev: Power::from_microwatts(var.sqrt()),
            stable_fraction: stable,
        }
    }

    /// Writes the paper's text format: one average-power value in µW per
    /// line, one line per 10 µs window.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn write_text<W: Write>(&self, mut w: W) -> io::Result<()> {
        for p in &self.samples {
            writeln!(w, "{:.6}", p.microwatts())?;
        }
        Ok(())
    }

    /// Reads the paper's text format produced by [`PowerTrace::write_text`].
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] naming the offending 1-based line when the
    /// stream is unreadable ([`TraceError::Io`]), contains a non-numeric
    /// sample ([`TraceError::Malformed`]), contains a NaN/infinite/negative
    /// sample ([`TraceError::OutOfRange`]), or holds no samples at all
    /// ([`TraceError::Empty`]).
    pub fn read_text<R: BufRead>(r: R) -> Result<Self, TraceError> {
        let mut samples = Vec::new();
        for (lineno, line) in r.lines().enumerate() {
            let line = line?;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let lineno = lineno as u64 + 1;
            let uw: f64 = trimmed
                .parse()
                .map_err(|_| TraceError::Malformed { line: lineno, text: trimmed.to_string() })?;
            if !uw.is_finite() || uw < 0.0 {
                return Err(TraceError::OutOfRange { line: lineno, value: uw });
            }
            samples.push(Power::from_microwatts(uw));
        }
        if samples.is_empty() {
            return Err(TraceError::Empty);
        }
        Ok(PowerTrace { samples })
    }
}

/// Summary statistics of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Mean harvested power.
    pub mean: Power,
    /// Standard deviation of the per-window power.
    pub std_dev: Power,
    /// Fraction of windows within ±50 % of the mean ("stable energy").
    pub stable_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = PowerTrace::generate(TraceKind::RfHome, 1, 5_000);
        let b = PowerTrace::generate(TraceKind::RfHome, 1, 5_000);
        let c = PowerTrace::generate(TraceKind::RfHome, 2, 5_000);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn means_are_in_the_tens_of_microwatts() {
        for kind in TraceKind::ALL {
            let stats = PowerTrace::generate(kind, 7, 200_000).stats();
            let mean = stats.mean.microwatts();
            assert!((20.0..90.0).contains(&mean), "{kind}: mean = {mean} uW");
        }
    }

    #[test]
    fn stability_ordering_matches_fig11() {
        // Thermal most stable, solar next, RF least (paper Fig 11).
        let stable = |k| PowerTrace::generate(k, 11, 200_000).stats().stable_fraction;
        let rf = stable(TraceKind::RfHome);
        let solar = stable(TraceKind::Solar);
        let thermal = stable(TraceKind::Thermal);
        assert!(thermal > 0.99, "thermal stable fraction = {thermal}");
        assert!(solar > 0.9, "solar stable fraction = {solar}");
        assert!(rf < solar, "rf ({rf}) should be less stable than solar ({solar})");
    }

    #[test]
    fn power_at_wraps_cyclically() {
        let trace = PowerTrace::from_samples(vec![
            Power::from_microwatts(1.0),
            Power::from_microwatts(2.0),
        ]);
        assert_eq!(trace.power_at(SimTime::ZERO).microwatts(), 1.0);
        assert_eq!(trace.power_at(SimTime::from_micros(10.0)).microwatts(), 2.0);
        assert_eq!(trace.power_at(SimTime::from_micros(20.0)).microwatts(), 1.0);
        assert_eq!(trace.power_at(SimTime::from_micros(35.0)).microwatts(), 2.0);
        assert!((trace.duration().micros() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn text_round_trip() {
        let trace = PowerTrace::generate(TraceKind::Solar, 3, 1000);
        let mut buf = Vec::new();
        trace.write_text(&mut buf).unwrap();
        let back = PowerTrace::read_text(buf.as_slice()).unwrap();
        assert_eq!(back.len(), trace.len());
        for (a, b) in trace.samples().iter().zip(back.samples()) {
            assert!((a.microwatts() - b.microwatts()).abs() < 1e-5);
        }
    }

    #[test]
    fn malformed_text_is_rejected_with_line_context() {
        match PowerTrace::read_text("12.0\nbogus\n".as_bytes()) {
            Err(TraceError::Malformed { line: 2, text }) => assert_eq!(text, "bogus"),
            other => panic!("expected Malformed at line 2, got {other:?}"),
        }
        match PowerTrace::read_text("1.0\n\n  \n-5.0\n".as_bytes()) {
            // Blank lines are skipped but still counted for context.
            Err(TraceError::OutOfRange { line: 4, value }) => assert_eq!(value, -5.0),
            other => panic!("expected OutOfRange at line 4, got {other:?}"),
        }
        match PowerTrace::read_text("3.0\nNaN\n".as_bytes()) {
            Err(TraceError::OutOfRange { line: 2, value }) => assert!(value.is_nan()),
            other => panic!("expected OutOfRange NaN at line 2, got {other:?}"),
        }
        match PowerTrace::read_text("2.0\ninf\n".as_bytes()) {
            Err(TraceError::OutOfRange { line: 2, value }) => assert!(value.is_infinite()),
            other => panic!("expected OutOfRange inf at line 2, got {other:?}"),
        }
        assert!(matches!(PowerTrace::read_text("".as_bytes()), Err(TraceError::Empty)));
        assert!(matches!(PowerTrace::read_text("\n  \n".as_bytes()), Err(TraceError::Empty)));
    }

    #[test]
    fn trace_error_messages_name_the_line() {
        let e = PowerTrace::read_text("x\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("line 1"), "message lacks line context: {e}");
        let e = PowerTrace::read_text("1.0\n-2.5\n".as_bytes()).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("line 2") && msg.contains("-2.5"), "bad message: {msg}");
    }

    #[test]
    fn constant_trace_has_zero_variance() {
        let stats = PowerTrace::constant(Power::from_microwatts(40.0), 100).stats();
        assert_eq!(stats.std_dev.microwatts(), 0.0);
        assert_eq!(stats.stable_fraction, 1.0);
    }

    #[test]
    fn rf_trace_has_bursts_and_quiet_gaps() {
        let trace = PowerTrace::generate(TraceKind::RfHome, 5, 200_000);
        let max = trace.samples().iter().map(|p| p.microwatts()).fold(0.0, f64::max);
        let min = trace.samples().iter().map(|p| p.microwatts()).fold(f64::MAX, f64::min);
        assert!(max > 60.0, "expected bursts, max = {max}");
        assert!(min < 15.0, "expected quiet gaps, min = {min}");
    }
}
