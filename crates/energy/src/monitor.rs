//! The voltage-monitor hardware.
//!
//! JIT-checkpointing EHSs (NVSRAMCache) need an always-on comparator that
//! watches the capacitor and fires the checkpoint when `V` crosses
//! `V_ckpt`. The monitor itself costs energy: a standby draw proportional
//! to how many thresholds it tracks, plus a fixed initialisation overhead
//! at every reboot (paper §VIII: "we model the voltage monitor's
//! initialization overhead, propagation latency, and energy consumption").
//!
//! This matters for Kagura's trigger-strategy study (Fig 19): the
//! *voltage-based* trigger needs a third threshold — and on EHS designs
//! that otherwise avoid a monitor entirely (NvMR, SweepCache), it forces
//! the whole monitor into existence, whose standby draw erases the
//! technique's gains.

use ehs_model::{Cycles, Energy, Power};
use serde::{Deserialize, Serialize};

/// Standby draw per tracked threshold (comparator + reference).
const PER_THRESHOLD_STANDBY: Power = Power::from_watts(0.45e-6);

/// Energy to (re)initialise the monitor at reboot.
const INIT_ENERGY: Energy = Energy::from_picojoules(400.0);

/// Reboot initialisation latency.
const INIT_LATENCY: Cycles = Cycles::new(20);

/// An always-on voltage monitor tracking 0–3 thresholds.
///
/// # Examples
///
/// ```
/// use ehs_energy::VoltageMonitor;
///
/// let jit = VoltageMonitor::jit_checkpoint();     // backup + restore
/// let kagura = jit.with_trigger_threshold();      // + Kagura's trigger
/// assert!(kagura.standby_power() > jit.standby_power());
/// assert_eq!(VoltageMonitor::none().standby_power().watts(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VoltageMonitor {
    thresholds: u8,
}

impl VoltageMonitor {
    /// No monitor at all (monitor-free EHS designs: NvMR, SweepCache).
    pub fn none() -> Self {
        VoltageMonitor { thresholds: 0 }
    }

    /// The standard JIT-checkpoint monitor: backup (`V_ckpt`) and
    /// restoration (`V_rst`) thresholds.
    pub fn jit_checkpoint() -> Self {
        VoltageMonitor { thresholds: 2 }
    }

    /// Adds Kagura's voltage-trigger threshold on top of whatever exists.
    pub fn with_trigger_threshold(self) -> Self {
        // A trigger on a monitor-free design still needs backup+restore
        // comparators to know where the trigger sits relative to failure.
        VoltageMonitor { thresholds: self.thresholds.max(2) + 1 }
    }

    /// Number of tracked thresholds.
    pub fn thresholds(&self) -> u8 {
        self.thresholds
    }

    /// `true` if any comparator hardware exists.
    pub fn is_present(&self) -> bool {
        self.thresholds > 0
    }

    /// Continuous standby draw while the system is powered (running *or*
    /// charging — the monitor must watch the capacitor at all times).
    pub fn standby_power(&self) -> Power {
        PER_THRESHOLD_STANDBY * self.thresholds as f64
    }

    /// One-time energy cost at each reboot.
    pub fn init_energy(&self) -> Energy {
        if self.is_present() {
            INIT_ENERGY
        } else {
            Energy::ZERO
        }
    }

    /// One-time latency at each reboot.
    pub fn init_latency(&self) -> Cycles {
        if self.is_present() {
            INIT_LATENCY
        } else {
            Cycles::ZERO
        }
    }

    /// Edge-triggered comparator semantics: `true` only on the step where
    /// the capacitor fell from at-or-above `threshold` volts to below it.
    /// Staying below does not re-fire, rising through the threshold never
    /// fires, and a monitor-free design (no comparator hardware) can never
    /// observe a crossing.
    pub fn crossed_below(&self, prev_v: f64, now_v: f64, threshold: f64) -> bool {
        self.is_present() && prev_v >= threshold && now_v < threshold
    }
}

impl Default for VoltageMonitor {
    fn default() -> Self {
        Self::jit_checkpoint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_counts() {
        assert_eq!(VoltageMonitor::none().thresholds(), 0);
        assert_eq!(VoltageMonitor::jit_checkpoint().thresholds(), 2);
        assert_eq!(VoltageMonitor::jit_checkpoint().with_trigger_threshold().thresholds(), 3);
        // Adding a trigger to a monitor-free design instantiates the full
        // three-threshold monitor.
        assert_eq!(VoltageMonitor::none().with_trigger_threshold().thresholds(), 3);
    }

    #[test]
    fn standby_power_scales_with_thresholds() {
        let none = VoltageMonitor::none();
        let jit = VoltageMonitor::jit_checkpoint();
        let trig = jit.with_trigger_threshold();
        assert_eq!(none.standby_power().watts(), 0.0);
        assert!(trig.standby_power().watts() > jit.standby_power().watts());
        assert!((jit.standby_power().microwatts() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn crossing_fires_once_on_the_falling_edge() {
        let jit = VoltageMonitor::jit_checkpoint();
        let v_ckpt = 2.0;
        // Discharge path 2.2 → 2.05 → 1.95 → 1.80: exactly one crossing,
        // on the step that passes through the threshold.
        assert!(!jit.crossed_below(2.2, 2.05, v_ckpt));
        assert!(jit.crossed_below(2.05, 1.95, v_ckpt));
        assert!(!jit.crossed_below(1.95, 1.80, v_ckpt));
        // Recharge through the threshold is not a (downward) crossing.
        assert!(!jit.crossed_below(1.95, 2.10, v_ckpt));
        // Sitting exactly on the threshold then dipping below fires.
        assert!(jit.crossed_below(2.0, 1.999, v_ckpt));
        // No comparator hardware, no crossings — however the voltage moves.
        assert!(!VoltageMonitor::none().crossed_below(2.05, 1.95, v_ckpt));
    }

    #[test]
    fn absent_monitor_has_no_reboot_costs() {
        let none = VoltageMonitor::none();
        assert_eq!(none.init_energy(), Energy::ZERO);
        assert_eq!(none.init_latency(), Cycles::ZERO);
        let jit = VoltageMonitor::jit_checkpoint();
        assert!(jit.init_energy().picojoules() > 0.0);
        assert!(jit.init_latency().get() > 0);
    }
}
