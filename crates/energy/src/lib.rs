//! Energy-harvesting front end: capacitor, voltage monitor, ambient power
//! traces and energy accounting.
//!
//! This crate models everything between the ambient energy source and the
//! processor's power rail:
//!
//! * [`PowerTrace`] — the harvested input. The paper feeds its simulator a
//!   text file of average power per 10 µs window recorded from real RF,
//!   solar and thermal harvesters; we generate statistically matched
//!   synthetic traces (see [`trace::TraceKind`]) in the *same format*,
//!   including text-file round-tripping.
//! * [`Capacitor`] — the energy buffer. Charges from the trace, drains per
//!   simulated event, leaks in proportion to its size, and exposes the two
//!   voltage thresholds that define the intermittent-execution state
//!   machine (`V_ckpt`: JIT-checkpoint-and-die, `V_rst`: reboot).
//! * [`VoltageMonitor`] — the always-on comparator hardware. Its standby
//!   draw is what makes voltage-based Kagura triggers expensive on EHS
//!   designs that otherwise avoid a monitor (paper §VIII-H2).
//! * [`EnergyBreakdown`] — per-category accounting matching the six
//!   portions of the paper's Fig 16.
//!
//! # Examples
//!
//! ```
//! use ehs_energy::{Capacitor, CapacitorConfig};
//! use ehs_model::Energy;
//!
//! let mut cap = Capacitor::new(CapacitorConfig::default_4u7());
//! cap.charge_to_full();
//! assert!(cap.voltage() >= cap.config().v_rst);
//! cap.drain(Energy::from_nanojoules(10.0));
//! assert!(cap.voltage() < cap.config().v_max);
//! ```

pub mod accounting;
pub mod capacitor;
pub mod ledger;
pub mod monitor;
pub mod trace;

pub use accounting::{EnergyBreakdown, EnergyCategory};
pub use capacitor::{Capacitor, CapacitorConfig};
pub use ledger::{LedgerImbalance, LedgerRow};
pub use monitor::VoltageMonitor;
pub use trace::{PowerTrace, TraceError, TraceKind, TraceStats};
