//! Per-category energy accounting, matching the six portions of the
//! paper's Fig 16: *Compress*, *Decompress*, *Cache (other)*, *Memory*,
//! *Checkpoint/Restoration* and *Others*.

use std::fmt;
use std::ops::{Add, AddAssign, Index, Sub, SubAssign};

use ehs_model::Energy;
use serde::{Deserialize, Serialize};
use serde_json::Value;

/// The Fig 16 energy categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EnergyCategory {
    /// Block compression on cache fill.
    Compress,
    /// Block decompression on access or eviction.
    Decompress,
    /// All other cache energy (hit/fill accesses, SRAM leakage).
    CacheOther,
    /// NVM main-memory reads and writes (demand traffic).
    Memory,
    /// JIT checkpoint and restoration traffic.
    CheckpointRestore,
    /// Everything else: pipeline energy, capacitor leakage, monitor draw.
    Other,
}

impl EnergyCategory {
    /// All categories in the paper's legend order.
    pub const ALL: [EnergyCategory; 6] = [
        EnergyCategory::Compress,
        EnergyCategory::Decompress,
        EnergyCategory::CacheOther,
        EnergyCategory::Memory,
        EnergyCategory::CheckpointRestore,
        EnergyCategory::Other,
    ];

    /// Legend label as printed in Fig 16.
    pub fn label(self) -> &'static str {
        match self {
            EnergyCategory::Compress => "Compress",
            EnergyCategory::Decompress => "Decompress",
            EnergyCategory::CacheOther => "Cache (other)",
            EnergyCategory::Memory => "Memory",
            EnergyCategory::CheckpointRestore => "Checkpoint/Restoration",
            EnergyCategory::Other => "Others",
        }
    }

    /// Stable machine-readable key (snake_case), used by the JSON wire
    /// format and the flight-record field names (`<key>_pj`).
    pub fn key(self) -> &'static str {
        match self {
            EnergyCategory::Compress => "compress",
            EnergyCategory::Decompress => "decompress",
            EnergyCategory::CacheOther => "cache_other",
            EnergyCategory::Memory => "memory",
            EnergyCategory::CheckpointRestore => "checkpoint_restore",
            EnergyCategory::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            EnergyCategory::Compress => 0,
            EnergyCategory::Decompress => 1,
            EnergyCategory::CacheOther => 2,
            EnergyCategory::Memory => 3,
            EnergyCategory::CheckpointRestore => 4,
            EnergyCategory::Other => 5,
        }
    }
}

impl fmt::Display for EnergyCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Accumulated energy per category.
///
/// # Examples
///
/// ```
/// use ehs_energy::{EnergyBreakdown, EnergyCategory};
/// use ehs_model::Energy;
///
/// let mut b = EnergyBreakdown::default();
/// b.record(EnergyCategory::Compress, Energy::from_picojoules(3.84));
/// b.record(EnergyCategory::Memory, Energy::from_picojoules(150.0));
/// assert_eq!(b.total().picojoules(), 153.84);
/// assert_eq!(b[EnergyCategory::Compress].picojoules(), 3.84);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    buckets: [Energy; 6],
}

impl EnergyBreakdown {
    /// Adds `amount` to `category`.
    pub fn record(&mut self, category: EnergyCategory, amount: Energy) {
        self.buckets[category.index()] += amount;
    }

    /// Total across all categories.
    pub fn total(&self) -> Energy {
        self.buckets.iter().copied().sum()
    }

    /// Fraction of the total in `category` (0 when the total is zero).
    pub fn fraction(&self, category: EnergyCategory) -> f64 {
        let total = self.total();
        if total.is_zero() {
            0.0
        } else {
            self.buckets[category.index()] / total
        }
    }

    /// Per-category values normalised to an external reference total
    /// (Fig 16 normalises each configuration to the *baseline's* total).
    ///
    /// # Panics
    ///
    /// Panics if `reference_total` is zero.
    pub fn normalized_to(&self, reference_total: Energy) -> [(EnergyCategory, f64); 6] {
        assert!(!reference_total.is_zero(), "reference total must be nonzero");
        EnergyCategory::ALL.map(|c| (c, self.buckets[c.index()] / reference_total))
    }

    /// Iterates `(category, energy)` pairs in legend order.
    pub fn iter(&self) -> impl Iterator<Item = (EnergyCategory, Energy)> + '_ {
        EnergyCategory::ALL.into_iter().map(|c| (c, self.buckets[c.index()]))
    }

    /// Flat JSON object keyed by [`EnergyCategory::key`], values in
    /// picojoules — the breakdown's wire format (the vendored serde stub
    /// is a no-op, so JSON transport is hand-rolled, as for the
    /// telemetry events).
    pub fn to_json(&self) -> Value {
        Value::Object(
            self.iter().map(|(c, e)| (format!("{}_pj", c.key()), e.picojoules().into())).collect(),
        )
    }

    /// Inverse of [`EnergyBreakdown::to_json`]; `None` when any category
    /// key is missing or not a number.
    pub fn from_json(v: &Value) -> Option<EnergyBreakdown> {
        let mut out = EnergyBreakdown::default();
        for c in EnergyCategory::ALL {
            let pj = v.get(&format!("{}_pj", c.key()))?.as_f64()?;
            out.record(c, Energy::from_picojoules(pj));
        }
        Some(out)
    }
}

impl Index<EnergyCategory> for EnergyBreakdown {
    type Output = Energy;
    fn index(&self, category: EnergyCategory) -> &Energy {
        &self.buckets[category.index()]
    }
}

impl Add for EnergyBreakdown {
    type Output = EnergyBreakdown;
    fn add(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, rhs: EnergyBreakdown) {
        for (b, r) in self.buckets.iter_mut().zip(rhs.buckets.iter()) {
            *b += *r;
        }
    }
}

impl Sub for EnergyBreakdown {
    type Output = EnergyBreakdown;
    fn sub(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        let mut out = self;
        out -= rhs;
        out
    }
}

impl SubAssign for EnergyBreakdown {
    fn sub_assign(&mut self, rhs: EnergyBreakdown) {
        for (b, r) in self.buckets.iter_mut().zip(rhs.buckets.iter()) {
            *b -= *r;
        }
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total();
        write!(f, "total {total}")?;
        for (c, e) in self.iter() {
            write!(f, "; {c}: {e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fractions() {
        let mut b = EnergyBreakdown::default();
        b.record(EnergyCategory::Compress, Energy::from_picojoules(25.0));
        b.record(EnergyCategory::Memory, Energy::from_picojoules(75.0));
        assert_eq!(b.total().picojoules(), 100.0);
        assert_eq!(b.fraction(EnergyCategory::Compress), 0.25);
        assert_eq!(b.fraction(EnergyCategory::Decompress), 0.0);
    }

    #[test]
    fn empty_breakdown_has_zero_fractions() {
        let b = EnergyBreakdown::default();
        assert_eq!(b.total(), Energy::ZERO);
        assert_eq!(b.fraction(EnergyCategory::Other), 0.0);
    }

    #[test]
    fn normalization_against_external_reference() {
        let mut b = EnergyBreakdown::default();
        b.record(EnergyCategory::Memory, Energy::from_picojoules(50.0));
        let rows = b.normalized_to(Energy::from_picojoules(200.0));
        let mem = rows.iter().find(|(c, _)| *c == EnergyCategory::Memory).unwrap();
        assert_eq!(mem.1, 0.25);
    }

    #[test]
    fn breakdowns_add_componentwise() {
        let mut a = EnergyBreakdown::default();
        a.record(EnergyCategory::Compress, Energy::from_picojoules(1.0));
        let mut b = EnergyBreakdown::default();
        b.record(EnergyCategory::Compress, Energy::from_picojoules(2.0));
        b.record(EnergyCategory::Other, Energy::from_picojoules(3.0));
        let c = a + b;
        assert_eq!(c[EnergyCategory::Compress].picojoules(), 3.0);
        assert_eq!(c[EnergyCategory::Other].picojoules(), 3.0);
    }

    #[test]
    fn breakdowns_subtract_componentwise() {
        let mut a = EnergyBreakdown::default();
        a.record(EnergyCategory::Compress, Energy::from_picojoules(5.0));
        a.record(EnergyCategory::Memory, Energy::from_picojoules(8.0));
        let mut b = EnergyBreakdown::default();
        b.record(EnergyCategory::Compress, Energy::from_picojoules(2.0));
        let c = a - b;
        assert_eq!(c[EnergyCategory::Compress].picojoules(), 3.0);
        assert_eq!(c[EnergyCategory::Memory].picojoules(), 8.0);
        let mut d = a;
        d -= b;
        assert_eq!(d, c);
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let mut b = EnergyBreakdown::default();
        b.record(EnergyCategory::Compress, Energy::from_picojoules(3.84));
        b.record(EnergyCategory::Other, Energy::from_picojoules(0.1));
        let v = b.to_json();
        assert_eq!(v.get("compress_pj").and_then(Value::as_f64), Some(3.84));
        let back = EnergyBreakdown::from_json(&v).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn json_missing_key_rejected() {
        let mut v = EnergyBreakdown::default().to_json();
        if let Value::Object(map) = &mut v {
            map.retain(|(k, _)| k != "memory_pj");
        }
        assert!(EnergyBreakdown::from_json(&v).is_none());
    }

    #[test]
    fn labels_match_fig16_legend() {
        assert_eq!(EnergyCategory::CacheOther.label(), "Cache (other)");
        assert_eq!(EnergyCategory::CheckpointRestore.to_string(), "Checkpoint/Restoration");
        assert_eq!(EnergyCategory::ALL.len(), 6);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_reference_rejected() {
        let _ = EnergyBreakdown::default().normalized_to(Energy::ZERO);
    }
}
