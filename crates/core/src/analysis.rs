//! The closed-form break-even model of paper §III (Eq. 1–4, Fig 3).
//!
//! Cache compression benefits an EHS only when the hit-rate improvement it
//! buys exceeds a threshold set by the compression machinery's own energy
//! costs:
//!
//! ```text
//! E_benefit = ΔR_hit · N · E_miss                       (Eq. 1)
//! E_waste   = (a·N + L)·E_decomp + M·E_comp             (Eq. 2)
//! net > 0  ⇔  ΔR_hit > ((a + e)·E_decomp + f·E_comp) / E_miss   (Eq. 4)
//! ```
//!
//! with `e = L/N` (compressed evictions per memory op) and `f = M/N`
//! (compressions per memory op).

use ehs_model::Energy;
use serde::{Deserialize, Serialize};

/// Workload/compression mix parameters of §III.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompressionMix {
    /// Fraction of memory operations that access compressed blocks.
    pub a: f64,
    /// Compressed-block evictions per memory operation (`L/N`).
    pub e: f64,
    /// Blocks compressed per memory operation (`M/N`).
    pub f: f64,
}

impl CompressionMix {
    /// Creates a mix.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not in `[0,1]` or `e`/`f` are negative.
    pub fn new(a: f64, e: f64, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&a), "a must be a fraction, got {a}");
        assert!(e >= 0.0 && f >= 0.0, "e and f must be non-negative");
        CompressionMix { a, e, f }
    }
}

/// Eq. 1: total energy benefit of improving the hit rate by `delta_rhit`
/// over `n` memory operations.
pub fn energy_benefit(delta_rhit: f64, n: u64, e_miss: Energy) -> Energy {
    e_miss * (delta_rhit * n as f64)
}

/// Eq. 2: total energy waste of compression over `n` memory operations.
pub fn energy_waste(mix: CompressionMix, n: u64, e_comp: Energy, e_decomp: Energy) -> Energy {
    let n = n as f64;
    let l = mix.e * n;
    let m = mix.f * n;
    e_decomp * (mix.a * n + l) + e_comp * m
}

/// Eq. 4: the minimum hit-rate improvement for compression to pay off.
///
/// # Examples
///
/// ```
/// use ehs_model::Energy;
/// use kagura_core::analysis::{min_delta_rhit, CompressionMix};
///
/// let mix = CompressionMix::new(0.5, 0.25, 0.25);
/// let t = min_delta_rhit(
///     mix,
///     Energy::from_picojoules(3.84),
///     Energy::from_picojoules(0.65),
///     Energy::from_picojoules(150.0),
/// );
/// assert!(t > 0.0 && t < 0.05);
/// ```
///
/// # Panics
///
/// Panics if `e_miss` is zero.
pub fn min_delta_rhit(
    mix: CompressionMix,
    e_comp: Energy,
    e_decomp: Energy,
    e_miss: Energy,
) -> f64 {
    assert!(!e_miss.is_zero(), "miss energy must be nonzero");
    ((mix.a + mix.e) * e_decomp.picojoules() + mix.f * e_comp.picojoules()) / e_miss.picojoules()
}

/// Net energy effect (Eq. 3): positive means compression helps.
pub fn net_energy(
    delta_rhit: f64,
    mix: CompressionMix,
    n: u64,
    e_comp: Energy,
    e_decomp: Energy,
    e_miss: Energy,
) -> Energy {
    energy_benefit(delta_rhit, n, e_miss) - energy_waste(mix, n, e_comp, e_decomp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pj(v: f64) -> Energy {
        Energy::from_picojoules(v)
    }

    #[test]
    fn benefit_scales_linearly() {
        assert_eq!(energy_benefit(0.1, 1000, pj(150.0)).picojoules(), 15_000.0);
        assert_eq!(energy_benefit(0.0, 1000, pj(150.0)), Energy::ZERO);
    }

    #[test]
    fn waste_matches_equation_two() {
        // a=0.5, e=0.1, f=0.2 over N=1000: decomp on 0.5*1000+100 = 600 ops,
        // comp on 200 blocks.
        let mix = CompressionMix::new(0.5, 0.1, 0.2);
        let w = energy_waste(mix, 1000, pj(4.0), pj(1.0));
        assert_eq!(w.picojoules(), 600.0 + 800.0);
    }

    #[test]
    fn threshold_is_break_even() {
        let mix = CompressionMix::new(0.75, 0.5, 0.5);
        let (ec, ed, em) = (pj(3.84), pj(0.65), pj(150.0));
        let t = min_delta_rhit(mix, ec, ed, em);
        // Exactly at the threshold the net effect is ~zero.
        let n = 1_000_000;
        let net = net_energy(t, mix, n, ec, ed, em);
        assert!(net.picojoules().abs() < 1e-3, "net at threshold = {net}");
        // Slightly above: positive; slightly below: negative.
        assert!(net_energy(t + 1e-4, mix, n, ec, ed, em).picojoules() > 0.0);
        assert!(net_energy(t - 1e-4, mix, n, ec, ed, em).picojoules() < 0.0);
    }

    #[test]
    fn threshold_monotonic_in_mix_parameters() {
        let (ec, ed, em) = (pj(3.84), pj(0.65), pj(150.0));
        let base = min_delta_rhit(CompressionMix::new(0.5, 0.25, 0.25), ec, ed, em);
        // Raising a, e, or f raises the bar (Fig 3 trend).
        assert!(min_delta_rhit(CompressionMix::new(0.75, 0.25, 0.25), ec, ed, em) > base);
        assert!(min_delta_rhit(CompressionMix::new(0.5, 0.5, 0.25), ec, ed, em) > base);
        assert!(min_delta_rhit(CompressionMix::new(0.5, 0.25, 0.5), ec, ed, em) > base);
    }

    #[test]
    fn threshold_falls_with_larger_miss_penalty() {
        // More expensive misses make compression easier to justify (Fig 3).
        let mix = CompressionMix::new(0.5, 0.25, 0.25);
        let cheap = min_delta_rhit(mix, pj(3.84), pj(0.65), pj(50.0));
        let costly = min_delta_rhit(mix, pj(3.84), pj(0.65), pj(600.0));
        assert!(costly < cheap);
    }

    #[test]
    fn threshold_rises_with_compression_cost() {
        let mix = CompressionMix::new(0.5, 0.25, 0.25);
        let cheap = min_delta_rhit(mix, pj(1.0), pj(0.3), pj(150.0));
        let costly = min_delta_rhit(mix, pj(8.0), pj(2.0), pj(150.0));
        assert!(costly > cheap);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn invalid_mix_rejected() {
        let _ = CompressionMix::new(1.5, 0.0, 0.0);
    }
}
