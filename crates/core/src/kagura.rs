//! The Kagura controller (paper §V–§VI).
//!
//! Kagura wraps an inner compression governor (typically [`crate::Acc`])
//! and overrides it with **Regular Mode** (compression off) when the
//! predicted number of memory operations remaining in the current power
//! cycle falls to the threshold `R_thres`. All state fits in five 32-bit
//! registers plus a small saturating counter:
//!
//! | register   | role                                                        |
//! |------------|-------------------------------------------------------------|
//! | `R_prev`   | predicted memory-op count of the current power cycle        |
//! | `R_mem`    | memory ops committed so far in this cycle                   |
//! | `R_adjust` | last cycle's prediction error `R_mem − R_prev` (Eq. 6)      |
//! | `R_thres`  | compression-disabling threshold, tuned by AIMD              |
//! | `R_evict`  | blocks evicted since the decision point (RM mode)           |
//!
//! `R_mem`, `R_adjust`, `R_thres`, `R_evict` and the counter are JIT
//! checkpointed to NVFFs on power failure; `R_prev` is rebuilt at reboot
//! from the restored `R_mem` (§VI-A, Fig 8).

use std::collections::VecDeque;

use ehs_cache::{FillMode, HitInfo};
use ehs_telemetry::{Event, Registers};
use serde::{Deserialize, Serialize};

use crate::adapt::ThresholdAdapter;
use crate::governor::CompressionGovernor;

/// Which of the two §VI-A estimators refines `R_prev`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EstimatorKind {
    /// Use the raw previous-cycle count (Eq. 5 only).
    Simple,
    /// Reward/punishment counter plus `R_adjust` correction (Eq. 6).
    Sophisticated,
}

/// How Kagura detects the approaching end of a power cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TriggerKind {
    /// Memory-operation countdown (the paper's default; needs no voltage
    /// monitor).
    Memory,
    /// Voltage comparator: enter RM when the capacitor drops below
    /// `v_ckpt + fraction * (v_rst − v_ckpt)`.
    Voltage {
        /// Position of the trigger threshold inside the operating window.
        fraction: f64,
    },
}

/// Kagura's operating mode (paper §V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mode {
    /// Compression Mode: the inner governor decides.
    Compression,
    /// Regular Mode: compression disabled until the next reboot.
    Regular,
}

/// Configuration of the controller; defaults are the paper's choices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KaguraConfig {
    /// Initial `R_thres` on the very first boot.
    pub initial_thres: u64,
    /// Width of the reward/punishment saturating counter (1–3 bits;
    /// Table IV).
    pub counter_bits: u8,
    /// Simple vs sophisticated `R_prev` estimation.
    pub estimator: EstimatorKind,
    /// Threshold adaptation scheme and step (Fig 21/22).
    pub adapter: ThresholdAdapter,
    /// How many past power cycles the estimator averages over, most recent
    /// weighted highest (Table II).
    pub history_depth: usize,
    /// Trigger strategy (Fig 19).
    pub trigger: TriggerKind,
    /// Relative prediction error below which the counter is rewarded
    /// (matches the <20 % consistency window of Fig 12).
    pub reward_tolerance: f64,
}

impl KaguraConfig {
    /// Validates field ranges.
    ///
    /// # Panics
    ///
    /// Panics if any field is out of its documented range.
    pub fn validate(&self) {
        assert!(self.initial_thres >= 1, "initial threshold must be at least 1");
        assert!((1..=3).contains(&self.counter_bits), "counter width must be 1-3 bits");
        assert!((1..=8).contains(&self.history_depth), "history depth must be 1-8");
        assert!(
            self.reward_tolerance > 0.0 && self.reward_tolerance < 1.0,
            "reward tolerance must be a fraction"
        );
        if let TriggerKind::Voltage { fraction } = self.trigger {
            assert!((0.0..=1.0).contains(&fraction), "trigger fraction must be in [0,1]");
        }
    }
}

impl Default for KaguraConfig {
    fn default() -> Self {
        KaguraConfig {
            initial_thres: 32,
            counter_bits: 2,
            estimator: EstimatorKind::Sophisticated,
            adapter: ThresholdAdapter::default(),
            history_depth: 1,
            trigger: TriggerKind::Memory,
            reward_tolerance: 0.20,
        }
    }
}

/// The Kagura controller wrapping an inner governor.
///
/// See the crate-level docs for a usage example.
#[derive(Debug, Clone)]
pub struct Kagura<G> {
    config: KaguraConfig,
    inner: G,
    mode: Mode,
    r_prev: u64,
    r_mem: u64,
    r_adjust: i64,
    r_thres: u64,
    r_evict: u64,
    counter: u8,
    /// Most-recent-first committed memory-op counts of past cycles.
    history: VecDeque<u64>,
    /// Cumulative number of CM→RM switches (for reports).
    rm_entries: u64,
    /// Controller events pending drainage; only filled when
    /// [`Kagura::enable_event_log`] has been called.
    events: Vec<Event>,
    log_events: bool,
}

impl<G: CompressionGovernor> Kagura<G> {
    /// Creates a controller around `inner`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is out of range (see
    /// [`KaguraConfig::validate`]).
    pub fn new(config: KaguraConfig, inner: G) -> Self {
        config.validate();
        Kagura {
            config,
            inner,
            mode: Mode::Compression,
            r_prev: 0,
            r_mem: 0,
            r_adjust: 0,
            r_thres: config.initial_thres,
            r_evict: 0,
            counter: 0,
            history: VecDeque::with_capacity(config.history_depth + 1),
            rm_entries: 0,
            events: Vec::new(),
            log_events: false,
        }
    }

    /// Starts collecting controller events ([`Event::ModeSwitch`],
    /// [`Event::ThresholdAdjust`], [`Event::EstimatorSample`]) for
    /// drainage via [`Kagura::drain_events`]. Off by default: with the
    /// log disabled every would-be emission is a single untaken branch.
    pub fn enable_event_log(&mut self) {
        self.log_events = true;
    }

    /// `true` when no logged events are pending.
    pub fn events_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Hands every pending logged event to `f`, in emission order.
    pub fn drain_events(&mut self, mut f: impl FnMut(Event)) {
        for ev in self.events.drain(..) {
            f(ev);
        }
    }

    fn register_snapshot(&self) -> Registers {
        Registers {
            r_prev: self.r_prev,
            r_mem: self.r_mem,
            r_adjust: self.r_adjust,
            r_thres: self.r_thres,
            r_evict: self.r_evict,
        }
    }

    /// Current mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The configuration this controller runs with.
    pub fn config(&self) -> &KaguraConfig {
        &self.config
    }

    /// The inner governor.
    pub fn inner(&self) -> &G {
        &self.inner
    }

    /// Register snapshot `(R_prev, R_mem, R_adjust, R_thres, R_evict)`.
    pub fn registers(&self) -> (u64, u64, i64, u64, u64) {
        (self.r_prev, self.r_mem, self.r_adjust, self.r_thres, self.r_evict)
    }

    /// The reward/punishment counter value.
    pub fn counter(&self) -> u8 {
        self.counter
    }

    /// How many times Kagura has switched into RM so far.
    pub fn rm_entries(&self) -> u64 {
        self.rm_entries
    }

    fn counter_max(&self) -> u8 {
        (1u8 << self.config.counter_bits) - 1
    }

    fn enter_rm(&mut self) {
        if self.mode == Mode::Compression {
            self.mode = Mode::Regular;
            self.rm_entries += 1;
            if self.log_events {
                self.events.push(Event::ModeSwitch {
                    cm_to_rm: true,
                    registers: self.register_snapshot(),
                });
            }
        }
    }

    /// Weighted average of the history, most recent weighted highest:
    /// `N_prev = Σ wᵢ·Cᵢ / Σ wᵢ` with `wᵢ = i+1` for the i-th most recent
    /// being weighted `depth − i` … matching the paper's example
    /// `N_prev = (C₁ + 2·C₂) / (1 + 2)`.
    fn predicted_prev(&self) -> u64 {
        if self.history.is_empty() {
            return 0;
        }
        let depth = self.history.len();
        let mut num = 0u64;
        let mut den = 0u64;
        for (i, &c) in self.history.iter().enumerate() {
            // history[0] is the most recent cycle: weight = depth - i.
            let w = (depth - i) as u64;
            num += w * c;
            den += w;
        }
        num / den
    }
}

impl<G: CompressionGovernor> CompressionGovernor for Kagura<G> {
    fn fill_mode(&mut self) -> FillMode {
        match self.mode {
            Mode::Compression => self.inner.fill_mode(),
            Mode::Regular => FillMode::Bypass,
        }
    }

    fn compression_enabled(&self) -> bool {
        self.mode == Mode::Compression && self.inner.compression_enabled()
    }

    fn on_hit(&mut self, info: &HitInfo, ways: u32) {
        self.inner.on_hit(info, ways);
    }

    fn on_fill(&mut self, stored_compressed: bool) {
        self.inner.on_fill(stored_compressed);
    }

    fn on_mem_commit(&mut self) {
        self.inner.on_mem_commit();
        self.r_mem += 1;
        if self.mode == Mode::Compression
            && matches!(self.config.trigger, TriggerKind::Memory)
            && !self.history.is_empty()
        {
            let n_remain = self.r_prev.saturating_sub(self.r_mem);
            if n_remain <= self.r_thres {
                self.enter_rm();
            }
        }
    }

    fn on_evictions(&mut self, count: u32) {
        self.inner.on_evictions(count);
        if self.mode == Mode::Regular {
            self.r_evict += count as u64;
        }
    }

    fn on_voltage(&mut self, v: f64, v_ckpt: f64, v_rst: f64) {
        self.inner.on_voltage(v, v_ckpt, v_rst);
        if let TriggerKind::Voltage { fraction } = self.config.trigger {
            if self.mode == Mode::Compression && v < v_ckpt + fraction * (v_rst - v_ckpt) {
                self.enter_rm();
            }
        }
    }

    fn on_power_failure(&mut self) {
        self.inner.on_power_failure();
        // Eq. 6: record the prediction error of the cycle that just ended.
        if !self.history.is_empty() {
            if self.log_events {
                // The estimator's prediction for this cycle vs the oracle
                // (what the cycle actually committed).
                self.events.push(Event::EstimatorSample {
                    predicted_remaining: self.r_prev,
                    actual_remaining: self.r_mem,
                });
            }
            self.r_adjust = self.r_mem as i64 - self.r_prev as i64;
            let tolerance =
                (self.config.reward_tolerance * self.r_prev.max(1) as f64).ceil() as i64;
            if self.r_adjust.abs() <= tolerance {
                self.counter = (self.counter + 1).min(self.counter_max());
            } else {
                self.counter = self.counter.saturating_sub(1);
            }
        }
        // R_mem, R_adjust, R_thres, R_evict and the counter are JIT
        // checkpointed here (modelled as simply surviving in this struct).
        self.history.push_front(self.r_mem);
        self.history.truncate(self.config.history_depth);
    }

    fn on_reboot(&mut self) {
        self.inner.on_reboot();
        let was_regular = self.mode == Mode::Regular;
        // Restore: R_prev is rebuilt from the checkpointed history.
        self.r_prev = self.predicted_prev();
        self.r_mem = 0;
        // Sophisticated estimator: when the counter sits in its lower half
        // (poor recent predictions), apply the learned correction (Fig 8).
        if self.config.estimator == EstimatorKind::Sophisticated
            && self.counter < (1u8 << (self.config.counter_bits - 1))
        {
            self.r_prev = (self.r_prev as i64 + self.r_adjust).max(0) as u64;
        }
        // Threshold adaptation on the restored eviction count (§VI-B).
        let old_thres = self.r_thres;
        let evicted = self.r_evict;
        self.r_thres = self.config.adapter.adjust(self.r_thres, self.r_evict);
        self.r_evict = 0;
        self.mode = Mode::Compression;
        if self.log_events {
            self.events.push(Event::ThresholdAdjust { old: old_thres, new: self.r_thres, evicted });
            if was_regular {
                self.events.push(Event::ModeSwitch {
                    cm_to_rm: false,
                    registers: self.register_snapshot(),
                });
            }
        }
    }

    fn name(&self) -> &'static str {
        "Kagura"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::AlwaysCompress;

    fn controller() -> Kagura<AlwaysCompress> {
        Kagura::new(KaguraConfig::default(), AlwaysCompress)
    }

    fn run_cycle(k: &mut Kagura<AlwaysCompress>, mem_ops: u64) {
        for _ in 0..mem_ops {
            k.on_mem_commit();
        }
        k.on_power_failure();
        k.on_reboot();
    }

    #[test]
    fn first_cycle_never_leaves_cm() {
        let mut k = controller();
        for _ in 0..10_000 {
            k.on_mem_commit();
            assert_eq!(k.mode(), Mode::Compression);
        }
    }

    #[test]
    fn second_cycle_disables_near_predicted_end() {
        let mut k = controller();
        run_cycle(&mut k, 1000);
        // Second cycle: prediction = 1000, thres adapted from 32 -> 35.
        let (r_prev, _, _, r_thres, _) = k.registers();
        assert_eq!(r_prev, 1000);
        let switch_at = r_prev - r_thres;
        for i in 0..1000 {
            k.on_mem_commit();
            let expect_rm = (i + 1) >= switch_at;
            assert_eq!(
                k.mode() == Mode::Regular,
                expect_rm,
                "mode wrong after {} commits (switch_at={switch_at})",
                i + 1
            );
        }
        assert_eq!(k.fill_mode(), FillMode::Bypass);
        assert_eq!(k.rm_entries(), 1);
    }

    #[test]
    fn reboot_returns_to_cm() {
        let mut k = controller();
        run_cycle(&mut k, 100);
        run_cycle(&mut k, 100);
        assert_eq!(k.mode(), Mode::Compression);
        assert_eq!(k.fill_mode(), FillMode::Compress);
    }

    #[test]
    fn evictions_counted_only_in_rm() {
        let mut k = controller();
        run_cycle(&mut k, 100);
        k.on_evictions(5); // CM: not counted
        assert_eq!(k.registers().4, 0);
        for _ in 0..100 {
            k.on_mem_commit();
        }
        assert_eq!(k.mode(), Mode::Regular);
        k.on_evictions(7);
        assert_eq!(k.registers().4, 7);
    }

    #[test]
    fn aimd_threshold_reacts_to_evictions() {
        let mut k = controller();
        run_cycle(&mut k, 100);
        let thres_before = k.registers().3;
        // Drive into RM and evict heavily.
        for _ in 0..100 {
            k.on_mem_commit();
        }
        k.on_evictions(1000);
        k.on_power_failure();
        k.on_reboot();
        assert_eq!(k.registers().3, (thres_before / 2).max(1));
    }

    #[test]
    fn sophisticated_estimator_applies_adjustment_on_low_counter() {
        let mut k = controller();
        run_cycle(&mut k, 1000);
        // Wildly different cycle: prediction error punishes the counter and
        // records R_adjust = 200 - 1000 = -800.
        run_cycle(&mut k, 200);
        let (r_prev, _, r_adjust, _, _) = k.registers();
        assert_eq!(r_adjust, -800);
        assert_eq!(k.counter(), 0);
        // Counter is low (< 2 for 2-bit) so r_prev = 200 + (-800) clamped = 0.
        assert_eq!(r_prev, 0);
    }

    #[test]
    fn simple_estimator_ignores_adjustment() {
        let cfg = KaguraConfig { estimator: EstimatorKind::Simple, ..KaguraConfig::default() };
        let mut k = Kagura::new(cfg, AlwaysCompress);
        run_cycle(&mut k, 1000);
        run_cycle(&mut k, 200);
        assert_eq!(k.registers().0, 200);
    }

    #[test]
    fn counter_rewards_consistent_cycles() {
        let mut k = controller();
        run_cycle(&mut k, 1000);
        run_cycle(&mut k, 1050); // within 20%
        run_cycle(&mut k, 980);
        assert_eq!(k.counter(), 2);
        run_cycle(&mut k, 1000);
        assert_eq!(k.counter(), 3, "2-bit counter saturates at 3");
        run_cycle(&mut k, 1010);
        assert_eq!(k.counter(), 3);
    }

    #[test]
    fn history_depth_weights_recent_cycles() {
        let cfg = KaguraConfig {
            history_depth: 2,
            estimator: EstimatorKind::Simple,
            ..KaguraConfig::default()
        };
        let mut k = Kagura::new(cfg, AlwaysCompress);
        run_cycle(&mut k, 300); // older
        run_cycle(&mut k, 600); // newer
                                // N_prev = (300 + 2*600) / 3 = 500.
        assert_eq!(k.registers().0, 500);
    }

    #[test]
    fn voltage_trigger_fires_on_low_voltage() {
        let cfg = KaguraConfig {
            trigger: TriggerKind::Voltage { fraction: 0.25 },
            ..KaguraConfig::default()
        };
        let mut k = Kagura::new(cfg, AlwaysCompress);
        k.on_voltage(2.010, 2.0, 2.016); // above 2.0 + 0.25*0.016 = 2.004
        assert_eq!(k.mode(), Mode::Compression);
        k.on_voltage(2.002, 2.0, 2.016);
        assert_eq!(k.mode(), Mode::Regular);
        // Memory commits no longer matter for the trigger.
        assert_eq!(k.fill_mode(), FillMode::Bypass);
    }

    #[test]
    fn memory_trigger_ignores_voltage() {
        let mut k = controller();
        run_cycle(&mut k, 100);
        k.on_voltage(2.0001, 2.0, 2.016);
        assert_eq!(k.mode(), Mode::Compression);
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn invalid_config_rejected() {
        let cfg = KaguraConfig { counter_bits: 4, ..KaguraConfig::default() };
        let _ = Kagura::new(cfg, AlwaysCompress);
    }

    fn drained(k: &mut Kagura<AlwaysCompress>) -> Vec<Event> {
        let mut events = Vec::new();
        k.drain_events(|e| events.push(e));
        events
    }

    #[test]
    fn event_log_is_off_by_default() {
        let mut k = controller();
        run_cycle(&mut k, 100);
        run_cycle(&mut k, 100);
        assert!(k.events_empty());
        assert!(drained(&mut k).is_empty());
    }

    #[test]
    fn memory_trigger_logs_exact_transition_sequence() {
        let mut k = controller();
        k.enable_event_log();

        // Cycle 0: no history, so no trigger and no estimator sample —
        // only the reboot-time AIMD step (32 → 35, zero evictions).
        run_cycle(&mut k, 100);
        assert_eq!(drained(&mut k), vec![Event::ThresholdAdjust { old: 32, new: 35, evicted: 0 }]);

        // Cycle 1: prediction 100, thres 35 ⇒ CM→RM at the 65th commit,
        // with 5 RM-mode evictions before the failure.
        for i in 0..100u64 {
            k.on_mem_commit();
            if i + 1 == 65 {
                assert_eq!(k.mode(), Mode::Regular);
                k.on_evictions(5);
            }
        }
        k.on_power_failure();
        k.on_reboot();
        assert_eq!(
            drained(&mut k),
            vec![
                Event::ModeSwitch {
                    cm_to_rm: true,
                    registers: Registers {
                        r_prev: 100,
                        r_mem: 65,
                        r_adjust: 0,
                        r_thres: 35,
                        r_evict: 0,
                    },
                },
                Event::EstimatorSample { predicted_remaining: 100, actual_remaining: 100 },
                // 5 evictions ≤ 35/2 ⇒ additive raise 35 → 39.
                Event::ThresholdAdjust { old: 35, new: 39, evicted: 5 },
                Event::ModeSwitch {
                    cm_to_rm: false,
                    registers: Registers {
                        r_prev: 100,
                        r_mem: 0,
                        r_adjust: 0,
                        r_thres: 39,
                        r_evict: 0,
                    },
                },
            ]
        );
        assert!(k.events_empty());
    }

    #[test]
    fn voltage_trigger_logs_exact_transition_sequence() {
        let cfg = KaguraConfig {
            trigger: TriggerKind::Voltage { fraction: 0.25 },
            ..KaguraConfig::default()
        };
        let mut k = Kagura::new(cfg, AlwaysCompress);
        k.enable_event_log();

        // Above the trigger threshold 2.0 + 0.25·0.016 = 2.004: no event.
        k.on_voltage(2.010, 2.0, 2.016);
        assert!(k.events_empty());

        // Crossing below it switches CM→RM exactly once.
        k.on_voltage(2.002, 2.0, 2.016);
        k.on_voltage(2.001, 2.0, 2.016); // already in RM: no second switch
        k.on_power_failure(); // empty history: no estimator sample
        k.on_reboot();
        assert_eq!(
            drained(&mut k),
            vec![
                Event::ModeSwitch {
                    cm_to_rm: true,
                    registers: Registers {
                        r_prev: 0,
                        r_mem: 0,
                        r_adjust: 0,
                        r_thres: 32,
                        r_evict: 0,
                    },
                },
                Event::ThresholdAdjust { old: 32, new: 35, evicted: 0 },
                Event::ModeSwitch {
                    cm_to_rm: false,
                    registers: Registers {
                        r_prev: 0,
                        r_mem: 0,
                        r_adjust: 0,
                        r_thres: 35,
                        r_evict: 0,
                    },
                },
            ]
        );
    }

    #[test]
    fn estimator_samples_pair_prediction_with_oracle() {
        let mut k = controller();
        k.enable_event_log();
        run_cycle(&mut k, 1000);
        let _ = drained(&mut k);
        run_cycle(&mut k, 200);
        let samples: Vec<Event> = drained(&mut k)
            .into_iter()
            .filter(|e| matches!(e, Event::EstimatorSample { .. }))
            .collect();
        // Prediction for the second cycle was 1000 (history), the cycle
        // actually committed 200 — the r_adjust = -800 case of
        // `sophisticated_estimator_applies_adjustment_on_low_counter`.
        assert_eq!(
            samples,
            vec![Event::EstimatorSample { predicted_remaining: 1000, actual_remaining: 200 }]
        );
    }
}
