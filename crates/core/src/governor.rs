//! The compression-governor interface between policy and mechanism.
//!
//! The cache crate implements the *mechanism* (segmented data array, fills
//! that either compress or bypass); everything that decides *when* to
//! compress — ACC's predictor, Kagura's mode machine, the ideal oracle —
//! implements [`CompressionGovernor`]. The full-system simulator drives the
//! event methods and consults [`CompressionGovernor::fill_mode`] on every
//! fill.

use ehs_cache::{FillMode, HitInfo};

/// A run-time policy deciding whether cache fills compress.
///
/// Implementations receive the event stream of one hart: cache accesses,
/// committed memory instructions, RM-mode evictions, voltage samples, and
/// the power-failure/reboot lifecycle. All methods other than `fill_mode`
/// have empty defaults so simple governors implement only what they need.
pub trait CompressionGovernor {
    /// Policy decision for the next cache fill.
    fn fill_mode(&mut self) -> FillMode;

    /// Whether compression is currently enabled *at all*. Unlike
    /// [`CompressionGovernor::fill_mode`] this is a pure query with no side
    /// effects (oracle replayers consume a trace entry per `fill_mode`
    /// call). The simulator consults it on store hits to compressed lines:
    /// enabled ⇒ the line is re-packed; disabled ⇒ the line expands and
    /// future stores to it stop paying compression energy.
    fn compression_enabled(&self) -> bool {
        true
    }

    /// A cache access hit; `ways` is the cache's nominal associativity so
    /// the governor can interpret [`HitInfo::lru_rank`].
    fn on_hit(&mut self, _info: &HitInfo, _ways: u32) {}

    /// A fill completed in compressing mode; `stored_compressed` reports
    /// whether the compression actually saved space. Failed attempts still
    /// cost full compression energy — a strong negative signal for
    /// adaptive policies.
    fn on_fill(&mut self, _stored_compressed: bool) {}

    /// A memory instruction committed (Kagura's `R_mem` increment).
    fn on_mem_commit(&mut self) {}

    /// `count` blocks were evicted by a fill or fat write (Kagura counts
    /// these towards `R_evict` while in RM mode).
    fn on_evictions(&mut self, _count: u32) {}

    /// Periodic capacitor-voltage sample for voltage-triggered variants.
    /// `v_ckpt`/`v_rst` bound the operating window.
    fn on_voltage(&mut self, _v: f64, _v_ckpt: f64, _v_rst: f64) {}

    /// The voltage monitor fired: the JIT checkpoint is about to run and
    /// power will be lost. Volatile governor state that the design
    /// checkpoints to NVFFs survives; the rest resets at reboot.
    fn on_power_failure(&mut self) {}

    /// Power is back and checkpointed state has been restored.
    fn on_reboot(&mut self) {}

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// A governor that always compresses (conventional compressed cache).
///
/// # Examples
///
/// ```
/// use ehs_cache::FillMode;
/// use kagura_core::{AlwaysCompress, CompressionGovernor};
///
/// assert_eq!(AlwaysCompress.fill_mode(), FillMode::Compress);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysCompress;

impl CompressionGovernor for AlwaysCompress {
    fn fill_mode(&mut self) -> FillMode {
        FillMode::Compress
    }

    fn name(&self) -> &'static str {
        "always-compress"
    }
}

/// A governor that never compresses (the compressor-free baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverCompress;

impl CompressionGovernor for NeverCompress {
    fn fill_mode(&mut self) -> FillMode {
        FillMode::Bypass
    }

    fn compression_enabled(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "no-compression"
    }
}

/// Configuration for [`RandomizedThreshold`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RandThresholdConfig {
    /// Seed for the per-fill threshold draw. Deterministic: the same seed
    /// reproduces the same decision sequence, so instrumented runs stay
    /// byte-identical.
    pub seed: u64,
    /// Bypass probability in 1/256ths: a fill compresses only when its
    /// 8-bit draw is `>= bypass_fraction`. 0 degenerates to
    /// always-compress, 256 would be never-compress (capped at 255).
    pub bypass_fraction: u16,
}

impl Default for RandThresholdConfig {
    fn default() -> Self {
        // 50 % bypass: halves the attacker's conditional timing
        // separation per probe without giving up compression entirely.
        RandThresholdConfig { seed: 0x1EAC_5C0F, bypass_fraction: 128 }
    }
}

/// A side-channel countermeasure governor: the compression-enable
/// threshold is re-randomized on every fill, so whether a given block is
/// stored compressed — and therefore whether its footprint crosses a
/// segment boundary that a co-resident attacker can observe through
/// timing — is no longer a deterministic function of the block's
/// contents. Compression still happens on average (`1 −
/// bypass_fraction/256` of fills), so the capacity benefit degrades
/// gracefully instead of vanishing.
///
/// The draw is a SplitMix64 stream advanced once per `fill_mode` query,
/// which makes the governor deterministic per seed — the leakscope
/// pipeline measures its mutual-information reduction against the
/// deterministic baselines on identical cells.
#[derive(Debug, Clone, Copy)]
pub struct RandomizedThreshold {
    cfg: RandThresholdConfig,
    state: u64,
}

impl RandomizedThreshold {
    /// Creates the governor; the decision stream is fixed by `cfg.seed`.
    pub fn new(cfg: RandThresholdConfig) -> Self {
        RandomizedThreshold { cfg, state: cfg.seed }
    }

    fn next_draw(&mut self) -> u8 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as u8
    }
}

impl CompressionGovernor for RandomizedThreshold {
    fn fill_mode(&mut self) -> FillMode {
        let threshold = self.cfg.bypass_fraction.min(255) as u8;
        if self.next_draw() < threshold {
            FillMode::Bypass
        } else {
            FillMode::Compress
        }
    }

    fn name(&self) -> &'static str {
        "rand-threshold"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_governors_are_constant() {
        let mut a = AlwaysCompress;
        let mut n = NeverCompress;
        for _ in 0..3 {
            assert_eq!(a.fill_mode(), FillMode::Compress);
            assert_eq!(n.fill_mode(), FillMode::Bypass);
        }
        assert_eq!(a.name(), "always-compress");
        assert_eq!(n.name(), "no-compression");
    }

    #[test]
    fn randomized_threshold_mixes_modes_deterministically() {
        let cfg = RandThresholdConfig::default();
        let mut a = RandomizedThreshold::new(cfg);
        let mut b = RandomizedThreshold::new(cfg);
        let seq_a: Vec<FillMode> = (0..256).map(|_| a.fill_mode()).collect();
        let seq_b: Vec<FillMode> = (0..256).map(|_| b.fill_mode()).collect();
        assert_eq!(seq_a, seq_b, "same seed, same decision stream");
        let bypasses = seq_a.iter().filter(|m| **m == FillMode::Bypass).count();
        // 50 % nominal; allow wide slack, but both modes must occur.
        assert!((64..=192).contains(&bypasses), "bypasses = {bypasses}");
        assert!(a.compression_enabled(), "store-hit repacking stays on");
        assert_eq!(a.name(), "rand-threshold");
    }

    #[test]
    fn randomized_threshold_extremes() {
        let mut always =
            RandomizedThreshold::new(RandThresholdConfig { seed: 7, bypass_fraction: 0 });
        assert!((0..64).all(|_| always.fill_mode() == FillMode::Compress));
        let mut never =
            RandomizedThreshold::new(RandThresholdConfig { seed: 7, bypass_fraction: 256 });
        // Capped at 255/256: an occasional compress draw is permitted, but
        // the stream must be bypass-dominated.
        let bypasses = (0..256).filter(|_| never.fill_mode() == FillMode::Bypass).count();
        assert!(bypasses >= 250, "bypasses = {bypasses}");
    }

    #[test]
    fn default_event_handlers_are_no_ops() {
        let mut a = AlwaysCompress;
        a.on_mem_commit();
        a.on_evictions(3);
        a.on_voltage(2.0, 2.0, 2.016);
        a.on_power_failure();
        a.on_reboot();
        assert_eq!(a.fill_mode(), FillMode::Compress);
    }
}
