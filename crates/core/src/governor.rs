//! The compression-governor interface between policy and mechanism.
//!
//! The cache crate implements the *mechanism* (segmented data array, fills
//! that either compress or bypass); everything that decides *when* to
//! compress — ACC's predictor, Kagura's mode machine, the ideal oracle —
//! implements [`CompressionGovernor`]. The full-system simulator drives the
//! event methods and consults [`CompressionGovernor::fill_mode`] on every
//! fill.

use ehs_cache::{FillMode, HitInfo};

/// A run-time policy deciding whether cache fills compress.
///
/// Implementations receive the event stream of one hart: cache accesses,
/// committed memory instructions, RM-mode evictions, voltage samples, and
/// the power-failure/reboot lifecycle. All methods other than `fill_mode`
/// have empty defaults so simple governors implement only what they need.
pub trait CompressionGovernor {
    /// Policy decision for the next cache fill.
    fn fill_mode(&mut self) -> FillMode;

    /// Whether compression is currently enabled *at all*. Unlike
    /// [`CompressionGovernor::fill_mode`] this is a pure query with no side
    /// effects (oracle replayers consume a trace entry per `fill_mode`
    /// call). The simulator consults it on store hits to compressed lines:
    /// enabled ⇒ the line is re-packed; disabled ⇒ the line expands and
    /// future stores to it stop paying compression energy.
    fn compression_enabled(&self) -> bool {
        true
    }

    /// A cache access hit; `ways` is the cache's nominal associativity so
    /// the governor can interpret [`HitInfo::lru_rank`].
    fn on_hit(&mut self, _info: &HitInfo, _ways: u32) {}

    /// A fill completed in compressing mode; `stored_compressed` reports
    /// whether the compression actually saved space. Failed attempts still
    /// cost full compression energy — a strong negative signal for
    /// adaptive policies.
    fn on_fill(&mut self, _stored_compressed: bool) {}

    /// A memory instruction committed (Kagura's `R_mem` increment).
    fn on_mem_commit(&mut self) {}

    /// `count` blocks were evicted by a fill or fat write (Kagura counts
    /// these towards `R_evict` while in RM mode).
    fn on_evictions(&mut self, _count: u32) {}

    /// Periodic capacitor-voltage sample for voltage-triggered variants.
    /// `v_ckpt`/`v_rst` bound the operating window.
    fn on_voltage(&mut self, _v: f64, _v_ckpt: f64, _v_rst: f64) {}

    /// The voltage monitor fired: the JIT checkpoint is about to run and
    /// power will be lost. Volatile governor state that the design
    /// checkpoints to NVFFs survives; the rest resets at reboot.
    fn on_power_failure(&mut self) {}

    /// Power is back and checkpointed state has been restored.
    fn on_reboot(&mut self) {}

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// A governor that always compresses (conventional compressed cache).
///
/// # Examples
///
/// ```
/// use ehs_cache::FillMode;
/// use kagura_core::{AlwaysCompress, CompressionGovernor};
///
/// assert_eq!(AlwaysCompress.fill_mode(), FillMode::Compress);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysCompress;

impl CompressionGovernor for AlwaysCompress {
    fn fill_mode(&mut self) -> FillMode {
        FillMode::Compress
    }

    fn name(&self) -> &'static str {
        "always-compress"
    }
}

/// A governor that never compresses (the compressor-free baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverCompress;

impl CompressionGovernor for NeverCompress {
    fn fill_mode(&mut self) -> FillMode {
        FillMode::Bypass
    }

    fn compression_enabled(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "no-compression"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_governors_are_constant() {
        let mut a = AlwaysCompress;
        let mut n = NeverCompress;
        for _ in 0..3 {
            assert_eq!(a.fill_mode(), FillMode::Compress);
            assert_eq!(n.fill_mode(), FillMode::Bypass);
        }
        assert_eq!(a.name(), "always-compress");
        assert_eq!(n.name(), "no-compression");
    }

    #[test]
    fn default_event_handlers_are_no_ops() {
        let mut a = AlwaysCompress;
        a.on_mem_commit();
        a.on_evictions(3);
        a.on_voltage(2.0, 2.0, 2.016);
        a.on_power_failure();
        a.on_reboot();
        assert_eq!(a.fill_mode(), FillMode::Compress);
    }
}
