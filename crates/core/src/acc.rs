//! ACC — Adaptive Cache Compression (Alameldeen & Wood, ISCA 2004).
//!
//! ACC maintains a **Global Compression Predictor (GCP)**: a saturating
//! counter updated from the LRU stack depth of each hit.
//!
//! * A hit whose stack depth is at or beyond the nominal associativity
//!   could only happen because compression stretched the set — compression
//!   *avoided a miss*, so the GCP is credited with the miss penalty.
//! * A hit on a *compressed* block within the nominal ways would have hit
//!   anyway — the decompression was avoidable overhead, so the GCP is
//!   debited the (much smaller) decompression penalty.
//!
//! Compression is enabled while the GCP is non-negative. Following the
//! original design, credit and debit are weighted by their relative cost —
//! a miss costs roughly an order of magnitude more than a decompression —
//! so a few avoided misses outweigh many wasted decompressions.

use ehs_cache::{FillMode, HitInfo};
use serde::{Deserialize, Serialize};

use crate::governor::CompressionGovernor;

/// GCP credit for a hit that only compression made possible, scaled by
/// the ratio of miss penalty to decompression cost (the original ACC
/// weighs the counter by L2-miss vs decompression cycles, roughly two
/// orders of magnitude apart; our energy ratio E_miss/E_decomp ≈ 230 is
/// clipped to keep the counter responsive).
const BENEFIT_WEIGHT: i32 = 64;

/// GCP debit for an avoidable decompression.
const PENALTY_WEIGHT: i32 = 1;

/// GCP debit for a compression attempt that saved nothing: full compression
/// energy spent, zero capacity gained. Weighted by the energy ratio
/// E_comp/E_decomp (≈ 6).
const FAILED_FILL_PENALTY: i32 = 8;

/// Saturation bounds of the GCP (a 16-bit counter in the original design;
/// narrower here to adapt within EHS-scale power cycles).
const GCP_MIN: i32 = -2048;
const GCP_MAX: i32 = 2047;

/// Post-reboot bias. The predictor must start optimistic: a fresh (empty)
/// cache produces no deep hits for a while, so starting at zero would let
/// the first avoidable decompression disable compression before any
/// benefit could possibly have been observed.
const GCP_RESET: i32 = 512;

/// The ACC governor.
///
/// # Examples
///
/// ```
/// use ehs_cache::{FillMode, HitInfo};
/// use kagura_core::{Acc, CompressionGovernor};
///
/// let mut acc = Acc::new();
/// assert_eq!(acc.fill_mode(), FillMode::Compress);
/// // Enough avoidable decompressions turn the predictor off…
/// for _ in 0..1000 {
///     acc.on_hit(&HitInfo { was_compressed: true, lru_rank: 0, word: 0 }, 2);
/// }
/// assert_eq!(acc.fill_mode(), FillMode::Bypass);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Acc {
    gcp: i32,
}

impl Acc {
    /// Creates an ACC with an optimistic predictor (compression enabled).
    pub fn new() -> Self {
        Acc { gcp: GCP_RESET }
    }

    /// Current predictor value (for inspection/tests).
    pub fn gcp(&self) -> i32 {
        self.gcp
    }

    fn bump(&mut self, delta: i32) {
        self.gcp = (self.gcp + delta).clamp(GCP_MIN, GCP_MAX);
    }
}

impl Default for Acc {
    fn default() -> Self {
        Self::new()
    }
}

impl CompressionGovernor for Acc {
    fn fill_mode(&mut self) -> FillMode {
        if self.gcp >= 0 {
            FillMode::Compress
        } else {
            FillMode::Bypass
        }
    }

    fn compression_enabled(&self) -> bool {
        self.gcp >= 0
    }

    fn on_hit(&mut self, info: &HitInfo, ways: u32) {
        if info.lru_rank >= ways {
            // Only compression kept this block resident: an avoided miss.
            self.bump(BENEFIT_WEIGHT);
        } else if info.was_compressed {
            // Would have hit anyway: the decompression was pure overhead.
            self.bump(-PENALTY_WEIGHT);
        }
    }

    fn on_fill(&mut self, stored_compressed: bool) {
        if !stored_compressed {
            self.bump(-FAILED_FILL_PENALTY);
        }
    }

    fn on_reboot(&mut self) {
        // The GCP is volatile and not worth a dedicated NVFF: it restarts
        // at the optimistic bias each power cycle (compression enabled, as
        // Kagura's CM default assumes).
        self.gcp = GCP_RESET;
    }

    fn name(&self) -> &'static str {
        "ACC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(compressed: bool, rank: u32) -> HitInfo {
        HitInfo { was_compressed: compressed, lru_rank: rank, word: 0 }
    }

    #[test]
    fn starts_compressing() {
        assert_eq!(Acc::new().fill_mode(), FillMode::Compress);
    }

    #[test]
    fn deep_hits_reward_compression() {
        let mut acc = Acc::new();
        acc.on_hit(&hit(true, 2), 2);
        assert_eq!(acc.gcp(), GCP_RESET + BENEFIT_WEIGHT);
        assert_eq!(acc.fill_mode(), FillMode::Compress);
    }

    #[test]
    fn shallow_compressed_hits_punish() {
        let mut acc = Acc::new();
        acc.on_hit(&hit(true, 0), 2);
        assert_eq!(acc.gcp(), GCP_RESET - PENALTY_WEIGHT);
        // Still optimistic until the bias is consumed.
        assert_eq!(acc.fill_mode(), FillMode::Compress);
        for _ in 0..GCP_RESET {
            acc.on_hit(&hit(true, 0), 2);
        }
        assert_eq!(acc.fill_mode(), FillMode::Bypass);
    }

    #[test]
    fn shallow_uncompressed_hits_are_neutral() {
        let mut acc = Acc::new();
        acc.on_hit(&hit(false, 1), 2);
        assert_eq!(acc.gcp(), GCP_RESET);
    }

    #[test]
    fn benefit_outweighs_penalty() {
        let mut acc = Acc::new();
        // One avoided miss buys several wasted decompressions.
        acc.on_hit(&hit(true, 3), 2);
        for _ in 0..BENEFIT_WEIGHT as usize {
            acc.on_hit(&hit(true, 0), 2);
        }
        assert_eq!(acc.gcp(), GCP_RESET);
        assert_eq!(acc.fill_mode(), FillMode::Compress);
    }

    #[test]
    fn failed_compressions_disable_quickly() {
        let mut acc = Acc::new();
        // A stream of incompressible fills must turn the compressor off.
        let mut fills = 0;
        while acc.fill_mode() == FillMode::Compress {
            acc.on_fill(false);
            fills += 1;
            assert!(fills < 200, "ACC never gave up on incompressible data");
        }
        // Successful fills are not punished.
        let mut acc = Acc::new();
        acc.on_fill(true);
        assert_eq!(acc.gcp(), GCP_RESET);
    }

    #[test]
    fn counter_saturates() {
        let mut acc = Acc::new();
        for _ in 0..10_000 {
            acc.on_hit(&hit(true, 2), 2);
        }
        assert_eq!(acc.gcp(), GCP_MAX);
        for _ in 0..100_000 {
            acc.on_hit(&hit(true, 0), 2);
        }
        assert_eq!(acc.gcp(), GCP_MIN);
    }

    #[test]
    fn reboot_resets_to_optimistic() {
        let mut acc = Acc::new();
        for _ in 0..10_000 {
            acc.on_hit(&hit(true, 0), 2);
        }
        assert_eq!(acc.fill_mode(), FillMode::Bypass);
        acc.on_reboot();
        assert_eq!(acc.gcp(), GCP_RESET);
        assert_eq!(acc.fill_mode(), FillMode::Compress);
    }
}
