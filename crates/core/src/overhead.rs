//! Hardware-overhead accounting (paper §VIII-A).
//!
//! Kagura's control hardware is five 32-bit registers plus one small
//! saturating counter — 162 bits in the default configuration. At 45 nm
//! (CACTI), those registers occupy at most 0.000796 mm², i.e. 0.14 % of the
//! 0.538 mm² core (caches included) reported by McPAT.

use serde::{Deserialize, Serialize};

/// Register-file area per bit at 45 nm, derived from the paper's CACTI
/// figure (0.000796 mm² for 162 bits).
pub const MM2_PER_BIT: f64 = 0.000796 / 162.0;

/// Core area (including caches) at 45 nm from McPAT, mm².
pub const CORE_AREA_MM2: f64 = 0.538;

/// The hardware inventory of one Kagura instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HardwareOverhead {
    /// Number of 32-bit registers (`R_mem`, `R_thres`, `R_prev`,
    /// `R_adjust`, `R_evict`).
    pub registers: u32,
    /// Saturating-counter width in bits.
    pub counter_bits: u32,
}

impl HardwareOverhead {
    /// The paper's default: five registers and a 2-bit counter.
    pub fn kagura_default() -> Self {
        HardwareOverhead { registers: 5, counter_bits: 2 }
    }

    /// Configuration with a different counter width (Table IV ablation).
    pub fn with_counter_bits(counter_bits: u32) -> Self {
        HardwareOverhead { registers: 5, counter_bits }
    }

    /// Total state bits.
    pub fn total_bits(&self) -> u32 {
        self.registers * 32 + self.counter_bits
    }

    /// Estimated area in mm² at 45 nm.
    pub fn area_mm2(&self) -> f64 {
        self.total_bits() as f64 * MM2_PER_BIT
    }

    /// Area as a fraction of the 0.538 mm² core.
    pub fn core_fraction(&self) -> f64 {
        self.area_mm2() / CORE_AREA_MM2
    }
}

impl Default for HardwareOverhead {
    fn default() -> Self {
        Self::kagura_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_162_bits() {
        let hw = HardwareOverhead::kagura_default();
        assert_eq!(hw.total_bits(), 162);
    }

    #[test]
    fn area_matches_paper() {
        let hw = HardwareOverhead::kagura_default();
        assert!((hw.area_mm2() - 0.000796).abs() < 1e-9);
        // 0.000796 / 0.538 = 0.00148 -> the paper rounds to 0.14 %.
        let pct = hw.core_fraction() * 100.0;
        assert!((0.10..0.20).contains(&pct), "core fraction = {pct}%");
    }

    #[test]
    fn counter_width_changes_bit_count_only_slightly() {
        assert_eq!(HardwareOverhead::with_counter_bits(1).total_bits(), 161);
        assert_eq!(HardwareOverhead::with_counter_bits(3).total_bits(), 163);
    }
}
