//! Adaptive tuning of the compression-disabling threshold `R_thres`.
//!
//! At every reboot Kagura inspects `R_evict` — how many blocks were evicted
//! after the decision point in the previous power cycle — and moves
//! `R_thres` (paper §VI-B):
//!
//! * many evictions ⇒ the uncompressed cache was too small near the end of
//!   the cycle ⇒ **lower** the threshold (disable compression later);
//! * few evictions ⇒ room to spare ⇒ **raise** the threshold (disable
//!   earlier and save more energy).
//!
//! The paper selects **AIMD** (additive 10 % increase, halving decrease)
//! and evaluates MIAD, AIAD and MIMD as ablations (Fig 21), plus increase
//! steps of 5–20 % (Fig 22). This module implements all four schemes.

use std::fmt;

use serde::{Deserialize, Serialize};

/// How `R_thres` moves up (few evictions) and down (many evictions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AdaptScheme {
    /// Additive increase, multiplicative decrease — the paper's choice.
    Aimd,
    /// Multiplicative increase, additive decrease.
    Miad,
    /// Additive increase, additive decrease.
    Aiad,
    /// Multiplicative increase, multiplicative decrease.
    Mimd,
}

impl AdaptScheme {
    /// All schemes in the paper's Fig 21 order.
    pub const ALL: [AdaptScheme; 4] =
        [AdaptScheme::Aimd, AdaptScheme::Miad, AdaptScheme::Aiad, AdaptScheme::Mimd];

    /// Scheme name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            AdaptScheme::Aimd => "AIMD",
            AdaptScheme::Miad => "MIAD",
            AdaptScheme::Aiad => "AIAD",
            AdaptScheme::Mimd => "MIMD",
        }
    }
}

impl fmt::Display for AdaptScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Applies one scheme with a configurable additive step.
///
/// # Examples
///
/// ```
/// use kagura_core::{AdaptScheme, ThresholdAdapter};
///
/// let aimd = ThresholdAdapter::new(AdaptScheme::Aimd, 0.10);
/// // Few evictions: +10 % (at least +1).
/// assert_eq!(aimd.adjust(8, 1), 9);
/// // Many evictions: halve.
/// assert_eq!(aimd.adjust(8, 6), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdAdapter {
    scheme: AdaptScheme,
    /// Additive step as a fraction of the current threshold (default 0.10).
    step: f64,
}

impl ThresholdAdapter {
    /// Creates an adapter.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not in `(0, 1)`.
    pub fn new(scheme: AdaptScheme, step: f64) -> Self {
        assert!(step > 0.0 && step < 1.0, "step must be a fraction in (0,1), got {step}");
        ThresholdAdapter { scheme, step }
    }

    /// The scheme.
    pub fn scheme(&self) -> AdaptScheme {
        self.scheme
    }

    /// The additive step fraction.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// One reboot-time adjustment: raise `thres` when `evicted` was at most
    /// half of it, lower it otherwise. Never returns 0.
    pub fn adjust(&self, thres: u64, evicted: u64) -> u64 {
        let raise = evicted <= thres / 2;
        let additive = ((thres as f64 * self.step).round() as u64).max(1);
        let next = match (self.scheme, raise) {
            (AdaptScheme::Aimd, true) | (AdaptScheme::Aiad, true) => thres + additive,
            (AdaptScheme::Aimd, false) | (AdaptScheme::Mimd, false) => thres / 2,
            (AdaptScheme::Miad, true) | (AdaptScheme::Mimd, true) => thres * 2,
            (AdaptScheme::Miad, false) | (AdaptScheme::Aiad, false) => {
                thres.saturating_sub(additive)
            }
        };
        next.max(1)
    }
}

impl Default for ThresholdAdapter {
    /// The paper's default: AIMD with a 10 % step.
    fn default() -> Self {
        Self::new(AdaptScheme::Aimd, 0.10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aimd_matches_paper_fig9() {
        // Fig 9: thres 8, 6 evictions (> 4) -> halve to 4;
        // then 1 eviction (<= 2) -> raise 4 -> 4 + max(1, 0.4) = 5.
        let aimd = ThresholdAdapter::default();
        assert_eq!(aimd.adjust(8, 6), 4);
        assert_eq!(aimd.adjust(4, 1), 5);
    }

    #[test]
    fn boundary_is_half_of_thres() {
        let aimd = ThresholdAdapter::default();
        // evicted == thres/2 counts as "few" (paper: "larger than half").
        assert_eq!(aimd.adjust(8, 4), 9);
        assert_eq!(aimd.adjust(8, 5), 4);
    }

    #[test]
    fn miad_and_mimd_double_on_raise() {
        assert_eq!(ThresholdAdapter::new(AdaptScheme::Miad, 0.1).adjust(8, 0), 16);
        assert_eq!(ThresholdAdapter::new(AdaptScheme::Mimd, 0.1).adjust(8, 0), 16);
    }

    #[test]
    fn additive_decrease_subtracts_step() {
        assert_eq!(ThresholdAdapter::new(AdaptScheme::Miad, 0.1).adjust(20, 15), 18);
        assert_eq!(ThresholdAdapter::new(AdaptScheme::Aiad, 0.1).adjust(20, 15), 18);
    }

    #[test]
    fn threshold_never_reaches_zero() {
        for scheme in AdaptScheme::ALL {
            let a = ThresholdAdapter::new(scheme, 0.2);
            assert!(a.adjust(1, 100) >= 1, "{scheme} drove thres to 0");
            assert!(a.adjust(2, 100) >= 1);
        }
    }

    #[test]
    fn step_sizes_scale_increase() {
        let small = ThresholdAdapter::new(AdaptScheme::Aimd, 0.05);
        let large = ThresholdAdapter::new(AdaptScheme::Aimd, 0.20);
        assert!(large.adjust(100, 0) > small.adjust(100, 0));
        assert_eq!(small.adjust(100, 0), 105);
        assert_eq!(large.adjust(100, 0), 120);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn invalid_step_rejected() {
        let _ = ThresholdAdapter::new(AdaptScheme::Aimd, 1.5);
    }

    #[test]
    fn scheme_names() {
        assert_eq!(AdaptScheme::Aimd.to_string(), "AIMD");
        assert_eq!(AdaptScheme::ALL.len(), 4);
    }
}
