//! **Kagura** — intermittence-aware cache compression control.
//!
//! This crate is the paper's primary contribution. Cache compression helps
//! conventional processors by stretching effective cache capacity, but on an
//! energy-harvesting system (EHS) a compressed block that is never reused
//! before the next power outage is pure waste: the energy spent fetching and
//! compressing it is lost with the SRAM. Kagura prevents that waste by
//! switching the compressor between two modes at run time:
//!
//! * **CM (Compression Mode)** — the underlying compressor (typically
//!   [`Acc`]) operates as usual.
//! * **RM (Regular Mode)** — compression is disabled and fills fall back to
//!   plain LRU replacement.
//!
//! Kagura enters RM when the *predicted number of memory operations left in
//! the current power cycle* drops to a threshold `N_thres`:
//!
//! ```text
//! N_remain = R_prev − R_mem          (Eq. 5)
//! enter RM when N_remain ≤ R_thres
//! ```
//!
//! `R_prev` is estimated from history (§VI-A: the previous power cycle's
//! committed memory-op count, optionally refined by the reward/punishment
//! counter and `R_adjust`, Eq. 6), and `R_thres` adapts by AIMD on the
//! RM-mode eviction count `R_evict` (§VI-B). The whole controller is five
//! 32-bit registers and a 2-bit counter — see [`overhead`].
//!
//! The crate also provides:
//!
//! * [`Acc`] — the Adaptive Cache Compressor baseline (global compression
//!   predictor, Alameldeen & Wood ISCA'04) that Kagura extends.
//! * [`Kagura`] — the controller, composable over any inner governor.
//! * [`oracle`] — the two-phase ideal intermittence-aware compressor used
//!   for Fig 13's "ideal" bars.
//! * [`analysis`] — the closed-form break-even model of §III (Eq. 1–4,
//!   Fig 3).
//! * [`overhead`] — the §VIII-A hardware cost accounting.
//!
//! # Examples
//!
//! ```
//! use ehs_cache::FillMode;
//! use kagura_core::{Acc, CompressionGovernor, Kagura, KaguraConfig};
//!
//! let mut gov = Kagura::new(KaguraConfig::default(), Acc::new());
//! // Fresh boot: compression mode.
//! assert_eq!(gov.fill_mode(), FillMode::Compress);
//! // Simulate a short power cycle so Kagura learns the cycle length…
//! for _ in 0..100 { gov.on_mem_commit(); }
//! gov.on_power_failure();
//! gov.on_reboot();
//! // …then near the predicted end of the next cycle it disables compression.
//! for _ in 0..100 { gov.on_mem_commit(); }
//! assert_eq!(gov.fill_mode(), FillMode::Bypass);
//! ```

pub mod acc;
pub mod adapt;
pub mod analysis;
pub mod governor;
pub mod kagura;
pub mod oracle;
pub mod overhead;

pub use acc::Acc;
pub use adapt::{AdaptScheme, ThresholdAdapter};
pub use governor::{
    AlwaysCompress, CompressionGovernor, NeverCompress, RandThresholdConfig, RandomizedThreshold,
};
pub use kagura::{EstimatorKind, Kagura, KaguraConfig, Mode, TriggerKind};
pub use oracle::{OracleRecorder, OracleReplayer, OracleTrace};
