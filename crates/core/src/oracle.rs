//! The ideal intermittence-aware compressor (paper Fig 13, "ideal").
//!
//! The paper obtains its ideal bars with a two-phase methodology,
//! "assuming perfect knowledge of when to disable compression":
//!
//! 1. **Recording run** — execute normally and log, for every compression
//!    operation, whether it actually contributed to cache hits before the
//!    power cycle ended.
//! 2. **Replay run** — execute again on the *same* power trace, using the
//!    log to decide in advance whether to perform each compression.
//!
//! Replaying individual fill decisions positionally is brittle — a single
//! divergent fill shifts every later decision, and compression's capacity
//! benefit is all-or-nothing within a set — so the replayer consumes the
//! log at *power-cycle* granularity, which is exactly the knowledge Kagura
//! itself approximates: for each power cycle the recording identifies the
//! **switch point**, the memory-operation index after which no compression
//! proved useful. The replay compresses normally before the switch point
//! and disables compression after it. A cycle whose compressions were all
//! useless gets switch point 0 (never compress); a cycle whose last
//! compression paid off right before the outage gets a switch point at its
//! end (always compress).

use ehs_cache::{FillMode, HitInfo};
use serde::{Deserialize, Serialize};

use crate::governor::CompressionGovernor;

/// The phase-1 log: per power cycle, the memory-op index after which no
/// compression proved useful.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OracleTrace {
    switch_points: Vec<u64>,
    /// Total compressing fills observed (for reporting).
    fills: u64,
    /// Fills that proved useful (for reporting).
    useful: u64,
}

impl OracleTrace {
    /// Number of recorded power cycles.
    pub fn len(&self) -> usize {
        self.switch_points.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.switch_points.is_empty()
    }

    /// The switch point for power cycle `k`, if recorded.
    pub fn switch_point(&self, cycle: usize) -> Option<u64> {
        self.switch_points.get(cycle).copied()
    }

    /// Fraction of recorded compressing fills that proved useful.
    pub fn useful_fraction(&self) -> f64 {
        if self.fills == 0 {
            0.0
        } else {
            self.useful as f64 / self.fills as f64
        }
    }
}

/// Phase-1 wrapper: behaves exactly like the inner governor while logging
/// which compressions pay off and where each cycle's last useful
/// compression happened.
///
/// The simulator does the attribution: it calls
/// [`OracleRecorder::record_fill`] for each compressing fill (obtaining an
/// id) and [`OracleRecorder::mark_useful`] when that fill's compression
/// later contributes to a hit.
#[derive(Debug, Clone)]
pub struct OracleRecorder<G> {
    inner: G,
    /// `(cycle, mem-op position)` of every compressing fill.
    fill_positions: Vec<(usize, u64)>,
    /// Per finished/ongoing cycle: mem-op index after the last useful fill.
    switch_points: Vec<u64>,
    cycle: usize,
    mem_pos: u64,
    useful: u64,
}

impl<G: CompressionGovernor> OracleRecorder<G> {
    /// Wraps `inner` for a recording run.
    pub fn new(inner: G) -> Self {
        OracleRecorder {
            inner,
            fill_positions: Vec::new(),
            switch_points: vec![0],
            cycle: 0,
            mem_pos: 0,
            useful: 0,
        }
    }

    /// Registers one compressing fill; returns its sequence id.
    pub fn record_fill(&mut self) -> usize {
        self.fill_positions.push((self.cycle, self.mem_pos));
        self.fill_positions.len() - 1
    }

    /// Marks the fill with sequence id `fill_id` as having paid off: its
    /// cycle's switch point moves past the fill's position.
    ///
    /// # Panics
    ///
    /// Panics if `fill_id` was never returned by
    /// [`OracleRecorder::record_fill`].
    pub fn mark_useful(&mut self, fill_id: usize) {
        let (cycle, pos) = self.fill_positions[fill_id];
        self.useful += 1;
        let slot = &mut self.switch_points[cycle];
        *slot = (*slot).max(pos + 1);
    }

    /// Finishes the recording run.
    pub fn into_trace(self) -> OracleTrace {
        OracleTrace {
            switch_points: self.switch_points,
            fills: self.fill_positions.len() as u64,
            useful: self.useful,
        }
    }
}

impl<G: CompressionGovernor> CompressionGovernor for OracleRecorder<G> {
    fn fill_mode(&mut self) -> FillMode {
        self.inner.fill_mode()
    }

    fn compression_enabled(&self) -> bool {
        self.inner.compression_enabled()
    }

    fn on_hit(&mut self, info: &HitInfo, ways: u32) {
        self.inner.on_hit(info, ways);
    }

    fn on_fill(&mut self, stored_compressed: bool) {
        self.inner.on_fill(stored_compressed);
    }

    fn on_mem_commit(&mut self) {
        self.inner.on_mem_commit();
        self.mem_pos += 1;
    }

    fn on_evictions(&mut self, count: u32) {
        self.inner.on_evictions(count);
    }

    fn on_voltage(&mut self, v: f64, v_ckpt: f64, v_rst: f64) {
        self.inner.on_voltage(v, v_ckpt, v_rst);
    }

    fn on_power_failure(&mut self) {
        self.inner.on_power_failure();
    }

    fn on_reboot(&mut self) {
        self.inner.on_reboot();
        self.cycle += 1;
        self.mem_pos = 0;
        self.switch_points.push(0);
    }

    fn name(&self) -> &'static str {
        "oracle-recorder"
    }
}

/// Phase-2 governor: perfect knowledge of each cycle's disable point.
///
/// Compresses (deferring to the inner governor) while the current cycle's
/// memory-op position is before the recorded switch point, and bypasses
/// after it. Cycles beyond the recorded trace fall back to the inner
/// governor unchanged.
#[derive(Debug, Clone)]
pub struct OracleReplayer<G> {
    inner: G,
    trace: OracleTrace,
    cycle: usize,
    mem_pos: u64,
}

impl<G: CompressionGovernor> OracleReplayer<G> {
    /// Creates a replayer over `trace`.
    pub fn new(inner: G, trace: OracleTrace) -> Self {
        OracleReplayer { inner, trace, cycle: 0, mem_pos: 0 }
    }

    /// Current power-cycle index.
    pub fn cycle(&self) -> usize {
        self.cycle
    }

    fn past_switch_point(&self) -> bool {
        match self.trace.switch_point(self.cycle) {
            Some(p) => self.mem_pos >= p,
            None => false,
        }
    }
}

impl<G: CompressionGovernor> CompressionGovernor for OracleReplayer<G> {
    fn fill_mode(&mut self) -> FillMode {
        if self.past_switch_point() {
            FillMode::Bypass
        } else {
            self.inner.fill_mode()
        }
    }

    fn compression_enabled(&self) -> bool {
        !self.past_switch_point() && self.inner.compression_enabled()
    }

    fn on_hit(&mut self, info: &HitInfo, ways: u32) {
        self.inner.on_hit(info, ways);
    }

    fn on_fill(&mut self, stored_compressed: bool) {
        self.inner.on_fill(stored_compressed);
    }

    fn on_mem_commit(&mut self) {
        self.inner.on_mem_commit();
        self.mem_pos += 1;
    }

    fn on_evictions(&mut self, count: u32) {
        self.inner.on_evictions(count);
    }

    fn on_voltage(&mut self, v: f64, v_ckpt: f64, v_rst: f64) {
        self.inner.on_voltage(v, v_ckpt, v_rst);
    }

    fn on_power_failure(&mut self) {
        self.inner.on_power_failure();
    }

    fn on_reboot(&mut self) {
        self.inner.on_reboot();
        self.cycle += 1;
        self.mem_pos = 0;
    }

    fn name(&self) -> &'static str {
        "oracle-replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::{AlwaysCompress, NeverCompress};

    #[test]
    fn recorder_tracks_switch_points_per_cycle() {
        let mut rec = OracleRecorder::new(AlwaysCompress);
        // Cycle 0: fills at mem positions 0 and 5; only the second useful.
        let _f0 = rec.record_fill();
        for _ in 0..5 {
            rec.on_mem_commit();
        }
        let f1 = rec.record_fill();
        rec.mark_useful(f1);
        rec.on_power_failure();
        rec.on_reboot();
        // Cycle 1: one useless fill.
        let _f2 = rec.record_fill();
        rec.on_power_failure();
        rec.on_reboot();

        let trace = rec.into_trace();
        assert_eq!(trace.len(), 3); // two finished + one empty ongoing
        assert_eq!(trace.switch_point(0), Some(6));
        assert_eq!(trace.switch_point(1), Some(0));
        assert!((trace.useful_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn replayer_disables_past_the_switch_point() {
        let mut rec = OracleRecorder::new(AlwaysCompress);
        for _ in 0..3 {
            rec.on_mem_commit();
        }
        let f = rec.record_fill();
        rec.mark_useful(f); // switch point = 4
        let trace = rec.into_trace();

        let mut rep = OracleReplayer::new(AlwaysCompress, trace);
        assert_eq!(rep.fill_mode(), FillMode::Compress);
        assert!(rep.compression_enabled());
        for _ in 0..4 {
            rep.on_mem_commit();
        }
        assert_eq!(rep.fill_mode(), FillMode::Bypass);
        assert!(!rep.compression_enabled());
    }

    #[test]
    fn replayer_resets_at_reboot_and_follows_per_cycle_points() {
        let mut rec = OracleRecorder::new(AlwaysCompress);
        let f = rec.record_fill();
        rec.mark_useful(f); // cycle 0: switch 1
        rec.on_power_failure();
        rec.on_reboot(); // cycle 1: switch 0 (nothing useful)
        rec.on_power_failure();
        rec.on_reboot();
        let trace = rec.into_trace();

        let mut rep = OracleReplayer::new(AlwaysCompress, trace);
        assert_eq!(rep.fill_mode(), FillMode::Compress); // cycle 0, pos 0
        rep.on_power_failure();
        rep.on_reboot();
        assert_eq!(rep.cycle(), 1);
        assert_eq!(rep.fill_mode(), FillMode::Bypass); // cycle 1: switch 0
    }

    #[test]
    fn beyond_recorded_cycles_falls_back_to_inner() {
        let trace = OracleRecorder::new(AlwaysCompress).into_trace();
        let mut rep = OracleReplayer::new(AlwaysCompress, trace);
        // Advance past all recorded cycles.
        for _ in 0..5 {
            rep.on_power_failure();
            rep.on_reboot();
        }
        assert_eq!(rep.fill_mode(), FillMode::Compress);
    }

    #[test]
    fn replayer_respects_inner_bypass() {
        let mut rec = OracleRecorder::new(AlwaysCompress);
        let f = rec.record_fill();
        rec.mark_useful(f);
        let mut rep = OracleReplayer::new(NeverCompress, rec.into_trace());
        assert_eq!(rep.fill_mode(), FillMode::Bypass);
    }

    #[test]
    fn empty_trace_stats() {
        let trace = OracleTrace::default();
        assert!(trace.is_empty());
        assert_eq!(trace.useful_fraction(), 0.0);
        assert_eq!(trace.switch_point(0), None);
    }
}
