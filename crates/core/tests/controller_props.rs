//! Property-based tests on the Kagura controller's state machine: whatever
//! event sequence arrives, the hardware invariants the paper relies on
//! must hold.

use ehs_cache::{FillMode, HitInfo};
use kagura_core::{
    Acc, AdaptScheme, CompressionGovernor, EstimatorKind, Kagura, KaguraConfig, Mode,
    ThresholdAdapter, TriggerKind,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Event {
    MemCommit,
    Hit { compressed: bool, rank: u32 },
    Evictions(u32),
    Fill { stored_compressed: bool },
    PowerCycle,
    Voltage(f64),
}

fn event_strategy() -> impl Strategy<Value = Event> {
    prop_oneof![
        8 => Just(Event::MemCommit),
        3 => (any::<bool>(), 0u32..4).prop_map(|(c, r)| Event::Hit { compressed: c, rank: r }),
        2 => (1u32..5).prop_map(Event::Evictions),
        2 => any::<bool>().prop_map(|s| Event::Fill { stored_compressed: s }),
        1 => Just(Event::PowerCycle),
        1 => (2.0f64..2.016).prop_map(Event::Voltage),
    ]
}

fn config_strategy() -> impl Strategy<Value = KaguraConfig> {
    (
        1u64..200,
        1u8..=3,
        prop_oneof![Just(EstimatorKind::Simple), Just(EstimatorKind::Sophisticated)],
        prop_oneof![
            Just(AdaptScheme::Aimd),
            Just(AdaptScheme::Miad),
            Just(AdaptScheme::Aiad),
            Just(AdaptScheme::Mimd)
        ],
        1usize..=4,
        prop_oneof![
            Just(TriggerKind::Memory),
            (0.05f64..0.95).prop_map(|f| TriggerKind::Voltage { fraction: f })
        ],
    )
        .prop_map(|(thres, bits, estimator, scheme, depth, trigger)| KaguraConfig {
            initial_thres: thres,
            counter_bits: bits,
            estimator,
            adapter: ThresholdAdapter::new(scheme, 0.10),
            history_depth: depth,
            trigger,
            reward_tolerance: 0.20,
        })
}

fn drive(k: &mut Kagura<Acc>, ev: &Event) {
    match *ev {
        Event::MemCommit => k.on_mem_commit(),
        Event::Hit { compressed, rank } => {
            k.on_hit(&HitInfo { was_compressed: compressed, lru_rank: rank, word: 0 }, 2)
        }
        Event::Evictions(n) => k.on_evictions(n),
        Event::Fill { stored_compressed } => k.on_fill(stored_compressed),
        Event::PowerCycle => {
            k.on_power_failure();
            k.on_reboot();
        }
        Event::Voltage(v) => k.on_voltage(v, 2.0, 2.016),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn invariants_hold_under_arbitrary_event_sequences(
        cfg in config_strategy(),
        events in proptest::collection::vec(event_strategy(), 0..600),
    ) {
        let mut k = Kagura::new(cfg, Acc::new());
        let max_counter = (1u8 << cfg.counter_bits) - 1;
        for ev in &events {
            drive(&mut k, ev);
            let (_, _, _, r_thres, _) = k.registers();
            // The compression-disabling threshold never reaches zero: a
            // zero threshold could never trigger and AIMD could never
            // recover it.
            prop_assert!(r_thres >= 1, "threshold hit zero");
            // The saturating counter respects its width.
            prop_assert!(k.counter() <= max_counter);
            // RM always produces Bypass decisions.
            if k.mode() == Mode::Regular {
                prop_assert_eq!(k.fill_mode(), FillMode::Bypass);
                prop_assert!(!k.compression_enabled());
            }
        }
    }

    #[test]
    fn reboot_always_restores_compression_mode(
        cfg in config_strategy(),
        events in proptest::collection::vec(event_strategy(), 0..200),
    ) {
        let mut k = Kagura::new(cfg, Acc::new());
        for ev in &events {
            drive(&mut k, ev);
        }
        k.on_power_failure();
        k.on_reboot();
        prop_assert_eq!(k.mode(), Mode::Compression);
    }

    #[test]
    fn rm_entries_counter_is_monotonic_and_bounded_by_cycles(
        events in proptest::collection::vec(event_strategy(), 0..600),
    ) {
        let mut k = Kagura::new(KaguraConfig::default(), Acc::new());
        let mut prev_entries = 0;
        let mut cycles = 1u64;
        for ev in &events {
            drive(&mut k, ev);
            if matches!(ev, Event::PowerCycle) {
                cycles += 1;
            }
            prop_assert!(k.rm_entries() >= prev_entries, "rm_entries went backwards");
            prop_assert!(k.rm_entries() <= cycles, "more RM entries than power cycles");
            prev_entries = k.rm_entries();
        }
    }

    #[test]
    fn memory_trigger_fires_iff_remaining_ops_reach_threshold(
        prev_len in 50u64..2000,
        thres in 1u64..100,
    ) {
        // One training cycle of `prev_len` mem ops, then check the switch
        // point in the next cycle (simple estimator: prediction = prev_len).
        let cfg = KaguraConfig {
            initial_thres: thres,
            estimator: EstimatorKind::Simple,
            ..KaguraConfig::default()
        };
        let mut k = Kagura::new(cfg, Acc::new());
        for _ in 0..prev_len {
            k.on_mem_commit();
        }
        k.on_power_failure();
        k.on_reboot();
        // Threshold may have adapted at reboot (r_evict = 0 -> additive up).
        let (r_prev, _, _, r_thres, _) = k.registers();
        prop_assert_eq!(r_prev, prev_len);
        let switch_at = r_prev.saturating_sub(r_thres);
        for i in 1..=prev_len {
            k.on_mem_commit();
            let expect_rm = i >= switch_at;
            prop_assert_eq!(
                k.mode() == Mode::Regular,
                expect_rm,
                "at commit {} (switch_at {})",
                i,
                switch_at
            );
        }
    }
}
