//! Offline stand-in for the real `serde_derive` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal derive crate that accepts the same
//! `#[derive(Serialize, Deserialize)]` spelling the sources use and
//! expands to nothing. Nothing in this repository round-trips structs
//! through serde's data model (the only JSON produced is hand-built
//! `serde_json::Value` trees), so empty expansions are sufficient.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`; accepts `#[serde(...)]` field attributes
/// like the real derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`; accepts `#[serde(...)]` field
/// attributes like the real derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
