//! Offline stand-in for the real `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! a minimal property-testing framework with the same spelling as the
//! subset of proptest the test suites use: the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map`/`prop_flat_map`/`boxed`,
//! [`prop_oneof!`] (weighted and unweighted), `Just`, `any::<T>()`,
//! integer/float range strategies, tuple strategies, and
//! [`collection::vec`].
//!
//! Differences from upstream, deliberate for an offline vendored stub:
//!
//! * **Sampling only, no shrinking.** A failing case reports its inputs
//!   via the assertion message but is not minimized.
//! * **Deterministic seeding.** Each test derives its RNG seed from the
//!   test's name, so runs are reproducible without a persistence file.

pub mod test_runner {
    /// SplitMix64 generator used to drive all sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Deterministic per-test seed: FNV-1a over the test name.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(message: String) -> Self {
            TestCaseError(message)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Per-`proptest!` configuration (subset: case count).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { inner: Rc::new(self) }
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn sample(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Type-erased strategy; cheaply cloneable.
    pub struct BoxedStrategy<T> {
        inner: Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy { inner: Rc::clone(&self.inner) }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.inner.sample(rng)
        }
    }

    /// Weighted union of strategies, produced by `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! weights must not all be zero");
            Union { arms, total }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union { arms: self.arms.clone(), total: self.total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (weight, arm) in &self.arms {
                if pick < *weight as u64 {
                    return arm.sample(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start() as i128, *self.end() as i128);
                    assert!(start <= end, "empty range strategy");
                    let width = (end - start + 1) as u64;
                    (start + rng.below(width) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Strategy returned by [`any`](crate::arbitrary::any).
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Any;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "uniform over the whole domain" strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec`]; both ends inclusive.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted (`w => strategy`) or unweighted union of strategies with a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Fail the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), left, right,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+), left, right,
                ),
            ));
        }
    }};
}

/// Fail the current property case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left,
            )));
        }
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )*
                    #[allow(unreachable_code)]
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = result {
                        panic!(
                            "proptest '{}' failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err.0,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Step {
        Inc(u32),
        Reset,
    }

    fn step_strategy() -> impl Strategy<Value = Step> {
        prop_oneof![
            3 => (1u32..10).prop_map(Step::Inc),
            1 => Just(Step::Reset),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(
            x in -50i32..50i32,
            y in 0.25f64..0.75,
            n in 3usize..=3,
        ) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((0.25..0.75).contains(&y), "y out of range: {}", y);
            prop_assert_eq!(n, 3);
        }

        #[test]
        fn vec_and_flat_map_compose(
            v in crate::collection::vec(step_strategy(), 0..20),
            w in prop_oneof![Just(16usize), Just(32usize)]
                .prop_flat_map(|size| crate::collection::vec(any::<u8>(), size..=size)),
        ) {
            prop_assert!(v.len() < 20);
            prop_assert!(w.len() == 16 || w.len() == 32);
            if v.is_empty() {
                return Ok(());
            }
            prop_assert_ne!(v.len(), 0);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(0u64..1000, 5..10);
        let a = strat.sample(&mut TestRng::from_name("x"));
        let b = strat.sample(&mut TestRng::from_name("x"));
        assert_eq!(a, b);
    }
}
