//! Offline stand-in for the real `criterion` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! a minimal harness with criterion's spelling: `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, group configuration
//! (`warm_up_time`, `measurement_time`, `sample_size`, `throughput`),
//! `bench_function` / `bench_with_input`, and `Bencher::iter`.
//!
//! It measures mean wall-clock time per iteration and prints one line per
//! benchmark (plus derived throughput when configured). No statistical
//! analysis, outlier rejection, or HTML reports — numbers are indicative,
//! which is all the in-repo benches need offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Identity function that hides a value from the optimizer.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A benchmark label of the form `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            sample_size: 50,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup {
            name,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            throughput: None,
            _criterion: std::marker::PhantomData,
        }
    }

    /// Standalone benchmark outside a group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_function("", &mut f);
        group.finish();
        self
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    pub fn warm_up_time(&mut self, time: Duration) -> &mut Self {
        self.warm_up_time = time;
        self
    }

    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            total: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        self.report(&id.to_string(), &bencher);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}

    fn report(&self, id: &str, bencher: &Bencher) {
        if bencher.iterations == 0 {
            println!("  {}/{id}: no iterations recorded", self.name);
            return;
        }
        let ns_per_iter = bencher.total.as_nanos() as f64 / bencher.iterations as f64;
        let label = if id.is_empty() { self.name.clone() } else { format!("{}/{id}", self.name) };
        let mut line =
            format!("  {label}: {:.1} ns/iter ({} iters)", ns_per_iter, bencher.iterations);
        match self.throughput {
            Some(Throughput::Bytes(bytes)) => {
                let gib = bytes as f64 / ns_per_iter; // bytes/ns == GiB-ish/s (1e9)
                line.push_str(&format!(", {:.3} GB/s", gib));
            }
            Some(Throughput::Elements(n)) => {
                let meps = n as f64 / ns_per_iter * 1e3;
                line.push_str(&format!(", {:.1} Melem/s", meps));
            }
            None => {}
        }
        println!("{line}");
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Run `f` repeatedly: warm up for roughly the configured warm-up
    /// window, then measure for roughly the measurement window (bounded
    /// by `sample_size` batches), accumulating mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed call both warms caches and bounds the cost of a
        // single iteration so long-running benches (full simulations)
        // don't overshoot their windows by much.
        let probe_start = Instant::now();
        black_box(f());
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));

        let warm_iters = (self.warm_up_time.as_nanos() / probe.as_nanos()).min(1_000) as u64;
        for _ in 0..warm_iters {
            black_box(f());
        }

        let per_sample = ((self.measurement_time.as_nanos() / probe.as_nanos()) as u64)
            .div_ceil(self.sample_size as u64)
            .clamp(1, 1_000_000);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            self.total += start.elapsed();
            self.iterations += per_sample;
            if self.total >= self.measurement_time {
                break;
            }
        }
    }
}

/// Bundle benchmark functions into a runner callable from `main`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running each group produced by `criterion_group!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(3)
            .throughput(Throughput::Bytes(32));
        let mut hits = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                hits += 1;
                hits
            })
        });
        group.bench_with_input(BenchmarkId::new("id", 7), &7u64, |b, &x| b.iter(|| x * 2));
        group.finish();
        assert!(hits > 0);
    }
}
