//! Offline stand-in for the real `serde` crate.
//!
//! Provides just enough surface for `use serde::{Deserialize, Serialize};`
//! plus `#[derive(Serialize, Deserialize)]` to compile: the derive macros
//! (re-exported from the vendored no-op `serde_derive`) and empty marker
//! traits of the same names. See `crates/vendor/README.md` for why the
//! workspace vendors these.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`. Never implemented by
/// the no-op derive; nothing in the workspace bounds on it.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
