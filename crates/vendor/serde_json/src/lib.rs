//! Offline stand-in for the real `serde_json` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the small subset of serde_json the benchmark harness actually uses:
//!
//! * [`Value`] — a JSON tree. Objects preserve insertion order (the real
//!   crate's `preserve_order` feature), which is what makes `repro` output
//!   byte-identical across runs and job counts.
//! * [`json!`] — object/array/scalar literals, including nested bare-brace
//!   objects (`json!({"mean": { "a": 1 }})`).
//! * [`to_string_pretty`] / [`to_string`] — deterministic serialization.
//!
//! Nothing here implements serde's data model; the harness only ever
//! builds `Value` trees directly.

use std::fmt;

/// A JSON value. Object members keep insertion order so serialization is
/// deterministic for a given construction order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

/// Serialization error. The only unrepresentable inputs (NaN/infinity)
/// are printed as `null` instead, matching what the harness needs, so in
/// practice this is never returned — it exists so call sites written
/// against the real crate's `Result` API keep compiling.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self { Value::U64(v as u64) }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Self { Value::U64(*v as u64) }
        }
    )*};
}

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self { Value::I64(v as i64) }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Self { Value::I64(*v as i64) }
        }
    )*};
}

from_unsigned!(u8, u16, u32, u64, usize);
from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<&f64> for Value {
    fn from(v: &f64) -> Self {
        Value::F64(*v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F64(v as f64)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&bool> for Value {
    fn from(v: &bool) -> Self {
        Value::Bool(*v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<&&str> for Value {
    fn from(v: &&str) -> Self {
        Value::String((*v).to_string())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

/// Build a [`Value`] from a JSON-shaped literal. Supports object literals
/// with string-literal keys whose values are Rust expressions, nested
/// bare-brace objects, array literals, `null`, and plain expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut object: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::vec::Vec::new();
        $crate::json_object_internal!(object; $($tt)*);
        $crate::Value::Object(object)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $($crate::Value::from($elem)),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

/// Implementation detail of [`json!`]: munches `"key": value` pairs.
#[macro_export]
#[doc(hidden)]
macro_rules! json_object_internal {
    ($obj:ident;) => {};
    // Nested bare-brace object value, more pairs follow.
    ($obj:ident; $key:literal : { $($inner:tt)* } , $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::json!({ $($inner)* })));
        $crate::json_object_internal!($obj; $($rest)*);
    };
    // Nested bare-brace object value in final position.
    ($obj:ident; $key:literal : { $($inner:tt)* } $(,)?) => {
        $obj.push(($key.to_string(), $crate::json!({ $($inner)* })));
    };
    // Plain expression value, more pairs follow.
    ($obj:ident; $key:literal : $value:expr , $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::Value::from($value)));
        $crate::json_object_internal!($obj; $($rest)*);
    };
    // Plain expression value in final position.
    ($obj:ident; $key:literal : $value:expr) => {
        $obj.push(($key.to_string(), $crate::Value::from($value)));
    };
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        // The real crate refuses non-finite floats; `null` keeps the
        // output valid JSON without poisoning a whole experiment file.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        out.push_str(&format!("{:.1}", v));
    } else {
        // Rust's shortest round-trip float formatting.
        out.push_str(&format!("{}", v));
    }
}

fn write_value(out: &mut String, value: &Value, indent: usize, pretty: bool) {
    let (nl, pad, pad_in) = if pretty {
        ("\n", "  ".repeat(indent), "  ".repeat(indent + 1))
    } else {
        ("", String::new(), String::new())
    };
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => write_f64(out, *v),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(out, key);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, item, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serialize with 2-space indentation (deterministic: object members are
/// emitted in insertion order).
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, 0, true);
    Ok(out)
}

/// Compact serialization.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, 0, false);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_nesting_round_trip_the_expected_text() {
        let rows: Vec<Value> = (0..2).map(|i| json!({ "i": i })).collect();
        let v = json!({
            "experiment": "demo",
            "rows": rows,
            "mean": {
                "speed": 1.25, "count": 3u64,
            },
            "whole": 2.0,
            "flag": true,
            "nothing": null,
        });
        let text = to_string_pretty(&v).unwrap();
        let expected = "{\n  \"experiment\": \"demo\",\n  \"rows\": [\n    {\n      \"i\": 0\n    },\n    {\n      \"i\": 1\n    }\n  ],\n  \"mean\": {\n    \"speed\": 1.25,\n    \"count\": 3\n  },\n  \"whole\": 2.0,\n  \"flag\": true,\n  \"nothing\": null\n}";
        assert_eq!(text, expected);
    }

    #[test]
    fn reference_values_from_iteration_patterns_convert() {
        let gains: Vec<(&'static str, f64)> = vec![("ACC", 4.7)];
        let mut out = Vec::new();
        for (label, g) in &gains {
            out.push(json!({ "config": label, "gain_pct": g }));
        }
        assert_eq!(
            to_string(&out[0]).unwrap(),
            "{\"config\":\"ACC\",\"gain_pct\":4.7}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let v = json!({ "k": "a\"b\\c\nd" });
        assert_eq!(to_string(&v).unwrap(), "{\"k\":\"a\\\"b\\\\c\\nd\"}");
    }

    #[test]
    fn serialization_is_deterministic() {
        let build = || json!({ "b": 1, "a": [1, 2, 3], "c": { "x": 0.5 } });
        assert_eq!(to_string_pretty(&build()).unwrap(), to_string_pretty(&build()).unwrap());
    }
}
