//! Offline stand-in for the real `serde_json` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the small subset of serde_json the benchmark harness actually uses:
//!
//! * [`Value`] — a JSON tree. Objects preserve insertion order (the real
//!   crate's `preserve_order` feature), which is what makes `repro` output
//!   byte-identical across runs and job counts.
//! * [`json!`] — object/array/scalar literals, including nested bare-brace
//!   objects (`json!({"mean": { "a": 1 }})`).
//! * [`to_string_pretty`] / [`to_string`] — deterministic serialization.
//! * [`from_str`] — a small recursive-descent parser plus the `Value`
//!   accessors (`get`, `as_u64`, …) the telemetry sinks use to round-trip
//!   their own output.
//!
//! Nothing here implements serde's data model; the harness only ever
//! builds `Value` trees directly.

use std::fmt;

/// A JSON value. Object members keep insertion order so serialization is
/// deterministic for a given construction order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

/// Serialization/deserialization error. Serialization never returns one
/// (NaN/infinity print as `null` instead); parsing reports the failure
/// with a short message.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl Value {
    /// Member lookup on an object; `None` for other variants or missing
    /// keys. First occurrence wins on duplicate keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// Any numeric variant as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(v) => Some(v),
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self { Value::U64(v as u64) }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Self { Value::U64(*v as u64) }
        }
    )*};
}

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self { Value::I64(v as i64) }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Self { Value::I64(*v as i64) }
        }
    )*};
}

from_unsigned!(u8, u16, u32, u64, usize);
from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<&f64> for Value {
    fn from(v: &f64) -> Self {
        Value::F64(*v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F64(v as f64)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&bool> for Value {
    fn from(v: &bool) -> Self {
        Value::Bool(*v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<&&str> for Value {
    fn from(v: &&str) -> Self {
        Value::String((*v).to_string())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

/// Build a [`Value`] from a JSON-shaped literal. Supports object literals
/// with string-literal keys whose values are Rust expressions, nested
/// bare-brace objects, array literals, `null`, and plain expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut object: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::vec::Vec::new();
        $crate::json_object_internal!(object; $($tt)*);
        $crate::Value::Object(object)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $($crate::Value::from($elem)),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

/// Implementation detail of [`json!`]: munches `"key": value` pairs.
#[macro_export]
#[doc(hidden)]
macro_rules! json_object_internal {
    ($obj:ident;) => {};
    // Nested bare-brace object value, more pairs follow.
    ($obj:ident; $key:literal : { $($inner:tt)* } , $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::json!({ $($inner)* })));
        $crate::json_object_internal!($obj; $($rest)*);
    };
    // Nested bare-brace object value in final position.
    ($obj:ident; $key:literal : { $($inner:tt)* } $(,)?) => {
        $obj.push(($key.to_string(), $crate::json!({ $($inner)* })));
    };
    // Array-literal value, more pairs follow.
    ($obj:ident; $key:literal : [ $($inner:tt)* ] , $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::json!([ $($inner)* ])));
        $crate::json_object_internal!($obj; $($rest)*);
    };
    // Array-literal value in final position.
    ($obj:ident; $key:literal : [ $($inner:tt)* ] $(,)?) => {
        $obj.push(($key.to_string(), $crate::json!([ $($inner)* ])));
    };
    // Bare `null` value, more pairs follow.
    ($obj:ident; $key:literal : null , $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::Value::Null));
        $crate::json_object_internal!($obj; $($rest)*);
    };
    // Bare `null` value in final position.
    ($obj:ident; $key:literal : null $(,)?) => {
        $obj.push(($key.to_string(), $crate::Value::Null));
    };
    // Plain expression value, more pairs follow.
    ($obj:ident; $key:literal : $value:expr , $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::Value::from($value)));
        $crate::json_object_internal!($obj; $($rest)*);
    };
    // Plain expression value in final position.
    ($obj:ident; $key:literal : $value:expr) => {
        $obj.push(($key.to_string(), $crate::Value::from($value)));
    };
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        // The real crate refuses non-finite floats; `null` keeps the
        // output valid JSON without poisoning a whole experiment file.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        out.push_str(&format!("{:.1}", v));
    } else {
        // Rust's shortest round-trip float formatting.
        out.push_str(&format!("{}", v));
    }
}

fn write_value(out: &mut String, value: &Value, indent: usize, pretty: bool) {
    let (nl, pad, pad_in) = if pretty {
        ("\n", "  ".repeat(indent), "  ".repeat(indent + 1))
    } else {
        ("", String::new(), String::new())
    };
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => write_f64(out, *v),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(out, key);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, item, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serialize with 2-space indentation (deterministic: object members are
/// emitted in insertion order).
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, 0, true);
    Ok(out)
}

/// Compact serialization.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, 0, false);
    Ok(out)
}

/// Parse a JSON document. Numbers without a fraction or exponent become
/// `U64`/`I64`; anything else becomes `F64` — the mirror image of
/// [`to_string`], which prints integral floats with a trailing `.0`, so
/// serialize → parse → serialize is a fixed point.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!("expected '{}' at byte {}", b as char, self.pos)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::msg(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.parse_value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(Error::msg(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our own
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(Error::msg(format!("bad escape '\\{}'", esc as char))),
                    }
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if integral {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_nesting_round_trip_the_expected_text() {
        let rows: Vec<Value> = (0..2).map(|i| json!({ "i": i })).collect();
        let v = json!({
            "experiment": "demo",
            "rows": rows,
            "mean": {
                "speed": 1.25, "count": 3u64,
            },
            "whole": 2.0,
            "flag": true,
            "nothing": null,
        });
        let text = to_string_pretty(&v).unwrap();
        let expected = "{\n  \"experiment\": \"demo\",\n  \"rows\": [\n    {\n      \"i\": 0\n    },\n    {\n      \"i\": 1\n    }\n  ],\n  \"mean\": {\n    \"speed\": 1.25,\n    \"count\": 3\n  },\n  \"whole\": 2.0,\n  \"flag\": true,\n  \"nothing\": null\n}";
        assert_eq!(text, expected);
    }

    #[test]
    fn reference_values_from_iteration_patterns_convert() {
        let gains: Vec<(&'static str, f64)> = vec![("ACC", 4.7)];
        let mut out = Vec::new();
        for (label, g) in &gains {
            out.push(json!({ "config": label, "gain_pct": g }));
        }
        assert_eq!(to_string(&out[0]).unwrap(), "{\"config\":\"ACC\",\"gain_pct\":4.7}");
    }

    #[test]
    fn strings_are_escaped() {
        let v = json!({ "k": "a\"b\\c\nd" });
        assert_eq!(to_string(&v).unwrap(), "{\"k\":\"a\\\"b\\\\c\\nd\"}");
    }

    #[test]
    fn serialization_is_deterministic() {
        let build = || json!({ "b": 1, "a": [1, 2, 3], "c": { "x": 0.5 } });
        assert_eq!(to_string_pretty(&build()).unwrap(), to_string_pretty(&build()).unwrap());
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let v = json!({
            "t_us": 1.25,
            "cycle": 0,
            "neg": -32i64,
            "big": 2.0,
            "text": "a\"b\\c\nd",
            "flag": false,
            "items": [1, 2, 3],
            "nested": { "x": null },
        });
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back = from_str(&text).unwrap();
            assert_eq!(to_string(&back).unwrap(), to_string(&v).unwrap());
        }
    }

    #[test]
    fn parser_number_variants() {
        assert_eq!(from_str("42").unwrap(), Value::U64(42));
        assert_eq!(from_str("-7").unwrap(), Value::I64(-7));
        assert_eq!(from_str("2.0").unwrap(), Value::F64(2.0));
        assert_eq!(from_str("1e3").unwrap(), Value::F64(1000.0));
        assert_eq!(from_str("-0.5").unwrap(), Value::F64(-0.5));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"open", "{\"a\" 1}", "tru", "1 2", "{\"a\":1,}"] {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn option_converts_to_null_or_inner_value() {
        assert_eq!(Value::from(None::<f64>), Value::Null);
        assert_eq!(Value::from(Some(2.5f64)), Value::F64(2.5));
        assert_eq!(to_string(&json!({ "x": None::<u64> })), r#"{"x":null}"#);
    }

    #[test]
    fn accessors_select_the_right_variants() {
        let v = json!({ "n": 3u64, "s": "hi", "f": 1.5, "b": true, "a": [1], "o": { "k": -2i64 } });
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("n").and_then(Value::as_i64), Some(3));
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(3.0));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("hi"));
        assert_eq!(v.get("f").and_then(Value::as_f64), Some(1.5));
        assert_eq!(v.get("b").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("a").and_then(Value::as_array).map(<[Value]>::len), Some(1));
        assert_eq!(v.get("o").and_then(|o| o.get("k")).and_then(Value::as_i64), Some(-2));
        assert!(v.get("missing").is_none());
        assert!(v.get("s").and_then(Value::as_u64).is_none());
    }
}
