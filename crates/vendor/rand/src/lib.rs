//! Offline stand-in for the real `rand` crate.
//!
//! Implements the subset the workspace uses: `rngs::StdRng` seeded with
//! `SeedableRng::seed_from_u64` and sampled with `Rng::gen`.
//!
//! `StdRng` reimplements the engine the real `rand 0.8` uses — the
//! ChaCha12 stream cipher, seeded through `rand_core`'s PCG32-based
//! `seed_from_u64` expansion, with words emitted in sequential block
//! order exactly like `rand_chacha`'s `BlockRng`. Faithfulness matters:
//! the ambient power-trace generators are seeded through this type, and
//! several simulator integration tests assert behaviours (cycle shapes,
//! energy-bucket orderings) that were calibrated against the upstream
//! sample streams.

/// A source of random 32/64-bit words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;

    /// Two sequential 32-bit outputs, low word first (the `rand_core`
    /// `BlockRng` convention `StdRng` inherits upstream).
    fn next_u64(&mut self) -> u64 {
        let low = self.next_u32() as u64;
        let high = self.next_u32() as u64;
        low | (high << 32)
    }
}

/// Seeding interface (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    fn from_seed(seed: [u8; 32]) -> Self;

    /// Expands a `u64` into a full seed with the same PCG32 expansion
    /// `rand_core 0.6` uses, so streams match upstream `rand 0.8`.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6_364_136_223_846_793_005;
        const INC: u64 = 11_634_580_027_462_260_723;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            chunk.copy_from_slice(&xorshifted.rotate_right(rot).to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from an RNG (stand-in for the
/// real crate's `Standard: Distribution<T>` bound on `Rng::gen`).
pub trait Uniform {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Uniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (upstream's
    /// `Standard` multiply-based conversion).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Uniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Uniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Uniform for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Uniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Convenience sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Uniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// ChaCha12-based generator matching upstream `rand 0.8`'s `StdRng`
    /// stream for a given `seed_from_u64` seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        key: [u32; 8],
        counter: u64,
        buffer: [u32; 16],
        /// Next word to emit; 16 means the buffer is exhausted.
        index: usize,
    }

    #[inline(always)]
    fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    impl StdRng {
        fn refill(&mut self) {
            // djb layout: constants, 8 key words, 64-bit block counter
            // (words 12–13), 64-bit stream id (always 0 here, as in
            // `rand_chacha` without `set_stream`).
            let mut state: [u32; 16] = [
                0x6170_7865,
                0x3320_646e,
                0x7962_2d32,
                0x6b20_6574,
                self.key[0],
                self.key[1],
                self.key[2],
                self.key[3],
                self.key[4],
                self.key[5],
                self.key[6],
                self.key[7],
                self.counter as u32,
                (self.counter >> 32) as u32,
                0,
                0,
            ];
            let input = state;
            for _ in 0..6 {
                // Double round: column then diagonal quarter-rounds.
                quarter_round(&mut state, 0, 4, 8, 12);
                quarter_round(&mut state, 1, 5, 9, 13);
                quarter_round(&mut state, 2, 6, 10, 14);
                quarter_round(&mut state, 3, 7, 11, 15);
                quarter_round(&mut state, 0, 5, 10, 15);
                quarter_round(&mut state, 1, 6, 11, 12);
                quarter_round(&mut state, 2, 7, 8, 13);
                quarter_round(&mut state, 3, 4, 9, 14);
            }
            for (word, initial) in state.iter_mut().zip(&input) {
                *word = word.wrapping_add(*initial);
            }
            self.buffer = state;
            self.counter = self.counter.wrapping_add(1);
            self.index = 0;
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= 16 {
                self.refill();
            }
            let word = self.buffer[self.index];
            self.index += 1;
            word
        }
    }

    impl SeedableRng for StdRng {
        fn from_seed(seed: [u8; 32]) -> Self {
            let mut key = [0u32; 8];
            for (word, chunk) in key.iter_mut().zip(seed.chunks(4)) {
                *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
            }
            StdRng { key, counter: 0, buffer: [0; 16], index: 16 }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn chacha_block_matches_djb_reference() {
        // ChaCha12 test vector: all-zero key and nonce, first block
        // (from the reference implementation / rand_chacha's own tests).
        let mut rng = StdRng::from_seed([0u8; 32]);
        let first: Vec<u8> = (0..4).flat_map(|_| rng.next_u32().to_le_bytes()).collect();
        assert_eq!(
            first,
            vec![
                0x9b, 0xf4, 0x9a, 0x6a, 0x07, 0x55, 0xf9, 0x53, 0x81, 0x1f, 0xce, 0x12, 0x5f, 0x26,
                0x83, 0xd5,
            ],
            "ChaCha12 keystream diverges from the reference vector"
        );
    }

    #[test]
    fn f64_samples_are_uniform_in_unit_interval_and_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut sum = 0.0;
        const N: usize = 10_000;
        for _ in 0..N {
            let x = a.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            assert_eq!(x, b.gen::<f64>());
            sum += x;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<f64>(), b.gen::<f64>());
    }
}
