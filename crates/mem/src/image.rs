//! Deterministic initial-memory images.
//!
//! A [`MemoryImage`] describes what the NVM contains before the program
//! runs. Real MiBench/MediaBench address spaces are a patchwork of very
//! differently *compressible* regions — zeroed BSS, ASCII text, sensor or
//! pixel arrays with smooth gradients, small-integer tables, and
//! random-looking compressed/crypto payloads. Each synthetic workload
//! composes its image from these region kinds so the cache compressors face
//! realistic data.
//!
//! Generation is a pure function of `(kind, block_index)` — no global RNG —
//! so every simulation run sees byte-identical memory.

use ehs_model::BlockData;

/// What a region of memory looks like before the program touches it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ImageKind {
    /// All zero bytes (BSS, fresh heaps). Maximally compressible.
    Zeros,
    /// Little-endian `u32` ramp: `base + step * word_index`. Models pixel
    /// rows, sample buffers and pointer tables; BDI-friendly.
    Gradient {
        /// Value of word 0 of the region.
        base: u32,
        /// Increment between consecutive words.
        step: u32,
    },
    /// Printable ASCII text with word-like structure; FPC/DZC-friendly
    /// (high bytes are zero-ish, values small).
    Text {
        /// Stream seed.
        seed: u64,
    },
    /// Small signed integers up to `magnitude`, stored as `u32`. Models
    /// coefficient tables (DCT, filter taps); FPC-friendly.
    SmallInts {
        /// Stream seed.
        seed: u64,
        /// Values are drawn from `[-magnitude, magnitude]`.
        magnitude: u32,
    },
    /// Uniformly random bytes (crypto state, already-compressed data).
    /// Incompressible.
    Random {
        /// Stream seed.
        seed: u64,
    },
    /// Block-granular mixture: each block is either small-integer data
    /// (compressible) or random bytes, chosen by a per-block hash. Models
    /// partially-encoded buffers — e.g. a JPEG bitstream interleaving
    /// structured headers with entropy-coded noise — whose *average*
    /// compressibility sits between the extremes.
    Mixed {
        /// Stream seed.
        seed: u64,
        /// Percentage of blocks that are compressible (0-100).
        compressible_pct: u8,
    },
    /// Exact literal contents: the eight little-endian words of one 32-byte
    /// block, repeated cyclically across the region. The only kind whose
    /// bytes are *chosen* rather than procedurally generated — the
    /// leakscope harness uses it to plant a victim secret (and the
    /// attacker's co-resident guess bytes) at precise block offsets.
    Literal {
        /// The block's words; word `i` of the address space reads
        /// `words[i % 8]`.
        words: [u32; 8],
    },
}

/// SplitMix64: a tiny, high-quality hash used to derive per-word noise from
/// `(seed, position)` without any stateful RNG.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl ImageKind {
    /// Generates the little-endian word at global word position `word_pos`.
    fn word_at(&self, word_pos: u64) -> u32 {
        match *self {
            ImageKind::Zeros => 0,
            ImageKind::Gradient { base, step } => {
                base.wrapping_add(step.wrapping_mul(word_pos as u32))
            }
            ImageKind::Text { seed } => {
                let h = splitmix64(seed ^ word_pos);
                // Four printable-ish bytes: mostly lowercase letters with
                // occasional spaces, mimicking English text frequency.
                let mut w = 0u32;
                for i in 0..4 {
                    let v = (h >> (i * 8)) as u8;
                    let ch = if v.is_multiple_of(6) { b' ' } else { b'a' + (v % 26) };
                    w |= (ch as u32) << (i * 8);
                }
                w
            }
            ImageKind::SmallInts { seed, magnitude } => {
                let h = splitmix64(seed.wrapping_add(0x5EED) ^ word_pos);
                let span = 2 * magnitude as u64 + 1;
                let v = (h % span) as i64 - magnitude as i64;
                v as i32 as u32
            }
            ImageKind::Random { seed } => splitmix64(seed ^ (word_pos << 1)) as u32,
            // Mixed delegates per block in `materialize`; treat stray word
            // queries as random.
            ImageKind::Mixed { seed, .. } => splitmix64(seed ^ (word_pos << 1)) as u32,
            ImageKind::Literal { words } => words[(word_pos % 8) as usize],
        }
    }

    /// Materialises one block of `block_size` bytes at `block_index`.
    pub fn materialize(&self, block_index: u64, block_size: u32) -> BlockData {
        if let ImageKind::Mixed { seed, compressible_pct } = *self {
            let pick = splitmix64(seed.rotate_left(7) ^ block_index) % 100;
            let kind = if pick < compressible_pct as u64 {
                ImageKind::SmallInts { seed: seed ^ 0x417, magnitude: 512 }
            } else {
                ImageKind::Random { seed: seed ^ 0x5EED }
            };
            return kind.materialize(block_index, block_size);
        }
        let mut block = BlockData::zeroed(block_size);
        let words = block_size / 4;
        let base_word = block_index * words as u64;
        for w in 0..words {
            block.write_u32(w * 4, self.word_at(base_word + w as u64));
        }
        block
    }
}

/// A whole-address-space image: an ordered list of `(start_byte, kind)`
/// regions, looked up by byte address. Region boundaries are byte-based so
/// the image is identical under every cache-block-size configuration.
///
/// # Examples
///
/// ```
/// use ehs_mem::{ImageKind, MemoryImage};
///
/// // Zeros by default, text from byte 0x1000, random from byte 0x2000.
/// let image = MemoryImage::builder(ImageKind::Zeros)
///     .region(0x1000, ImageKind::Text { seed: 1 })
///     .region(0x2000, ImageKind::Random { seed: 2 })
///     .build();
/// assert!(image.materialize(0, 32).is_all_zero());
/// assert!(!image.materialize(0x1800 / 32, 32).is_all_zero());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryImage {
    default: ImageKind,
    /// Sorted by starting byte address; each entry applies from its start
    /// until the next entry's start.
    regions: Vec<(u64, ImageKind)>,
}

impl MemoryImage {
    /// An image that is all zeros.
    pub fn zeros() -> Self {
        MemoryImage { default: ImageKind::Zeros, regions: Vec::new() }
    }

    /// An image of uniformly random bytes.
    pub fn random(seed: u64) -> Self {
        MemoryImage { default: ImageKind::Random { seed }, regions: Vec::new() }
    }

    /// An image that is one uniform kind everywhere.
    pub fn uniform(kind: ImageKind) -> Self {
        MemoryImage { default: kind, regions: Vec::new() }
    }

    /// Starts building a region-patchwork image over a default kind.
    pub fn builder(default: ImageKind) -> MemoryImageBuilder {
        MemoryImageBuilder { default, regions: Vec::new() }
    }

    /// The kind governing the byte at `addr`.
    pub fn kind_at(&self, addr: u64) -> ImageKind {
        match self.regions.binary_search_by_key(&addr, |&(s, _)| s) {
            Ok(i) => self.regions[i].1,
            Err(0) => self.default,
            Err(i) => self.regions[i - 1].1,
        }
    }

    /// Materialises the block at `block_index` for a given block size; the
    /// governing region is chosen by the block's base byte address.
    pub fn materialize(&self, block_index: u64, block_size: u32) -> BlockData {
        self.kind_at(block_index * block_size as u64).materialize(block_index, block_size)
    }
}

/// Builder for [`MemoryImage`] (regions may be added in any order).
#[derive(Debug, Clone)]
pub struct MemoryImageBuilder {
    default: ImageKind,
    regions: Vec<(u64, ImageKind)>,
}

impl MemoryImageBuilder {
    /// Adds a region starting at byte `start_addr` (inclusive) with the
    /// given kind; it extends to the next region's start or forever.
    pub fn region(mut self, start_addr: u64, kind: ImageKind) -> Self {
        self.regions.push((start_addr, kind));
        self
    }

    /// Finalises the image.
    ///
    /// # Panics
    ///
    /// Panics if two regions share a starting block.
    pub fn build(mut self) -> MemoryImage {
        self.regions.sort_by_key(|&(s, _)| s);
        for pair in self.regions.windows(2) {
            assert_ne!(pair[0].0, pair[1].0, "duplicate region start {}", pair[0].0);
        }
        MemoryImage { default: self.default, regions: self.regions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_materialize_to_zero_blocks() {
        let b = ImageKind::Zeros.materialize(12, 32);
        assert!(b.is_all_zero());
    }

    #[test]
    fn gradient_is_a_ramp_across_blocks() {
        let kind = ImageKind::Gradient { base: 100, step: 3 };
        let b0 = kind.materialize(0, 32);
        let b1 = kind.materialize(1, 32);
        assert_eq!(b0.read_u32(0), 100);
        assert_eq!(b0.read_u32(4), 103);
        // Block 1 continues exactly where block 0 left off.
        assert_eq!(b1.read_u32(0), 100 + 3 * 8);
    }

    #[test]
    fn text_is_printable_ascii() {
        let b = ImageKind::Text { seed: 42 }.materialize(5, 64);
        for &byte in b.as_slice() {
            assert!(byte == b' ' || byte.is_ascii_lowercase(), "byte {byte:#x}");
        }
    }

    #[test]
    fn small_ints_respect_magnitude() {
        let kind = ImageKind::SmallInts { seed: 9, magnitude: 20 };
        let b = kind.materialize(3, 64);
        for w in b.words() {
            let v = w as i32;
            assert!((-20..=20).contains(&v), "value {v}");
        }
    }

    #[test]
    fn mixed_blocks_are_a_per_block_mixture() {
        let kind = ImageKind::Mixed { seed: 3, compressible_pct: 60 };
        let mut small = 0;
        for b in 0..200u64 {
            let block = kind.materialize(b, 32);
            // Small-int blocks have every word below ~2^10 in magnitude.
            if block.words().all(|w| (w as i32).unsigned_abs() <= 512) {
                small += 1;
            }
        }
        assert!((90..150).contains(&small), "compressible blocks: {small}/200");
        // Deterministic.
        assert_eq!(kind.materialize(7, 32), kind.materialize(7, 32));
    }

    #[test]
    fn random_blocks_differ_between_positions_and_seeds() {
        let k = ImageKind::Random { seed: 1 };
        assert_ne!(k.materialize(0, 32), k.materialize(1, 32));
        assert_ne!(k.materialize(0, 32), ImageKind::Random { seed: 2 }.materialize(0, 32));
        // But are reproducible.
        assert_eq!(k.materialize(7, 32), k.materialize(7, 32));
    }

    #[test]
    fn region_lookup_picks_latest_start_at_or_before() {
        let image = MemoryImage::builder(ImageKind::Zeros)
            .region(0x1000, ImageKind::Random { seed: 1 })
            .region(0x2000, ImageKind::Text { seed: 2 })
            .build();
        assert_eq!(image.kind_at(0), ImageKind::Zeros);
        assert_eq!(image.kind_at(0x1000), ImageKind::Random { seed: 1 });
        assert_eq!(image.kind_at(0x1800), ImageKind::Random { seed: 1 });
        assert_eq!(image.kind_at(0x2000), ImageKind::Text { seed: 2 });
        assert_eq!(image.kind_at(1 << 30), ImageKind::Text { seed: 2 });
    }

    #[test]
    fn builder_accepts_out_of_order_regions() {
        let image = MemoryImage::builder(ImageKind::Zeros)
            .region(0x2000, ImageKind::Text { seed: 2 })
            .region(0x1000, ImageKind::Random { seed: 1 })
            .build();
        assert_eq!(image.kind_at(0x1200), ImageKind::Random { seed: 1 });
    }

    #[test]
    fn regions_are_block_size_invariant() {
        let image = MemoryImage::builder(ImageKind::Zeros)
            .region(0x1000, ImageKind::Random { seed: 1 })
            .build();
        // The byte at 0x1000 is random-region under every block size.
        for bs in [16u32, 32, 64] {
            let block = image.materialize(0x1000 / bs as u64, bs);
            assert!(!block.is_all_zero(), "block size {bs}");
        }
    }

    #[test]
    fn literal_blocks_reproduce_their_words_exactly() {
        let words = [0xDEAD_BEEFu32, 1, 2, 3, 4, 5, 6, 0x0102_0304];
        let block = ImageKind::Literal { words }.materialize(4, 32);
        for (i, &w) in words.iter().enumerate() {
            assert_eq!(block.read_u32(4 * i as u32), w);
        }
        // Word-aligned regions see the same bytes regardless of block index
        // (the pattern repeats every 8 words = one 32-byte block).
        let other = ImageKind::Literal { words }.materialize(9, 32);
        assert_eq!(block.as_slice(), other.as_slice());
        // A literal region patched over a zero default is exact at its
        // address and leaves neighbours untouched.
        let image = MemoryImage::builder(ImageKind::Zeros)
            .region(0x80, ImageKind::Literal { words })
            .region(0xA0, ImageKind::Zeros)
            .build();
        assert_eq!(image.materialize(4, 32).read_u32(0), 0xDEAD_BEEF);
        assert!(image.materialize(5, 32).is_all_zero());
    }

    #[test]
    #[should_panic(expected = "duplicate region start")]
    fn duplicate_starts_rejected() {
        let _ = MemoryImage::builder(ImageKind::Zeros)
            .region(0x500, ImageKind::Text { seed: 1 })
            .region(0x500, ImageKind::Random { seed: 2 })
            .build();
    }
}
