//! Nonvolatile main-memory model for the Kagura stack.
//!
//! The paper's EHS pairs a volatile SRAM cache with NVM main memory (16 MB
//! ReRAM by default; PCM and STT-RAM in the sensitivity study). Two things
//! about the NVM matter to Kagura:
//!
//! 1. **It is expensive** — per-block read/write latency and energy are an
//!    order of magnitude above an SRAM hit, which is what makes wasted
//!    compressions costly (every avoidable miss pays `E_miss`).
//! 2. **It holds real bytes** — compressors operate on actual block
//!    contents, so the NVM is a lazily-materialised byte store seeded from a
//!    deterministic [`MemoryImage`] describing what a program's address
//!    space looks like (zero BSS, text-like regions, gradient arrays, …).
//!
//! # Examples
//!
//! ```
//! use ehs_mem::{MemoryImage, Nvm};
//! use ehs_model::{Address, NvmParams};
//!
//! let mut nvm = Nvm::new(NvmParams::table1(), 32, MemoryImage::zeros());
//! let read = nvm.read_block(Address::new(0x100));
//! assert!(read.data.is_all_zero());
//! assert_eq!(read.latency, NvmParams::table1().read_latency);
//! ```

pub mod image;

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use ehs_model::{Address, BlockData, Cycles, Energy, NvmParams};
use serde::{Deserialize, Serialize};

pub use image::{ImageKind, MemoryImage};

/// Multiplicative hasher for block indices.
///
/// The block map is on the simulator's NVM fill/write-back path, where
/// SipHash on a `u64` key is measurable. Keys are block indices from
/// deterministic kernels — not attacker-controlled — so a Fibonacci
/// multiply (golden-ratio constant) mixes plenty. Nothing observable
/// depends on map order: [`Nvm::resident_indices`] is documented
/// unordered and every consumer sorts.
#[derive(Default)]
struct BlockIndexHasher(u64);

impl Hasher for BlockIndexHasher {
    fn write(&mut self, bytes: &[u8]) {
        // Generic path (unused by u64 keys); fold bytes in.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u64(&mut self, i: u64) {
        self.0 = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn finish(&self) -> u64 {
        // High bits carry the mix; HashMap keeps the low bits.
        self.0.rotate_left(32)
    }
}

type BlockMap = HashMap<u64, BlockData, BuildHasherDefault<BlockIndexHasher>>;

/// The outcome of one NVM block read.
#[derive(Debug, Clone, PartialEq)]
pub struct NvmRead {
    /// The block contents.
    pub data: BlockData,
    /// Access latency in core cycles.
    pub latency: Cycles,
    /// Energy consumed by the access.
    pub energy: Energy,
}

/// The outcome of one NVM block write.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NvmWrite {
    /// Access latency in core cycles.
    pub latency: Cycles,
    /// Energy consumed by the access.
    pub energy: Energy,
}

/// Cumulative NVM traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NvmStats {
    /// Number of block reads served.
    pub reads: u64,
    /// Number of block writes absorbed.
    pub writes: u64,
    /// Total read energy.
    pub read_energy: Energy,
    /// Total write energy.
    pub write_energy: Energy,
}

impl NvmStats {
    /// Total energy spent in the NVM.
    pub fn total_energy(&self) -> Energy {
        self.read_energy + self.write_energy
    }
}

/// The nonvolatile main memory.
///
/// Blocks are materialised on first touch from the [`MemoryImage`] and kept
/// in a hash map thereafter, so arbitrarily large address spaces cost only
/// what the workload actually touches. Contents survive "power failure" by
/// construction — the simulator simply never clears this structure.
#[derive(Debug, Clone)]
pub struct Nvm {
    params: NvmParams,
    block_size: u32,
    addr_mask: u64,
    image: MemoryImage,
    blocks: BlockMap,
    stats: NvmStats,
}

impl Nvm {
    /// Creates an NVM of the given parameters, block granularity and
    /// initial image.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is not a power of two ≥ 4 or the NVM capacity
    /// is not a power of two multiple of the block size.
    pub fn new(params: NvmParams, block_size: u32, image: MemoryImage) -> Self {
        assert!(block_size >= 4 && block_size.is_power_of_two(), "bad block size {block_size}");
        assert!(
            params.size_bytes.is_power_of_two() && params.size_bytes >= block_size as u64,
            "NVM capacity must be a power of two >= block size"
        );
        Nvm {
            params,
            block_size,
            addr_mask: params.size_bytes - 1,
            image,
            blocks: BlockMap::default(),
            stats: NvmStats::default(),
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &NvmParams {
        &self.params
    }

    /// Block granularity in bytes.
    pub fn block_size(&self) -> u32 {
        self.block_size
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> NvmStats {
        self.stats
    }

    /// Resets the traffic counters (contents are retained).
    pub fn reset_stats(&mut self) {
        self.stats = NvmStats::default();
    }

    fn wrap(&self, addr: Address) -> u64 {
        (addr.get() & self.addr_mask) >> self.block_size.trailing_zeros()
    }

    fn materialize(&mut self, block_index: u64) -> &mut BlockData {
        let size = self.block_size;
        let image = &self.image;
        self.blocks.entry(block_index).or_insert_with(|| image.materialize(block_index, size))
    }

    /// Reads the block containing `addr`, paying the technology's read cost.
    ///
    /// Addresses beyond the capacity wrap (the physical address space is a
    /// power of two).
    pub fn read_block(&mut self, addr: Address) -> NvmRead {
        let idx = self.wrap(addr);
        let data = self.materialize(idx).clone();
        self.stats.reads += 1;
        self.stats.read_energy += self.params.read_energy;
        NvmRead { data, latency: self.params.read_latency, energy: self.params.read_energy }
    }

    /// Writes a full block at the block containing `addr`, paying the
    /// technology's write cost.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one block long.
    pub fn write_block(&mut self, addr: Address, data: BlockData) -> NvmWrite {
        assert_eq!(data.len(), self.block_size as usize, "write must be one full block");
        let idx = self.wrap(addr);
        self.blocks.insert(idx, data);
        self.stats.writes += 1;
        self.stats.write_energy += self.params.write_energy;
        NvmWrite { latency: self.params.write_latency, energy: self.params.write_energy }
    }

    /// Like [`Nvm::write_block`], but borrows the data: an already
    /// materialised block is overwritten in place, so steady-state
    /// write-backs allocate nothing. Only a first touch clones.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one block long.
    pub fn write_block_from(&mut self, addr: Address, data: &BlockData) -> NvmWrite {
        assert_eq!(data.len(), self.block_size as usize, "write must be one full block");
        let idx = self.wrap(addr);
        self.blocks
            .entry(idx)
            .and_modify(|b| b.as_mut_slice().copy_from_slice(data.as_slice()))
            .or_insert_with(|| data.clone());
        self.stats.writes += 1;
        self.stats.write_energy += self.params.write_energy;
        NvmWrite { latency: self.params.write_latency, energy: self.params.write_energy }
    }

    /// Writes a full block *without* paying an access cost and without
    /// touching the traffic counters.
    ///
    /// This models data whose persistence was already paid for elsewhere —
    /// e.g. NvMR's renamed store writes are charged incrementally as the
    /// stores commit, so the coherence write-back at power failure is free.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one block long.
    pub fn store_silent(&mut self, addr: Address, data: BlockData) {
        assert_eq!(data.len(), self.block_size as usize, "write must be one full block");
        let idx = self.wrap(addr);
        self.blocks.insert(idx, data);
    }

    /// Like [`Nvm::store_silent`], but borrows the data: an already
    /// materialised block is overwritten in place (no per-call clone).
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one block long.
    pub fn store_silent_from(&mut self, addr: Address, data: &BlockData) {
        assert_eq!(data.len(), self.block_size as usize, "write must be one full block");
        let idx = self.wrap(addr);
        self.blocks
            .entry(idx)
            .and_modify(|b| b.as_mut_slice().copy_from_slice(data.as_slice()))
            .or_insert_with(|| data.clone());
    }

    /// Inspects block contents without paying an access (testing/debug aid;
    /// does not touch the stats).
    pub fn peek_block(&mut self, addr: Address) -> &BlockData {
        let idx = self.wrap(addr);
        self.materialize(idx)
    }

    /// Number of blocks materialised so far (testing/debug aid).
    pub fn resident_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Block indices materialised so far, unordered (testing/debug aid).
    pub fn resident_indices(&self) -> Vec<u64> {
        self.blocks.keys().copied().collect()
    }

    /// Base byte address of block index `idx`.
    pub fn block_addr(&self, idx: u64) -> Address {
        Address::new(idx * self.block_size as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehs_model::NvmKind;

    fn small_nvm(image: MemoryImage) -> Nvm {
        Nvm::new(NvmParams::new(NvmKind::ReRam, 1 << 20), 32, image)
    }

    #[test]
    fn reads_are_lazy_and_deterministic() {
        let mut nvm = small_nvm(MemoryImage::random(7));
        assert_eq!(nvm.resident_blocks(), 0);
        let a = nvm.read_block(Address::new(0x40)).data;
        let b = nvm.read_block(Address::new(0x40)).data;
        assert_eq!(a, b);
        assert_eq!(nvm.resident_blocks(), 1);

        // A second NVM with the same image yields identical bytes.
        let mut nvm2 = small_nvm(MemoryImage::random(7));
        assert_eq!(nvm2.read_block(Address::new(0x40)).data, a);
        // And a different seed yields different bytes.
        let mut nvm3 = small_nvm(MemoryImage::random(8));
        assert_ne!(nvm3.read_block(Address::new(0x40)).data, a);
    }

    #[test]
    fn writes_persist() {
        let mut nvm = small_nvm(MemoryImage::zeros());
        let mut block = BlockData::zeroed(32);
        block.write_u32(0, 0xABCD);
        nvm.write_block(Address::new(0x1000), block.clone());
        assert_eq!(nvm.read_block(Address::new(0x1000)).data, block);
    }

    #[test]
    fn sub_block_addresses_alias_to_same_block() {
        let mut nvm = small_nvm(MemoryImage::zeros());
        let mut block = BlockData::zeroed(32);
        block.write_u32(4, 42);
        nvm.write_block(Address::new(0x2000), block);
        // Any address inside [0x2000, 0x2020) reads the same block.
        assert_eq!(nvm.read_block(Address::new(0x201C)).data.read_u32(4), 42);
    }

    #[test]
    fn addresses_wrap_at_capacity() {
        let mut nvm = small_nvm(MemoryImage::zeros());
        let mut block = BlockData::zeroed(32);
        block.write_u32(0, 9);
        nvm.write_block(Address::new(0x123), block);
        let wrapped = Address::new(0x123 + (1 << 20));
        assert_eq!(nvm.read_block(wrapped).data.read_u32(0), 9);
    }

    #[test]
    fn costs_match_technology_parameters() {
        let params = NvmParams::new(NvmKind::Pcm, 1 << 20);
        let mut nvm = Nvm::new(params, 32, MemoryImage::zeros());
        let r = nvm.read_block(Address::new(0));
        assert_eq!(r.latency, params.read_latency);
        assert_eq!(r.energy, params.read_energy);
        let w = nvm.write_block(Address::new(0), BlockData::zeroed(32));
        assert_eq!(w.latency, params.write_latency);
        assert_eq!(w.energy, params.write_energy);
        let s = nvm.stats();
        assert_eq!((s.reads, s.writes), (1, 1));
        assert_eq!(s.total_energy(), params.read_energy + params.write_energy);
    }

    #[test]
    fn peek_does_not_count_as_traffic() {
        let mut nvm = small_nvm(MemoryImage::zeros());
        let _ = nvm.peek_block(Address::new(0x40));
        assert_eq!(nvm.stats().reads, 0);
    }

    #[test]
    #[should_panic(expected = "one full block")]
    fn wrong_sized_write_rejected() {
        let mut nvm = small_nvm(MemoryImage::zeros());
        nvm.write_block(Address::new(0), BlockData::zeroed(16));
    }

    #[test]
    fn reset_stats_clears_counters_only() {
        let mut nvm = small_nvm(MemoryImage::random(3));
        let before = nvm.read_block(Address::new(0)).data;
        nvm.reset_stats();
        assert_eq!(nvm.stats().reads, 0);
        assert_eq!(nvm.read_block(Address::new(0)).data, before);
    }
}
