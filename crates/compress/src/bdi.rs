//! Base-Delta-Immediate compression (Pekhimenko et al., PACT 2012).
//!
//! BDI exploits *intra-block value similarity*: it views the block as an
//! array of fixed-width values, picks one value as the base and stores every
//! value as either a small signed delta from that base or a small signed
//! "immediate" (a delta from an implicit second base of zero). Eight
//! configurations are tried — zero block, repeated value, and
//! base×delta ∈ {8×1, 8×2, 8×4, 4×1, 4×2, 2×1} — and the smallest wins.

use crate::bitio::{BitReader, BitWriter};
use crate::{passthrough, validate_block, Algorithm, CompressedBlock, Compressor, DecodeError};

/// Encoding tags stored in the 4-bit header.
const TAG_UNCOMPRESSED: u64 = 0;
const TAG_ZEROS: u64 = 1;
const TAG_REPEAT: u64 = 2;
/// Tags 3.. map onto [`CONFIGS`] in order.
const TAG_CONFIG_BASE: u64 = 3;

/// The (base size, delta size) configurations, in bytes.
const CONFIGS: [(u32, u32); 6] = [(8, 1), (8, 2), (8, 4), (4, 1), (4, 2), (2, 1)];

const HEADER_BITS: u32 = 4;

/// The Base-Delta-Immediate compressor.
///
/// # Examples
///
/// ```
/// use ehs_compress::{Bdi, Compressor};
///
/// // 8 words clustered around one base compress to base + small deltas.
/// let mut block = Vec::new();
/// for i in 0..8u32 {
///     block.extend_from_slice(&(0x4000_0000u32 + i).to_le_bytes());
/// }
/// let bdi = Bdi::new();
/// let enc = bdi.compress(&block);
/// assert!(enc.compressed_bytes() <= 14);
/// assert_eq!(bdi.decompress(&enc), block);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Bdi {
    _private: (),
}

impl Bdi {
    /// Creates a BDI compressor.
    pub fn new() -> Self {
        Bdi { _private: () }
    }
}

/// Reads the little-endian unsigned value of width `size` at `idx`.
fn value_at(data: &[u8], idx: usize, size: u32) -> u64 {
    let start = idx * size as usize;
    let mut v = 0u64;
    for (i, &b) in data[start..start + size as usize].iter().enumerate() {
        v |= (b as u64) << (8 * i);
    }
    v
}

/// Returns the signed delta `v - base` if it fits in `delta_bytes`.
fn fitting_delta(v: u64, base: u64, delta_bytes: u32) -> Option<i64> {
    let delta = v.wrapping_sub(base) as i64;
    let bits = 8 * delta_bytes;
    if bits >= 64 {
        return Some(delta);
    }
    let lo = -(1i64 << (bits - 1));
    let hi = (1i64 << (bits - 1)) - 1;
    (lo..=hi).contains(&delta).then_some(delta)
}

/// One candidate encoding for a (base, delta) configuration.
struct ConfigPlan {
    base: u64,
    /// Per value: `true` if encoded against `base`, `false` against zero.
    mask: Vec<bool>,
    deltas: Vec<i64>,
}

fn plan_config(data: &[u8], base_size: u32, delta_size: u32) -> Option<ConfigPlan> {
    if !data.len().is_multiple_of(base_size as usize) {
        return None;
    }
    let n = data.len() / base_size as usize;
    let mut base: Option<u64> = None;
    let mut mask = Vec::with_capacity(n);
    let mut deltas = Vec::with_capacity(n);
    for i in 0..n {
        let v = value_at(data, i, base_size);
        if let Some(d) = fitting_delta(v, 0, delta_size) {
            mask.push(false);
            deltas.push(d);
            continue;
        }
        // Needs the explicit base; adopt the first such value as the base.
        let b = *base.get_or_insert(v);
        match fitting_delta(v, b, delta_size) {
            Some(d) => {
                mask.push(true);
                deltas.push(d);
            }
            None => return None,
        }
    }
    Some(ConfigPlan { base: base.unwrap_or(0), mask, deltas })
}

fn config_bits(data_len: usize, base_size: u32, delta_size: u32) -> u32 {
    let n = (data_len / base_size as usize) as u32;
    HEADER_BITS + 8 * base_size + n + n * 8 * delta_size
}

/// `plan_config(..).is_some()` without building the plan — the same value
/// walk and base-adoption rule, minus the mask/delta vectors.
fn config_fits(data: &[u8], base_size: u32, delta_size: u32) -> bool {
    if !data.len().is_multiple_of(base_size as usize) {
        return false;
    }
    let n = data.len() / base_size as usize;
    let mut base: Option<u64> = None;
    for i in 0..n {
        let v = value_at(data, i, base_size);
        if fitting_delta(v, 0, delta_size).is_some() {
            continue;
        }
        let b = *base.get_or_insert(v);
        if fitting_delta(v, b, delta_size).is_none() {
            return false;
        }
    }
    true
}

impl Compressor for Bdi {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Bdi
    }

    fn compress(&self, data: &[u8]) -> CompressedBlock {
        validate_block(data);

        if data.iter().all(|&b| b == 0) {
            let mut w = BitWriter::new();
            w.write_bits(TAG_ZEROS, HEADER_BITS);
            let (payload, bits) = w.finish();
            return CompressedBlock::new(Algorithm::Bdi, data.len() as u32, payload, bits);
        }

        // Repeated 8-byte value (only meaningful when the block is 8-aligned).
        if data.len().is_multiple_of(8) {
            let first = value_at(data, 0, 8);
            if (1..data.len() / 8).all(|i| value_at(data, i, 8) == first) {
                let mut w = BitWriter::new();
                w.write_bits(TAG_REPEAT, HEADER_BITS);
                w.write_bits(first, 64);
                let (payload, bits) = w.finish();
                return CompressedBlock::new(Algorithm::Bdi, data.len() as u32, payload, bits);
            }
        }

        // Try every base×delta configuration; keep the smallest.
        let mut best: Option<(usize, ConfigPlan, u32)> = None;
        for (ci, &(bs, ds)) in CONFIGS.iter().enumerate() {
            if let Some(plan) = plan_config(data, bs, ds) {
                let bits = config_bits(data.len(), bs, ds);
                if best.as_ref().is_none_or(|&(_, _, b)| bits < b) {
                    best = Some((ci, plan, bits));
                }
            }
        }

        let passthrough_bits = (data.len() as u32 + 1) * 8;
        match best {
            Some((ci, plan, bits)) if bits < passthrough_bits => {
                let (bs, ds) = CONFIGS[ci];
                let mut w = BitWriter::new();
                w.write_bits(TAG_CONFIG_BASE + ci as u64, HEADER_BITS);
                w.write_bits(plan.base & mask_for(bs), 8 * bs);
                for &m in &plan.mask {
                    w.write_bits(m as u64, 1);
                }
                for &d in &plan.deltas {
                    w.write_bits((d as u64) & mask_for(ds), 8 * ds);
                }
                let (payload, actual) = w.finish();
                debug_assert_eq!(actual, bits);
                CompressedBlock::new(Algorithm::Bdi, data.len() as u32, payload, actual)
            }
            // Incompressible; store raw behind an uncompressed flag byte.
            _ => passthrough(Algorithm::Bdi, data),
        }
    }

    /// Allocation-free size query: a candidate configuration's size is
    /// `config_bits(..)`, fixed by the config alone, so only *which*
    /// configs fit matters — and the winner (first strict minimum in
    /// `CONFIGS` order) is decided exactly as in `compress`.
    fn compressed_size_bits(&self, data: &[u8]) -> u32 {
        validate_block(data);
        if data.iter().all(|&b| b == 0) {
            return HEADER_BITS;
        }
        if data.len().is_multiple_of(8) {
            let first = value_at(data, 0, 8);
            if (1..data.len() / 8).all(|i| value_at(data, i, 8) == first) {
                return HEADER_BITS + 64;
            }
        }
        // Walk the configurations cheapest-first: the answer is the
        // *minimum* encoded size over the fitting configurations, so the
        // first fit in ascending-size order is the answer and the
        // remaining (more expensive) value walks can be skipped entirely.
        let mut order: [(u32, u32, u32); CONFIGS.len()] = [(0, 0, 0); CONFIGS.len()];
        for (slot, &(bs, ds)) in order.iter_mut().zip(CONFIGS.iter()) {
            *slot = (config_bits(data.len(), bs, ds), bs, ds);
        }
        order.sort_unstable_by_key(|&(bits, ..)| bits);
        let passthrough_bits = (data.len() as u32 + 1) * 8;
        for &(bits, bs, ds) in order.iter() {
            if bits >= passthrough_bits {
                break; // no remaining configuration can beat passthrough
            }
            if config_fits(data, bs, ds) {
                return bits;
            }
        }
        passthrough_bits
    }

    fn try_decompress_into(
        &self,
        block: &CompressedBlock,
        out: &mut [u8],
    ) -> Result<(), DecodeError> {
        crate::check_out(block, Algorithm::Bdi, out)?;
        let len = out.len();
        let payload = block.payload();
        let corrupt = |detail| DecodeError::Corrupt { algorithm: Algorithm::Bdi, detail };
        // Uncompressed passthrough stores a whole flag byte.
        if payload.first() == Some(&(TAG_UNCOMPRESSED as u8)) && payload.len() == len + 1 {
            out.copy_from_slice(&payload[1..]);
            return Ok(());
        }
        let mut r = BitReader::new(payload);
        let tag = r.try_read_bits(HEADER_BITS)?;
        match tag {
            TAG_ZEROS => out.fill(0),
            TAG_REPEAT => {
                if !len.is_multiple_of(8) {
                    return Err(corrupt("repeat tag on a non-8-aligned block"));
                }
                let v = r.try_read_bits(64)?;
                for chunk in out.chunks_exact_mut(8) {
                    chunk.copy_from_slice(&v.to_le_bytes());
                }
            }
            t => {
                let ci = t.wrapping_sub(TAG_CONFIG_BASE) as usize;
                if ci >= CONFIGS.len() {
                    return Err(corrupt("tag names no base\u{d7}delta configuration"));
                }
                let (bs, ds) = CONFIGS[ci];
                if !len.is_multiple_of(bs as usize) {
                    return Err(corrupt("base size does not divide the block"));
                }
                let n = len / bs as usize;
                // The mask fits a register: at most len/2 values per block.
                if n > 64 {
                    return Err(corrupt("block too large for BDI"));
                }
                let base = r.try_read_bits(8 * bs)?;
                let mut mask = 0u64;
                for i in 0..n {
                    mask |= r.try_read_bits(1)? << i;
                }
                for (i, chunk) in out.chunks_exact_mut(bs as usize).enumerate() {
                    let raw = r.try_read_bits(8 * ds)?;
                    let delta = sign_extend(raw, 8 * ds);
                    let v = if (mask >> i) & 1 == 1 {
                        base.wrapping_add(delta as u64)
                    } else {
                        delta as u64
                    };
                    chunk.copy_from_slice(&v.to_le_bytes()[..bs as usize]);
                }
            }
        }
        Ok(())
    }
}

fn mask_for(bytes: u32) -> u64 {
    if bytes >= 8 {
        u64::MAX
    } else {
        (1u64 << (8 * bytes)) - 1
    }
}

fn sign_extend(raw: u64, bits: u32) -> i64 {
    if bits >= 64 {
        return raw as i64;
    }
    let shift = 64 - bits;
    ((raw << shift) as i64) >> shift
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> CompressedBlock {
        let bdi = Bdi::new();
        let enc = bdi.compress(data);
        assert_eq!(bdi.decompress(&enc), data);
        enc
    }

    #[test]
    fn zero_block_is_tiny() {
        let enc = round_trip(&[0u8; 32]);
        assert_eq!(enc.compressed_bytes(), 1);
    }

    #[test]
    fn repeated_value_stores_one_base() {
        let mut block = Vec::new();
        for _ in 0..4 {
            block.extend_from_slice(&0xDEAD_BEEF_1234_5678u64.to_le_bytes());
        }
        let enc = round_trip(&block);
        assert!(enc.compressed_bytes() <= 9); // 4-bit tag + 8-byte value
    }

    #[test]
    fn base8_delta1_for_clustered_u64() {
        let mut block = Vec::new();
        for i in 0..4u64 {
            block.extend_from_slice(&(0x0102_0304_0506_0000 + i * 7).to_le_bytes());
        }
        let enc = round_trip(&block);
        // 4b tag + 8B base + 4b mask + 4×1B deltas = 101 bits = 13 B.
        assert_eq!(enc.compressed_bytes(), 13);
    }

    #[test]
    fn base4_delta1_for_clustered_u32() {
        let mut block = Vec::new();
        for i in 0..8u32 {
            block.extend_from_slice(&(0x4000_0000 + i * 2).to_le_bytes());
        }
        let enc = round_trip(&block);
        // 4b tag + 4B base + 8b mask + 8×1B = 108 bits = 14 B... but 8x1
        // config may win depending on layout; just require a real win.
        assert!(enc.compressed_bytes() <= 14);
    }

    #[test]
    fn immediate_handles_mixed_small_and_based_values() {
        // Alternating small immediates and values near a large base:
        // classic BDI-immediate case.
        let mut block = Vec::new();
        for i in 0..4u32 {
            block.extend_from_slice(&(i * 3).to_le_bytes()); // near zero
            block.extend_from_slice(&(0x7000_1200 + i).to_le_bytes()); // near base
        }
        let enc = round_trip(&block);
        assert!(enc.is_compressed(), "mixed block should compress, got {}", enc.ratio());
    }

    #[test]
    fn random_block_falls_back_to_passthrough() {
        let mut x = 0xACE1u32;
        let mut block = Vec::new();
        for _ in 0..8 {
            x = x.wrapping_mul(0x9E3779B9).wrapping_add(0x85EBCA6B);
            block.extend_from_slice(&x.to_le_bytes());
        }
        let enc = round_trip(&block);
        assert_eq!(enc.compressed_bytes(), 33); // 32 + flag byte
        assert!(!enc.is_compressed());
    }

    #[test]
    fn works_across_block_sizes() {
        for size in [16usize, 32, 64] {
            let block: Vec<u8> = (0..size).map(|i| (i % 7) as u8).collect();
            round_trip(&block);
        }
    }

    #[test]
    fn sign_extension_of_negative_deltas() {
        // Values slightly *below* the base force negative deltas.
        let mut block = Vec::new();
        let base = 0x5000_0000u32;
        for i in 0..8u32 {
            block.extend_from_slice(&(base.wrapping_sub(i * 5)).to_le_bytes());
        }
        let enc = round_trip(&block);
        assert!(enc.is_compressed());
    }

    #[test]
    fn helper_sign_extend() {
        assert_eq!(sign_extend(0xFF, 8), -1);
        assert_eq!(sign_extend(0x7F, 8), 127);
        assert_eq!(sign_extend(0x80, 8), -128);
        assert_eq!(sign_extend(0xFFFF_FFFF_FFFF_FFFF, 64), -1);
    }

    #[test]
    fn size_only_matches_full_compression() {
        let bdi = Bdi::new();
        // Deterministic sweep over compressible and incompressible shapes:
        // zero, repeat, clustered-per-config, mixed immediates, random.
        let mut x = 0x1234_5678u64;
        let mut rnd = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x
        };
        for size in [16usize, 32, 64] {
            for case in 0..2000 {
                let mut block = vec![0u8; size];
                match case % 5 {
                    0 => {} // zeros
                    1 => {
                        let v = rnd().to_le_bytes();
                        for c in block.chunks_exact_mut(8) {
                            c.copy_from_slice(&v);
                        }
                    }
                    2 => {
                        let base = rnd();
                        for c in block.chunks_exact_mut(4) {
                            let v = (base.wrapping_add(rnd() % 251)) as u32;
                            c.copy_from_slice(&v.to_le_bytes());
                        }
                    }
                    3 => {
                        for c in block.chunks_exact_mut(4) {
                            let v = if rnd() % 2 == 0 { rnd() % 100 } else { rnd() } as u32;
                            c.copy_from_slice(&v.to_le_bytes());
                        }
                    }
                    _ => {
                        for b in block.iter_mut() {
                            *b = rnd() as u8;
                        }
                    }
                }
                assert_eq!(
                    bdi.compressed_size_bits(&block),
                    bdi.compress(&block).encoded_bits(),
                    "size-only diverged on {block:?}"
                );
            }
        }
    }

    #[test]
    fn helper_fitting_delta() {
        assert_eq!(fitting_delta(10, 8, 1), Some(2));
        assert_eq!(fitting_delta(8, 10, 1), Some(-2));
        assert_eq!(fitting_delta(300, 0, 1), None);
        assert_eq!(fitting_delta(300, 0, 2), Some(300));
    }
}
