//! Bit-Plane Compression (Kim et al., ISCA 2016) — an extension beyond the
//! paper's four evaluated algorithms, included because the paper's related
//! work (§IX) singles it out and because its delta+bit-plane transform
//! covers data classes BDI misses (correlated streams whose deltas share
//! bit patterns).
//!
//! Pipeline, per the original design, adapted to one cache block of
//! 32-bit words:
//!
//! 1. **Delta**: keep word 0 as a base, replace each later word with the
//!    difference from its predecessor (33-bit signed deltas).
//! 2. **Bit-plane transform**: view the `n−1` deltas as a bit matrix and
//!    transpose it, producing 33 *delta-bit-planes* (DBPs) of `n−1` bits.
//! 3. **XOR**: each DBP is XORed with its neighbour (DBX), turning slowly
//!    varying planes into zero or near-zero words.
//! 4. **Encode** each DBX word: all-zero → 2 bits; all-ones → 5 bits;
//!    otherwise 1 + (n−1) raw bits (simplified from the original's run
//!    and two-bit encodings, keeping the same asymptotics).
//!
//! Decompression reverses each step exactly; the implementation is fully
//! lossless and round-trip tested.

use crate::bitio::{BitReader, BitWriter};
use crate::{passthrough, validate_block, Algorithm, CompressedBlock, Compressor, DecodeError};

/// Number of bit-planes after the delta transform (32-bit deltas + carry).
const PLANES: u32 = 33;

/// The Bit-Plane Compression engine.
///
/// # Examples
///
/// ```
/// use ehs_compress::{Bpc, Compressor};
///
/// // A linear ramp has constant deltas: all DBX planes collapse to zero.
/// let block: Vec<u8> = (0..8u32).flat_map(|i| (1000 + 7 * i).to_le_bytes()).collect();
/// let bpc = Bpc::new();
/// let enc = bpc.compress(&block);
/// assert!(enc.compressed_bytes() < 16);
/// assert_eq!(bpc.decompress(&enc), block);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Bpc {
    _private: (),
}

impl Bpc {
    /// Creates a BPC compressor.
    pub fn new() -> Self {
        Bpc { _private: () }
    }
}

/// Computes the 33-bit sign-extended deltas between consecutive words.
fn deltas_of(words: &[u32]) -> Vec<u64> {
    words
        .windows(2)
        .map(|w| {
            let d = w[1] as i64 - w[0] as i64; // fits in 33 bits
            (d as u64) & ((1u64 << PLANES) - 1)
        })
        .collect()
}

/// Transposes `deltas` (each `PLANES` bits) into `PLANES` planes of
/// `deltas.len()` bits.
fn bit_planes(deltas: &[u64]) -> Vec<u64> {
    let mut planes = vec![0u64; PLANES as usize];
    for (i, &d) in deltas.iter().enumerate() {
        for (p, plane) in planes.iter_mut().enumerate() {
            if (d >> p) & 1 == 1 {
                *plane |= 1 << i;
            }
        }
    }
    planes
}

/// Inverse of [`bit_planes`] (the decoder re-transposes in place; this
/// exists to property-test the transform pair).
#[cfg(test)]
fn un_bit_planes(planes: &[u64], n: usize) -> Vec<u64> {
    let mut deltas = vec![0u64; n];
    for (p, &plane) in planes.iter().enumerate() {
        for (i, delta) in deltas.iter_mut().enumerate() {
            if (plane >> i) & 1 == 1 {
                *delta |= 1 << p;
            }
        }
    }
    deltas
}

impl Compressor for Bpc {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Bpc
    }

    fn compress(&self, data: &[u8]) -> CompressedBlock {
        validate_block(data);
        let words: Vec<u32> = data
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect();
        if words.len() < 2 {
            return passthrough(Algorithm::Bpc, data);
        }
        let n = words.len() - 1; // delta count
        let deltas = deltas_of(&words);
        let planes = bit_planes(&deltas);
        let ones_mask = (1u64 << n) - 1;

        let mut w = BitWriter::new();
        w.write_bits(1, 1); // compressed flag
        w.write_bits(words[0] as u64, 32); // base word
                                           // DBX encoding: plane XOR previous plane (plane 0 emitted raw-ish).
        let mut prev = 0u64;
        for &plane in &planes {
            let dbx = plane ^ prev;
            prev = plane;
            if dbx == 0 {
                w.write_bits(0b00, 2);
            } else if dbx == ones_mask {
                w.write_bits(0b01, 2);
            } else {
                w.write_bits(0b1, 1);
                w.write_bits(dbx, n as u32);
            }
        }
        let (payload, bits) = w.finish();
        if bits.div_ceil(8) >= data.len() as u32 {
            return passthrough(Algorithm::Bpc, data);
        }
        CompressedBlock::new(Algorithm::Bpc, data.len() as u32, payload, bits)
    }

    fn try_decompress_into(
        &self,
        block: &CompressedBlock,
        out: &mut [u8],
    ) -> Result<(), DecodeError> {
        crate::check_out(block, Algorithm::Bpc, out)?;
        let len = out.len();
        let payload = block.payload();
        let mut r = BitReader::new(payload);
        if r.try_read_bits(1)? == 0 {
            // Passthrough: flag byte (0) + raw bytes.
            if payload.len() < len + 1 {
                return Err(DecodeError::Truncated {
                    needed_bits: (len as u32 + 1) * 8,
                    position: payload.len() as u32 * 8,
                });
            }
            out.copy_from_slice(&payload[1..len + 1]);
            return Ok(());
        }
        let n_words = len / 4;
        if n_words < 2 {
            // The encoder only ever emits passthrough for such blocks.
            return Err(DecodeError::Corrupt {
                algorithm: Algorithm::Bpc,
                detail: "compressed flag on a sub-2-word block",
            });
        }
        let n = n_words - 1;
        let ones_mask = (1u64 << n) - 1;
        let base = r.try_read_bits(32)? as u32;
        // The plane set is a fixed register file, like the hardware's
        // transpose network — no heap allocation.
        let mut planes = [0u64; PLANES as usize];
        let mut prev = 0u64;
        for plane in planes.iter_mut() {
            let first = r.try_read_bits(1)?;
            let dbx = if first == 0 {
                if r.try_read_bits(1)? == 0 {
                    0
                } else {
                    ones_mask
                }
            } else {
                r.try_read_bits(n as u32)?
            };
            *plane = dbx ^ prev;
            prev = *plane;
        }
        crate::put_word(out, 0, base);
        let mut cur = base as i64;
        for i in 0..n {
            // Re-transpose delta `i` out of the planes and sign-extend it.
            let mut d = 0u64;
            for (p, &plane) in planes.iter().enumerate() {
                d |= ((plane >> i) & 1) << p;
            }
            let shift = 64 - PLANES;
            let sd = ((d << shift) as i64) >> shift;
            cur += sd;
            crate::put_word(out, i + 1, cur as u32);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> CompressedBlock {
        let bpc = Bpc::new();
        let enc = bpc.compress(data);
        assert_eq!(bpc.decompress(&enc), data, "BPC mismatch on {data:02x?}");
        enc
    }

    #[test]
    fn zero_block_collapses() {
        let enc = round_trip(&[0u8; 32]);
        assert!(enc.compressed_bytes() <= 14, "got {}", enc.compressed_bytes());
    }

    #[test]
    fn linear_ramps_are_bpcs_sweet_spot() {
        // Constant delta: one DBX pattern then all-zero planes.
        let block: Vec<u8> = (0..8u32).flat_map(|i| (50_000 + 1_000 * i).to_le_bytes()).collect();
        let enc = round_trip(&block);
        assert!(enc.compressed_bytes() <= 16, "got {}", enc.compressed_bytes());
    }

    #[test]
    fn correlated_noise_still_compresses() {
        // Small wiggles around a ramp: only low bit-planes stay active.
        let vals = [100i64, 203, 298, 405, 497, 601, 702, 799];
        let block: Vec<u8> = vals.iter().flat_map(|&v| (v as u32).to_le_bytes()).collect();
        let enc = round_trip(&block);
        assert!(enc.is_compressed(), "ratio {}", enc.ratio());
    }

    #[test]
    fn negative_deltas_round_trip() {
        let vals = [1_000_000u32, 500, 2_000_000, 3, 0xFFFF_FFFF, 1, 0x8000_0000, 42];
        let block: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        round_trip(&block);
    }

    #[test]
    fn random_data_falls_back_to_passthrough() {
        let mut x = 0xACE1u32;
        let block: Vec<u8> = (0..8)
            .flat_map(|_| {
                x = x.wrapping_mul(0x9E3779B9).wrapping_add(0x85EBCA6B);
                x.to_le_bytes()
            })
            .collect();
        let enc = round_trip(&block);
        assert_eq!(enc.compressed_bytes(), 33);
    }

    #[test]
    fn all_block_sizes_work() {
        for size in [8usize, 16, 32, 64] {
            let block: Vec<u8> =
                (0..size / 4).flat_map(|i| ((i * 3 + 7) as u32).to_le_bytes()).collect();
            round_trip(&block);
        }
    }

    #[test]
    fn transforms_are_inverses() {
        let words = [5u32, 10, 7, 1_000_000, 0, 0xFFFF_FFFF];
        let deltas = deltas_of(&words);
        let planes = bit_planes(&deltas);
        assert_eq!(un_bit_planes(&planes, deltas.len()), deltas);
    }
}
