//! Cache-compression algorithms for the Kagura stack.
//!
//! Implements the four algorithms the paper evaluates (§II-B), as *real*
//! encoders/decoders over block bytes — not statistical size models — so the
//! compressed sizes the cache simulator sees are exactly what the hardware
//! scheme would produce:
//!
//! * [`Bdi`] — Base-Delta-Immediate (Pekhimenko et al., PACT'12), the
//!   paper's default.
//! * [`Fpc`] — Frequent Pattern Compression (Alameldeen & Wood, TR'04).
//! * [`CPack`] — Cache Packer (Chen et al., TVLSI'10), pattern matching
//!   plus a small FIFO dictionary.
//! * [`Dzc`] — Dynamic Zero Compression (Villa et al., MICRO'00), a
//!   zero-indicator bit per byte.
//!
//! Two further schemes from the paper's related-work section (§IX) are
//! provided as extensions (in [`Algorithm::EXTENDED`] but not in the
//! evaluated [`Algorithm::ALL`] set):
//!
//! * [`Bpc`] — Bit-Plane Compression (Kim et al., ISCA'16).
//! * [`Fvc`] — Frequent Value Compression (Yang et al., MICRO'00).
//!
//! All compressors are infallible and lossless on the encode side:
//! [`Compressor::compress`] always yields an encoding (possibly an
//! uncompressed passthrough) and decoding it restores the original bytes
//! exactly. The decode side is *fallible by design*:
//! [`Compressor::try_decompress_into`] returns a [`DecodeError`] value on
//! a truncated or bit-flipped payload — corruption is a value, not a
//! crash — so fault-injection harnesses can surface a mangled checkpoint
//! stream as a *detected* consistency violation instead of an abort. The
//! panicking [`Compressor::decompress_into`] / [`Compressor::decompress`]
//! wrappers remain for hot paths that only ever see their own encoder's
//! output.
//!
//! # Examples
//!
//! ```
//! use ehs_compress::{Algorithm, Compressor};
//!
//! let block = [0u8; 32];
//! let bdi = Algorithm::Bdi.compressor();
//! let enc = bdi.compress(&block);
//! assert!(enc.compressed_bytes() < 32);
//! assert_eq!(bdi.decompress(&enc), block);
//! ```

pub mod bdi;
pub mod bitio;
pub mod bpc;
pub mod cpack;
pub mod dzc;
pub mod fpc;
pub mod fvc;

use std::fmt;

use ehs_model::CompressorCost;
use ehs_model::Cycles;
use ehs_model::Energy;
use serde::{Deserialize, Serialize};

pub use bdi::Bdi;
pub use bpc::Bpc;
pub use cpack::CPack;
pub use dzc::Dzc;
pub use fpc::Fpc;
pub use fvc::Fvc;

/// Why a compressed payload failed to decode.
///
/// Decoders never panic and never read out of bounds on corrupt input:
/// every structurally impossible stream maps to one of these values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The block was produced by a different algorithm than the decoder.
    WrongAlgorithm {
        /// The decoder's algorithm.
        expected: Algorithm,
        /// The block's algorithm.
        got: Algorithm,
    },
    /// The output buffer is not exactly one original block.
    OutputLen {
        /// The block's original size in bytes.
        expected: u32,
        /// The buffer length supplied.
        got: usize,
    },
    /// The bitstream ended before the decoder read every field.
    Truncated {
        /// Width of the read that failed, in bits.
        needed_bits: u32,
        /// Bit position the decoder had reached.
        position: u32,
    },
    /// A field holds a value the encoder can never emit (bad tag,
    /// impossible run length, oversized geometry).
    Corrupt {
        /// The decoding algorithm.
        algorithm: Algorithm,
        /// What was impossible about the stream.
        detail: &'static str,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DecodeError::WrongAlgorithm { expected, got } => {
                write!(f, "not a {expected} block (got {got})")
            }
            DecodeError::OutputLen { expected, got } => {
                write!(f, "output buffer must be exactly one original block ({expected} bytes, got {got})")
            }
            DecodeError::Truncated { needed_bits, position } => {
                write!(f, "bit stream exhausted: need {needed_bits} bits at position {position}")
            }
            DecodeError::Corrupt { algorithm, detail } => {
                write!(f, "corrupt {algorithm} stream: {detail}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<bitio::Exhausted> for DecodeError {
    fn from(e: bitio::Exhausted) -> Self {
        DecodeError::Truncated { needed_bits: e.needed_bits, position: e.position }
    }
}

/// Identifies one of the modelled compression algorithms (the paper's
/// four evaluated schemes plus two related-work extensions).
///
/// # Examples
///
/// ```
/// use ehs_compress::Algorithm;
///
/// assert_eq!(Algorithm::Bdi.name(), "BDI");
/// assert_eq!(Algorithm::ALL.len(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Base-Delta-Immediate (paper default).
    Bdi,
    /// Frequent Pattern Compression.
    Fpc,
    /// C-Pack.
    CPack,
    /// Dynamic Zero Compression.
    Dzc,
    /// Bit-Plane Compression (related-work extension, §IX).
    Bpc,
    /// Frequent Value Compression (related-work extension, §IX).
    Fvc,
}

impl Algorithm {
    /// The four algorithms the paper evaluates, in Fig 23 order.
    pub const ALL: [Algorithm; 4] =
        [Algorithm::Bdi, Algorithm::Fpc, Algorithm::CPack, Algorithm::Dzc];

    /// Every implemented algorithm, including the related-work extensions.
    pub const EXTENDED: [Algorithm; 6] = [
        Algorithm::Bdi,
        Algorithm::Fpc,
        Algorithm::CPack,
        Algorithm::Dzc,
        Algorithm::Bpc,
        Algorithm::Fvc,
    ];

    /// Human-readable name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Bdi => "BDI",
            Algorithm::Fpc => "FPC",
            Algorithm::CPack => "C-Pack",
            Algorithm::Dzc => "DZC",
            Algorithm::Bpc => "BPC",
            Algorithm::Fvc => "FVC",
        }
    }

    /// Instantiates the compressor for this algorithm with default costs.
    pub fn compressor(self) -> AnyCompressor {
        match self {
            Algorithm::Bdi => AnyCompressor::Bdi(Bdi::new()),
            Algorithm::Fpc => AnyCompressor::Fpc(Fpc::new()),
            Algorithm::CPack => AnyCompressor::CPack(CPack::new()),
            Algorithm::Dzc => AnyCompressor::Dzc(Dzc::new()),
            Algorithm::Bpc => AnyCompressor::Bpc(Bpc::new()),
            Algorithm::Fvc => AnyCompressor::Fvc(Fvc::new()),
        }
    }

    /// Default energy/latency cost table for this algorithm.
    ///
    /// BDI comes from paper Table I; the others are extrapolated in
    /// proportion to circuit complexity (DZC is a handful of gates per byte;
    /// C-Pack carries a dictionary CAM; FPC sits between), documented in
    /// DESIGN.md.
    pub fn default_cost(self) -> CompressorCost {
        match self {
            Algorithm::Bdi => CompressorCost::bdi_table1(),
            Algorithm::Fpc => CompressorCost {
                compress_energy: Energy::from_picojoules(2.90),
                decompress_energy: Energy::from_picojoules(1.20),
                compress_latency: Cycles::new(3),
                decompress_latency: Cycles::new(5),
            },
            Algorithm::CPack => CompressorCost {
                compress_energy: Energy::from_picojoules(4.20),
                decompress_energy: Energy::from_picojoules(1.60),
                compress_latency: Cycles::new(4),
                decompress_latency: Cycles::new(8),
            },
            Algorithm::Dzc => CompressorCost {
                compress_energy: Energy::from_picojoules(0.90),
                decompress_energy: Energy::from_picojoules(0.30),
                compress_latency: Cycles::new(1),
                decompress_latency: Cycles::new(1),
            },
            // The bit-plane transpose network is the most complex engine
            // modelled here.
            Algorithm::Bpc => CompressorCost {
                compress_energy: Energy::from_picojoules(5.10),
                decompress_energy: Energy::from_picojoules(2.10),
                compress_latency: Cycles::new(6),
                decompress_latency: Cycles::new(9),
            },
            // FVC is a CAM lookup per word: cheap, DZC-class.
            Algorithm::Fvc => CompressorCost {
                compress_energy: Energy::from_picojoules(1.20),
                decompress_energy: Energy::from_picojoules(0.45),
                compress_latency: Cycles::new(1),
                decompress_latency: Cycles::new(1),
            },
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The result of compressing one cache block.
///
/// Holds the actual encoded payload (so it can be decompressed and verified)
/// together with the size the cache's segmented data array must budget for.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressedBlock {
    algorithm: Algorithm,
    original_len: u32,
    payload: Vec<u8>,
    /// Exact encoded size in bits, before rounding up to whole bytes.
    encoded_bits: u32,
}

impl CompressedBlock {
    /// Creates a compressed block from an encoder's output.
    ///
    /// `encoded_bits` is the exact bit cost (metadata + payload);
    /// `payload` is that bitstream packed into bytes.
    ///
    /// # Panics
    ///
    /// Panics if `payload` is shorter than `encoded_bits` requires.
    pub fn new(
        algorithm: Algorithm,
        original_len: u32,
        payload: Vec<u8>,
        encoded_bits: u32,
    ) -> Self {
        assert!(
            payload.len() * 8 >= encoded_bits as usize,
            "payload too short for declared bit count"
        );
        CompressedBlock { algorithm, original_len, payload, encoded_bits }
    }

    /// Which algorithm produced this encoding.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Size of the original (uncompressed) block in bytes.
    pub fn original_bytes(&self) -> u32 {
        self.original_len
    }

    /// Exact encoded size in bits.
    pub fn encoded_bits(&self) -> u32 {
        self.encoded_bits
    }

    /// Encoded size rounded up to whole bytes — what the data array stores.
    pub fn compressed_bytes(&self) -> u32 {
        self.encoded_bits.div_ceil(8)
    }

    /// `true` if the encoding is strictly smaller than the original block.
    pub fn is_compressed(&self) -> bool {
        self.compressed_bytes() < self.original_len
    }

    /// Compression ratio `compressed / original` (1.0 = incompressible).
    pub fn ratio(&self) -> f64 {
        self.compressed_bytes() as f64 / self.original_len as f64
    }

    /// Borrows the packed payload bitstream.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }
}

/// A lossless cache-block compressor.
///
/// Implementations must be pure functions of the input bytes: compressing
/// the same block twice yields the same encoding, and
/// `decompress(compress(b)) == b` for every block whose length is a
/// multiple of 4.
pub trait Compressor {
    /// Which algorithm this is.
    fn algorithm(&self) -> Algorithm;

    /// Compresses one block.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or its length is not a multiple of 4
    /// (cache blocks are word-aligned).
    fn compress(&self, data: &[u8]) -> CompressedBlock;

    /// Exact encoded size in bits of what [`Compressor::compress`] would
    /// produce, `== compress(data).encoded_bits()` for every input.
    ///
    /// Callers that model a compressed cache's *space* (segment counts)
    /// never touch the payload, so implementations may answer the size
    /// question alone — skipping the bitstream assembly and its
    /// allocations. The default simply runs the compressor.
    ///
    /// # Panics
    ///
    /// Same contract as [`Compressor::compress`].
    fn compressed_size_bits(&self, data: &[u8]) -> u32 {
        self.compress(data).encoded_bits()
    }

    /// Decompresses a block into a caller-provided buffer, without
    /// allocating, reporting corruption as a [`DecodeError`] value.
    ///
    /// This is the primitive everything else builds on: the caller owns
    /// the destination (a resident cache line, a scratch block) and the
    /// decoder writes every byte of it on success. On `Err` the buffer
    /// contents are unspecified (partially written), but the decoder has
    /// neither panicked nor read out of bounds — corrupt payloads are a
    /// *value*, which lets fault-injection harnesses count a mangled
    /// checkpoint stream as a detected consistency violation.
    fn try_decompress_into(
        &self,
        block: &CompressedBlock,
        out: &mut [u8],
    ) -> Result<(), DecodeError>;

    /// Decompresses a block produced by [`Compressor::compress`] into a
    /// caller-provided buffer, without allocating.
    ///
    /// This is the simulator's hot-path wrapper for payloads it encoded
    /// itself; use [`Compressor::try_decompress_into`] for input that may
    /// be corrupt.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != block.original_bytes()`, if `block` was
    /// produced by a different algorithm, or if the payload is corrupt
    /// (the latter cannot happen for values returned by this crate's
    /// compressors).
    fn decompress_into(&self, block: &CompressedBlock, out: &mut [u8]) {
        if let Err(e) = self.try_decompress_into(block, out) {
            panic!("{e}");
        }
    }

    /// Decompresses a block into a fresh allocation, reporting corruption
    /// as a [`DecodeError`] value (allocating wrapper over
    /// [`Compressor::try_decompress_into`]).
    fn try_decompress(&self, block: &CompressedBlock) -> Result<Vec<u8>, DecodeError> {
        let mut out = vec![0u8; block.original_bytes() as usize];
        self.try_decompress_into(block, &mut out)?;
        Ok(out)
    }

    /// Decompresses a block produced by [`Compressor::compress`] into a
    /// fresh allocation (convenience wrapper over
    /// [`Compressor::decompress_into`]).
    ///
    /// # Panics
    ///
    /// Panics if `block` was produced by a different algorithm or the
    /// payload is corrupt (cannot happen for values returned by this
    /// crate's compressors).
    fn decompress(&self, block: &CompressedBlock) -> Vec<u8> {
        let mut out = vec![0u8; block.original_bytes() as usize];
        self.decompress_into(block, &mut out);
        out
    }

    /// Energy/latency cost of this engine.
    fn cost(&self) -> CompressorCost {
        self.algorithm().default_cost()
    }
}

/// An enum of all built-in compressors, for static dispatch in hot loops.
///
/// # Examples
///
/// ```
/// use ehs_compress::{Algorithm, AnyCompressor, Compressor};
///
/// let c: AnyCompressor = Algorithm::Dzc.compressor();
/// let enc = c.compress(&[0u8; 16]);
/// assert_eq!(c.decompress(&enc), vec![0u8; 16]);
/// ```
#[derive(Debug, Clone)]
pub enum AnyCompressor {
    /// Base-Delta-Immediate.
    Bdi(Bdi),
    /// Frequent Pattern Compression.
    Fpc(Fpc),
    /// C-Pack.
    CPack(CPack),
    /// Dynamic Zero Compression.
    Dzc(Dzc),
    /// Bit-Plane Compression.
    Bpc(Bpc),
    /// Frequent Value Compression.
    Fvc(Fvc),
}

impl Compressor for AnyCompressor {
    fn algorithm(&self) -> Algorithm {
        match self {
            AnyCompressor::Bdi(c) => c.algorithm(),
            AnyCompressor::Fpc(c) => c.algorithm(),
            AnyCompressor::CPack(c) => c.algorithm(),
            AnyCompressor::Dzc(c) => c.algorithm(),
            AnyCompressor::Bpc(c) => c.algorithm(),
            AnyCompressor::Fvc(c) => c.algorithm(),
        }
    }

    fn compress(&self, data: &[u8]) -> CompressedBlock {
        match self {
            AnyCompressor::Bdi(c) => c.compress(data),
            AnyCompressor::Fpc(c) => c.compress(data),
            AnyCompressor::CPack(c) => c.compress(data),
            AnyCompressor::Dzc(c) => c.compress(data),
            AnyCompressor::Bpc(c) => c.compress(data),
            AnyCompressor::Fvc(c) => c.compress(data),
        }
    }

    fn compressed_size_bits(&self, data: &[u8]) -> u32 {
        match self {
            AnyCompressor::Bdi(c) => c.compressed_size_bits(data),
            AnyCompressor::Fpc(c) => c.compressed_size_bits(data),
            AnyCompressor::CPack(c) => c.compressed_size_bits(data),
            AnyCompressor::Dzc(c) => c.compressed_size_bits(data),
            AnyCompressor::Bpc(c) => c.compressed_size_bits(data),
            AnyCompressor::Fvc(c) => c.compressed_size_bits(data),
        }
    }

    fn try_decompress_into(
        &self,
        block: &CompressedBlock,
        out: &mut [u8],
    ) -> Result<(), DecodeError> {
        match self {
            AnyCompressor::Bdi(c) => c.try_decompress_into(block, out),
            AnyCompressor::Fpc(c) => c.try_decompress_into(block, out),
            AnyCompressor::CPack(c) => c.try_decompress_into(block, out),
            AnyCompressor::Dzc(c) => c.try_decompress_into(block, out),
            AnyCompressor::Bpc(c) => c.try_decompress_into(block, out),
            AnyCompressor::Fvc(c) => c.try_decompress_into(block, out),
        }
    }
}

pub(crate) fn validate_block(data: &[u8]) {
    assert!(
        !data.is_empty() && data.len().is_multiple_of(4),
        "cache blocks must be a positive multiple of 4 bytes, got {}",
        data.len()
    );
}

/// Checks a decompression destination against the block's metadata.
pub(crate) fn check_out(
    block: &CompressedBlock,
    expected: Algorithm,
    out: &[u8],
) -> Result<(), DecodeError> {
    if block.algorithm() != expected {
        return Err(DecodeError::WrongAlgorithm { expected, got: block.algorithm() });
    }
    if out.len() != block.original_bytes() as usize {
        return Err(DecodeError::OutputLen { expected: block.original_bytes(), got: out.len() });
    }
    Ok(())
}

/// Writes the 32-bit `word` at word index `idx` of `out`, little-endian.
pub(crate) fn put_word(out: &mut [u8], idx: usize, word: u32) {
    out[idx * 4..idx * 4 + 4].copy_from_slice(&word.to_le_bytes());
}

/// Builds an uncompressed passthrough encoding: 1 flag byte + raw bytes.
pub(crate) fn passthrough(algorithm: Algorithm, data: &[u8]) -> CompressedBlock {
    let mut payload = Vec::with_capacity(data.len() + 1);
    payload.push(0u8); // flag byte: 0 = uncompressed
    payload.extend_from_slice(data);
    CompressedBlock::new(algorithm, data.len() as u32, payload, (data.len() as u32 + 1) * 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_blocks() -> Vec<Vec<u8>> {
        let mut blocks = vec![
            vec![0u8; 32],
            vec![0xFFu8; 32],
            (0..32).collect::<Vec<u8>>(),
            b"the quick brown fox jumps over!!".to_vec(),
        ];
        // A base+small-delta block: u32 values near 0x1000_0000.
        let mut deltas = Vec::new();
        for i in 0..8u32 {
            deltas.extend_from_slice(&(0x1000_0000 + i * 3).to_le_bytes());
        }
        blocks.push(deltas);
        // Pseudo-random (incompressible) block.
        let mut x = 0x12345678u32;
        let mut rnd = Vec::new();
        for _ in 0..8 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            rnd.extend_from_slice(&x.to_le_bytes());
        }
        blocks.push(rnd);
        blocks
    }

    #[test]
    fn every_algorithm_round_trips_samples() {
        for alg in Algorithm::EXTENDED {
            let c = alg.compressor();
            for block in sample_blocks() {
                let enc = c.compress(&block);
                assert_eq!(c.decompress(&enc), block, "{alg} failed on {block:02x?}");
                assert_eq!(enc.algorithm(), alg);
                assert_eq!(enc.original_bytes(), block.len() as u32);
            }
        }
    }

    #[test]
    fn zero_blocks_compress_well_everywhere() {
        for alg in Algorithm::EXTENDED {
            let c = alg.compressor();
            let enc = c.compress(&[0u8; 32]);
            // BPC pays a fixed 33-plane header, everyone else crushes a
            // zero block into a few bytes.
            let max = if alg == Algorithm::Bpc { 14 } else { 8 };
            assert!(
                enc.compressed_bytes() <= max,
                "{alg} should crush a zero block, got {}B",
                enc.compressed_bytes()
            );
        }
    }

    #[test]
    fn compressed_size_respects_structural_worst_case() {
        for alg in Algorithm::EXTENDED {
            let c = alg.compressor();
            for block in sample_blocks() {
                let n = block.len() as u32;
                // Worst-case expansion is bounded by each algorithm's
                // per-word/per-byte metadata tax.
                let max = match alg {
                    Algorithm::Bdi => n + 1,              // flag byte
                    Algorithm::Fpc => n + n * 3 / 32 + 1, // 3 bits per word
                    Algorithm::CPack => n + n / 16 + 1,   // 2 bits per word
                    Algorithm::Dzc => n + n / 8,          // 1 bit per byte
                    Algorithm::Bpc => n + 1,              // passthrough fallback
                    Algorithm::Fvc => n + 4 + n / 32 + 1, // header + flags
                };
                let enc = c.compress(&block);
                assert!(
                    enc.compressed_bytes() <= max,
                    "{alg} exploded a {n}B block to {}B",
                    enc.compressed_bytes()
                );
            }
        }
    }

    #[test]
    fn ratio_and_flags_consistent() {
        let c = Algorithm::Bdi.compressor();
        let enc = c.compress(&[0u8; 32]);
        assert!(enc.is_compressed());
        assert!(enc.ratio() < 1.0);
    }

    #[test]
    fn default_costs_ordered_by_complexity() {
        let dzc = Algorithm::Dzc.default_cost();
        let bdi = Algorithm::Bdi.default_cost();
        let cpack = Algorithm::CPack.default_cost();
        assert!(dzc.compress_energy < bdi.compress_energy);
        assert!(bdi.compress_energy < cpack.compress_energy);
    }

    #[test]
    fn algorithm_display_names() {
        assert_eq!(Algorithm::CPack.to_string(), "C-Pack");
        assert_eq!(Algorithm::Fpc.to_string(), "FPC");
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn odd_sized_blocks_rejected() {
        let _ = Algorithm::Bdi.compressor().compress(&[0u8; 7]);
    }

    #[test]
    fn compression_is_deterministic() {
        for alg in Algorithm::EXTENDED {
            let c = alg.compressor();
            for block in sample_blocks() {
                assert_eq!(c.compress(&block), c.compress(&block));
            }
        }
    }
}
