//! Frequent Value Compression (Yang, Zhang & Gupta, MICRO 2000) — the
//! "CC" scheme of the paper's related work (§IX): replace values that
//! appear in a small frequent-value table with short codes, leave the rest
//! verbatim.
//!
//! The hardware scheme profiles a program to pick its frequent values;
//! here the table is seeded with the values ubiquitous in embedded data
//! (0, ±1, small powers of two, 0xFFFFFFFF) plus the block's own most
//! frequent word, whose value is stored in the header — a per-block
//! dynamic slot standing in for the profiled table.
//!
//! Encoding per 32-bit word: 1 flag bit + (3-bit table index | raw word).

use crate::bitio::{BitReader, BitWriter};
use crate::{validate_block, Algorithm, CompressedBlock, Compressor, DecodeError};

/// The static frequent-value table (7 entries; index 7 = the per-block
/// dynamic value).
const STATIC_TABLE: [u32; 7] = [0, 1, 0xFFFF_FFFF, 2, 4, 0x8000_0000, 0x100];

/// Index of the per-block dynamic table slot.
const DYNAMIC_SLOT: u64 = 7;

/// The Frequent Value Compression engine.
///
/// # Examples
///
/// ```
/// use ehs_compress::{Compressor, Fvc};
///
/// // Blocks dominated by a repeated value compress to ~4 bits per word.
/// let block: Vec<u8> = std::iter::repeat(0x1234_5678u32)
///     .take(8)
///     .flat_map(|v| v.to_le_bytes())
///     .collect();
/// let fvc = Fvc::new();
/// let enc = fvc.compress(&block);
/// assert!(enc.compressed_bytes() <= 9);
/// assert_eq!(fvc.decompress(&enc), block);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Fvc {
    _private: (),
}

impl Fvc {
    /// Creates an FVC compressor.
    pub fn new() -> Self {
        Fvc { _private: () }
    }
}

/// The most frequent word in the block that is not already in the static
/// table (ties broken by first occurrence, via the strict `>`).
fn dynamic_value(words: &[u32]) -> u32 {
    let mut best = (0u32, 0usize);
    for &w in words {
        if STATIC_TABLE.contains(&w) {
            continue;
        }
        let count = words.iter().filter(|&&x| x == w).count();
        if count > best.1 {
            best = (w, count);
        }
    }
    best.0
}

fn table_index(word: u32, dynamic: u32) -> Option<u64> {
    if let Some(i) = STATIC_TABLE.iter().position(|&v| v == word) {
        Some(i as u64)
    } else if word == dynamic {
        Some(DYNAMIC_SLOT)
    } else {
        None
    }
}

impl Compressor for Fvc {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Fvc
    }

    fn compress(&self, data: &[u8]) -> CompressedBlock {
        validate_block(data);
        let words: Vec<u32> = data
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect();
        let dynamic = dynamic_value(&words);
        let mut w = BitWriter::new();
        w.write_bits(dynamic as u64, 32); // per-block dynamic table entry
        for &word in &words {
            match table_index(word, dynamic) {
                Some(idx) => {
                    w.write_bits(1, 1);
                    w.write_bits(idx, 3);
                }
                None => {
                    w.write_bits(0, 1);
                    w.write_bits(word as u64, 32);
                }
            }
        }
        let (payload, bits) = w.finish();
        CompressedBlock::new(Algorithm::Fvc, data.len() as u32, payload, bits)
    }

    fn try_decompress_into(
        &self,
        block: &CompressedBlock,
        out: &mut [u8],
    ) -> Result<(), DecodeError> {
        crate::check_out(block, Algorithm::Fvc, out)?;
        let n_words = out.len() / 4;
        let mut r = BitReader::new(block.payload());
        let dynamic = r.try_read_bits(32)? as u32;
        for i in 0..n_words {
            let word = if r.try_read_bits(1)? == 1 {
                let idx = r.try_read_bits(3)?;
                if idx == DYNAMIC_SLOT {
                    dynamic
                } else {
                    STATIC_TABLE[idx as usize]
                }
            } else {
                r.try_read_bits(32)? as u32
            };
            crate::put_word(out, i, word);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> CompressedBlock {
        let fvc = Fvc::new();
        let enc = fvc.compress(data);
        assert_eq!(fvc.decompress(&enc), data, "FVC mismatch on {data:02x?}");
        enc
    }

    #[test]
    fn zero_block_uses_table_hits() {
        let enc = round_trip(&[0u8; 32]);
        // 32-bit header + 8 * 4 bits = 64 bits = 8 bytes.
        assert_eq!(enc.compressed_bytes(), 8);
    }

    #[test]
    fn repeated_custom_value_hits_the_dynamic_slot() {
        let block: Vec<u8> =
            std::iter::repeat_n(0xCAFE_BABEu32, 8).flat_map(|v| v.to_le_bytes()).collect();
        let enc = round_trip(&block);
        assert_eq!(enc.compressed_bytes(), 8);
    }

    #[test]
    fn mixed_content_round_trips() {
        let vals = [0u32, 7, 0xCAFE_BABE, 1, 0xCAFE_BABE, 0xDEAD_BEEF, 4, 0xFFFF_FFFF];
        let block: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let enc = round_trip(&block);
        // 6 table hits (incl. 2 dynamic) + 2 raw words.
        assert_eq!(enc.encoded_bits(), 32 + 6 * 4 + 2 * 33);
    }

    #[test]
    fn incompressible_data_has_bounded_expansion() {
        let mut x = 0x1357u32;
        let block: Vec<u8> = (0..16)
            .flat_map(|_| {
                x = x.wrapping_mul(0x9E3779B9).wrapping_add(0x85EBCA6B);
                x.to_le_bytes()
            })
            .collect();
        let enc = round_trip(&block);
        // Worst case: header + 33 bits/word.
        assert!(enc.encoded_bits() <= 32 + 16 * 33);
    }

    #[test]
    fn dynamic_value_selection() {
        assert_eq!(dynamic_value(&[5, 5, 9, 5]), 5);
        // Static-table values are skipped.
        assert_eq!(dynamic_value(&[0, 0, 0, 8]), 8);
        // All-static block: dynamic defaults to 0 (harmless).
        assert_eq!(dynamic_value(&[0, 1, 2, 4]), 0);
    }
}
