//! C-Pack cache compression (Chen et al., IEEE TVLSI 2010).
//!
//! C-Pack examines each 32-bit word for static patterns (all zero, mostly
//! zero) and for full or partial matches against a small FIFO dictionary of
//! recently seen words. Codes, ordered by how much they pay:
//!
//! | code  | meaning                                | cost (bits) |
//! |-------|----------------------------------------|-------------|
//! | 00    | `zzzz` — zero word                     | 2           |
//! | 10    | `mmmm` — full dictionary match         | 2 + 4       |
//! | 1101  | `zzzx` — three zero bytes + literal    | 4 + 8       |
//! | 1110  | `mmmx` — 3-byte dict match + literal   | 4 + 4 + 8   |
//! | 1100  | `mmxx` — 2-byte dict match + 2 literal | 4 + 4 + 16  |
//! | 01    | `xxxx` — unmatched word                | 2 + 32      |
//!
//! The dictionary is rebuilt identically during decompression: every word
//! emitted as `xxxx`, `mmxx` or `mmmx` is pushed in FIFO order, so encoder
//! and decoder stay in lockstep.

use crate::bitio::{BitReader, BitWriter};
use crate::{validate_block, Algorithm, CompressedBlock, Compressor, DecodeError};

const DICT_ENTRIES: usize = 16;
const IDX_BITS: u32 = 4;

/// The C-Pack compressor.
///
/// # Examples
///
/// ```
/// use ehs_compress::{CPack, Compressor};
///
/// // Repeating words become full dictionary matches after first sight.
/// let mut block = Vec::new();
/// for _ in 0..8 {
///     block.extend_from_slice(&0xCAFE_F00Du32.to_le_bytes());
/// }
/// let cpack = CPack::new();
/// let enc = cpack.compress(&block);
/// assert!(enc.compressed_bytes() < 16);
/// assert_eq!(cpack.decompress(&enc), block);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CPack {
    _private: (),
}

impl CPack {
    /// Creates a C-Pack compressor.
    pub fn new() -> Self {
        CPack { _private: () }
    }
}

/// FIFO dictionary shared (structurally) by encoder and decoder.
///
/// Fixed-size, like the hardware CAM it models — no heap allocation per
/// compression or decompression.
#[derive(Debug, Default)]
struct Dictionary {
    words: [u32; DICT_ENTRIES],
    len: usize,
    next: usize,
}

impl Dictionary {
    fn push(&mut self, word: u32) {
        if self.len < DICT_ENTRIES {
            self.words[self.len] = word;
            self.len += 1;
        } else {
            self.words[self.next] = word;
            self.next = (self.next + 1) % DICT_ENTRIES;
        }
    }

    /// Finds the best match, preferring full > 3-byte > 2-byte.
    fn best_match(&self, word: u32) -> Option<(usize, MatchKind)> {
        let mut best: Option<(usize, MatchKind)> = None;
        for (i, &d) in self.words[..self.len].iter().enumerate() {
            let kind = if d == word {
                MatchKind::Full
            } else if (d ^ word) & 0xFFFF_FF00 == 0 {
                MatchKind::High3
            } else if (d ^ word) & 0xFFFF_0000 == 0 {
                MatchKind::High2
            } else {
                continue;
            };
            if best.is_none_or(|(_, k)| kind > k) {
                best = Some((i, kind));
                if kind == MatchKind::Full {
                    break;
                }
            }
        }
        best
    }

    fn get(&self, idx: usize) -> u32 {
        self.words[idx]
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum MatchKind {
    High2,
    High3,
    Full,
}

impl Compressor for CPack {
    fn algorithm(&self) -> Algorithm {
        Algorithm::CPack
    }

    fn compress(&self, data: &[u8]) -> CompressedBlock {
        validate_block(data);
        let mut dict = Dictionary::default();
        let mut w = BitWriter::new();
        for chunk in data.chunks_exact(4) {
            let word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
            if word == 0 {
                w.write_bits(0b00, 2); // zzzz
                continue;
            }
            if word <= 0xFF {
                w.write_bits(0b1101, 4); // zzzx
                w.write_bits(word as u64, 8);
                continue;
            }
            match dict.best_match(word) {
                Some((idx, MatchKind::Full)) => {
                    w.write_bits(0b10, 2); // mmmm
                    w.write_bits(idx as u64, IDX_BITS);
                }
                Some((idx, MatchKind::High3)) => {
                    w.write_bits(0b1110, 4); // mmmx
                    w.write_bits(idx as u64, IDX_BITS);
                    w.write_bits((word & 0xFF) as u64, 8);
                    dict.push(word);
                }
                Some((idx, MatchKind::High2)) => {
                    w.write_bits(0b1100, 4); // mmxx
                    w.write_bits(idx as u64, IDX_BITS);
                    w.write_bits((word & 0xFFFF) as u64, 16);
                    dict.push(word);
                }
                None => {
                    w.write_bits(0b01, 2); // xxxx
                    w.write_bits(word as u64, 32);
                    dict.push(word);
                }
            }
        }
        let (payload, bits) = w.finish();
        CompressedBlock::new(Algorithm::CPack, data.len() as u32, payload, bits)
    }

    fn try_decompress_into(
        &self,
        block: &CompressedBlock,
        out: &mut [u8],
    ) -> Result<(), DecodeError> {
        crate::check_out(block, Algorithm::CPack, out)?;
        let n_words = out.len() / 4;
        let mut dict = Dictionary::default();
        let mut r = BitReader::new(block.payload());
        for i in 0..n_words {
            let word = match r.try_read_bits(2)? {
                0b00 => 0,
                0b01 => {
                    let word = r.try_read_bits(32)? as u32;
                    dict.push(word);
                    word
                }
                0b10 => dict.get(r.try_read_bits(IDX_BITS)? as usize),
                _ => match r.try_read_bits(2)? {
                    0b01 => r.try_read_bits(8)? as u32, // zzzx
                    0b10 => {
                        // mmmx
                        let idx = r.try_read_bits(IDX_BITS)? as usize;
                        let lit = r.try_read_bits(8)? as u32;
                        let word = (dict.get(idx) & 0xFFFF_FF00) | lit;
                        dict.push(word);
                        word
                    }
                    0b00 => {
                        // mmxx
                        let idx = r.try_read_bits(IDX_BITS)? as usize;
                        let lit = r.try_read_bits(16)? as u32;
                        let word = (dict.get(idx) & 0xFFFF_0000) | lit;
                        dict.push(word);
                        word
                    }
                    // The encoder never emits code 1111: only a corrupted
                    // stream reaches here.
                    _ => {
                        return Err(DecodeError::Corrupt {
                            algorithm: Algorithm::CPack,
                            detail: "code 1111 is never emitted",
                        })
                    }
                },
            };
            crate::put_word(out, i, word);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> CompressedBlock {
        let c = CPack::new();
        let enc = c.compress(data);
        assert_eq!(c.decompress(&enc), data, "C-Pack mismatch on {data:02x?}");
        enc
    }

    #[test]
    fn zero_block_costs_two_bits_per_word() {
        let enc = round_trip(&[0u8; 32]);
        assert_eq!(enc.compressed_bytes(), 2); // 8 words * 2 bits
    }

    #[test]
    fn repeating_word_hits_dictionary() {
        let mut block = Vec::new();
        for _ in 0..8 {
            block.extend_from_slice(&0x1122_3344u32.to_le_bytes());
        }
        let enc = round_trip(&block);
        // First word xxxx (34 bits), then 7 * mmmm (6 bits) = 76 bits = 10B.
        assert_eq!(enc.compressed_bytes(), 10);
    }

    #[test]
    fn partial_matches_use_mmmx() {
        let mut block = Vec::new();
        // Same upper 3 bytes, different low byte.
        for i in 0..8u32 {
            block.extend_from_slice(&(0xAABB_CC00 + i).to_le_bytes());
        }
        let enc = round_trip(&block);
        // xxxx + 7 * mmmx(16) = 34 + 112 = 146 bits = 19 B.
        assert_eq!(enc.compressed_bytes(), 19);
    }

    #[test]
    fn small_bytes_use_zzzx() {
        let mut block = Vec::new();
        for i in 1..9u32 {
            block.extend_from_slice(&i.to_le_bytes());
        }
        let enc = round_trip(&block);
        // 8 words * 12 bits = 96 bits = 12 B.
        assert_eq!(enc.compressed_bytes(), 12);
    }

    #[test]
    fn dictionary_fifo_eviction_stays_in_sync() {
        // More than DICT_ENTRIES distinct words, then repeats of the late
        // ones: forces FIFO wraparound on both sides.
        let mut block = Vec::new();
        for i in 0..20u32 {
            block.extend_from_slice(&(0x0101_0000u32 + i * 0x10101).to_le_bytes());
        }
        for i in 15..20u32 {
            block.extend_from_slice(&(0x0101_0000u32 + i * 0x10101).to_le_bytes());
        }
        round_trip(&block);
    }

    #[test]
    fn mixed_content_round_trips() {
        let block: Vec<u8> = (0..64u32).flat_map(|i| (i * 0x0101_0101 / 3).to_le_bytes()).collect();
        round_trip(&block);
    }

    #[test]
    fn match_kind_ordering_prefers_full() {
        assert!(MatchKind::Full > MatchKind::High3);
        assert!(MatchKind::High3 > MatchKind::High2);
    }
}
