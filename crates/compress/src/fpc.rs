//! Frequent Pattern Compression (Alameldeen & Wood, UW-Madison TR 2004).
//!
//! FPC splits the block into 32-bit words and encodes each with a 3-bit
//! prefix naming one of seven frequent patterns, falling back to the raw
//! word for the eighth prefix:
//!
//! | prefix | pattern                                  | payload |
//! |--------|------------------------------------------|---------|
//! | 000    | zero-word run (1–8 words)                | 3 bits  |
//! | 001    | 4-bit sign-extended                      | 4 bits  |
//! | 010    | 8-bit sign-extended                      | 8 bits  |
//! | 011    | 16-bit sign-extended                     | 16 bits |
//! | 100    | 16-bit value padded with a zero halfword | 16 bits |
//! | 101    | two halfwords, each an 8-bit SE byte     | 16 bits |
//! | 110    | word of four repeated bytes              | 8 bits  |
//! | 111    | uncompressed word                        | 32 bits |

use crate::bitio::{BitReader, BitWriter};
use crate::{validate_block, Algorithm, CompressedBlock, Compressor, DecodeError};

const P_ZERO_RUN: u64 = 0b000;
const P_SE4: u64 = 0b001;
const P_SE8: u64 = 0b010;
const P_SE16: u64 = 0b011;
const P_HALF_PAD: u64 = 0b100;
const P_TWO_HALF: u64 = 0b101;
const P_REP_BYTE: u64 = 0b110;
const P_RAW: u64 = 0b111;

/// The Frequent Pattern Compression engine.
///
/// # Examples
///
/// ```
/// use ehs_compress::{Compressor, Fpc};
///
/// // Small sign-extended integers are FPC's bread and butter.
/// let mut block = Vec::new();
/// for i in -4i32..4 {
///     block.extend_from_slice(&i.to_le_bytes());
/// }
/// let fpc = Fpc::new();
/// let enc = fpc.compress(&block);
/// assert!(enc.compressed_bytes() < 8);
/// assert_eq!(fpc.decompress(&enc), block);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Fpc {
    _private: (),
}

impl Fpc {
    /// Creates an FPC compressor.
    pub fn new() -> Self {
        Fpc { _private: () }
    }
}

fn fits_signed(word: u32, bits: u32) -> bool {
    let v = word as i32 as i64;
    let lo = -(1i64 << (bits - 1));
    let hi = (1i64 << (bits - 1)) - 1;
    (lo..=hi).contains(&v)
}

impl Compressor for Fpc {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Fpc
    }

    fn compress(&self, data: &[u8]) -> CompressedBlock {
        validate_block(data);
        let words: Vec<u32> = data
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect();
        let mut w = BitWriter::new();
        let mut i = 0;
        while i < words.len() {
            let word = words[i];
            if word == 0 {
                // Count a zero run of up to 8 words.
                let mut run = 1;
                while run < 8 && i + run < words.len() && words[i + run] == 0 {
                    run += 1;
                }
                w.write_bits(P_ZERO_RUN, 3);
                w.write_bits(run as u64 - 1, 3);
                i += run;
                continue;
            }
            if fits_signed(word, 4) {
                w.write_bits(P_SE4, 3);
                w.write_bits((word & 0xF) as u64, 4);
            } else if fits_signed(word, 8) {
                w.write_bits(P_SE8, 3);
                w.write_bits((word & 0xFF) as u64, 8);
            } else if fits_signed(word, 16) {
                w.write_bits(P_SE16, 3);
                w.write_bits((word & 0xFFFF) as u64, 16);
            } else if word & 0xFFFF == 0 {
                // Upper halfword significant, lower half zero.
                w.write_bits(P_HALF_PAD, 3);
                w.write_bits((word >> 16) as u64, 16);
            } else if halves_are_se_bytes(word) {
                w.write_bits(P_TWO_HALF, 3);
                w.write_bits((word & 0xFF) as u64, 8);
                w.write_bits(((word >> 16) & 0xFF) as u64, 8);
            } else if is_repeated_bytes(word) {
                w.write_bits(P_REP_BYTE, 3);
                w.write_bits((word & 0xFF) as u64, 8);
            } else {
                w.write_bits(P_RAW, 3);
                w.write_bits(word as u64, 32);
            }
            i += 1;
        }
        let (payload, bits) = w.finish();
        CompressedBlock::new(Algorithm::Fpc, data.len() as u32, payload, bits)
    }

    fn try_decompress_into(
        &self,
        block: &CompressedBlock,
        out: &mut [u8],
    ) -> Result<(), DecodeError> {
        crate::check_out(block, Algorithm::Fpc, out)?;
        let n_words = out.len() / 4;
        let mut r = BitReader::new(block.payload());
        let mut i = 0usize;
        while i < n_words {
            let prefix = r.try_read_bits(3)?;
            let word = match prefix {
                P_ZERO_RUN => {
                    let run = r.try_read_bits(3)? as usize + 1;
                    if i + run > n_words {
                        return Err(DecodeError::Corrupt {
                            algorithm: Algorithm::Fpc,
                            detail: "zero run overflows the block",
                        });
                    }
                    for _ in 0..run {
                        crate::put_word(out, i, 0);
                        i += 1;
                    }
                    continue;
                }
                P_SE4 => sign_extend32(r.try_read_bits(4)? as u32, 4),
                P_SE8 => sign_extend32(r.try_read_bits(8)? as u32, 8),
                P_SE16 => sign_extend32(r.try_read_bits(16)? as u32, 16),
                P_HALF_PAD => (r.try_read_bits(16)? as u32) << 16,
                P_TWO_HALF => {
                    let lo = sign_extend32(r.try_read_bits(8)? as u32, 8) & 0xFFFF;
                    let hi = sign_extend32(r.try_read_bits(8)? as u32, 8) & 0xFFFF;
                    lo | (hi << 16)
                }
                P_REP_BYTE => {
                    let b = r.try_read_bits(8)? as u32;
                    b | (b << 8) | (b << 16) | (b << 24)
                }
                P_RAW => r.try_read_bits(32)? as u32,
                _ => unreachable!("3-bit prefix"),
            };
            crate::put_word(out, i, word);
            i += 1;
        }
        Ok(())
    }
}

/// `true` if both halfwords are sign-extended bytes (pattern 101).
fn halves_are_se_bytes(word: u32) -> bool {
    let lo = (word & 0xFFFF) as u16;
    let hi = (word >> 16) as u16;
    let se = |h: u16| {
        let v = h as i16;
        (-128..=127).contains(&v)
    };
    se(lo) && se(hi)
}

/// `true` if all four bytes are equal (pattern 110).
fn is_repeated_bytes(word: u32) -> bool {
    let b = word & 0xFF;
    word == b | (b << 8) | (b << 16) | (b << 24)
}

fn sign_extend32(raw: u32, bits: u32) -> u32 {
    let shift = 32 - bits;
    (((raw << shift) as i32) >> shift) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> CompressedBlock {
        let fpc = Fpc::new();
        let enc = fpc.compress(data);
        assert_eq!(fpc.decompress(&enc), data, "FPC mismatch on {data:02x?}");
        enc
    }

    #[test]
    fn zero_run_encoding_is_compact() {
        let enc = round_trip(&[0u8; 32]);
        // 8 zero words = one run token: 6 bits -> 1 byte.
        assert_eq!(enc.compressed_bytes(), 1);
    }

    #[test]
    fn zero_runs_split_at_eight_words() {
        let enc = round_trip(&[0u8; 64]);
        // 16 zero words = two run tokens: 12 bits -> 2 bytes.
        assert_eq!(enc.compressed_bytes(), 2);
    }

    #[test]
    fn small_integers_use_short_patterns() {
        let mut block = Vec::new();
        for v in [1i32, -1, 5, -6, 100, -100, 3000, -3000] {
            block.extend_from_slice(&v.to_le_bytes());
        }
        let enc = round_trip(&block);
        assert!(enc.compressed_bytes() < 16, "got {}", enc.compressed_bytes());
    }

    #[test]
    fn repeated_byte_words() {
        let mut block = Vec::new();
        for b in [0x11u32, 0xAA, 0x77, 0xFE] {
            block.extend_from_slice(&(b | (b << 8) | (b << 16) | (b << 24)).to_le_bytes());
        }
        let enc = round_trip(&block);
        // 4 words * 11 bits = 44 bits = 6 bytes.
        assert_eq!(enc.compressed_bytes(), 6);
    }

    #[test]
    fn halfword_padded_pattern() {
        let mut block = Vec::new();
        for v in [0x1234_0000u32, 0xFFFF_0000, 0x8000_0000, 0x00010000] {
            block.extend_from_slice(&v.to_le_bytes());
        }
        let enc = round_trip(&block);
        assert!(enc.compressed_bytes() <= 10);
    }

    #[test]
    fn two_se_halfwords_pattern() {
        // 0x00FF_0001: halves 0x00FF (=255, not SE byte) — use proper SE
        // halves like 0xFFFE (=-2) and 0x0003.
        let word = 0x0003_FFFEu32; // hi=3, lo=-2
        let mut block = Vec::new();
        for _ in 0..4 {
            block.extend_from_slice(&word.to_le_bytes());
        }
        assert!(halves_are_se_bytes(word));
        let enc = round_trip(&block);
        assert!(enc.compressed_bytes() <= 10);
    }

    #[test]
    fn incompressible_words_cost_35_bits() {
        let mut block = Vec::new();
        for v in [0x1234_5678u32, 0x9ABC_DEF0, 0x0F1E_2D3C, 0x4B5A_6978] {
            block.extend_from_slice(&v.to_le_bytes());
        }
        let enc = round_trip(&block);
        // 4 words * 35 bits = 140 bits = 18 bytes (slightly > 16: FPC tax).
        assert_eq!(enc.compressed_bytes(), 18);
    }

    #[test]
    fn ascii_text_compresses_somewhat() {
        let enc = round_trip(b"hello world, fpc here...whee!!!!");
        assert!(enc.compressed_bytes() <= 36);
    }

    #[test]
    fn helper_predicates() {
        assert!(is_repeated_bytes(0x5555_5555));
        assert!(!is_repeated_bytes(0x5555_5554));
        assert!(halves_are_se_bytes(0xFFFF_007F));
        assert!(!halves_are_se_bytes(0x0100_0000));
        assert_eq!(sign_extend32(0xF, 4), u32::MAX);
        assert_eq!(sign_extend32(0x7, 4), 7);
    }
}
