//! Bit-granular writer/reader used by the variable-width encoders (FPC,
//! C-Pack). Bits are packed MSB-first within each byte, matching how a
//! hardware shifter would serialise prefix codes.

/// Packs bits MSB-first into a byte vector.
///
/// # Examples
///
/// ```
/// use ehs_compress::bitio::{BitReader, BitWriter};
///
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_bits(0xFF, 8);
/// let (bytes, bits) = w.finish();
/// assert_eq!(bits, 11);
///
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(r.read_bits(3), 0b101);
/// assert_eq!(r.read_bits(8), 0xFF);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Number of valid bits written so far.
    bit_len: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `width` bits of `value`, MSB-first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or if `value` has bits set above `width`.
    pub fn write_bits(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "width must be at most 64");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value:#x} does not fit in {width} bits"
        );
        for i in (0..width).rev() {
            let bit = ((value >> i) & 1) as u8;
            let bit_pos = self.bit_len % 8;
            if bit_pos == 0 {
                self.bytes.push(0);
            }
            if bit == 1 {
                let last = self.bytes.last_mut().expect("pushed above");
                *last |= 1 << (7 - bit_pos);
            }
            self.bit_len += 1;
        }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> u32 {
        self.bit_len
    }

    /// Finishes, returning the packed bytes and the exact bit count.
    pub fn finish(self) -> (Vec<u8>, u32) {
        (self.bytes, self.bit_len)
    }
}

/// A [`BitReader`] ran out of bits: the stream is shorter than the
/// decoder's field layout requires (a truncated or corrupt payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exhausted {
    /// Width of the read that failed, in bits.
    pub needed_bits: u32,
    /// Bit position the reader had reached when it failed.
    pub position: u32,
}

impl std::fmt::Display for Exhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bit stream exhausted: need {} bits at position {}",
            self.needed_bits, self.position
        )
    }
}

impl std::error::Error for Exhausted {}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes` starting at bit 0.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads `width` bits, MSB-first.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `width` bits remain or `width > 64`.
    pub fn read_bits(&mut self, width: u32) -> u64 {
        match self.try_read_bits(width) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Reads `width` bits, MSB-first, returning [`Exhausted`] instead of
    /// panicking when the stream runs out — the primitive the decoders'
    /// corrupt-input paths are built on.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` (a caller bug, not an input property).
    pub fn try_read_bits(&mut self, width: u32) -> Result<u64, Exhausted> {
        assert!(width <= 64, "width must be at most 64");
        if (self.pos + width) as usize > self.bytes.len() * 8 {
            return Err(Exhausted { needed_bits: width, position: self.pos });
        }
        let mut out = 0u64;
        for _ in 0..width {
            let byte = self.bytes[(self.pos / 8) as usize];
            let bit = (byte >> (7 - (self.pos % 8))) & 1;
            out = (out << 1) | bit as u64;
            self.pos += 1;
        }
        Ok(out)
    }

    /// Current bit position.
    pub fn position(&self) -> u32 {
        self.pos
    }

    /// Number of bits remaining.
    pub fn remaining(&self) -> u32 {
        self.bytes.len() as u32 * 8 - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_widths() {
        let mut w = BitWriter::new();
        let fields: [(u64, u32); 6] =
            [(1, 1), (0b10, 2), (0x7, 3), (0xAB, 8), (0x1234, 16), (0xDEADBEEF, 32)];
        for (v, n) in fields {
            w.write_bits(v, n);
        }
        let (bytes, bits) = w.finish();
        assert_eq!(bits, 62);
        let mut r = BitReader::new(&bytes);
        for (v, n) in fields {
            assert_eq!(r.read_bits(n), v);
        }
    }

    #[test]
    fn sixty_four_bit_values() {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX, 64);
        let (bytes, bits) = w.finish();
        assert_eq!(bits, 64);
        assert_eq!(BitReader::new(&bytes).read_bits(64), u64::MAX);
    }

    #[test]
    fn empty_writer_produces_nothing() {
        let (bytes, bits) = BitWriter::new().finish();
        assert!(bytes.is_empty());
        assert_eq!(bits, 0);
    }

    #[test]
    fn reader_tracks_position_and_remaining() {
        let mut w = BitWriter::new();
        w.write_bits(0b1010, 4);
        let (bytes, _) = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.remaining(), 8);
        r.read_bits(3);
        assert_eq!(r.position(), 3);
        assert_eq!(r.remaining(), 5);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_rejected() {
        BitWriter::new().write_bits(0b100, 2);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn overread_rejected() {
        let mut r = BitReader::new(&[0xFF]);
        r.read_bits(9);
    }

    #[test]
    fn try_read_reports_exhaustion_as_a_value() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.try_read_bits(5), Ok(0b11111));
        assert_eq!(r.try_read_bits(4), Err(Exhausted { needed_bits: 4, position: 5 }));
        // A failed read consumes nothing: the remaining bits stay readable.
        assert_eq!(r.try_read_bits(3), Ok(0b111));
    }
}
