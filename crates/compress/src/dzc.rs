//! Dynamic Zero Compression (Villa, Zhang & Asanović, MICRO 2000).
//!
//! DZC attaches one Zero Indicator Bit (ZIB) to every byte: a set ZIB means
//! the byte is zero and is not stored at all; a clear ZIB means the byte
//! follows verbatim. The encoded size is therefore
//! `block_bytes / 8 + nonzero_bytes` — a very cheap scheme whose benefit is
//! proportional to the zero-byte density of the block.

use crate::bitio::{BitReader, BitWriter};
use crate::{validate_block, Algorithm, CompressedBlock, Compressor, DecodeError};

/// The Dynamic Zero Compression engine.
///
/// # Examples
///
/// ```
/// use ehs_compress::{Compressor, Dzc};
///
/// // Half the bytes zero => roughly half the size plus the ZIB vector.
/// let mut block = vec![0u8; 32];
/// for i in (0..32).step_by(2) {
///     block[i] = 0xAB;
/// }
/// let dzc = Dzc::new();
/// let enc = dzc.compress(&block);
/// assert_eq!(enc.compressed_bytes(), 4 + 16);
/// assert_eq!(dzc.decompress(&enc), block);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Dzc {
    _private: (),
}

impl Dzc {
    /// Creates a DZC compressor.
    pub fn new() -> Self {
        Dzc { _private: () }
    }
}

impl Compressor for Dzc {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Dzc
    }

    fn compress(&self, data: &[u8]) -> CompressedBlock {
        validate_block(data);
        let mut w = BitWriter::new();
        // ZIB vector first (1 = zero byte), then the nonzero bytes.
        for &b in data {
            w.write_bits((b == 0) as u64, 1);
        }
        for &b in data {
            if b != 0 {
                w.write_bits(b as u64, 8);
            }
        }
        let (payload, bits) = w.finish();
        CompressedBlock::new(Algorithm::Dzc, data.len() as u32, payload, bits)
    }

    fn try_decompress_into(
        &self,
        block: &CompressedBlock,
        out: &mut [u8],
    ) -> Result<(), DecodeError> {
        crate::check_out(block, Algorithm::Dzc, out)?;
        let len = out.len();
        // The ZIB vector fits a register pair: blocks are at most 128 B.
        if len > 128 {
            return Err(DecodeError::Corrupt {
                algorithm: Algorithm::Dzc,
                detail: "block too large for DZC",
            });
        }
        let mut r = BitReader::new(block.payload());
        let mut zibs = 0u128;
        for i in 0..len {
            zibs |= (r.try_read_bits(1)? as u128) << i;
        }
        for (i, b) in out.iter_mut().enumerate() {
            *b = if (zibs >> i) & 1 == 1 { 0 } else { r.try_read_bits(8)? as u8 };
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> CompressedBlock {
        let dzc = Dzc::new();
        let enc = dzc.compress(data);
        assert_eq!(dzc.decompress(&enc), data);
        enc
    }

    #[test]
    fn all_zero_block_is_just_the_zib_vector() {
        let enc = round_trip(&[0u8; 32]);
        assert_eq!(enc.compressed_bytes(), 4);
    }

    #[test]
    fn no_zero_bytes_adds_one_eighth_overhead() {
        let enc = round_trip(&[0xFFu8; 32]);
        assert_eq!(enc.compressed_bytes(), 36);
        assert!(!enc.is_compressed());
    }

    #[test]
    fn size_formula_matches() {
        for nz in 0..=32usize {
            let mut block = vec![0u8; 32];
            for b in block.iter_mut().take(nz) {
                *b = 7;
            }
            let enc = round_trip(&block);
            assert_eq!(enc.encoded_bits(), 32 + 8 * nz as u32);
        }
    }

    #[test]
    fn sparse_pointer_like_data_compresses_well() {
        // Pointers with zero upper bytes: 0x0000_xxxx patterns.
        let mut block = Vec::new();
        for i in 0..8u32 {
            block.extend_from_slice(&(0x2000 + i * 4).to_le_bytes());
        }
        let enc = round_trip(&block);
        assert!(enc.compressed_bytes() <= 20);
    }

    #[test]
    fn works_on_16_and_64_byte_blocks() {
        round_trip(&[0u8; 16]);
        round_trip(&[1u8; 64]);
    }
}
