//! Adversarial decode tests: corrupt compressed payloads must surface as
//! [`DecodeError`] values — never a panic, never an out-of-bounds read.
//!
//! The fault-injection harness (ehs-sim::faultinject) relies on this
//! contract to classify a mangled checkpoint stream as a *detected*
//! consistency violation; these tests pin it down for all six codecs
//! under truncation at every byte boundary and under single-bit flips
//! anywhere in the stream.

use ehs_compress::bitio::BitWriter;
use ehs_compress::{Algorithm, CompressedBlock, Compressor, DecodeError};
use proptest::prelude::*;

/// Word-aligned blocks spanning the distributions the encoders branch on.
fn block_strategy() -> impl Strategy<Value = Vec<u8>> {
    let sizes = prop_oneof![Just(16usize), Just(32usize), Just(64usize)];
    sizes.prop_flat_map(|size| {
        prop_oneof![
            proptest::collection::vec(any::<u8>(), size..=size),
            proptest::collection::vec(prop_oneof![4 => Just(0u8), 1 => any::<u8>()], size..=size),
            proptest::collection::vec(-50i32..50i32, size / 4..=size / 4)
                .prop_map(|ws| ws.into_iter().flat_map(|w| w.to_le_bytes()).collect()),
        ]
    })
}

/// Rebuilds `enc` with its payload cut to `keep` bytes (and the declared
/// bit count clamped so the block invariant still holds — the decoder
/// must cope with *both* kinds of truncation).
fn truncate(enc: &CompressedBlock, keep: usize) -> CompressedBlock {
    let payload = enc.payload()[..keep].to_vec();
    let bits = enc.encoded_bits().min(keep as u32 * 8);
    CompressedBlock::new(enc.algorithm(), enc.original_bytes(), payload, bits)
}

/// Rebuilds `enc` with one payload bit flipped.
fn flip_bit(enc: &CompressedBlock, bit: usize) -> CompressedBlock {
    let mut payload = enc.payload().to_vec();
    payload[bit / 8] ^= 1 << (bit % 8);
    CompressedBlock::new(enc.algorithm(), enc.original_bytes(), payload, enc.encoded_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Cutting the payload at any byte boundary yields `Ok` (when the cut
    /// only removed padding) or `Err` — and on `Ok` the decode matches the
    /// original block exactly.
    #[test]
    fn truncated_streams_decode_to_values(block in block_strategy()) {
        for alg in Algorithm::EXTENDED {
            let c = alg.compressor();
            let enc = c.compress(&block);
            for keep in 0..enc.payload().len() {
                let cut = truncate(&enc, keep);
                let mut out = vec![0u8; block.len()];
                match c.try_decompress_into(&cut, &mut out) {
                    Ok(()) => prop_assert_eq!(
                        &out, &block,
                        "{} accepted a truncation that changed the data", alg
                    ),
                    Err(_) => {} // detected — the contract this test pins
                }
            }
        }
    }

    /// Flipping any single payload bit never panics; the decoder returns
    /// a value either way (a flip may still decode — to different bytes —
    /// which the harness catches by comparing images, not here).
    #[test]
    fn bit_flipped_streams_decode_to_values(block in block_strategy(), seed in any::<u64>()) {
        for alg in Algorithm::EXTENDED {
            let c = alg.compressor();
            let enc = c.compress(&block);
            let bits = enc.payload().len() * 8;
            let bit = (seed % bits as u64) as usize;
            let mut out = vec![0u8; block.len()];
            let _ = c.try_decompress_into(&flip_bit(&enc, bit), &mut out);
        }
    }

    /// The fallible and panicking decode paths agree on clean input.
    #[test]
    fn try_decompress_matches_decompress_on_clean_input(block in block_strategy()) {
        for alg in Algorithm::EXTENDED {
            let c = alg.compressor();
            let enc = c.compress(&block);
            prop_assert_eq!(c.try_decompress(&enc).expect("clean stream"), block.clone());
        }
    }
}

/// Every single-bit flip (exhaustive, not sampled) on one representative
/// block per algorithm decodes to a value.
#[test]
fn exhaustive_bit_flips_on_a_mixed_block() {
    let vals = [0u32, 1, 0x1000_0000, 0x1000_0003, 0xDEAD_BEEF, 0x77, 0, 0xFFFF_FFFF];
    let block: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
    for alg in Algorithm::EXTENDED {
        let c = alg.compressor();
        let enc = c.compress(&block);
        for bit in 0..enc.payload().len() * 8 {
            let mut out = vec![0u8; block.len()];
            let _ = c.try_decompress_into(&flip_bit(&enc, bit), &mut out);
        }
    }
}

#[test]
fn wrong_algorithm_is_reported() {
    let enc = Algorithm::Bdi.compressor().compress(&[0u8; 32]);
    let mut out = [0u8; 32];
    assert_eq!(
        Algorithm::Fpc.compressor().try_decompress_into(&enc, &mut out),
        Err(DecodeError::WrongAlgorithm { expected: Algorithm::Fpc, got: Algorithm::Bdi })
    );
}

#[test]
fn wrong_output_length_is_reported() {
    let enc = Algorithm::Dzc.compressor().compress(&[0u8; 32]);
    let mut out = [0u8; 16];
    assert_eq!(
        Algorithm::Dzc.compressor().try_decompress_into(&enc, &mut out),
        Err(DecodeError::OutputLen { expected: 32, got: 16 })
    );
}

#[test]
fn empty_payload_is_truncation_for_every_codec() {
    for alg in Algorithm::EXTENDED {
        let c = alg.compressor();
        let empty = CompressedBlock::new(alg, 32, Vec::new(), 0);
        let mut out = [0u8; 32];
        match c.try_decompress_into(&empty, &mut out) {
            Err(DecodeError::Truncated { .. }) => {}
            other => panic!("{alg}: empty payload gave {other:?}"),
        }
    }
}

#[test]
fn cpack_reserved_code_is_corrupt_not_a_crash() {
    // Inner code 11 after prefix 11 (i.e. bits 1111) is never emitted.
    let mut w = BitWriter::new();
    w.write_bits(0b1111, 4);
    let (payload, bits) = w.finish();
    let enc = CompressedBlock::new(Algorithm::CPack, 4, payload, bits);
    let mut out = [0u8; 4];
    assert_eq!(
        Algorithm::CPack.compressor().try_decompress_into(&enc, &mut out),
        Err(DecodeError::Corrupt {
            algorithm: Algorithm::CPack,
            detail: "code 1111 is never emitted"
        })
    );
}

#[test]
fn bdi_unknown_tag_is_corrupt() {
    // Tags above TAG_CONFIG_BASE + CONFIGS map to no configuration.
    let mut w = BitWriter::new();
    w.write_bits(0xF, 4);
    let (payload, bits) = w.finish();
    let enc = CompressedBlock::new(Algorithm::Bdi, 32, payload, bits);
    let mut out = [0u8; 32];
    match Algorithm::Bdi.compressor().try_decompress_into(&enc, &mut out) {
        Err(DecodeError::Corrupt { algorithm: Algorithm::Bdi, .. }) => {}
        other => panic!("BDI bad tag gave {other:?}"),
    }
}

#[test]
fn fpc_overlong_zero_run_is_corrupt() {
    // One word of output, but the stream claims an 8-word zero run.
    let mut w = BitWriter::new();
    w.write_bits(0b000, 3); // zero-run prefix
    w.write_bits(0b111, 3); // run length 8
    let (payload, bits) = w.finish();
    let enc = CompressedBlock::new(Algorithm::Fpc, 4, payload, bits);
    let mut out = [0u8; 4];
    assert_eq!(
        Algorithm::Fpc.compressor().try_decompress_into(&enc, &mut out),
        Err(DecodeError::Corrupt {
            algorithm: Algorithm::Fpc,
            detail: "zero run overflows the block"
        })
    );
}

#[test]
fn bpc_compressed_flag_on_tiny_block_is_corrupt() {
    // The encoder always emits passthrough for single-word blocks, so a
    // compressed flag there is structurally impossible.
    let mut w = BitWriter::new();
    w.write_bits(1, 1);
    w.write_bits(0, 32);
    let (payload, bits) = w.finish();
    let enc = CompressedBlock::new(Algorithm::Bpc, 4, payload, bits);
    let mut out = [0u8; 4];
    assert_eq!(
        Algorithm::Bpc.compressor().try_decompress_into(&enc, &mut out),
        Err(DecodeError::Corrupt {
            algorithm: Algorithm::Bpc,
            detail: "compressed flag on a sub-2-word block"
        })
    );
}

#[test]
fn decode_error_messages_are_informative() {
    let e = DecodeError::Truncated { needed_bits: 32, position: 7 };
    assert_eq!(e.to_string(), "bit stream exhausted: need 32 bits at position 7");
    let e = DecodeError::Corrupt { algorithm: Algorithm::Dzc, detail: "block too large for DZC" };
    assert_eq!(e.to_string(), "corrupt DZC stream: block too large for DZC");
}
