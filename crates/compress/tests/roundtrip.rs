//! Property-based round-trip tests: every compressor must be lossless on
//! arbitrary word-aligned blocks, and encoded sizes must respect each
//! algorithm's structural bounds.

use ehs_compress::{Algorithm, Compressor};
use proptest::prelude::*;

/// Arbitrary blocks of 16, 32 or 64 bytes with a mix of byte distributions
/// (uniform random, zero-heavy, and small-integer words) so all encoder
/// paths get exercised.
fn block_strategy() -> impl Strategy<Value = Vec<u8>> {
    let sizes = prop_oneof![Just(16usize), Just(32usize), Just(64usize)];
    sizes.prop_flat_map(|size| {
        prop_oneof![
            // Uniform random bytes.
            proptest::collection::vec(any::<u8>(), size..=size),
            // Zero-heavy bytes.
            proptest::collection::vec(prop_oneof![4 => Just(0u8), 1 => any::<u8>()], size..=size),
            // Small-magnitude little-endian words (FPC/BDI sweet spot).
            proptest::collection::vec(-50i32..50i32, size / 4..=size / 4)
                .prop_map(|ws| ws.into_iter().flat_map(|w| w.to_le_bytes()).collect()),
            // Clustered u32 values around a shared base.
            (any::<u32>(), proptest::collection::vec(-100i32..100i32, size / 4..=size / 4))
                .prop_map(|(base, offs)| {
                    offs.into_iter()
                        .flat_map(|o| base.wrapping_add(o as u32).to_le_bytes())
                        .collect()
                }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn all_algorithms_are_lossless(block in block_strategy()) {
        for alg in Algorithm::EXTENDED {
            let c = alg.compressor();
            let enc = c.compress(&block);
            prop_assert_eq!(c.decompress(&enc), block.clone(), "{} not lossless", alg);
        }
    }

    #[test]
    fn decompress_into_matches_decompress(block in block_strategy()) {
        // The no-allocation primitive must agree with the Vec wrapper for
        // every algorithm, into a dirty (non-zero) caller buffer.
        for alg in Algorithm::EXTENDED {
            let c = alg.compressor();
            let enc = c.compress(&block);
            let mut out = vec![0xA5u8; block.len()];
            c.decompress_into(&enc, &mut out);
            prop_assert_eq!(&out, &block, "{} decompress_into diverges", alg);
            prop_assert_eq!(c.decompress(&enc), block.clone());
        }
    }

    #[test]
    fn encoded_sizes_have_structural_bounds(block in block_strategy()) {
        let n = block.len() as u32;
        for alg in Algorithm::ALL {
            let enc = alg.compressor().compress(&block);
            // No algorithm may more than marginally expand a block.
            let max = match alg {
                Algorithm::Bdi => n + 1,              // flag byte
                Algorithm::Fpc => n + n * 3 / 32 + 1, // 3 bits per word
                Algorithm::CPack => n + n / 16 + 1,   // 2 bits per word
                Algorithm::Dzc => n + n / 8,          // 1 bit per byte
                Algorithm::Bpc => n + 1,              // passthrough fallback
                Algorithm::Fvc => n + 4 + n / 32 + 1, // 32-bit header + flag/word
            };
            prop_assert!(
                enc.compressed_bytes() <= max,
                "{} produced {}B from {}B (max {})",
                alg, enc.compressed_bytes(), n, max
            );
            prop_assert!(enc.encoded_bits() > 0);
            prop_assert!(enc.compressed_bytes() as usize <= enc.payload().len());
        }
    }

    #[test]
    fn zero_density_monotonicity_for_dzc(nonzero in 0usize..=32) {
        // DZC's size is an exact linear function of nonzero byte count.
        let mut block = vec![0u8; 32];
        for b in block.iter_mut().take(nonzero) {
            *b = 0x5A;
        }
        let enc = Algorithm::Dzc.compressor().compress(&block);
        prop_assert_eq!(enc.encoded_bits(), 32 + 8 * nonzero as u32);
    }
}

#[test]
fn passthrough_encodings_decompress_into_buffers() {
    // High-entropy words force BDI and BPC into their passthrough
    // encodings (flag byte + raw bytes); the buffer-based decoder must
    // handle that branch too.
    let mut x = 0x2468u32;
    let block: Vec<u8> = (0..16)
        .flat_map(|_| {
            x = x.wrapping_mul(0x9E37_79B9).wrapping_add(0x85EB_CA6B);
            x.to_le_bytes()
        })
        .collect();
    for alg in [Algorithm::Bdi, Algorithm::Bpc] {
        let c = alg.compressor();
        let enc = c.compress(&block);
        assert_eq!(enc.compressed_bytes() as usize, block.len() + 1, "{alg} should passthrough");
        let mut out = vec![0xA5u8; block.len()];
        c.decompress_into(&enc, &mut out);
        assert_eq!(out, block, "{alg} passthrough decode");
    }
}
