//! Resilient-orchestration guarantees: the cooperative watchdog cancels
//! runaway simulations deterministically, and a batch containing
//! panicking and hanging jobs completes with those cells failed while
//! every healthy cell matches the no-fault run exactly.

use std::time::Duration;

use ehs_sim::{
    run_batch, run_batch_with, GovernorSpec, JobFailure, RetryPolicy, SimConfig, SimJob, StepBudget,
};
use ehs_telemetry::Event;
use ehs_workloads::App;

fn acc() -> SimConfig {
    SimConfig::table1().with_governor(GovernorSpec::Acc)
}

#[test]
fn instruction_budget_cancels_runaway_run_deterministically() {
    let cfg = acc().with_step_budget(StepBudget::insts(20_000));
    let a = ehs_sim::run_app(App::Sha, 0.05, &cfg);
    let b = ehs_sim::run_app(App::Sha, 0.05, &cfg);
    assert!(!a.completed, "cancelled run must not report completion");
    let reason = a.budget_exhausted.as_deref().expect("cancellation reason");
    assert!(reason.contains("instruction budget"), "wrong reason: {reason}");
    assert_eq!(a.executed_insts, 20_000, "insts budget must cancel at an exact step");
    assert_eq!(a, b, "deterministic budget must cancel byte-identically");
}

#[test]
fn wall_clock_budget_cancels_a_hanging_job() {
    let cfg = acc().with_step_budget(StepBudget::wall(Duration::from_millis(1)));
    let stats = ehs_sim::run_app(App::Sha, 0.5, &cfg);
    assert!(!stats.completed);
    let reason = stats.budget_exhausted.expect("cancellation reason");
    assert!(reason.contains("wall-clock"), "wrong reason: {reason}");
}

#[test]
fn unbudgeted_runs_are_untouched() {
    let stats = ehs_sim::run_app(App::Sha, 0.01, &acc());
    assert!(stats.completed);
    assert_eq!(stats.budget_exhausted, None);
}

/// The acceptance scenario: one batch holding a healthy job, a panicking
/// job, another healthy job, and a hanging (budget-cancelled) job. The
/// failures stay in their own slots; the healthy results are exactly the
/// ones a no-fault batch produces.
#[test]
fn mixed_fault_batch_preserves_healthy_cells_exactly() {
    ehs_sim::parallel::set_max_workers(4);
    let healthy = |app| SimJob::new(app, 0.01, acc());
    let reference = run_batch(vec![healthy(App::Sha), healthy(App::Crc32)]);

    let jobs = vec![
        healthy(App::Sha),
        // `App::build` asserts scale > 0: a deterministic in-sim panic.
        SimJob::new(App::Dijkstra, -1.0, acc()),
        healthy(App::Crc32),
        // Injected runaway: a budget far below the program length.
        healthy(App::Patricia).with_budget(StepBudget::insts(2_000)),
    ];
    let batch = run_batch_with(jobs, RetryPolicy::NONE);

    assert_eq!(batch[0], reference[0], "healthy cell 0 diverged from the no-fault run");
    assert_eq!(batch[2], reference[1], "healthy cell 2 diverged from the no-fault run");
    match &batch[1] {
        Err(JobFailure::Panicked { message }) => {
            assert!(
                message.contains("dijkstra") && message.contains("scale"),
                "panic must name the simulation and cause: {message}"
            );
        }
        other => panic!("expected contained panic, got {other:?}"),
    }
    match &batch[3] {
        Err(JobFailure::TimedOut { detail, executed_insts }) => {
            assert_eq!(*executed_insts, 2_000);
            assert!(detail.contains("patricia"), "timeout must name the simulation: {detail}");
        }
        other => panic!("expected watchdog cancellation, got {other:?}"),
    }

    // Both failures were mirrored into the pool's harness event log.
    // (The log is process-global and tests run concurrently, so filter
    // by payloads unique to this batch.)
    let events = ehs_sim::parallel::drain_pool_events();
    assert!(
        events.iter().any(|s| matches!(
            &s.event,
            Event::JobFailed { reason, .. } if reason.contains("dijkstra")
        )),
        "missing JobFailed event for the panicked cell"
    );
    assert!(
        events.iter().any(|s| matches!(&s.event, Event::JobTimedOut { executed_insts: 2_000, .. })),
        "missing JobTimedOut event for the cancelled cell"
    );

    // And counted in the pool metrics, alongside per-job latencies.
    let mut m = ehs_sim::parallel::pool_metrics();
    let failed = m.counter("jobs_failed");
    let timed_out = m.counter("jobs_timed_out");
    let ok = m.counter("jobs_ok");
    assert!(m.counter_value(failed) >= 2, "both failures must be counted");
    assert!(m.counter_value(timed_out) >= 1);
    assert!(m.counter_value(ok) >= 4, "healthy jobs must be counted");
    let hist = m.histogram("job_latency_ms", &[]);
    assert!(m.histogram_data(hist).count() >= 6, "every job must record a latency sample");
}
