//! Integration tests on the simulator's system-level behaviours that unit
//! tests cannot reach: oracle two-phase consistency, NvMR persistence
//! semantics, EDBP's leakage effect, and checkpoint accounting.

use ehs_energy::{EnergyCategory, PowerTrace};
use ehs_sim::{run_app, run_program, EhsDesign, Extension, GovernorSpec, SimConfig, Simulator};
use ehs_workloads::App;

const SCALE: f64 = 0.1;

fn base() -> SimConfig {
    SimConfig::table1()
}

#[test]
fn oracle_recording_run_behaves_like_the_inner_governor() {
    // Phase 1 of the ideal methodology must not perturb execution: the
    // recorder wraps ACC transparently.
    let program = App::G721d.build(SCALE);
    let trace = PowerTrace::generate(base().trace_kind, base().trace_seed, 2_000_000);
    let plain = Simulator::new(base().with_governor(GovernorSpec::Acc), &program, &trace).run();
    let (recorded, oracle_trace) = Simulator::with_governor(
        base().with_governor(GovernorSpec::Acc),
        &program,
        &trace,
        ehs_sim::Governor::record_acc(),
    )
    .run_recording();
    assert_eq!(plain.sim_time, recorded.sim_time, "recorder must be transparent");
    assert_eq!(plain.compression_ops(), recorded.compression_ops());
    assert!(!oracle_trace.is_empty(), "a multi-cycle run must record cycles");
}

#[test]
fn checkpoint_energy_scales_with_dirty_data() {
    // A store-heavy app checkpoints more bytes than a load-only one.
    let heavy = run_app(App::Jpegd, SCALE, &base());
    let light = run_app(App::Strings, SCALE, &base());
    let per_ckpt = |s: &ehs_sim::SimStats| {
        s.breakdown[EnergyCategory::CheckpointRestore].picojoules() / s.checkpoints.max(1) as f64
    };
    assert!(
        per_ckpt(&heavy) > per_ckpt(&light),
        "jpegd {} pJ/ckpt !> strings {} pJ/ckpt",
        per_ckpt(&heavy),
        per_ckpt(&light)
    );
}

#[test]
fn nvmr_pays_for_stores_up_front_and_checkpoints_nothing() {
    let nvsram = run_app(App::Adpcmd, SCALE, &base());
    let nvmr = run_app(App::Adpcmd, SCALE, &base().with_design(EhsDesign::Nvmr));
    // NvMR has no JIT checkpoint traffic (only the restore-fixed cost),
    // but pays per-store persistence in the Memory bucket.
    assert!(
        nvmr.breakdown[EnergyCategory::CheckpointRestore]
            < nvsram.breakdown[EnergyCategory::CheckpointRestore],
        "NvMR checkpoint bucket should be smaller"
    );
    assert!(
        nvmr.breakdown[EnergyCategory::Memory] > nvsram.breakdown[EnergyCategory::Memory],
        "NvMR store-persist traffic should show up in Memory"
    );
}

#[test]
fn sweepcache_loses_at_most_one_region_per_failure() {
    let stats = run_app(App::Gsm, SCALE, &base().with_design(EhsDesign::SweepCache));
    let lost = stats.executed_insts - stats.committed_insts;
    let bound = stats.checkpoints * base().costs.sweep_region;
    assert!(
        lost <= bound,
        "re-executed {lost} insts but {} failures x {} region = {bound}",
        stats.checkpoints,
        base().costs.sweep_region
    );
}

#[test]
fn edbp_reduces_cache_leakage_share() {
    let mut edbp_cfg = base();
    edbp_cfg.extension = Extension::edbp();
    let plain = run_app(App::Strings, SCALE, &base());
    let edbp = run_app(App::Strings, SCALE, &edbp_cfg);
    // Cache-decay power-gates idle lines: the CacheOther bucket (which
    // holds SRAM leakage) must shrink.
    assert!(
        edbp.breakdown[EnergyCategory::CacheOther] < plain.breakdown[EnergyCategory::CacheOther],
        "EDBP {} !< plain {}",
        edbp.breakdown[EnergyCategory::CacheOther],
        plain.breakdown[EnergyCategory::CacheOther]
    );
}

#[test]
fn ipex_prefetches_only_on_streams() {
    // A pure streaming app gains (or at least doesn't lose) from IPEX; its
    // NVM read count shifts toward prefetches without exploding.
    let mut ipex_cfg = base();
    ipex_cfg.extension = Extension::ipex();
    let plain = run_app(App::Crc32, SCALE, &base());
    let ipex = run_app(App::Crc32, SCALE, &ipex_cfg);
    assert!(ipex.completed);
    // Prefetching must not increase total NVM reads by more than ~30%
    // (a blind next-line prefetcher on random apps would double them).
    assert!(
        (ipex.nvm.reads as f64) < plain.nvm.reads as f64 * 1.3,
        "IPEX reads {} vs plain {}",
        ipex.nvm.reads,
        plain.nvm.reads
    );
}

#[test]
fn voltage_monitor_costs_appear_in_the_other_bucket() {
    // NVSRAMCache carries the monitor; SweepCache does not. With identical
    // policies, the monitor's standby+init draw shows in `Other`.
    let nvsram = run_app(App::Sha, SCALE, &base());
    let sweep = run_app(App::Sha, SCALE, &base().with_design(EhsDesign::SweepCache));
    let per_time = |s: &ehs_sim::SimStats| {
        s.breakdown[EnergyCategory::Other].picojoules() / s.sim_time.seconds()
    };
    assert!(
        per_time(&nvsram) > per_time(&sweep),
        "monitor draw missing: {} !> {}",
        per_time(&nvsram),
        per_time(&sweep)
    );
}

#[test]
fn custom_short_trace_wraps_cyclically() {
    // A short trace must wrap rather than starve the run.
    let program = App::Sha.build(0.05);
    let trace = PowerTrace::generate(base().trace_kind, 3, 1_000); // 10 ms
    let stats = run_program(&program, &trace, &base());
    assert!(stats.completed, "run must survive trace wrap-around");
    assert!(stats.sim_time > trace.duration(), "must actually have wrapped");
}
