//! Fast-forward loop certification: the event-driven fast path
//! ([`ExecMode::FastForward`], the default) must be *bit-identical* to
//! the naive one-`step()`-per-instruction reference loop
//! ([`ExecMode::Reference`]) — same `SimStats` (every f64 energy
//! accumulator included, so a single rounding difference fails), and the
//! same architectural NVM image under fault injection.
//!
//! The matrix deliberately crosses the fast path's specialisations:
//! ALU-run batching (Sha is ALU-heavy), compression-heavy repacking
//! (Jpegd), every EHS design (SweepCache exercises rollback re-seeks),
//! voltage-triggered Kagura (batching disabled, per-instruction voltage
//! samples kept), recording/replaying oracle governors (shadow tags kept),
//! both extensions (EDBP's scan countdown caps batch length; IPEX
//! prefetch), and armed instruction budgets.

use ehs_compress::Algorithm;
use ehs_sim::faultinject::diff_nvm;
use ehs_sim::{
    CachescopeConfig, EhsDesign, ExecMode, Extension, FaultKind, GovernorSpec, LeakscopeOptions,
    SimConfig, SimStats, Simulator, StepBudget,
};
use ehs_workloads::App;
use kagura_core::{KaguraConfig, TriggerKind};

/// Runs `app` under both loops and asserts identical stats.
fn assert_loops_match(app: App, scale: f64, cfg: &SimConfig) -> SimStats {
    let fast = ehs_sim::run_app(app, scale, &cfg.clone().with_exec(ExecMode::FastForward));
    let reference = ehs_sim::run_app(app, scale, &cfg.clone().with_exec(ExecMode::Reference));
    assert_eq!(
        fast, reference,
        "fast-forward diverged from reference: {app:?} design={:?} gov={:?} ext={:?}",
        cfg.design, cfg.governor, cfg.extension
    );
    fast
}

#[test]
fn fast_forward_matches_reference_on_every_app() {
    for app in App::ALL {
        let cfg = SimConfig::table1().with_governor(GovernorSpec::AccKagura(Default::default()));
        let stats = assert_loops_match(app, 0.004, &cfg);
        assert!(stats.committed_insts > 0, "{app:?} ran nothing");
    }
}

#[test]
fn fast_forward_matches_reference_across_designs_and_governors() {
    let governors = [
        GovernorSpec::NoCompression,
        GovernorSpec::AlwaysCompress,
        GovernorSpec::Acc,
        GovernorSpec::AccKagura(Default::default()),
    ];
    for app in [App::Sha, App::Jpegd] {
        for design in EhsDesign::ALL {
            for gov in governors {
                let cfg = SimConfig::table1().with_design(design).with_governor(gov);
                assert_loops_match(app, 0.004, &cfg);
            }
        }
    }
}

#[test]
fn fast_forward_matches_reference_for_voltage_triggered_kagura() {
    // A voltage trigger makes the governor consume every per-instruction
    // voltage sample: batching must switch off and the sample must not be
    // skipped. Crc32 is ALU-heavy, so a wrongly-enabled batch would show.
    let kcfg =
        KaguraConfig { trigger: TriggerKind::Voltage { fraction: 0.5 }, ..Default::default() };
    for app in [App::Crc32, App::G721d] {
        let cfg = SimConfig::table1().with_governor(GovernorSpec::AccKagura(kcfg));
        assert_loops_match(app, 0.004, &cfg);
    }
}

#[test]
fn fast_forward_matches_reference_for_ideal_governors() {
    // Oracle record + replay phases both run on the fast loop; the
    // recording phase keeps shadow tags and deep-hit credit live.
    for gov in [GovernorSpec::IdealAcc, GovernorSpec::IdealAccKagura(Default::default())] {
        let cfg = SimConfig::table1().with_governor(gov);
        assert_loops_match(App::Gsm, 0.004, &cfg);
    }
}

#[test]
fn fast_forward_matches_reference_under_extensions() {
    for ext in [Extension::Edbp { decay_ticks: 64 }, Extension::Ipex { min_energy_fraction: 0.2 }] {
        for app in [App::Sha, App::Dijkstra] {
            let mut cfg = SimConfig::table1().with_governor(GovernorSpec::Acc);
            cfg.extension = ext;
            assert_loops_match(app, 0.004, &cfg);
        }
    }
}

#[test]
fn fast_forward_matches_reference_with_instruction_budget() {
    // An armed instruction budget caps batch length; the run must stop at
    // the exact same instruction with the same exhaustion reason.
    let mut cfg = SimConfig::table1().with_governor(GovernorSpec::Acc);
    cfg.step_budget = StepBudget::insts(5_000);
    let stats = assert_loops_match(App::Sha, 0.02, &cfg);
    assert!(stats.budget_exhausted.is_some(), "budget should have fired");
    assert_eq!(stats.executed_insts, 5_000);
}

/// Runs `app` with a cachescope under both loops and asserts identical
/// stats *and* identical cachescope reports — counters, histograms,
/// boundary rows, occupancy snapshots, latency attribution, all of it.
fn assert_cachescope_matches(app: App, scale: f64, cfg: &SimConfig) {
    // A short period so snapshots land inside (and must cap) ALU batches.
    let scope = CachescopeConfig::periodic(512);
    let (fast, fast_rep) = ehs_sim::run_app_with_cachescope(
        app,
        scale,
        &cfg.clone().with_exec(ExecMode::FastForward),
        scope,
    );
    let (reference, ref_rep) = ehs_sim::run_app_with_cachescope(
        app,
        scale,
        &cfg.clone().with_exec(ExecMode::Reference),
        scope,
    );
    assert_eq!(
        fast, reference,
        "stats diverged with cachescope attached: {app:?} gov={:?} ext={:?}",
        cfg.governor, cfg.extension
    );
    assert_eq!(
        fast_rep, ref_rep,
        "cachescope report diverged between loops: {app:?} gov={:?} ext={:?}",
        cfg.governor, cfg.extension
    );
    // The attribution buckets exactly partition the run's cycles.
    assert_eq!(fast_rep.latency.total(), fast.total_cycles, "{app:?}");
    assert!(!fast_rep.cycles.is_empty(), "{app:?} recorded no boundary rows");
    assert!(!fast_rep.snapshots.is_empty(), "{app:?} sampled no occupancy snapshots");
    // Probe counters agree with the caches' own stats.
    assert_eq!(fast_rep.dcache.counters.fills, fast.dcache.fills, "{app:?}");
    assert_eq!(fast_rep.dcache.counters.hits, fast.dcache.hits(), "{app:?}");
    assert_eq!(fast_rep.icache.counters.hits, fast.icache.hits(), "{app:?}");
    assert_eq!(
        fast_rep.dcache.counters.capacity_evictions + fast_rep.dcache.counters.forced_evictions,
        fast.dcache.evictions,
        "{app:?}"
    );
    // And attaching the scope never perturbed the simulation itself.
    let plain = ehs_sim::run_app(app, scale, cfg);
    assert_eq!(fast, plain, "cachescope perturbed the run: {app:?}");
}

#[test]
fn cachescope_reports_match_between_loops() {
    for gov in [GovernorSpec::Acc, GovernorSpec::AccKagura(Default::default())] {
        // Sha exercises ALU-run batching (snapshot boundaries must cap the
        // batch); Jpegd exercises compression-heavy repacking.
        for app in [App::Sha, App::Jpegd] {
            let cfg = SimConfig::table1().with_governor(gov);
            assert_cachescope_matches(app, 0.004, &cfg);
        }
    }
}

#[test]
fn cachescope_reports_match_under_edbp_and_sweepcache() {
    // EDBP makes forced (dead-block) evictions flow through the probe and
    // stacks a second batch cap on top of the snapshot countdown.
    let mut cfg = SimConfig::table1().with_governor(GovernorSpec::Acc);
    cfg.extension = Extension::Edbp { decay_ticks: 64 };
    assert_cachescope_matches(App::Dijkstra, 0.004, &cfg);
    // SweepCache rolls `inst_index` backwards at power failure; boundary
    // rows and snapshot points must still agree.
    let cfg = SimConfig::table1()
        .with_design(EhsDesign::SweepCache)
        .with_governor(GovernorSpec::AccKagura(Default::default()));
    assert_cachescope_matches(App::Sha, 0.004, &cfg);
}

#[test]
fn leakscope_attack_matches_between_loops() {
    // The whole attack — probe-by-probe attacker timeline, recovered
    // bytes, effort accounting and every f64 channel estimate — must be
    // bit-identical whichever loop drives the probe micro-runs. One
    // attackable compressor and the randomized-threshold countermeasure
    // (whose per-fill RNG draws must consume identically in both loops).
    let opts = LeakscopeOptions::default();
    for gov in [GovernorSpec::AlwaysCompress, GovernorSpec::RandThreshold(Default::default())] {
        let mut cfg = SimConfig::table1().with_governor(gov);
        cfg.algorithm = Algorithm::CPack;
        let fast = ehs_sim::attack_cell(&cfg.clone().with_exec(ExecMode::FastForward), &opts);
        let reference = ehs_sim::attack_cell(&cfg.clone().with_exec(ExecMode::Reference), &opts);
        assert_eq!(
            fast.probes, reference.probes,
            "attacker timeline diverged between loops: gov={:?}",
            cfg.governor
        );
        assert_eq!(fast.mi_bits.to_bits(), reference.mi_bits.to_bits(), "gov={:?}", cfg.governor);
        assert_eq!(
            fast.capacity_bits.to_bits(),
            reference.capacity_bits.to_bits(),
            "gov={:?}",
            cfg.governor
        );
        assert_eq!(fast, reference, "attack report diverged between loops: gov={:?}", cfg.governor);
    }
}

#[test]
fn leak_timeline_matches_between_loops_and_never_perturbs() {
    // A real app (not a probe micro-kernel) with the per-access timeline
    // attached: both loops must record the same accesses in the same
    // order, and attaching the probe must not perturb the run itself.
    let cfg = SimConfig::table1().with_governor(GovernorSpec::AccKagura(Default::default()));
    let program = App::Sha.build(0.004);
    let trace = ehs_sim::attack_trace(&cfg);
    let run = |exec: ExecMode| {
        ehs_sim::run_program_with_leak_timeline(
            &program,
            &trace,
            &cfg.clone().with_exec(exec),
            2048,
        )
    };
    let (fast, fast_tl) = run(ExecMode::FastForward);
    let (reference, ref_tl) = run(ExecMode::Reference);
    assert_eq!(fast, reference, "stats diverged with the leak timeline attached");
    assert_eq!(fast_tl.records(), ref_tl.records(), "timeline records diverged between loops");
    assert_eq!(fast_tl.dropped(), ref_tl.dropped());
    assert!(!fast_tl.records().is_empty(), "timeline recorded nothing");
    let plain = ehs_sim::run_program(&program, &trace, &cfg);
    assert_eq!(fast, plain, "leak timeline perturbed the run");
}

#[test]
fn fault_injection_images_match_between_loops() {
    // Under injected faults (including the checkpoint-mutating kinds) the
    // two loops must agree on both the stats and the post-run
    // architectural memory image, byte for byte.
    let program = App::Sha.build(0.004);
    let faults = [
        FaultKind::PowerFailure,
        FaultKind::TornCheckpoint { persist_blocks: 1 },
        FaultKind::CorruptPayload { bit: 5 },
    ];
    for design in EhsDesign::ALL {
        for (i, kind) in faults.iter().enumerate() {
            let cfg = SimConfig::table1()
                .with_design(design)
                .with_governor(GovernorSpec::AccKagura(Default::default()));
            let at = 1_000 + 777 * i as u64;
            let trace = ehs_energy::PowerTrace::generate(cfg.trace_kind, cfg.trace_seed, 400_000);
            let run = |exec: ExecMode| {
                let mut sim = Simulator::new(cfg.clone().with_exec(exec), &program, &trace);
                sim.arm_fault(at, *kind);
                sim.run_with_memory()
            };
            let (fast_stats, mut fast_nvm) = run(ExecMode::FastForward);
            let (ref_stats, mut ref_nvm) = run(ExecMode::Reference);
            assert_eq!(fast_stats, ref_stats, "stats diverged under {kind:?} at {at} ({design:?})");
            let diff = diff_nvm(&mut ref_nvm, &mut fast_nvm);
            assert!(
                diff.is_empty(),
                "NVM image diverged under {kind:?} at {at} ({design:?}): {} blocks differ",
                diff.len()
            );
        }
    }
}
