//! System-level crash-consistency certification via fault injection:
//! exhaustive per-instruction campaigns on the short synthetic kernels
//! across every design × non-ideal governor, a sampled campaign on a
//! real application, and the harness's own mutation check. The bench
//! `faultgrid` experiment runs the full-width version of this grid; the
//! tests here keep the always-on tier fast while still probing every
//! recovery path.

use ehs_sim::faultinject::{run_campaign, short_kernels, InjectionPlan};
use ehs_sim::{EhsDesign, FaultKind, GovernorSpec, SimConfig};
use ehs_workloads::App;

fn non_ideal_governors() -> Vec<GovernorSpec> {
    vec![
        GovernorSpec::NoCompression,
        GovernorSpec::AlwaysCompress,
        GovernorSpec::Acc,
        GovernorSpec::AccKagura(Default::default()),
    ]
}

#[test]
fn exhaustive_injection_converges_for_every_design_and_governor() {
    for program in short_kernels() {
        for design in EhsDesign::ALL {
            for gov in non_ideal_governors() {
                let cfg = SimConfig::table1().with_design(design).with_governor(gov);
                let report = run_campaign(
                    &program,
                    &cfg,
                    InjectionPlan::Exhaustive,
                    FaultKind::PowerFailure,
                );
                assert_eq!(report.injections as u64, program.len());
                assert!(report.is_consistent(), "{}", report.summary());
                assert_eq!(
                    report.detected_decode_faults,
                    0,
                    "clean failures must not fault decodes: {}",
                    report.summary()
                );
            }
        }
    }
}

#[test]
fn sampled_injection_converges_on_a_real_application() {
    // 200+ seeded points per design — the same plan shape `faultgrid`
    // uses on the full app set, on one app to stay test-sized.
    let program = App::Sha.build(0.01);
    for design in EhsDesign::ALL {
        let cfg = SimConfig::table1()
            .with_design(design)
            .with_governor(GovernorSpec::AccKagura(Default::default()));
        let plan = InjectionPlan::Sampled { count: 200, seed: 0xFA17 };
        let report = run_campaign(&program, &cfg, plan, FaultKind::PowerFailure);
        assert_eq!(report.injections, 200);
        assert!(report.is_consistent(), "{}", report.summary());
    }
}

#[test]
fn broken_checkpoint_paths_are_caught() {
    // Mutation check: if either of these passes silently, the harness
    // cannot be trusted to certify anything.
    let stream = &short_kernels()[0];
    let torn = run_campaign(
        stream,
        &SimConfig::table1().with_governor(GovernorSpec::NoCompression),
        InjectionPlan::Stride { step: 97 },
        FaultKind::TornCheckpoint { persist_blocks: 0 },
    );
    assert!(torn.detected_violation(), "torn checkpoint undetected: {}", torn.summary());

    let corrupt = run_campaign(
        stream,
        &SimConfig::table1().with_governor(GovernorSpec::AlwaysCompress),
        InjectionPlan::Stride { step: 61 },
        FaultKind::CorruptPayload { bit: 5 },
    );
    assert!(corrupt.detected_violation(), "corrupt payload undetected: {}", corrupt.summary());
}

#[test]
fn partial_torn_checkpoint_still_detected() {
    // Persisting *some* blocks is the subtle case: the image is mostly
    // right. The differential check must still see the tail loss.
    let stream = &short_kernels()[0];
    let report = run_campaign(
        stream,
        &SimConfig::table1().with_governor(GovernorSpec::NoCompression),
        InjectionPlan::Stride { step: 151 },
        FaultKind::TornCheckpoint { persist_blocks: 1 },
    );
    assert!(report.detected_violation(), "partial tear undetected: {}", report.summary());
}
