//! Full-system energy-harvesting processor simulator.
//!
//! Ties every substrate together into the paper's evaluation platform: an
//! in-order core with compressed I/D caches ([`ehs_cache`]), NVM main
//! memory ([`ehs_mem`]), a capacitor charged from an ambient power trace
//! ([`ehs_energy`]), a JIT-checkpointing EHS runtime, and a compression
//! governor ([`kagura_core`]).
//!
//! Three EHS designs are modelled (paper §VIII-H1):
//!
//! * [`EhsDesign::NvsramCache`] — the default: a voltage monitor fires a
//!   just-in-time checkpoint (dirty cache blocks + registers → NVM) when
//!   the capacitor crosses `V_ckpt`; execution resumes exactly where it
//!   stopped.
//! * [`EhsDesign::Nvmr`] — monitor-free: stores persist incrementally
//!   through a renaming buffer (charged per store), so power failure needs
//!   no checkpoint and loses no work.
//! * [`EhsDesign::SweepCache`] — monitor-free, region-based: dirty blocks
//!   are swept to NVM at region boundaries; work since the last boundary
//!   is lost and re-executed after reboot.
//!
//! The simulator is instruction-granular: each committed instruction pays
//! its fetch (ICache), execute and data (DCache) latencies and energies,
//! harvest is integrated over the elapsed time, and the voltage monitor is
//! checked. See DESIGN.md for why this granularity suffices for Kagura.
//!
//! # Examples
//!
//! ```
//! use ehs_sim::{GovernorSpec, SimConfig};
//! use ehs_workloads::App;
//!
//! let mut cfg = SimConfig::table1();
//! cfg.governor = GovernorSpec::AccKagura(Default::default());
//! let stats = ehs_sim::run_app(App::Sha, 0.02, &cfg);
//! assert!(stats.completed);
//! assert!(stats.power_cycles.len() > 1);
//! ```

pub mod cachescope;
pub mod config;
pub mod faultinject;
pub mod fleet;
pub mod governor;
pub mod leakscope;
pub mod machine;
pub mod parallel;
pub mod runner;
pub mod stats;

pub use cachescope::{
    CachescopeAggregator, CachescopeConfig, CachescopeReport, CycleScope, LatencyAttribution,
    OccupancySnapshot, ScopeCounters,
};
pub use config::{
    ConfigError, EhsDesign, ExecMode, Extension, GovernorSpec, SimConfig, StepBudget,
};
pub use faultinject::{FaultCampaignReport, GoldenState, InjectionPlan};
pub use fleet::{FleetCell, FleetSpec, Permutation};
pub use governor::Governor;
pub use leakscope::{attack_cell, attack_trace, CellAttackReport, GuessProbe, LeakscopeOptions};
pub use machine::{FaultKind, Simulator};
pub use parallel::{
    pool_in_flight, run_batch, run_batch_with, run_job, run_job_with, JobFailure, RetryPolicy,
    SimJob,
};
pub use runner::{
    run_app, run_app_with_cachescope, run_app_with_telemetry, run_ideal_app, run_program,
    run_program_with_cachescope, run_program_with_leak_timeline, run_program_with_telemetry,
};
pub use stats::{ConsistencyReport, CycleRecord, SimStats};
