//! A concrete governor instance for the simulator, covering every policy
//! combination the evaluation needs (including the oracle's two phases).

use crate::config::ConfigError;
use ehs_cache::{FillMode, HitInfo};
use kagura_core::{
    Acc, AlwaysCompress, CompressionGovernor, Kagura, KaguraConfig, NeverCompress, OracleRecorder,
    OracleReplayer, OracleTrace, RandThresholdConfig, RandomizedThreshold, TriggerKind,
};

/// All governor configurations the simulator can run.
///
/// This enum gives the hot loop static dispatch and lets the simulator ask
/// oracle-specific questions ([`Governor::record_fill`] /
/// [`Governor::mark_useful`]) without downcasting.
#[derive(Debug, Clone)]
pub enum Governor {
    /// No compression.
    None(NeverCompress),
    /// Compress everything.
    Always(AlwaysCompress),
    /// ACC alone.
    Acc(Acc),
    /// ACC + Kagura.
    Kagura(Kagura<Acc>),
    /// Oracle recording phase over ACC.
    RecordAcc(OracleRecorder<Acc>),
    /// Oracle replay phase over ACC.
    ReplayAcc(OracleReplayer<Acc>),
    /// Oracle recording phase over ACC + Kagura.
    RecordKagura(OracleRecorder<Kagura<Acc>>),
    /// Oracle replay phase over ACC + Kagura.
    ReplayKagura(OracleReplayer<Kagura<Acc>>),
    /// Randomized compression threshold (side-channel countermeasure).
    RandThreshold(RandomizedThreshold),
}

macro_rules! delegate {
    ($self:ident, $g:ident => $e:expr) => {
        match $self {
            Governor::None($g) => $e,
            Governor::Always($g) => $e,
            Governor::Acc($g) => $e,
            Governor::Kagura($g) => $e,
            Governor::RecordAcc($g) => $e,
            Governor::ReplayAcc($g) => $e,
            Governor::RecordKagura($g) => $e,
            Governor::ReplayKagura($g) => $e,
            Governor::RandThreshold($g) => $e,
        }
    };
}

impl Governor {
    /// No-compression baseline.
    pub fn none() -> Self {
        Governor::None(NeverCompress)
    }

    /// Unconditional compression.
    pub fn always() -> Self {
        Governor::Always(AlwaysCompress)
    }

    /// ACC alone.
    pub fn acc() -> Self {
        Governor::Acc(Acc::new())
    }

    /// ACC wrapped by Kagura.
    pub fn kagura(cfg: KaguraConfig) -> Self {
        Governor::Kagura(Kagura::new(cfg, Acc::new()))
    }

    /// Oracle recording phase over ACC.
    pub fn record_acc() -> Self {
        Governor::RecordAcc(OracleRecorder::new(Acc::new()))
    }

    /// Oracle replay phase over ACC.
    pub fn replay_acc(trace: OracleTrace) -> Self {
        Governor::ReplayAcc(OracleReplayer::new(Acc::new(), trace))
    }

    /// Randomized compression threshold (side-channel countermeasure).
    pub fn rand_threshold(cfg: RandThresholdConfig) -> Self {
        Governor::RandThreshold(RandomizedThreshold::new(cfg))
    }

    /// Oracle recording phase over ACC + Kagura.
    pub fn record_kagura(cfg: KaguraConfig) -> Self {
        Governor::RecordKagura(OracleRecorder::new(Kagura::new(cfg, Acc::new())))
    }

    /// Oracle replay phase over ACC + Kagura.
    pub fn replay_kagura(cfg: KaguraConfig, trace: OracleTrace) -> Self {
        Governor::ReplayKagura(OracleReplayer::new(Kagura::new(cfg, Acc::new()), trace))
    }

    /// `true` when the policy needs a voltage-trigger threshold on the
    /// monitor (Kagura with [`TriggerKind::Voltage`]).
    pub fn uses_voltage_trigger(&self) -> bool {
        matches!(self, Governor::Kagura(k)
            if matches!(k.config().trigger, TriggerKind::Voltage { .. }))
    }

    /// `true` when [`CompressionGovernor::on_voltage`] can observably act
    /// for this policy, i.e. the per-instruction voltage sample must not be
    /// skipped. Only Kagura reacts to voltage (and only with a
    /// [`TriggerKind::Voltage`] trigger); the oracle wrappers around Kagura
    /// are counted conservatively because they delegate to an inner Kagura
    /// whose trigger this method does not inspect.
    pub fn voltage_sensitive(&self) -> bool {
        match self {
            Governor::Kagura(k) => matches!(k.config().trigger, TriggerKind::Voltage { .. }),
            Governor::RecordKagura(_) | Governor::ReplayKagura(_) => true,
            _ => false,
        }
    }

    /// Oracle recording: registers a compressing fill, returning its id.
    pub fn record_fill(&mut self) -> Option<usize> {
        match self {
            Governor::RecordAcc(r) => Some(r.record_fill()),
            Governor::RecordKagura(r) => Some(r.record_fill()),
            _ => None,
        }
    }

    /// Oracle recording: marks a previously recorded fill as useful.
    pub fn mark_useful(&mut self, fill_id: usize) {
        match self {
            Governor::RecordAcc(r) => r.mark_useful(fill_id),
            Governor::RecordKagura(r) => r.mark_useful(fill_id),
            _ => {}
        }
    }

    /// Oracle recording: extracts the trace (consumes the governor).
    ///
    /// Returns [`ConfigError::NotARecorder`] for non-recording variants —
    /// a configuration mistake the runner reports before any simulation
    /// work starts, rather than a mid-run panic.
    pub fn into_oracle_trace(self) -> Result<OracleTrace, ConfigError> {
        match self {
            Governor::RecordAcc(r) => Ok(r.into_trace()),
            Governor::RecordKagura(r) => Ok(r.into_trace()),
            other => Err(ConfigError::NotARecorder { governor: other.name() }),
        }
    }

    /// `true` for the oracle recording variants.
    pub fn is_recorder(&self) -> bool {
        matches!(self, Governor::RecordAcc(_) | Governor::RecordKagura(_))
    }

    /// Starts collecting controller events on policies that produce them
    /// (Kagura); a no-op elsewhere. The oracle variants are deliberately
    /// left un-instrumented — their Kagura runs inside record/replay
    /// adapters and does not represent the deployed controller.
    pub fn enable_event_log(&mut self) {
        if let Governor::Kagura(k) = self {
            k.enable_event_log();
        }
    }

    /// `true` when controller events are pending drainage. Kept cheap so
    /// instrumented hot paths can branch on it before paying for a drain.
    pub fn events_pending(&self) -> bool {
        match self {
            Governor::Kagura(k) => !k.events_empty(),
            _ => false,
        }
    }

    /// Hands every pending controller event to `f`, in emission order.
    pub fn drain_events(&mut self, f: impl FnMut(ehs_telemetry::Event)) {
        if let Governor::Kagura(k) = self {
            k.drain_events(f);
        }
    }

    /// Kagura's register file and current mode, for the flight recorder;
    /// `None` for policies without the Kagura controller (including the
    /// oracle variants, whose embedded Kagura is not the deployed one).
    pub fn kagura_snapshot(&self) -> Option<(KaguraRegisters, kagura_core::Mode)> {
        match self {
            Governor::Kagura(k) => Some((k.registers(), k.mode())),
            _ => None,
        }
    }
}

/// Kagura's register file `(R_prev, R_mem, R_adjust, R_thres, R_evict)`
/// as returned by [`Governor::kagura_snapshot`].
pub type KaguraRegisters = (u64, u64, i64, u64, u64);

impl CompressionGovernor for Governor {
    fn fill_mode(&mut self) -> FillMode {
        delegate!(self, g => g.fill_mode())
    }

    fn compression_enabled(&self) -> bool {
        delegate!(self, g => g.compression_enabled())
    }

    fn on_hit(&mut self, info: &HitInfo, ways: u32) {
        delegate!(self, g => g.on_hit(info, ways))
    }

    fn on_fill(&mut self, stored_compressed: bool) {
        delegate!(self, g => g.on_fill(stored_compressed))
    }

    fn on_mem_commit(&mut self) {
        delegate!(self, g => g.on_mem_commit())
    }

    fn on_evictions(&mut self, count: u32) {
        delegate!(self, g => g.on_evictions(count))
    }

    fn on_voltage(&mut self, v: f64, v_ckpt: f64, v_rst: f64) {
        delegate!(self, g => g.on_voltage(v, v_ckpt, v_rst))
    }

    fn on_power_failure(&mut self) {
        delegate!(self, g => g.on_power_failure())
    }

    fn on_reboot(&mut self) {
        delegate!(self, g => g.on_reboot())
    }

    fn name(&self) -> &'static str {
        delegate!(self, g => g.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_modes() {
        assert_eq!(Governor::none().fill_mode(), FillMode::Bypass);
        assert_eq!(Governor::always().fill_mode(), FillMode::Compress);
        assert_eq!(Governor::acc().fill_mode(), FillMode::Compress);
        assert_eq!(Governor::kagura(KaguraConfig::default()).fill_mode(), FillMode::Compress);
    }

    #[test]
    fn oracle_record_and_replay_round_trip() {
        let mut rec = Governor::record_acc();
        // Cycle 0: a useful fill at mem position 2, then a useless one.
        rec.on_mem_commit();
        rec.on_mem_commit();
        let id = rec.record_fill().expect("recorder records");
        rec.mark_useful(id);
        rec.on_mem_commit();
        let _ = rec.record_fill();
        let trace = rec.into_oracle_trace().expect("recorder yields a trace");
        assert_eq!(trace.switch_point(0), Some(3));

        let mut rep = Governor::replay_acc(trace);
        assert_eq!(rep.fill_mode(), FillMode::Compress); // before switch point
        for _ in 0..3 {
            rep.on_mem_commit();
        }
        assert_eq!(rep.fill_mode(), FillMode::Bypass); // past switch point
        assert_eq!(rep.record_fill(), None, "replayer does not record");
    }

    #[test]
    fn voltage_trigger_detection() {
        let mem = Governor::kagura(KaguraConfig::default());
        assert!(!mem.uses_voltage_trigger());
        let vol = Governor::kagura(KaguraConfig {
            trigger: TriggerKind::Voltage { fraction: 0.2 },
            ..KaguraConfig::default()
        });
        assert!(vol.uses_voltage_trigger());
    }

    #[test]
    fn non_recorder_cannot_yield_trace() {
        let err = Governor::acc().into_oracle_trace().unwrap_err();
        assert_eq!(err, ConfigError::NotARecorder { governor: "ACC" });
        assert_eq!(err.to_string(), "ACC is not an oracle-recording governor");
        assert!(!Governor::acc().is_recorder());
        assert!(Governor::record_acc().is_recorder());
    }
}
