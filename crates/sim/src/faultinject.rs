//! Power-failure fault-injection with differential crash-consistency
//! checking.
//!
//! The harness answers one question per (workload, design, governor)
//! point: *does recovery converge to the failure-free execution, no
//! matter where power dies?* It runs the workload once uninterrupted
//! under a steady power trace to capture the **golden** final NVM image,
//! then re-runs it injecting a forced power failure at chosen executed-
//! instruction boundaries ([`InjectionPlan`]) and byte-compares the
//! post-recovery NVM against the golden image over the union of blocks
//! either run materialised.
//!
//! Fault flavours beyond a clean failure ([`FaultKind::TornCheckpoint`],
//! [`FaultKind::CorruptPayload`]) deliberately break the checkpoint
//! path; the harness must *detect* them — as a divergent image, or as a
//! [`SimStats::decode_faults`] count when a mangled compressed payload
//! fails to decode. A torn checkpoint that slips through unnoticed means
//! the differential check itself is broken, which is why the campaign
//! doubles as the harness's built-in mutation test.
//!
//! The steady trace never crosses the checkpoint threshold on its own,
//! so the injected failure is the only one in the run and every campaign
//! point is deterministic and independently replayable.

use ehs_energy::PowerTrace;
use ehs_mem::Nvm;
use ehs_model::Power;
use ehs_workloads::{AddrGen, KernelProgram, KernelSpec, Op, Phase, ValGen};

use crate::config::SimConfig;
use crate::machine::{FaultKind, Simulator};
use crate::parallel;
use crate::stats::SimStats;

/// SplitMix64: the same deterministic mixer the kernel IR uses, inlined
/// so sampled plans need no RNG dependency and replay bit-identically.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Where to place the injected failures within a run of `total`
/// dynamic instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectionPlan {
    /// After every instruction: `1..=total`. Tractable only for the
    /// short synthetic kernels ([`short_kernels`]).
    Exhaustive,
    /// Every `step`-th boundary, starting at 1. Deterministic coarse
    /// coverage for medium-length programs.
    Stride {
        /// Instructions between injection points (≥ 1).
        step: u64,
    },
    /// `count` distinct points drawn uniformly (without replacement)
    /// from `1..=total` by a seeded SplitMix64 stream. The paper-scale
    /// apps are millions of instructions; sampling keeps a campaign
    /// minutes-sized while still probing arbitrary phases.
    Sampled {
        /// How many distinct injection points to draw.
        count: u64,
        /// Stream seed; same seed + same `total` = same points.
        seed: u64,
    },
}

impl InjectionPlan {
    /// The sorted, deduplicated injection points for a `total`-instruction
    /// run. Points are 1-based executed-instruction counts (see
    /// [`Simulator::arm_fault`]).
    pub fn points(&self, total: u64) -> Vec<u64> {
        match *self {
            InjectionPlan::Exhaustive => (1..=total).collect(),
            InjectionPlan::Stride { step } => (1..=total).step_by(step.max(1) as usize).collect(),
            InjectionPlan::Sampled { count, seed } => {
                if count >= total {
                    return (1..=total).collect();
                }
                let mut state = seed;
                let mut points = std::collections::BTreeSet::new();
                while (points.len() as u64) < count {
                    points.insert(1 + splitmix64(&mut state) % total);
                }
                points.into_iter().collect()
            }
        }
    }
}

/// One injection point whose post-recovery NVM did not match the golden
/// image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// The executed-instruction boundary the failure was injected at.
    pub at_inst: u64,
    /// Block indices whose bytes differ (capped at
    /// [`Divergence::MAX_BLOCKS`] per point; the count of a mismatch
    /// matters, an exhaustive block list does not).
    pub blocks: Vec<u64>,
}

impl Divergence {
    /// Cap on recorded mismatching block indices per injection point.
    pub const MAX_BLOCKS: usize = 8;
}

/// Outcome of one fault-injection campaign: a program × config point
/// probed at every planned injection boundary.
///
/// Named distinctly from [`crate::stats::ConsistencyReport`], which is
/// the paper's Fig-12 *power-cycle stability* metric — unrelated to
/// crash consistency.
#[derive(Debug, Clone)]
pub struct FaultCampaignReport {
    /// Workload name.
    pub kernel: String,
    /// EHS design label.
    pub design: &'static str,
    /// Governor label.
    pub governor: &'static str,
    /// Injection points actually probed.
    pub injections: usize,
    /// Points whose recovery converged to the golden image.
    pub converged: usize,
    /// Points that hit the simulated-time guard instead of finishing
    /// (harness misconfiguration, counted separately from divergence).
    pub incomplete: usize,
    /// Total decode failures surfaced across all probed runs — injected
    /// payload corruption the checkpoint path *detected* and dropped.
    pub detected_decode_faults: u64,
    /// Points whose final image diverged from golden.
    pub divergences: Vec<Divergence>,
}

impl FaultCampaignReport {
    /// `true` when every probed failure point recovered to the golden
    /// image: the design × governor point is crash-consistent under
    /// this plan.
    pub fn is_consistent(&self) -> bool {
        self.divergences.is_empty() && self.incomplete == 0
    }

    /// `true` when at least one injected corruption was caught — either
    /// as a decode failure or as an image divergence. This is what a
    /// *deliberately broken* checkpoint path must satisfy: silence is
    /// the only failing grade.
    pub fn detected_violation(&self) -> bool {
        self.detected_decode_faults > 0 || !self.divergences.is_empty()
    }

    /// One-line summary for logs and experiment tables.
    pub fn summary(&self) -> String {
        format!(
            "{} / {} / {}: {}/{} converged, {} divergent, {} incomplete, {} decode faults",
            self.kernel,
            self.design,
            self.governor,
            self.converged,
            self.injections,
            self.divergences.len(),
            self.incomplete,
            self.detected_decode_faults
        )
    }
}

/// The steady power trace campaigns run under: ample constant power, so
/// the capacitor never crosses the checkpoint threshold on its own and
/// the injected failure is the run's only one.
pub fn steady_trace() -> PowerTrace {
    PowerTrace::constant(Power::from_milliwatts(50.0), 1_000)
}

/// The failure-free reference: final architectural NVM image and stats
/// of one uninterrupted run.
#[derive(Debug, Clone)]
pub struct GoldenState {
    /// Stats of the reference run (always `completed`).
    pub stats: SimStats,
    /// Final NVM with all dirty cache state flushed.
    pub nvm: Nvm,
}

/// Captures the golden state for `program` under `cfg` on the steady
/// trace.
///
/// # Panics
///
/// Panics if the reference run does not complete (the steady trace makes
/// that a configuration error, not an energy outcome), or if
/// `cfg.governor` is an ideal two-phase spec — oracle replay realigns
/// work across power cycles, so a mid-run injection point has no
/// meaning there.
pub fn golden_state(program: &KernelProgram, cfg: &SimConfig) -> GoldenState {
    assert!(
        !cfg.governor.is_ideal(),
        "fault campaigns drive the simulator directly; ideal two-phase specs are not injectable"
    );
    let trace = steady_trace();
    let (stats, nvm) = Simulator::new(cfg.clone(), program, &trace).run_with_memory();
    assert!(
        stats.completed,
        "golden run of {} under {}/{} hit the time guard — raise cfg.max_sim_time",
        program.name(),
        cfg.design,
        cfg.governor.label()
    );
    GoldenState { stats, nvm }
}

/// Byte-compares two final NVM images over the union of blocks either
/// run materialised, returning the mismatching block indices (capped at
/// [`Divergence::MAX_BLOCKS`]).
///
/// Blocks neither run touched are backed by the same deterministic
/// image, so the union is the complete set of addresses that can
/// possibly differ.
pub fn diff_nvm(golden: &mut Nvm, other: &mut Nvm) -> Vec<u64> {
    let mut indices: std::collections::BTreeSet<u64> =
        golden.resident_indices().into_iter().collect();
    indices.extend(other.resident_indices());
    let mut mismatched = Vec::new();
    for idx in indices {
        let addr = golden.block_addr(idx);
        let reference = golden.peek_block(addr).clone();
        if other.peek_block(addr) != &reference {
            mismatched.push(idx);
            if mismatched.len() >= Divergence::MAX_BLOCKS {
                break;
            }
        }
    }
    mismatched
}

/// Runs one fault-injection campaign: golden capture, then one injected
/// run per plan point (in parallel on the shared worker pool), each
/// diffed against the golden image.
///
/// `kind` is the fault injected at every point; use
/// [`FaultKind::PowerFailure`] to certify crash consistency and the
/// corrupting kinds to certify *detection*.
///
/// # Panics
///
/// Panics under the same conditions as [`golden_state`].
pub fn run_campaign(
    program: &KernelProgram,
    cfg: &SimConfig,
    plan: InjectionPlan,
    kind: FaultKind,
) -> FaultCampaignReport {
    let golden = golden_state(program, cfg);
    let points = plan.points(program.len());
    let trace = steady_trace();

    // Each worker clones the golden NVM: `peek_block` materialises
    // lazily and needs `&mut`, and images here are at most a few
    // thousand small blocks.
    let outcomes = parallel::map(points, |at_inst| {
        let mut sim = Simulator::new(cfg.clone(), program, &trace);
        sim.arm_fault(at_inst, kind);
        let (stats, mut nvm) = sim.run_with_memory();
        let blocks =
            if stats.completed { diff_nvm(&mut golden.nvm.clone(), &mut nvm) } else { Vec::new() };
        (at_inst, stats.completed, stats.decode_faults, blocks)
    });

    let mut report = FaultCampaignReport {
        kernel: program.name().to_string(),
        design: cfg.design.name(),
        governor: cfg.governor.label(),
        injections: outcomes.len(),
        converged: 0,
        incomplete: 0,
        detected_decode_faults: 0,
        divergences: Vec::new(),
    };
    for (at_inst, completed, decode_faults, blocks) in outcomes {
        report.detected_decode_faults += decode_faults;
        if !completed {
            report.incomplete += 1;
        } else if blocks.is_empty() {
            report.converged += 1;
        } else {
            report.divergences.push(Divergence { at_inst, blocks });
        }
    }
    report
}

/// Store-heavy streaming kernel: `Tiled` stores never revisit a tile,
/// so every written block is written exactly once — a checkpoint that
/// drops one can never be healed by a later store. This is the campaign
/// kernel of choice for torn-checkpoint *detection*.
pub fn fi_stream() -> KernelProgram {
    KernelProgram::new(KernelSpec {
        name: "fi-stream",
        phases: vec![Phase {
            body: vec![
                Op::Store(
                    AddrGen::Tiled { base: 0x1000, tile_span: 64, iters_per_tile: 16, stride: 4 },
                    ValGen::Iter,
                ),
                Op::Alu,
            ],
            iterations: 300,
            code_base: 0x100,
            code_paths: 2,
        }],
        repeats: 1,
        image: ehs_mem::MemoryImage::zeros(),
    })
}

/// Mixed kernel: random loads, wrapping sequential stores (later
/// iterations overwrite earlier ones) and ALU work — exercises recovery
/// when dirty state is both re-read and re-written across the failure.
pub fn fi_mixed() -> KernelProgram {
    KernelProgram::new(KernelSpec {
        name: "fi-mixed",
        phases: vec![Phase {
            body: vec![
                Op::Load(AddrGen::Rand { base: 0x8000, span: 512, salt: 11 }),
                Op::Alu,
                Op::Store(
                    AddrGen::Seq { base: 0x4000, stride: 4, span: 256 },
                    ValGen::Small { magnitude: 200, salt: 7 },
                ),
                Op::Alu,
            ],
            iterations: 200,
            code_base: 0x400,
            code_paths: 2,
        }],
        repeats: 1,
        image: ehs_mem::MemoryImage::zeros(),
    })
}

/// The short synthetic kernels (≲ 1000 dynamic instructions) for which
/// exhaustive per-instruction injection is tractable.
pub fn short_kernels() -> Vec<KernelProgram> {
    vec![fi_stream(), fi_mixed()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EhsDesign, GovernorSpec};

    fn base(design: EhsDesign, gov: GovernorSpec) -> SimConfig {
        SimConfig::table1().with_design(design).with_governor(gov)
    }

    #[test]
    fn plans_generate_expected_points() {
        assert_eq!(InjectionPlan::Exhaustive.points(4), vec![1, 2, 3, 4]);
        assert_eq!(InjectionPlan::Stride { step: 3 }.points(8), vec![1, 4, 7]);
        let sampled = InjectionPlan::Sampled { count: 50, seed: 9 }.points(10_000);
        assert_eq!(sampled.len(), 50);
        assert!(sampled.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
        assert!(sampled.iter().all(|&p| (1..=10_000).contains(&p)));
        // Deterministic per seed.
        assert_eq!(sampled, InjectionPlan::Sampled { count: 50, seed: 9 }.points(10_000));
        // Saturating: more samples than boundaries degrades to exhaustive.
        assert_eq!(InjectionPlan::Sampled { count: 99, seed: 1 }.points(5), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn golden_runs_are_reproducible() {
        let cfg = base(EhsDesign::NvsramCache, GovernorSpec::Acc);
        let program = fi_stream();
        let mut a = golden_state(&program, &cfg);
        let mut b = golden_state(&program, &cfg);
        assert_eq!(a.stats.committed_insts, b.stats.committed_insts);
        assert!(diff_nvm(&mut a.nvm, &mut b.nvm).is_empty());
    }

    #[test]
    fn diff_reports_planted_mismatch() {
        let cfg = base(EhsDesign::NvsramCache, GovernorSpec::NoCompression);
        let program = fi_stream();
        let golden = golden_state(&program, &cfg);
        let mut a = golden.nvm.clone();
        let mut b = golden.nvm.clone();
        let idx = *golden.nvm.resident_indices().first().expect("stores landed in NVM");
        let addr = b.block_addr(idx);
        let mut block = b.peek_block(addr).clone();
        block.as_mut_slice()[0] ^= 0xFF;
        b.store_silent(addr, block);
        assert_eq!(diff_nvm(&mut a, &mut b), vec![idx]);
    }

    #[test]
    fn clean_injection_converges_on_every_design() {
        parallel::set_max_workers(4);
        let program = fi_stream();
        for design in EhsDesign::ALL {
            let report = run_campaign(
                &program,
                &base(design, GovernorSpec::AccKagura(Default::default())),
                InjectionPlan::Stride { step: 37 },
                FaultKind::PowerFailure,
            );
            assert!(report.is_consistent(), "{}", report.summary());
            assert_eq!(report.detected_decode_faults, 0, "{}", report.summary());
        }
    }

    #[test]
    fn torn_checkpoint_is_detected_as_divergence() {
        // The built-in mutation test: a checkpoint that silently drops
        // dirty blocks MUST show up as a divergent image. fi-stream
        // never rewrites a block, so the loss cannot be healed.
        parallel::set_max_workers(4);
        let report = run_campaign(
            &fi_stream(),
            &base(EhsDesign::NvsramCache, GovernorSpec::NoCompression),
            InjectionPlan::Stride { step: 97 },
            FaultKind::TornCheckpoint { persist_blocks: 0 },
        );
        assert!(
            report.detected_violation(),
            "torn checkpoint slipped through: {}",
            report.summary()
        );
        assert!(!report.divergences.is_empty(), "{}", report.summary());
        for d in &report.divergences {
            assert!(!d.blocks.is_empty());
        }
    }

    #[test]
    fn corrupt_payload_is_detected_not_fatal() {
        // A flipped payload bit must surface as a decode fault or an
        // image diff — never as a panic. AlwaysCompress guarantees the
        // checkpoint actually carries compressed blocks.
        parallel::set_max_workers(4);
        let report = run_campaign(
            &fi_stream(),
            &base(EhsDesign::NvsramCache, GovernorSpec::AlwaysCompress),
            InjectionPlan::Stride { step: 61 },
            FaultKind::CorruptPayload { bit: 3 },
        );
        assert!(report.detected_violation(), "corruption went unnoticed: {}", report.summary());
    }

    #[test]
    fn short_kernels_are_exhaustively_tractable() {
        for program in short_kernels() {
            assert!(program.len() <= 1_000, "{} too long for exhaustive injection", program.name());
            let (mem, _) = program.op_mix();
            assert!(mem > 0, "{} must touch memory", program.name());
        }
    }
}
