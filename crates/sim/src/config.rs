//! Simulation configuration.

use ehs_compress::Algorithm;
use ehs_energy::{CapacitorConfig, TraceKind};
use ehs_model::{Cycles, Energy, SimTime, SystemParams};
use kagura_core::{KaguraConfig, RandThresholdConfig};

/// Which EHS runtime the simulated platform uses (paper §VIII-H1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EhsDesign {
    /// NVSRAMCache: JIT checkpoint of dirty blocks + registers at `V_ckpt`
    /// (needs a voltage monitor). The paper's baseline.
    NvsramCache,
    /// NvMR: monitor-free nonvolatile-memory renaming; stores persist
    /// incrementally, failure loses nothing.
    Nvmr,
    /// SweepCache: monitor-free region sweeping; failure rolls back to the
    /// last swept boundary.
    SweepCache,
}

impl EhsDesign {
    /// All designs in the paper's Fig 19 order.
    pub const ALL: [EhsDesign; 3] =
        [EhsDesign::NvsramCache, EhsDesign::Nvmr, EhsDesign::SweepCache];

    /// Display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            EhsDesign::NvsramCache => "NVSRAMCache",
            EhsDesign::Nvmr => "NvMR",
            EhsDesign::SweepCache => "SweepCache",
        }
    }
}

impl std::fmt::Display for EhsDesign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Optional cache-management extension (paper §VIII-H3, Fig 20).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Extension {
    /// No extension.
    None,
    /// EDBP: cache-decay-based dead-block prediction — blocks idle longer
    /// than the decay window are retired early (dirty ones written back),
    /// shrinking JIT checkpoints.
    Edbp {
        /// Idle threshold in cache recency ticks.
        decay_ticks: u64,
    },
    /// IPEX: intermittence-aware next-line prefetching — on a DCache read
    /// miss, the sequentially next block is prefetched when the energy
    /// buffer is comfortably full.
    Ipex {
        /// Prefetch only while the capacitor is above this fraction of the
        /// usable (V_ckpt..V_rst) window.
        min_energy_fraction: f64,
    },
}

impl Extension {
    /// The paper's EDBP configuration.
    pub fn edbp() -> Self {
        Extension::Edbp { decay_ticks: 2048 }
    }

    /// The paper's IPEX configuration.
    pub fn ipex() -> Self {
        Extension::Ipex { min_energy_fraction: 0.25 }
    }
}

/// Which compression policy governs the caches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GovernorSpec {
    /// No compression at all (baseline NVSRAMCache).
    NoCompression,
    /// Compress every fill.
    AlwaysCompress,
    /// ACC alone.
    Acc,
    /// ACC with Kagura on top (the paper's proposal).
    AccKagura(KaguraConfig),
    /// The two-phase ideal compressor applied to ACC ("ideal" in Fig 13).
    IdealAcc,
    /// The two-phase ideal applied to ACC + Kagura.
    IdealAccKagura(KaguraConfig),
    /// Randomized compression threshold — the leakscope side-channel
    /// countermeasure: each fill's compress/bypass decision is drawn from
    /// a seeded stream, decorrelating stored footprint from block
    /// contents.
    RandThreshold(RandThresholdConfig),
}

impl GovernorSpec {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            GovernorSpec::NoCompression => "baseline",
            GovernorSpec::AlwaysCompress => "always",
            GovernorSpec::Acc => "ACC",
            GovernorSpec::AccKagura(_) => "ACC+Kagura",
            GovernorSpec::IdealAcc => "ideal ACC",
            GovernorSpec::IdealAccKagura(_) => "ideal ACC+Kagura",
            GovernorSpec::RandThreshold(_) => "rand-threshold",
        }
    }

    /// `true` for the two-phase oracle variants.
    pub fn is_ideal(&self) -> bool {
        matches!(self, GovernorSpec::IdealAcc | GovernorSpec::IdealAccKagura(_))
    }
}

/// A policy/configuration combination rejected *before* a run starts.
///
/// These used to be mid-run panics; surfacing them as values lets batch
/// drivers report one bad grid point instead of aborting a whole sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// A two-phase ideal run was given a recording governor whose policy
    /// family does not match the spec it must replay against (e.g. a
    /// Kagura recorder with a plain-ACC spec: the replay phase would
    /// silently substitute default Kagura parameters).
    RecorderMismatch {
        /// The recorder's policy family.
        recorder: &'static str,
        /// The spec's label (see [`GovernorSpec::label`]).
        spec: &'static str,
    },
    /// A governor that never recorded an oracle trace was asked for one.
    NotARecorder {
        /// The offending governor's name.
        governor: &'static str,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ConfigError::RecorderMismatch { recorder, spec } => write!(
                f,
                "a {recorder} recorder requires a governor spec carrying its \
                 config, got \"{spec}\""
            ),
            ConfigError::NotARecorder { governor } => {
                write!(f, "{governor} is not an oracle-recording governor")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Cooperative per-job watchdog budget, checked in the simulator's step
/// loop so a stuck or runaway configuration is cancelled cleanly instead
/// of hanging a whole experiment batch.
///
/// Two independent limits:
///
/// * `max_executed_insts` — cancels after that many *executed*
///   instructions (SweepCache re-execution counts). This limit is
///   **deterministic**: the same config cancels at the same point on
///   every host, so budget-cancelled grid cells stay byte-identical
///   across runs and `--resume`.
/// * `max_wall` — cancels once the run has consumed that much host
///   wall-clock time. Nondeterministic by nature; an operational safety
///   net (`repro --job-timeout`) for configs that would otherwise wedge
///   a worker forever.
///
/// A cancelled run returns normally with
/// [`SimStats::budget_exhausted`](crate::stats::SimStats::budget_exhausted)
/// set and `completed == false`; the parallel pool surfaces it as
/// [`JobFailure::TimedOut`](crate::parallel::JobFailure::TimedOut).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StepBudget {
    /// Cancel after this many executed instructions (`None` = unlimited).
    pub max_executed_insts: Option<u64>,
    /// Cancel after this much host wall-clock time (`None` = unlimited).
    pub max_wall: Option<std::time::Duration>,
}

impl StepBudget {
    /// No limits: the default for every config.
    pub const UNLIMITED: StepBudget = StepBudget { max_executed_insts: None, max_wall: None };

    /// Budget limited to `n` executed instructions.
    pub fn insts(n: u64) -> Self {
        StepBudget { max_executed_insts: Some(n), ..Self::UNLIMITED }
    }

    /// Budget limited to `d` of host wall-clock time.
    pub fn wall(d: std::time::Duration) -> Self {
        StepBudget { max_wall: Some(d), ..Self::UNLIMITED }
    }

    /// `true` when neither limit is set (the watchdog is disarmed).
    pub fn is_unlimited(&self) -> bool {
        self.max_executed_insts.is_none() && self.max_wall.is_none()
    }

    /// The intersection of two budgets: each limit is the tighter of
    /// the two (a set limit always beats an unset one). Serving layers
    /// use this to combine a per-request budget with the server-wide
    /// watchdog — a request can only ever *shrink* its allowance.
    pub fn min_with(self, other: StepBudget) -> StepBudget {
        fn tighter<T: Ord>(a: Option<T>, b: Option<T>) -> Option<T> {
            match (a, b) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, None) => x,
                (None, y) => y,
            }
        }
        StepBudget {
            max_executed_insts: tighter(self.max_executed_insts, other.max_executed_insts),
            max_wall: tighter(self.max_wall, other.max_wall),
        }
    }
}

/// Which implementation of the step loop drives the simulation.
///
/// Both modes are **byte-identical** in results by construction (the fast
/// path only elides work that provably cannot change state — see
/// DESIGN.md "Fast path" — and the differential tests in
/// `crates/sim/tests/fastpath.rs` enforce it). `Reference` exists as the
/// plainly-auditable baseline: one `step()` per instruction with every
/// subsystem consulted unconditionally. It is what the fast path is
/// validated and benchmarked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecMode {
    /// Event-driven fast-forward loop (the default): batches runs of
    /// non-memory instructions and skips provably-dead subsystem calls.
    #[default]
    FastForward,
    /// Naive per-instruction loop, kept as the differential-testing and
    /// benchmarking baseline.
    Reference,
}

impl ExecMode {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ExecMode::FastForward => "fast-forward",
            ExecMode::Reference => "reference",
        }
    }
}

/// Fixed runtime costs of the EHS designs (documented extrapolations; see
/// DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeCosts {
    /// Register-file/NVFF checkpoint energy at power failure.
    pub checkpoint_fixed: Energy,
    /// State restoration energy at reboot.
    pub restore_fixed: Energy,
    /// Restoration latency at reboot.
    pub restore_latency: Cycles,
    /// NvMR: fraction of a full NVM block write charged per store commit.
    pub nvmr_store_factor: f64,
    /// SweepCache: committed instructions per persist region.
    pub sweep_region: u64,
    /// SweepCache: fixed energy per region boundary.
    pub sweep_boundary: Energy,
}

impl Default for RuntimeCosts {
    fn default() -> Self {
        RuntimeCosts {
            checkpoint_fixed: Energy::from_picojoules(800.0),
            restore_fixed: Energy::from_picojoules(400.0),
            restore_latency: Cycles::new(40),
            nvmr_store_factor: 0.30,
            sweep_region: 512,
            sweep_boundary: Energy::from_picojoules(100.0),
        }
    }
}

/// The full simulation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Core, cache and NVM hardware parameters.
    pub system: SystemParams,
    /// Energy buffer.
    pub capacitor: CapacitorConfig,
    /// Which compression algorithm the caches use.
    pub algorithm: Algorithm,
    /// EHS runtime design.
    pub design: EhsDesign,
    /// Compression policy.
    pub governor: GovernorSpec,
    /// Optional cache-management extension.
    pub extension: Extension,
    /// Fixed runtime costs.
    pub costs: RuntimeCosts,
    /// Ambient source for the default generated trace.
    pub trace_kind: TraceKind,
    /// Seed for trace generation.
    pub trace_seed: u64,
    /// Hard stop on simulated wall-clock time (guards against dead traces).
    pub max_sim_time: SimTime,
    /// Cooperative watchdog budget ([`StepBudget::UNLIMITED`] by default).
    pub step_budget: StepBudget,
    /// Step-loop implementation ([`ExecMode::FastForward`] by default;
    /// results are byte-identical either way).
    pub exec: ExecMode,
    /// Keep one [`CycleRecord`](crate::stats::CycleRecord) per completed
    /// power cycle in `SimStats::power_cycles` (on by default — the
    /// fig 12/14 analyses need them). Population-scale runs turn this
    /// off: a tiny-capacitor cell can see millions of cycles, and the
    /// records are the only per-run allocation that grows with cycle
    /// count. `SimStats::power_cycle_count` is maintained either way,
    /// and no simulated behaviour depends on the recorded vector.
    pub record_cycles: bool,
    /// Panic on an energy-ledger conservation violation instead of
    /// counting it (`--audit-strict`). Off by default: the counter path
    /// lets nearly-dead traces (where `Capacitor::drain` zero-clamps)
    /// finish while still surfacing the drift.
    pub audit_strict: bool,
    /// Absolute epsilon for the per-cycle ledger audit
    /// ([`ehs_energy::ledger::DEFAULT_EPSILON`] by default; the audit
    /// adds a relative term on top, see `LedgerRow::tolerance`).
    pub ledger_epsilon: Energy,
}

impl SimConfig {
    /// The paper's Table I platform: NVSRAMCache, 4.7 µF, BDI, RFHome
    /// trace, no compression (the baseline the figures normalise to).
    pub fn table1() -> Self {
        SimConfig {
            system: SystemParams::table1(),
            capacitor: CapacitorConfig::default_4u7(),
            algorithm: Algorithm::Bdi,
            design: EhsDesign::NvsramCache,
            governor: GovernorSpec::NoCompression,
            extension: Extension::None,
            costs: RuntimeCosts::default(),
            trace_kind: TraceKind::RfHome,
            trace_seed: 0xE45,
            max_sim_time: SimTime::from_seconds(600.0),
            step_budget: StepBudget::UNLIMITED,
            exec: ExecMode::FastForward,
            record_cycles: true,
            audit_strict: false,
            ledger_epsilon: ehs_energy::ledger::DEFAULT_EPSILON,
        }
    }

    /// Copy with a different governor.
    pub fn with_governor(mut self, governor: GovernorSpec) -> Self {
        self.governor = governor;
        self
    }

    /// Copy with a different design.
    pub fn with_design(mut self, design: EhsDesign) -> Self {
        self.design = design;
        self
    }

    /// Copy with a watchdog budget.
    pub fn with_step_budget(mut self, budget: StepBudget) -> Self {
        self.step_budget = budget;
        self
    }

    /// Copy with strict ledger auditing toggled.
    pub fn with_audit_strict(mut self, strict: bool) -> Self {
        self.audit_strict = strict;
        self
    }

    /// Copy with a different step-loop implementation.
    pub fn with_exec(mut self, exec: ExecMode) -> Self {
        self.exec = exec;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let cfg = SimConfig::table1();
        assert_eq!(cfg.design, EhsDesign::NvsramCache);
        assert_eq!(cfg.governor, GovernorSpec::NoCompression);
        assert_eq!(cfg.algorithm, Algorithm::Bdi);
        assert_eq!(cfg.system.dcache.size_bytes, 256);
    }

    #[test]
    fn labels() {
        assert_eq!(GovernorSpec::Acc.label(), "ACC");
        assert!(GovernorSpec::IdealAcc.is_ideal());
        assert!(!GovernorSpec::Acc.is_ideal());
        assert_eq!(EhsDesign::Nvmr.to_string(), "NvMR");
        assert_eq!(EhsDesign::ALL.len(), 3);
    }

    #[test]
    fn step_budget_defaults_to_unlimited() {
        let cfg = SimConfig::table1();
        assert!(cfg.step_budget.is_unlimited());
        assert!(!StepBudget::insts(1_000).is_unlimited());
        assert!(!StepBudget::wall(std::time::Duration::from_secs(1)).is_unlimited());
        let b = SimConfig::table1().with_step_budget(StepBudget::insts(42)).step_budget;
        assert_eq!(b.max_executed_insts, Some(42));
        assert_eq!(b.max_wall, None);
    }

    #[test]
    fn step_budget_min_with_takes_the_tighter_limit() {
        use std::time::Duration;
        let server = StepBudget::insts(1_000_000);
        let request = StepBudget { max_executed_insts: Some(500), max_wall: None };
        let merged = request.min_with(server);
        assert_eq!(merged.max_executed_insts, Some(500));
        assert_eq!(merged.max_wall, None);
        // A set limit always beats an unset one, in either order.
        let walled = StepBudget::wall(Duration::from_millis(50)).min_with(server);
        assert_eq!(walled.max_executed_insts, Some(1_000_000));
        assert_eq!(walled.max_wall, Some(Duration::from_millis(50)));
        assert!(StepBudget::UNLIMITED.min_with(StepBudget::UNLIMITED).is_unlimited());
        let tight = StepBudget::wall(Duration::from_millis(10))
            .min_with(StepBudget::wall(Duration::from_millis(99)));
        assert_eq!(tight.max_wall, Some(Duration::from_millis(10)));
    }

    #[test]
    fn ledger_audit_defaults_lenient() {
        let cfg = SimConfig::table1();
        assert!(!cfg.audit_strict);
        assert_eq!(cfg.ledger_epsilon, ehs_energy::ledger::DEFAULT_EPSILON);
        assert!(SimConfig::table1().with_audit_strict(true).audit_strict);
    }

    #[test]
    fn exec_mode_defaults_to_fast_forward() {
        assert_eq!(SimConfig::table1().exec, ExecMode::FastForward);
        assert_eq!(ExecMode::default(), ExecMode::FastForward);
        let cfg = SimConfig::table1().with_exec(ExecMode::Reference);
        assert_eq!(cfg.exec, ExecMode::Reference);
        assert_eq!(cfg.exec.label(), "reference");
    }

    #[test]
    fn builders_compose() {
        let cfg =
            SimConfig::table1().with_design(EhsDesign::SweepCache).with_governor(GovernorSpec::Acc);
        assert_eq!(cfg.design, EhsDesign::SweepCache);
        assert_eq!(cfg.governor, GovernorSpec::Acc);
    }
}
