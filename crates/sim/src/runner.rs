//! Convenience entry points used by examples, tests and the bench harness.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use ehs_energy::{PowerTrace, TraceKind};
use ehs_telemetry::{MetricsRegistry, Sink};
use ehs_workloads::{App, KernelProgram};

use crate::cachescope::{CachescopeConfig, CachescopeReport};
use crate::config::{ConfigError, GovernorSpec, SimConfig};
use crate::governor::Governor;
use crate::machine::Simulator;
use crate::stats::SimStats;
use kagura_core::CompressionGovernor as _;

/// Default generated-trace length in 10 µs windows (≈ 40 s of ambient
/// input, far more than any run consumes before wrapping).
const DEFAULT_TRACE_LEN: usize = 4_000_000;

/// Idle trace-cache entries retained beyond the ones currently borrowed
/// by running simulations. Each generated trace is ~32 MB
/// (`DEFAULT_TRACE_LEN` × 8 B), and fleet campaigns use a distinct
/// trace seed per cell — an unbounded cache turns a 10⁵-cell campaign
/// into terabytes of dead traces. Entries still referenced by a running
/// simulation are never evicted, so the cache can exceed this cap while
/// that many distinct traces are simultaneously in use.
const TRACE_CACHE_IDLE_CAP: usize = 8;

type TraceCache = Mutex<HashMap<(TraceKind, u64), Arc<PowerTrace>>>;

fn trace_cache() -> &'static TraceCache {
    static CACHE: OnceLock<TraceCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Current number of cached traces (bounded-cache regression tests).
#[cfg(test)]
fn trace_cache_len() -> usize {
    trace_cache().lock().unwrap_or_else(|e| e.into_inner()).len()
}

/// Generates (or fetches from a process-wide cache) the configuration's
/// default power trace. Generation is deterministic per `(kind, seed)`, so
/// sharing one copy across the many runs of an experiment sweep is both
/// safe and substantially faster. The cache is bounded: once it exceeds
/// [`TRACE_CACHE_IDLE_CAP`] entries, traces no longer borrowed by any
/// caller are evicted, keeping resident memory flat even when every run
/// uses a fresh seed (fleet campaigns).
///
/// Concurrency: two workers racing on the same key may both generate the
/// trace; the second insert wins and the copies are identical (generation
/// is deterministic), so callers always observe equivalent data. The lock
/// is never held across generation, and a panicked worker elsewhere in
/// the sweep cannot wedge the cache — poisoning is recovered, since the
/// map is only ever mutated by complete `insert`/`remove` calls.
pub fn default_trace(cfg: &SimConfig) -> Arc<PowerTrace> {
    let cache = trace_cache();
    let key = (cfg.trace_kind, cfg.trace_seed);
    if let Some(trace) = cache.lock().unwrap_or_else(|e| e.into_inner()).get(&key) {
        return Arc::clone(trace);
    }
    let trace = Arc::new(PowerTrace::generate(cfg.trace_kind, cfg.trace_seed, DEFAULT_TRACE_LEN));
    let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
    map.insert(key, Arc::clone(&trace));
    if map.len() > TRACE_CACHE_IDLE_CAP {
        // Evict whatever nobody is running on (strong_count 1 = only the
        // cache holds it); in-flight traces stay shared until dropped.
        let excess = map.len() - TRACE_CACHE_IDLE_CAP;
        let mut evictable: Vec<(TraceKind, u64)> = map
            .iter()
            .filter(|&(k, v)| Arc::strong_count(v) == 1 && *k != key)
            .map(|(k, _)| *k)
            .collect();
        evictable.truncate(excess);
        for k in evictable {
            map.remove(&k);
        }
    }
    trace
}

/// Runs `program` under `cfg` with the given trace.
///
/// Ideal (two-phase) governor specs are decomposed automatically.
pub fn run_program(program: &KernelProgram, trace: &PowerTrace, cfg: &SimConfig) -> SimStats {
    match cfg.governor {
        // Spec-derived recorders always match their own spec.
        GovernorSpec::IdealAcc => run_ideal(program, trace, cfg, Governor::record_acc())
            .expect("spec-derived recorder validates"),
        GovernorSpec::IdealAccKagura(kcfg) => {
            run_ideal(program, trace, cfg, Governor::record_kagura(kcfg))
                .expect("spec-derived recorder validates")
        }
        _ => Simulator::new(cfg.clone(), program, trace).run(),
    }
}

/// Runs `app` at workload `scale` under `cfg` with the config's default
/// generated trace.
///
/// # Panics
///
/// Panics if `scale` is not positive.
pub fn run_app(app: App, scale: f64, cfg: &SimConfig) -> SimStats {
    let program = app.build(scale);
    let trace = default_trace(cfg);
    run_program(&program, &trace, cfg)
}

/// Like [`run_program`] but with an event sink attached for the whole
/// run; returns the metrics registry accumulated alongside the stats.
///
/// Ideal (two-phase) specs instrument only the replay phase — the
/// recording pass is oracle scaffolding, not the behavior under study.
pub fn run_program_with_telemetry(
    program: &KernelProgram,
    trace: &PowerTrace,
    cfg: &SimConfig,
    sink: &mut dyn Sink,
) -> (SimStats, MetricsRegistry) {
    match cfg.governor {
        GovernorSpec::IdealAcc => {
            run_ideal_telemetry(program, trace, cfg, Governor::record_acc(), Some(sink))
                .expect("spec-derived recorder validates")
        }
        GovernorSpec::IdealAccKagura(kcfg) => {
            run_ideal_telemetry(program, trace, cfg, Governor::record_kagura(kcfg), Some(sink))
                .expect("spec-derived recorder validates")
        }
        _ => {
            let mut sim = Simulator::new(cfg.clone(), program, trace);
            sim.attach_telemetry(sink);
            sim.run_instrumented()
        }
    }
}

/// Like [`run_program`] but with a cachescope attached; returns the
/// cache-microarchitecture report alongside the stats. The fast-forward
/// loop stays engaged (cachescope is not telemetry) and the stats are
/// byte-identical to an unscoped run.
///
/// Ideal (two-phase) specs scope only the replay phase — the recording
/// pass is oracle scaffolding, not the behavior under study.
pub fn run_program_with_cachescope(
    program: &KernelProgram,
    trace: &PowerTrace,
    cfg: &SimConfig,
    scope: CachescopeConfig,
) -> (SimStats, CachescopeReport) {
    let scoped = |gov: Option<Governor>| {
        let mut sim = match gov {
            Some(g) => Simulator::with_governor(cfg.clone(), program, trace, g),
            None => Simulator::new(cfg.clone(), program, trace),
        };
        sim.attach_cachescope(scope);
        sim.run_with_cachescope()
    };
    match cfg.governor {
        GovernorSpec::IdealAcc => {
            let (_, oracle) =
                Simulator::with_governor(cfg.clone(), program, trace, Governor::record_acc())
                    .run_recording();
            scoped(Some(Governor::replay_acc(oracle)))
        }
        GovernorSpec::IdealAccKagura(kcfg) => {
            let (_, oracle) = Simulator::with_governor(
                cfg.clone(),
                program,
                trace,
                Governor::record_kagura(kcfg),
            )
            .run_recording();
            scoped(Some(Governor::replay_kagura(kcfg, oracle)))
        }
        _ => scoped(None),
    }
}

/// Like [`run_program`] but with a leakscope access timeline attached to
/// the data cache; returns the per-access timeline alongside the stats.
/// The fast-forward loop stays engaged (the probe is event-driven) and
/// the stats are byte-identical to an unprobed run.
///
/// Ideal (two-phase) specs record the timeline only over the replay
/// phase, mirroring [`run_program_with_cachescope`].
pub fn run_program_with_leak_timeline(
    program: &KernelProgram,
    trace: &PowerTrace,
    cfg: &SimConfig,
    capacity: usize,
) -> (SimStats, ehs_cache::AccessTimeline) {
    let probed = |gov: Option<Governor>| {
        let mut sim = match gov {
            Some(g) => Simulator::with_governor(cfg.clone(), program, trace, g),
            None => Simulator::new(cfg.clone(), program, trace),
        };
        sim.attach_leak_timeline(capacity);
        sim.run_with_leak_timeline()
    };
    match cfg.governor {
        GovernorSpec::IdealAcc => {
            let (_, oracle) =
                Simulator::with_governor(cfg.clone(), program, trace, Governor::record_acc())
                    .run_recording();
            probed(Some(Governor::replay_acc(oracle)))
        }
        GovernorSpec::IdealAccKagura(kcfg) => {
            let (_, oracle) = Simulator::with_governor(
                cfg.clone(),
                program,
                trace,
                Governor::record_kagura(kcfg),
            )
            .run_recording();
            probed(Some(Governor::replay_kagura(kcfg, oracle)))
        }
        _ => probed(None),
    }
}

/// Like [`run_app`] but with a cachescope attached; see
/// [`run_program_with_cachescope`].
pub fn run_app_with_cachescope(
    app: App,
    scale: f64,
    cfg: &SimConfig,
    scope: CachescopeConfig,
) -> (SimStats, CachescopeReport) {
    let program = app.build(scale);
    let trace = default_trace(cfg);
    run_program_with_cachescope(&program, &trace, cfg, scope)
}

/// Like [`run_app`] but instrumented; see [`run_program_with_telemetry`].
pub fn run_app_with_telemetry(
    app: App,
    scale: f64,
    cfg: &SimConfig,
    sink: &mut dyn Sink,
) -> (SimStats, MetricsRegistry) {
    let program = app.build(scale);
    let trace = default_trace(cfg);
    run_program_with_telemetry(&program, &trace, cfg, sink)
}

/// Explicit two-phase ideal run (paper Fig 13's "ideal" methodology):
/// record which compressions pay off, then replay compressing only those.
///
/// Returns a [`ConfigError`] — *before* any simulation work — when
/// `recorder` is not a recording governor, or when it is a Kagura
/// recorder but `cfg.governor` carries no Kagura config for the replay
/// phase to reuse.
pub fn run_ideal_app(
    app: App,
    scale: f64,
    cfg: &SimConfig,
    recorder: Governor,
) -> Result<SimStats, ConfigError> {
    let program = app.build(scale);
    let trace = default_trace(cfg);
    run_ideal(&program, &trace, cfg, recorder)
}

/// Rejects recorder/spec combinations the replay phase cannot honor.
///
/// A Kagura recorder must replay with the very Kagura parameters the
/// recording phase observed; silently substituting defaults would make
/// the "ideal" comparison quietly measure the wrong config. Checked up
/// front so a bad grid point fails fast instead of after the (expensive)
/// recording pass.
fn validate_recorder(recorder: &Governor, spec: &GovernorSpec) -> Result<(), ConfigError> {
    if !recorder.is_recorder() {
        return Err(ConfigError::NotARecorder { governor: recorder.name() });
    }
    if matches!(recorder, Governor::RecordKagura(_))
        && !matches!(spec, GovernorSpec::IdealAccKagura(_) | GovernorSpec::AccKagura(_))
    {
        return Err(ConfigError::RecorderMismatch { recorder: "ACC+Kagura", spec: spec.label() });
    }
    Ok(())
}

fn run_ideal(
    program: &KernelProgram,
    trace: &PowerTrace,
    cfg: &SimConfig,
    recorder: Governor,
) -> Result<SimStats, ConfigError> {
    run_ideal_telemetry(program, trace, cfg, recorder, None).map(|(stats, _)| stats)
}

fn run_ideal_telemetry(
    program: &KernelProgram,
    trace: &PowerTrace,
    cfg: &SimConfig,
    recorder: Governor,
    sink: Option<&mut dyn Sink>,
) -> Result<(SimStats, MetricsRegistry), ConfigError> {
    validate_recorder(&recorder, &cfg.governor)?;
    let is_kagura = matches!(recorder, Governor::RecordKagura(_));
    let (_, oracle_trace) =
        Simulator::with_governor(cfg.clone(), program, trace, recorder).run_recording();
    let replayer = if is_kagura {
        let kcfg = match cfg.governor {
            GovernorSpec::IdealAccKagura(k) | GovernorSpec::AccKagura(k) => k,
            // validate_recorder rejected every other spec before the run.
            _ => unreachable!("validate_recorder admits only Kagura-carrying specs"),
        };
        Governor::replay_kagura(kcfg, oracle_trace)
    } else {
        Governor::replay_acc(oracle_trace)
    };
    let mut sim = Simulator::with_governor(cfg.clone(), program, trace, replayer);
    Ok(match sink {
        Some(sink) => {
            sim.attach_telemetry(sink);
            sim.run_instrumented()
        }
        None => (sim.run(), MetricsRegistry::default()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GovernorSpec;
    use ehs_workloads::App;

    #[test]
    fn ideal_runs_complete_and_avoid_useless_compressions() {
        let acc = run_app(App::Jpegd, 0.02, &SimConfig::table1().with_governor(GovernorSpec::Acc));
        let ideal =
            run_app(App::Jpegd, 0.02, &SimConfig::table1().with_governor(GovernorSpec::IdealAcc));
        assert!(ideal.completed);
        assert!(
            ideal.compression_ops() <= acc.compression_ops(),
            "ideal ({}) must not compress more than ACC ({})",
            ideal.compression_ops(),
            acc.compression_ops()
        );
    }

    #[test]
    fn ideal_kagura_completes() {
        let cfg =
            SimConfig::table1().with_governor(GovernorSpec::IdealAccKagura(Default::default()));
        let stats = run_app(App::Gsm, 0.02, &cfg);
        assert!(stats.completed);
    }

    #[test]
    fn telemetry_runner_matches_plain_runner() {
        use ehs_telemetry::NullSink;

        for gov in [
            GovernorSpec::Acc,
            GovernorSpec::AccKagura(Default::default()),
            GovernorSpec::IdealAccKagura(Default::default()),
        ] {
            let cfg = SimConfig::table1().with_governor(gov);
            let plain = run_app(App::Sha, 0.01, &cfg);
            let mut sink = NullSink;
            let (stats, _) = run_app_with_telemetry(App::Sha, 0.01, &cfg, &mut sink);
            assert_eq!(stats.sim_time, plain.sim_time, "{gov:?}");
            assert_eq!(stats.compression_ops(), plain.compression_ops(), "{gov:?}");
        }
    }

    #[test]
    fn mismatched_recorder_is_rejected_before_the_run() {
        use crate::config::ConfigError;

        // A Kagura recorder against a plain-ACC spec: the replay phase
        // would have no Kagura config to reuse.
        let cfg = SimConfig::table1().with_governor(GovernorSpec::IdealAcc);
        let err = run_ideal_app(App::Sha, 0.01, &cfg, Governor::record_kagura(Default::default()))
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::RecorderMismatch { recorder: "ACC+Kagura", spec: "ideal ACC" }
        );
        assert!(err.to_string().contains("ACC+Kagura"), "{err}");

        // A non-recording governor cannot drive the two-phase methodology.
        let err = run_ideal_app(App::Sha, 0.01, &cfg, Governor::acc()).unwrap_err();
        assert_eq!(err, ConfigError::NotARecorder { governor: "ACC" });
    }

    #[test]
    fn trace_cache_stays_bounded_across_fresh_seeds() {
        // Fleet campaigns request a distinct trace seed per cell; the
        // cache must evict idle traces instead of growing linearly with
        // the population (each entry is ~32 MB).
        let mut cfg = SimConfig::table1();
        for seed in 0..3 * TRACE_CACHE_IDLE_CAP as u64 {
            cfg.trace_seed = 0xF1EE_0000 + seed;
            drop(default_trace(&cfg));
        }
        // Other tests in this process share the cache and may be holding
        // live (unevictable) traces, hence the slack on top of the cap.
        let len = trace_cache_len();
        assert!(len <= TRACE_CACHE_IDLE_CAP + 16, "trace cache grew unbounded: {len} entries");
        // The hit path still shares: same seed, same allocation.
        let a = default_trace(&cfg);
        let b = default_trace(&cfg);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn run_app_matches_run_program() {
        let cfg = SimConfig::table1().with_governor(GovernorSpec::Acc);
        let a = run_app(App::Sha, 0.01, &cfg);
        let program = App::Sha.build(0.01);
        let trace = default_trace(&cfg);
        let b = run_program(&program, &trace, &cfg);
        assert_eq!(a.sim_time, b.sim_time);
    }
}
