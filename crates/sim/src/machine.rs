//! The instruction-granular EHS simulator.

use std::collections::HashMap;

use ehs_cache::{CacheConfig, CompressedCache, Evicted, FillOutcome};
use ehs_compress::Compressor as _;
use ehs_energy::{
    Capacitor, EnergyBreakdown, EnergyCategory, LedgerRow, PowerTrace, VoltageMonitor,
};
use ehs_mem::Nvm;
use ehs_model::inst::InstKind;
use ehs_model::{Address, CompressorCost, Energy, Power, SimTime};
use ehs_telemetry::{Counter, Event, Gauge, HistogramId, MetricsRegistry, Sink, Telemetry};
use ehs_workloads::{InstCursor, KernelProgram};
use kagura_core::{CompressionGovernor, Mode};

use crate::cachescope::{
    CachescopeAggregator, CachescopeConfig, CachescopeReport, CycleScope, LatencyAttribution,
    OccupancySnapshot, ScopeState,
};
use crate::config::{EhsDesign, ExecMode, Extension, SimConfig};
use crate::governor::Governor;
use crate::stats::{CycleRecord, SimStats};

/// Trace-stepping granularity while hibernating (one trace window).
const CHARGE_STEP: SimTime = SimTime::from_micros(10.0);

/// Loop iterations between host wall-clock watchdog checks. The
/// instruction budget is compared every step (one u64 compare); reading
/// the host clock is amortised over this many iterations so an armed
/// wall budget costs next to nothing on the hot path.
const WALL_CHECK_PERIOD: u32 = 4096;

/// Oracle attribution bookkeeping for one cache: which live compressed
/// blocks were created by which recorded fills, grouped by set.
///
/// A compression is "useful" when a *deep* hit (LRU rank beyond the nominal
/// ways) lands in a set while the compressed block is resident: the
/// capacity saved by every compressed block in that set is what made the
/// deep residency possible, so all of them are credited. This makes the
/// replayed ideal an optimistic upper bound, as the paper's ideal is.
#[derive(Debug, Default)]
struct OracleMap {
    /// block index -> (set index, fill id)
    by_block: HashMap<u64, (u32, usize)>,
    /// set index -> live (block index, fill id) pairs
    by_set: HashMap<u32, Vec<(u64, usize)>>,
}

impl OracleMap {
    fn insert(&mut self, set: u32, block: u64, id: usize) {
        self.by_block.insert(block, (set, id));
        self.by_set.entry(set).or_default().push((block, id));
    }

    fn remove(&mut self, block: u64) {
        // Non-recording governors never insert, so every eviction would
        // otherwise pay a hash of `block` just to probe an empty table.
        if self.by_block.is_empty() {
            return;
        }
        if let Some((set, _)) = self.by_block.remove(&block) {
            if let Some(v) = self.by_set.get_mut(&set) {
                v.retain(|&(b, _)| b != block);
            }
        }
    }

    fn ids_in_set(&self, set: u32) -> impl Iterator<Item = usize> + '_ {
        self.by_set.get(&set).into_iter().flatten().map(|&(_, id)| id)
    }

    fn clear(&mut self) {
        self.by_block.clear();
        self.by_set.clear();
    }
}

/// How often (committed instructions) the EDBP decay scan runs.
const EDBP_SCAN_PERIOD: u64 = 128;

/// Largest per-instruction cycle count with a precomputed `dt` on the
/// fast path (miss + fill stalls stay well under this; larger counts fall
/// back to the division).
const DT_TABLE_CYCLES: u64 = 256;

/// Smallest raw stored-energy value (in picojoules, [`Energy`]'s internal
/// unit) at which [`Capacitor::voltage`] reaches `v_ckpt`, found by
/// bisecting f64 bit patterns.
///
/// `voltage = sqrt(2 · (pJ · 1e-12) / C)` is monotone non-decreasing in
/// the raw f64 (each step — two positive-constant multiplies, a divide by
/// a positive constant, a square root — is monotone under IEEE
/// round-to-nearest), and non-negative f64 bit patterns order identically
/// to their values, so the exact boundary is reachable by binary search
/// over the bit patterns. `stored.picojoules() < cutoff` then reproduces
/// `below_checkpoint()` bit-for-bit without the per-instruction sqrt.
fn checkpoint_cutoff_pj(capacitance: f64, v_ckpt: f64) -> f64 {
    // Must mirror `Capacitor::voltage()` ∘ `Energy::joules()` exactly.
    let volt = |pj: f64| (2.0 * (pj * 1e-12) / capacitance).sqrt();
    if volt(0.0) >= v_ckpt {
        return 0.0;
    }
    let mut hi = 1.0f64;
    while volt(hi) < v_ckpt {
        hi *= 2.0;
        if !hi.is_finite() {
            return f64::INFINITY;
        }
    }
    let mut lo_bits = 0u64; // invariant: volt(lo) < v_ckpt
    let mut hi_bits = hi.to_bits(); // invariant: volt(hi) >= v_ckpt
    while hi_bits - lo_bits > 1 {
        let mid = lo_bits + (hi_bits - lo_bits) / 2;
        if volt(f64::from_bits(mid)) < v_ckpt {
            lo_bits = mid;
        } else {
            hi_bits = mid;
        }
    }
    f64::from_bits(hi_bits)
}

/// Loop-invariant state hoisted out of the fast path once per run.
struct FastCtx {
    i_ways: u32,
    d_ways: u32,
    block_size: u32,
    i_sets: u32,
    i_access: Energy,
    inst_energy: Energy,
    clock_hz: f64,
    /// `dt` for `cycles == 1` (every instruction of a batched ALU run).
    dt1: SimTime,
    /// `dt` per small cycle count, built with the reference loop's exact
    /// expression so table lookups are bit-identical to the division.
    dt_table: Vec<SimTime>,
    /// Stored-energy threshold equivalent to `below_checkpoint()`.
    cutoff_pj: f64,
    /// Reciprocal of the upper bound on the capacitor drop of one
    /// batched ALU step (pJ): run lengths are capped by a multiply
    /// instead of a divide. The cap only needs to stay conservative —
    /// the bound carries a 2x margin, so the reciprocal's rounding slack
    /// is free — and results are invariant to the exact batch length
    /// (see `alu_batch_len`), so the weaker rounding is harmless.
    inv_drop_max: f64,
    /// `0.5 / dt1` in seconds, for the simulated-time cap (same
    /// reciprocal-multiply argument; the 0.5 margin dominates).
    half_inv_dt1: f64,
    /// Shadow tags + oracle credit are observable (recording governors).
    track_oracle: bool,
    /// The governor observably consumes per-instruction voltage samples.
    voltage_sensitive: bool,
    /// ALU-run batching enabled (off for voltage-sensitive governors,
    /// whose `on_voltage` must see every instruction boundary, and armed
    /// wall budgets, whose amortised countdown ticks per instruction).
    batching: bool,
    max_executed: Option<u64>,
    /// Combined SRAM leakage `icache + dcache`, hoisted for `advance_fast`.
    /// `None` under EDBP, whose dcache leakage scales with the live line
    /// fraction and so changes between instructions.
    sram_leak: Option<Power>,
    /// Voltage-monitor standby draw (constant per run: the threshold
    /// count is fixed at construction).
    mon_power: Power,
}

impl FastCtx {
    fn dt(&self, cycles: u64) -> SimTime {
        match self.dt_table.get(cycles as usize) {
            Some(&dt) => dt,
            None => SimTime::from_seconds(cycles as f64 / self.clock_hz),
        }
    }
}

/// What a forced fault does when it fires (see [`Simulator::arm_fault`]).
///
/// The first variant models the supply browning out at an instruction
/// boundary; the other two additionally mutate the checkpoint datapath
/// itself, for differential testing of the recovery machinery (they only
/// have extra effect under [`EhsDesign::NvsramCache`], the one design
/// with an explicit checkpoint — the others degrade to `PowerFailure`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A clean forced power failure: the normal wind-down runs to
    /// completion, exactly as if the voltage monitor had fired.
    PowerFailure,
    /// Power dies *mid*-checkpoint: only the first `persist_blocks` dirty
    /// blocks reach NVM, the rest are lost. A correct recovery path must
    /// either tolerate or detect this; the harness uses it as its
    /// built-in mutation test (a silently-torn checkpoint must show up as
    /// a divergent memory image).
    TornCheckpoint {
        /// Dirty blocks persisted before the cut.
        persist_blocks: u32,
    },
    /// The checkpoint datapath flips bit `bit mod payload_bits` of the
    /// first *compressed* dirty block's encoded payload. A decode failure
    /// is surfaced as a detected violation ([`SimStats::decode_faults`],
    /// [`Event::DecodeFault`]) and the block is dropped from the
    /// checkpoint; a flip that still decodes persists the mangled bytes
    /// (silent corruption, caught by the harness's image diff).
    CorruptPayload {
        /// Which payload bit to flip (taken modulo the payload size).
        bit: u32,
    },
}

/// Pre-registered metric handles for an instrumented run, resolved once
/// at attach time so the hot path never looks anything up by name.
#[derive(Debug, Clone, Copy)]
struct TelemetryHandles {
    compressed_fills: Counter,
    bypassed_fills: Counter,
    evictions: Counter,
    checkpoint_blocks: Counter,
    power_failures: Counter,
    reboots: Counter,
    voltage: Gauge,
    cycle_insts: HistogramId,
    charge_us: HistogramId,
}

impl TelemetryHandles {
    fn register(m: &mut MetricsRegistry) -> Self {
        TelemetryHandles {
            compressed_fills: m.counter("fills_compressed"),
            bypassed_fills: m.counter("fills_bypassed"),
            evictions: m.counter("evictions"),
            checkpoint_blocks: m.counter("checkpoint_blocks"),
            power_failures: m.counter("power_failures"),
            reboots: m.counter("reboots"),
            voltage: m.gauge("voltage_v"),
            cycle_insts: m.histogram("cycle_insts", &[1e2, 5e2, 1e3, 5e3, 1e4, 5e4, 1e5]),
            charge_us: m.histogram("charge_us", &[1e2, 1e3, 1e4, 1e5, 1e6]),
        }
    }
}

/// Per-cycle flight-recorder bookkeeping, live only while telemetry is
/// attached (the detached path never touches it beyond one `is_some`
/// branch per instrumented site).
///
/// Tracks which compressed fills of the current power cycle were
/// re-referenced by a hit before the outage. A fill never re-referenced
/// is *wasted* — its compression energy bought nothing (the paper's Fig 3
/// argument); fills after the last useful one are *late* — an ideal
/// switch-off point would have skipped them.
#[derive(Debug, Default)]
struct FlightTracker {
    /// One entry per compressed fill this cycle, in fill order: was the
    /// block re-referenced by a hit before the outage?
    comps: Vec<bool>,
    /// `(block index, dcache)` → index into `comps` of the live fill.
    by_block: HashMap<(u64, bool), usize>,
    /// Checkpoint blocks persisted this cycle (sweep boundaries; the JIT
    /// checkpoint at failure is added at emission time).
    ckpt_blocks: u64,
}

impl FlightTracker {
    fn on_compressed_fill(&mut self, block: u64, dcache: bool) {
        self.by_block.insert((block, dcache), self.comps.len());
        self.comps.push(false);
    }

    fn on_hit(&mut self, block: u64, dcache: bool) {
        if let Some(&id) = self.by_block.get(&(block, dcache)) {
            self.comps[id] = true;
        }
    }

    fn wasted_fills(&self) -> u64 {
        self.comps.iter().filter(|&&used| !used).count() as u64
    }

    fn late_compressions(&self) -> u64 {
        match self.comps.iter().rposition(|&used| used) {
            Some(last_useful) => (self.comps.len() - 1 - last_useful) as u64,
            None => self.comps.len() as u64,
        }
    }

    fn reset(&mut self) {
        self.comps.clear();
        self.by_block.clear();
        self.ckpt_blocks = 0;
    }
}

/// A shadow tag directory simulating the *uncompressed* baseline cache's
/// contents (LRU, nominal associativity). A real-cache hit that misses in
/// the shadow is a hit that only compression made possible — the precise
/// "would it have missed without compression" test the oracle needs.
#[derive(Debug, Clone)]
struct ShadowTags {
    /// Per set: resident tags in LRU order (front = MRU).
    sets: Vec<Vec<u64>>,
    ways: usize,
}

impl ShadowTags {
    fn new(num_sets: u32, ways: u32) -> Self {
        ShadowTags {
            sets: vec![Vec::with_capacity(ways as usize); num_sets as usize],
            ways: ways as usize,
        }
    }

    /// Simulates one access; returns whether the baseline would have hit.
    fn access(&mut self, set: u32, tag: u64) -> bool {
        let lines = &mut self.sets[set as usize];
        match lines.iter().position(|&t| t == tag) {
            Some(i) => {
                let t = lines.remove(i);
                lines.insert(0, t);
                true
            }
            None => {
                lines.insert(0, tag);
                lines.truncate(self.ways);
                false
            }
        }
    }

    fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }
}

/// One full-system simulation: program + power trace + configuration.
///
/// Construct with [`Simulator::new`], execute with [`Simulator::run`]. A
/// simulator is single-use: `run` consumes it and returns the statistics.
#[derive(Debug)]
pub struct Simulator<'p> {
    cfg: SimConfig,
    program: &'p KernelProgram,
    trace: &'p PowerTrace,
    gov: Governor,

    icache: CompressedCache,
    dcache: CompressedCache,
    nvm: Nvm,
    cap: Capacitor,
    monitor: VoltageMonitor,
    comp_cost: CompressorCost,

    now: SimTime,
    inst_index: u64,
    last_persist: u64,
    /// SweepCache's *live* region size. Regions adapt to energy conditions
    /// (paper §VII-C): a cycle that dies before reaching any boundary would
    /// otherwise livelock (rollback to the same point forever), so the
    /// region halves; cycles that comfortably fit several regions let it
    /// grow back toward the configured size.
    sweep_region_live: u64,
    sweeps_this_cycle: u32,
    running: bool,
    /// One-shot forced fault: fires when `stats.executed_insts` reaches
    /// the threshold. Keyed on *executed* (not committed) instructions so
    /// an injection point stays meaningful under SweepCache rollback,
    /// where `inst_index` moves backwards.
    fault: Option<(u64, FaultKind)>,
    /// Host clock at the start of `run_loop`, sampled only when the
    /// config arms a wall-clock budget (`cfg.step_budget.max_wall`).
    wall_start: Option<std::time::Instant>,
    /// Iterations until the next (amortised) wall-clock budget check.
    wall_countdown: u32,
    /// `cfg.step_budget` has at least one armed limit; un-budgeted runs
    /// skip the watchdog entirely.
    budget_armed: bool,

    breakdown: EnergyBreakdown,
    stats: SimStats,
    cycle: CycleRecord,
    /// Completed power cycles so far — the cycle numbering for
    /// telemetry/flight records. Kept separately from
    /// `stats.power_cycles.len()` so numbering survives
    /// `record_cycles: false`.
    cycles_done: u64,

    /// Run-total accumulator values at the start of the current power
    /// cycle; diffing against them at the cycle boundary yields the
    /// cycle's energy-ledger row. All `Copy` — the always-on ledger costs
    /// four snapshot assignments per power cycle, nothing per step.
    ledger_start_breakdown: EnergyBreakdown,
    ledger_start_harvested: Energy,
    ledger_start_leak: Energy,
    ledger_start_stored: Energy,
    /// Flight-recorder bookkeeping; only fed while telemetry is attached.
    flight: FlightTracker,

    /// Recently missed DCache block indices, for IPEX's stream detector.
    recent_misses: Vec<u64>,
    /// Oracle attribution per cache (I, D).
    oracle_i: OracleMap,
    oracle_d: OracleMap,
    /// Shadow baseline tag directories per cache (I, D).
    shadow_i: ShadowTags,
    shadow_d: ShadowTags,
    edbp_countdown: u64,

    /// Event/metrics recording; `None` (the default) keeps every
    /// instrumented site down to a single untaken branch, so uninstrumented
    /// runs produce byte-identical results at unchanged speed.
    telemetry: Option<(Telemetry<'p>, TelemetryHandles)>,
    /// Cachescope latency attribution and snapshot state; `None` (the
    /// default) keeps every attribution site down to a single untaken
    /// branch. Unlike `telemetry`, an attached cachescope does *not*
    /// force the reference loop — the probes and attribution are
    /// loop-agnostic (asserted by the fastpath differential suite).
    cachescope: Option<Box<ScopeState>>,
}

impl<'p> Simulator<'p> {
    /// Builds a simulator over `program` and `trace`.
    ///
    /// The governor is instantiated from `cfg.governor`; oracle variants
    /// must be driven through [`crate::runner::run_ideal_app`] /
    /// [`Simulator::with_governor`] instead of used directly here.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.governor` is an ideal (two-phase) spec — the runner
    /// decomposes those into record and replay phases.
    pub fn new(cfg: SimConfig, program: &'p KernelProgram, trace: &'p PowerTrace) -> Self {
        use crate::config::GovernorSpec as GS;
        let gov = match cfg.governor {
            GS::NoCompression => Governor::none(),
            GS::AlwaysCompress => Governor::always(),
            GS::Acc => Governor::acc(),
            GS::AccKagura(kcfg) => Governor::kagura(kcfg),
            GS::RandThreshold(rcfg) => Governor::rand_threshold(rcfg),
            GS::IdealAcc | GS::IdealAccKagura(_) => {
                panic!("ideal governors are two-phase: use run_ideal_app")
            }
        };
        Self::with_governor(cfg, program, trace, gov)
    }

    /// Builds a simulator with an explicit governor instance (used by the
    /// oracle runner for its record and replay phases).
    pub fn with_governor(
        cfg: SimConfig,
        program: &'p KernelProgram,
        trace: &'p PowerTrace,
        gov: Governor,
    ) -> Self {
        let mut monitor = match cfg.design {
            EhsDesign::NvsramCache => VoltageMonitor::jit_checkpoint(),
            EhsDesign::Nvmr | EhsDesign::SweepCache => VoltageMonitor::none(),
        };
        if gov.uses_voltage_trigger() {
            monitor = monitor.with_trigger_threshold();
        }
        let icache = CompressedCache::new(CacheConfig::new(cfg.system.icache, cfg.algorithm));
        let dcache = CompressedCache::new(CacheConfig::new(cfg.system.dcache, cfg.algorithm));
        let nvm = Nvm::new(cfg.system.nvm, cfg.system.dcache.block_size, program.image().clone());
        let mut cap = Capacitor::new(cfg.capacitor);
        // Boot condition: the EHS starts executing the moment the capacitor
        // first crosses the restoration threshold (charging from v_rst to
        // v_max would take far longer than the hysteresis window refill, so
        // steady state begins immediately).
        cap.set_voltage(cfg.capacitor.v_rst);
        let comp_cost = cfg.algorithm.default_cost();
        let shadow_i = ShadowTags::new(cfg.system.icache.num_sets(), cfg.system.icache.ways);
        let shadow_d = ShadowTags::new(cfg.system.dcache.num_sets(), cfg.system.dcache.ways);
        let sweep_region = cfg.costs.sweep_region;
        let initial_stored = cap.stored();
        let budget_armed = !cfg.step_budget.is_unlimited();
        Simulator {
            cfg,
            program,
            trace,
            gov,
            icache,
            dcache,
            nvm,
            cap,
            monitor,
            comp_cost,
            now: SimTime::ZERO,
            inst_index: 0,
            last_persist: 0,
            sweep_region_live: sweep_region,
            sweeps_this_cycle: 0,
            running: true,
            fault: None,
            wall_start: None,
            wall_countdown: WALL_CHECK_PERIOD,
            budget_armed,
            breakdown: EnergyBreakdown::default(),
            stats: SimStats::default(),
            cycle: CycleRecord::default(),
            cycles_done: 0,
            ledger_start_breakdown: EnergyBreakdown::default(),
            ledger_start_harvested: Energy::ZERO,
            ledger_start_leak: Energy::ZERO,
            ledger_start_stored: initial_stored,
            flight: FlightTracker::default(),
            recent_misses: Vec::new(),
            oracle_i: OracleMap::default(),
            oracle_d: OracleMap::default(),
            shadow_i,
            shadow_d,
            edbp_countdown: EDBP_SCAN_PERIOD,
            telemetry: None,
            cachescope: None,
        }
    }

    /// Arms a one-shot forced fault that fires immediately after the
    /// `at_executed_inst`-th executed instruction (1-based), regardless of
    /// the capacitor's state. Used by the fault-injection harness
    /// ([`crate::faultinject`]) to place a power failure at an exact
    /// instruction boundary under a steady power trace, so the injected
    /// failure is the only one in the run and the experiment is
    /// deterministic and replayable.
    pub fn arm_fault(&mut self, at_executed_inst: u64, kind: FaultKind) {
        self.fault = Some((at_executed_inst, kind));
    }

    /// Consumes the armed fault if its trigger point has been reached.
    fn take_due_fault(&mut self) -> Option<FaultKind> {
        match self.fault {
            Some((at, kind)) if self.stats.executed_insts >= at => {
                self.fault = None;
                Some(kind)
            }
            _ => None,
        }
    }

    /// Attaches an event sink and metrics registry for the whole run and
    /// turns on the governor's internal event log. Drive the run with
    /// [`Simulator::run_instrumented`] to get the metrics back.
    pub fn attach_telemetry(&mut self, sink: &'p mut dyn Sink) {
        let mut t = Telemetry::new(sink);
        let handles = TelemetryHandles::register(&mut t.metrics);
        self.gov.enable_event_log();
        self.telemetry = Some((t, handles));
    }

    /// Runs to program completion (or the simulated-time guard) and
    /// returns the statistics.
    pub fn run(self) -> SimStats {
        self.run_with_memory().0
    }

    /// Like [`Simulator::run`] but also returns the final NVM with all
    /// dirty cache state flushed — the program's *architectural* memory
    /// image, used by crash-consistency tests to check that hundreds of
    /// power failures leave exactly the same bytes as a failure-free run.
    pub fn run_with_memory(mut self) -> (SimStats, Nvm) {
        self.run_loop();
        // Flush residual dirty state so the NVM reflects architectural
        // memory (free: this is an observation, not a simulated event).
        let nvm = &mut self.nvm;
        self.dcache.for_each_dirty(|addr, data, _| nvm.store_silent_from(addr, data));
        let nvm = self.nvm.clone();
        (self.finish(), nvm)
    }

    /// Extracts the oracle trace after a recording run.
    ///
    /// # Panics
    ///
    /// Panics if the governor is not a recorder.
    pub fn run_recording(self) -> (SimStats, kagura_core::OracleTrace) {
        let mut sim = self;
        sim.run_loop();
        let completed = sim.inst_index >= sim.program.len();
        let gov = std::mem::replace(&mut sim.gov, Governor::none());
        let mut stats = sim.finish();
        stats.completed = completed;
        let trace = gov.into_oracle_trace().expect("run_recording requires a recording governor");
        (stats, trace)
    }

    /// Runs to completion like [`Simulator::run`], returning the metrics
    /// accumulated by an attached telemetry sink alongside the stats. A
    /// final snapshot is taken at end of run so the last (possibly
    /// unfinished) power cycle's totals are captured too. Without
    /// [`Simulator::attach_telemetry`] the metrics come back empty.
    pub fn run_instrumented(mut self) -> (SimStats, MetricsRegistry) {
        self.run_loop();
        let metrics = match self.telemetry.take() {
            Some((mut t, _)) => {
                t.metrics.snapshot(self.cycles_done, self.now.micros());
                t.into_metrics()
            }
            None => MetricsRegistry::default(),
        };
        (self.finish(), metrics)
    }

    /// Attaches a cachescope: a [`CachescopeAggregator`] probe on each
    /// cache plus simulator-side latency attribution, power-cycle
    /// boundary rows, and (if configured) periodic occupancy snapshots.
    /// Unlike telemetry, an attached cachescope keeps the fast-forward
    /// loop engaged — aggregation is probe-driven and loop-agnostic, and
    /// the fastpath differential suite asserts the reports are identical
    /// under both loops. Drive the run with
    /// [`Simulator::run_with_cachescope`].
    pub fn attach_cachescope(&mut self, scope: CachescopeConfig) {
        let i = CachescopeAggregator::new(self.icache.config());
        let d = CachescopeAggregator::new(self.dcache.config());
        self.icache.attach_probe(Box::new(i));
        self.dcache.attach_probe(Box::new(d));
        self.cachescope = Some(Box::new(ScopeState::new(scope)));
    }

    /// Runs to completion like [`Simulator::run`], returning the cache
    /// report accumulated by an attached cachescope alongside the stats.
    /// A final boundary row is recorded at end of run so the last
    /// (possibly unfinished) power cycle is covered too.
    ///
    /// # Panics
    ///
    /// Panics without a prior [`Simulator::attach_cachescope`].
    pub fn run_with_cachescope(mut self) -> (SimStats, CachescopeReport) {
        self.run_loop();
        // Mirror `run` (via `run_with_memory`): flush residual dirty state
        // so the returned stats are byte-identical to an unscoped run —
        // `for_each_dirty` counts the flush's decompressions.
        let nvm = &mut self.nvm;
        self.dcache.for_each_dirty(|addr, data, _| nvm.store_silent_from(addr, data));
        let report = self.take_cachescope_report();
        (self.finish(), report)
    }

    /// Attaches a leakscope access timeline to the data cache: a bounded
    /// [`AccessTimeline`] probe recording the (set, latency, hit/miss,
    /// occupancy-delta) tuple of every access, as a co-resident attacker
    /// would observe it. Purely event-driven, so the fast-forward loop
    /// stays engaged (the fastpath differential suite asserts identical
    /// timelines under both loops). Drive the run with
    /// [`Simulator::run_with_leak_timeline`].
    pub fn attach_leak_timeline(&mut self, capacity: usize) {
        let model = ehs_cache::LatencyModel {
            hit: self.cfg.system.dcache.hit_latency.get(),
            decompress: self.comp_cost.decompress_latency.get(),
            compress: self.comp_cost.compress_latency.get(),
            miss: self.cfg.system.dcache.hit_latency.get() + self.cfg.system.nvm.read_latency.get(),
        };
        let probe =
            ehs_cache::AccessTimeline::new(model, self.cfg.system.dcache.num_sets(), capacity);
        self.dcache.attach_probe(Box::new(probe));
    }

    /// Runs to completion like [`Simulator::run`], returning the
    /// per-access timeline recorded by the attached probe alongside the
    /// stats.
    ///
    /// # Panics
    ///
    /// Panics without a prior [`Simulator::attach_leak_timeline`].
    pub fn run_with_leak_timeline(mut self) -> (SimStats, ehs_cache::AccessTimeline) {
        self.run_loop();
        // Mirror `run`: flush residual dirty state so the returned stats
        // are byte-identical to an unprobed run.
        let nvm = &mut self.nvm;
        self.dcache.for_each_dirty(|addr, data, _| nvm.store_silent_from(addr, data));
        let timeline = *self
            .dcache
            .take_probe()
            .expect("run_with_leak_timeline requires attach_leak_timeline")
            .into_any()
            .downcast::<ehs_cache::AccessTimeline>()
            .expect("leak probe is an AccessTimeline");
        (self.finish(), timeline)
    }

    /// Records the end-of-run boundary row, detaches the probes and
    /// assembles the [`CachescopeReport`].
    fn take_cachescope_report(&mut self) -> CachescopeReport {
        self.cachescope_cycle_boundary();
        let state = self.cachescope.take().expect("run_with_cachescope requires attach_cachescope");
        fn recover(probe: Option<Box<dyn ehs_cache::CacheProbe>>) -> CachescopeAggregator {
            *probe
                .expect("cachescope probe attached")
                .into_any()
                .downcast::<CachescopeAggregator>()
                .expect("cachescope probe is the aggregator")
        }
        CachescopeReport {
            algorithm: self.cfg.algorithm.to_string(),
            icache: recover(self.icache.take_probe()),
            dcache: recover(self.dcache.take_probe()),
            latency: state.attr,
            cycles: state.cycles,
            snapshots: state.snapshots,
        }
    }

    /// Records one cachescope boundary row — cumulative per-cache
    /// counters and latency attribution as of this power-cycle boundary
    /// (or end of run) — and, when telemetry is also attached, mirrors
    /// the headline values into the metrics registry so they ride the
    /// per-cycle metric snapshots. No-op while detached.
    fn cachescope_cycle_boundary(&mut self) {
        if self.cachescope.is_none() {
            return;
        }
        let counters = |c: &mut CompressedCache| {
            c.probe_downcast_mut::<CachescopeAggregator>().map(|a| a.counters()).unwrap_or_default()
        };
        let ic = counters(&mut self.icache);
        let dc = counters(&mut self.dcache);
        let cycle = self.cycles_done;
        let state = self.cachescope.as_deref_mut().expect("checked above");
        let latency = state.attr;
        state.cycles.push(CycleScope { cycle, icache: ic, dcache: dc, latency });
        if let Some((t, _)) = self.telemetry.as_mut() {
            let m = &mut t.metrics;
            for (name, v) in [
                ("cachescope_dcache_hits", dc.hits as f64),
                ("cachescope_dcache_fills", dc.fills as f64),
                ("cachescope_dcache_capacity_evictions", dc.capacity_evictions as f64),
                ("cachescope_dcache_forced_evictions", dc.forced_evictions as f64),
                ("cachescope_dcache_power_loss_evictions", dc.power_loss_evictions as f64),
                ("cachescope_icache_hits", ic.hits as f64),
                ("cachescope_tag_cycles", latency.tag_cycles as f64),
                ("cachescope_decompress_cycles", latency.decompress_cycles as f64),
                ("cachescope_nvm_cycles", latency.nvm_cycles as f64),
                ("cachescope_writeback_cycles", latency.writeback_cycles as f64),
            ] {
                let g = m.gauge(name);
                m.set(g, v);
            }
        }
    }

    /// Counts down to the next periodic occupancy snapshot and fires it.
    /// Called once per committed instruction at the end of `step` /
    /// `step_fast`; batched ALU runs decrement in bulk and are capped to
    /// `countdown - 1` ([`Simulator::alu_batch_len`]) so the fire point
    /// always falls on a per-instruction boundary — identically in both
    /// loops.
    fn cachescope_tick(&mut self) {
        let fire = match self.cachescope.as_deref_mut() {
            Some(cs) if cs.period != 0 => {
                cs.snap_countdown -= 1;
                if cs.snap_countdown == 0 {
                    cs.snap_countdown = cs.period;
                    true
                } else {
                    false
                }
            }
            _ => false,
        };
        if fire {
            let snap = OccupancySnapshot {
                inst_index: self.inst_index,
                cycle: self.cycles_done,
                icache: self.icache.occupancy_map(),
                dcache: self.dcache.occupancy_map(),
            };
            self.cachescope.as_deref_mut().expect("fired above").snapshots.push(snap);
        }
    }

    /// Adds to the latency attribution when a cachescope is attached —
    /// one untaken branch otherwise.
    #[inline]
    fn scope_attr(&mut self, f: impl FnOnce(&mut LatencyAttribution)) {
        if let Some(cs) = self.cachescope.as_deref_mut() {
            f(&mut cs.attr);
        }
    }

    /// The machine loop shared by every run entry point: step while
    /// powered, checkpoint on the failure threshold, hibernate until the
    /// restore threshold, stop on completion, the simulated-time guard,
    /// or an exhausted watchdog budget ([`StepBudget`]).
    ///
    /// Two implementations produce bit-identical results (asserted by the
    /// `tests/fastpath.rs` differentials): the fast-forward loop is the
    /// default; the reference loop — the naive one-`step()`-per-
    /// instruction machine — runs under [`ExecMode::Reference`] and
    /// whenever telemetry is attached (the instrumented sites live there).
    fn run_loop(&mut self) {
        if self.cfg.step_budget.max_wall.is_some() {
            self.wall_start = Some(std::time::Instant::now());
        }
        if self.cfg.exec == ExecMode::FastForward && self.telemetry.is_none() {
            self.run_loop_fast();
        } else {
            self.run_loop_reference();
        }
    }

    /// The naive machine loop: one [`Simulator::step`] per instruction.
    fn run_loop_reference(&mut self) {
        while self.inst_index < self.program.len() {
            if self.now >= self.cfg.max_sim_time {
                break;
            }
            if self.budget_armed {
                if let Some(reason) = self.budget_exceeded() {
                    self.stats.budget_exhausted = Some(reason);
                    break;
                }
            }
            if !self.running {
                if !self.hibernate_and_reboot() {
                    break; // charge timeout
                }
                continue;
            }
            self.step();
            if let Some(kind) = self.take_due_fault() {
                self.power_failure(Some(kind));
            } else if self.cap.below_checkpoint() {
                self.power_failure(None);
            }
        }
    }

    /// The fast-forward machine loop. Simulated work is identical to the
    /// reference loop; host work differs:
    ///
    /// * instructions decode through an incremental [`InstCursor`] instead
    ///   of a per-instruction binary search + hash;
    /// * runs of ALU instructions whose fetches all land in one MRU
    ///   uncompressed ICache block are batched ([`Simulator::alu_batch_len`]
    ///   proves no observable boundary — power failure, forced fault,
    ///   budget, sweep region, EDBP scan — can fall inside the run, then
    ///   [`Simulator::execute_alu_run`] replays the run's physics exactly);
    /// * the per-instruction `below_checkpoint()` square root becomes one
    ///   f64 compare against a bit-exact precomputed threshold;
    /// * work that is unobservable without telemetry or under the active
    ///   governor (shadow tags, oracle credit, voltage samples) is skipped
    ///   — see [`Simulator::step_fast`].
    fn run_loop_fast(&mut self) {
        let len = self.program.len();
        if self.inst_index >= len {
            return;
        }
        let clock_hz = self.cfg.system.core.clock_hz;
        let dt_table: Vec<SimTime> =
            (0..=DT_TABLE_CYCLES).map(|c| SimTime::from_seconds(c as f64 / clock_hz)).collect();
        let dt1 = dt_table[1];
        let cap_cfg = self.cfg.capacitor;
        // Worst-case capacitor drop of one batched ALU step: its two
        // spends plus every standby draw integrated over one cycle, with
        // leakage taken at the clamp voltage (the capacitor never exceeds
        // `v_max`, so `P_leak = k·C·V²` never exceeds this).
        let leak_max = Power::from_watts(
            cap_cfg.leak_coeff * cap_cfg.capacitance * cap_cfg.v_max * cap_cfg.v_max,
        ) * dt1;
        let sram_leak = (self.cfg.system.icache.leakage() + self.cfg.system.dcache.leakage()) * dt1;
        let mon_leak = self.monitor.standby_power() * dt1;
        let per_step = self.cfg.system.icache.access_energy
            + self.cfg.system.core.inst_energy
            + leak_max
            + sram_leak
            + mon_leak;
        let voltage_sensitive = self.gov.voltage_sensitive();
        let ctx = FastCtx {
            i_ways: self.cfg.system.icache.ways,
            d_ways: self.cfg.system.dcache.ways,
            block_size: self.cfg.system.dcache.block_size,
            i_sets: self.cfg.system.icache.num_sets(),
            i_access: self.cfg.system.icache.access_energy,
            inst_energy: self.cfg.system.core.inst_energy,
            clock_hz,
            dt1,
            dt_table,
            cutoff_pj: checkpoint_cutoff_pj(cap_cfg.capacitance, cap_cfg.v_ckpt),
            // The 2x margin dwarfs any f64 rounding slack in the bound.
            inv_drop_max: 1.0 / (per_step.picojoules().max(f64::MIN_POSITIVE) * 2.0),
            half_inv_dt1: 0.5 / dt1.seconds(),
            track_oracle: self.gov.is_recorder(),
            voltage_sensitive,
            batching: !voltage_sensitive && self.cfg.step_budget.max_wall.is_none(),
            max_executed: self.cfg.step_budget.max_executed_insts,
            sram_leak: (!matches!(self.cfg.extension, Extension::Edbp { .. }))
                .then(|| self.cfg.system.icache.leakage() + self.cfg.system.dcache.leakage()),
            mon_power: self.monitor.standby_power(),
        };
        let mut cursor = self.program.cursor(self.inst_index);
        while self.inst_index < len {
            if self.now >= self.cfg.max_sim_time {
                break;
            }
            if self.budget_armed {
                if let Some(reason) = self.budget_exceeded() {
                    self.stats.budget_exhausted = Some(reason);
                    break;
                }
            }
            if !self.running {
                if !self.hibernate_and_reboot() {
                    break; // charge timeout
                }
                continue;
            }
            if cursor.index() != self.inst_index {
                cursor.seek(self.inst_index); // SweepCache rollback
            }
            if ctx.batching {
                let k = self.alu_batch_len(&cursor, &ctx);
                if k >= 1 {
                    self.execute_alu_run(cursor.pc(), k, &ctx);
                    cursor.advance(k);
                    // The run's last instruction ends exactly like a
                    // stepped one: region-boundary sweep, then the
                    // failure checks.
                    if self.cfg.design == EhsDesign::SweepCache
                        && self.inst_index - self.last_persist >= self.sweep_region_live
                    {
                        self.sweep();
                    }
                    if let Some(kind) = self.take_due_fault() {
                        self.power_failure(Some(kind));
                    } else if self.cap.stored().picojoules() < ctx.cutoff_pj {
                        self.power_failure(None);
                    }
                    continue;
                }
            }
            self.step_fast(&mut cursor, &ctx);
            if let Some(kind) = self.take_due_fault() {
                self.power_failure(Some(kind));
            } else if self.cap.stored().picojoules() < ctx.cutoff_pj {
                self.power_failure(None);
            }
        }
    }

    /// How many instructions starting at `cursor` can execute as one
    /// batched ALU run, or 0 when batching does not apply. A positive
    /// length `k` proves all of:
    ///
    /// * the next `k` instructions are ALU ops fetched from one ICache
    ///   block that is resident, MRU, and uncompressed — so each would be
    ///   an uncompressed rank-0 hit (1 cycle, no decompression, a no-op
    ///   for every governor's `on_hit`, and — because the previous fetch
    ///   necessarily touched the same block — a front-of-set identity for
    ///   the shadow tags);
    /// * no forced fault, instruction budget, simulated-time guard, sweep
    ///   region boundary, or EDBP scan falls *inside* the run (each may
    ///   land exactly at its end, where the loop re-checks);
    /// * the capacitor cannot reach the checkpoint threshold inside the
    ///   run: `k` is capped by the stored headroom over a 2x worst-case
    ///   per-step drop.
    ///
    /// `k == 1` is worthwhile too: a lone ALU instruction satisfying the
    /// proof skips the full ICache read (LRU rank, `HitInfo`, governor
    /// callback) that `step_fast` would pay — every obligation above is
    /// per-instruction, so nothing about it assumes `k >= 2`.
    fn alu_batch_len(&self, cursor: &InstCursor<'_>, ctx: &FastCtx) -> u64 {
        let run = cursor.alu_run_len();
        if run == 0 {
            return 0;
        }
        let pc = cursor.pc();
        let bs = ctx.block_size as u64;
        // Instructions remaining in the current ICache block (4 B each).
        let within_block = (bs - (pc.get() & (bs - 1))) / 4;
        let mut k = run.min(within_block);
        if !self.icache.probe_mru_uncompressed(pc) {
            return 0;
        }
        if let Some((at, _)) = self.fault {
            k = k.min(at.saturating_sub(self.stats.executed_insts));
        }
        if let Some(max) = ctx.max_executed {
            k = k.min(max.saturating_sub(self.stats.executed_insts));
        }
        // Half the remaining simulated time: the margin covers f64
        // accumulation slack in `now += dt1` (~1e-13 s over a full run,
        // versus dt1 in the nanoseconds) and the reciprocal multiply's
        // rounding versus a true division.
        let head_s = (self.cfg.max_sim_time - self.now).seconds();
        k = k.min((head_s * ctx.half_inv_dt1) as u64);
        let headroom_pj = self.cap.stored().picojoules() - ctx.cutoff_pj;
        if headroom_pj <= 0.0 {
            return 0;
        }
        k = k.min((headroom_pj * ctx.inv_drop_max) as u64);
        if matches!(self.cfg.extension, Extension::Edbp { .. }) {
            k = k.min(self.edbp_countdown.saturating_sub(1));
        }
        if self.cfg.design == EhsDesign::SweepCache {
            k = k.min((self.last_persist + self.sweep_region_live).saturating_sub(self.inst_index));
        }
        if let Some(cs) = self.cachescope.as_deref() {
            // A periodic occupancy snapshot is an observable boundary just
            // like an EDBP scan: keep it outside the batched run.
            if cs.period != 0 {
                k = k.min(cs.snap_countdown.saturating_sub(1));
            }
        }
        k
    }

    /// Executes a batched ALU run of `k` instructions fetched from the
    /// MRU uncompressed block at `pc` (see [`Simulator::alu_batch_len`]).
    ///
    /// The cache effect collapses to one call (`k` rank-0 read hits); the
    /// physics — two spends and a harvest integration per instruction —
    /// replay through the same `spend`/`advance` as the reference loop,
    /// in the same order, so every f64 accumulator rounds identically.
    fn execute_alu_run(&mut self, pc: Address, k: u64, ctx: &FastCtx) {
        self.icache.commit_read_hit_run(pc, k);
        for _ in 0..k {
            self.spend(EnergyCategory::CacheOther, ctx.i_access);
            self.spend(EnergyCategory::Other, ctx.inst_energy);
            self.advance_fast(ctx.dt1, ctx);
        }
        self.cycle.insts += k;
        self.cycle.cycles += k;
        self.stats.total_cycles += k;
        self.stats.executed_insts += k;
        self.inst_index += k;
        if matches!(self.cfg.extension, Extension::Edbp { .. }) {
            // Never reaches 0 inside the run: k <= countdown - 1.
            self.edbp_countdown -= k;
        }
        if let Some(cs) = self.cachescope.as_deref_mut() {
            // The run's k cycles are all base-CPI fetch/ALU cycles.
            cs.attr.tag_cycles += k;
            if cs.period != 0 {
                // Never reaches 0 inside the run: k <= countdown - 1.
                cs.snap_countdown -= k;
            }
        }
    }

    /// Cooperative watchdog check: the instruction budget is compared
    /// every call; the host clock is read only every
    /// [`WALL_CHECK_PERIOD`] calls. Returns the cancellation reason once
    /// either armed limit is exceeded. No-op unless the config armed a
    /// budget (callers additionally skip the call via `budget_armed`).
    fn budget_exceeded(&mut self) -> Option<String> {
        if !self.budget_armed {
            return None;
        }
        let budget = self.cfg.step_budget;
        if let Some(max) = budget.max_executed_insts {
            if self.stats.executed_insts >= max {
                return Some(format!("instruction budget exhausted ({max} executed)"));
            }
        }
        if let Some(max) = budget.max_wall {
            self.wall_countdown -= 1;
            if self.wall_countdown == 0 {
                self.wall_countdown = WALL_CHECK_PERIOD;
                let elapsed = self.wall_start.map(|s| s.elapsed()).unwrap_or_default();
                if elapsed >= max {
                    return Some(format!(
                        "wall-clock budget exhausted ({:.1}s >= {:.1}s)",
                        elapsed.as_secs_f64(),
                        max.as_secs_f64()
                    ));
                }
            }
        }
        None
    }

    fn finish(mut self) -> SimStats {
        // Close and audit the final (partial) cycle's ledger row — flows
        // since the last boundary must balance too. Instrumented entry
        // points detach telemetry before finishing, so a violation here
        // only ticks the counter (no FlightRecord is emitted for the
        // partial cycle: it has no power-failure boundary).
        let row = self.close_ledger_row();
        self.audit_ledger(&row);
        if self.cycle.insts > 0 {
            if self.cfg.record_cycles {
                self.stats.power_cycles.push(self.cycle);
            }
            self.cycles_done += 1;
        }
        self.stats.power_cycle_count = self.cycles_done;
        if let Governor::Kagura(k) = &self.gov {
            self.stats.kagura_state = Some((k.registers(), k.rm_entries()));
        }
        self.stats.completed = self.inst_index >= self.program.len();
        self.stats.committed_insts = self.inst_index.min(self.program.len());
        self.stats.sim_time = self.now;
        self.stats.icache = self.icache.stats();
        self.stats.dcache = self.dcache.stats();
        self.stats.nvm = self.nvm.stats();
        self.stats.breakdown = self.breakdown;
        self.stats
    }

    /// Spends `amount` from the capacitor and books it to `category`.
    fn spend(&mut self, category: EnergyCategory, amount: Energy) {
        self.cap.drain(amount);
        self.breakdown.record(category, amount);
    }

    /// Closes the current power cycle's energy-ledger row by diffing the
    /// run-total accumulators against their cycle-start snapshots, then
    /// re-arms the snapshots for the next cycle. Call *before* pushing
    /// the cycle record (the row's index is the cycle being closed).
    fn close_ledger_row(&mut self) -> LedgerRow {
        let stored = self.cap.stored();
        let row = LedgerRow {
            cycle: self.cycles_done,
            harvested: self.stats.harvested - self.ledger_start_harvested,
            consumed: self.breakdown - self.ledger_start_breakdown,
            cap_leak: self.stats.cap_leak - self.ledger_start_leak,
            delta_stored: stored - self.ledger_start_stored,
        };
        self.ledger_start_breakdown = self.breakdown;
        self.ledger_start_harvested = self.stats.harvested;
        self.ledger_start_leak = self.stats.cap_leak;
        self.ledger_start_stored = stored;
        row
    }

    /// Audits a closed ledger row: an imbalance bumps
    /// [`SimStats::ledger_violations`], emits [`Event::LedgerImbalance`]
    /// when telemetry is attached, and aborts the run when the config
    /// demands strict auditing (`--audit-strict`; the panic is contained
    /// by the parallel pool's fault machinery in batch runs).
    fn audit_ledger(&mut self, row: &LedgerRow) {
        if let Err(imbalance) = row.audit(self.cfg.ledger_epsilon) {
            self.stats.ledger_violations += 1;
            if let Some((t, _)) = self.telemetry.as_mut() {
                t.emit(
                    self.now.micros(),
                    row.cycle,
                    Event::LedgerImbalance {
                        imbalance_pj: imbalance.imbalance.picojoules(),
                        tolerance_pj: imbalance.tolerance.picojoules(),
                    },
                );
            }
            if self.cfg.audit_strict {
                panic!("{imbalance} (strict ledger audit)");
            }
        }
    }

    /// Advances simulated time by `dt`, integrating harvest and standby
    /// draws.
    fn advance(&mut self, dt: SimTime) {
        let harvest = self.trace.power_at(self.now);
        let before = self.cap.stored();
        let cap_leak = self.cap.charge(harvest, dt);
        let gained = (self.cap.stored() - before + cap_leak).clamp_non_negative();
        self.stats.harvested += gained;
        self.stats.cap_leak += cap_leak;
        self.breakdown.record(EnergyCategory::Other, cap_leak);
        // SRAM and monitor standby draw while powered (running only; the
        // monitor also draws while hibernating, handled in the charge loop).
        if self.running {
            // EDBP power-gates decayed lines: leakage scales with the live
            // fraction of each array (cache-decay's headline saving).
            let dcache_scale = if matches!(self.cfg.extension, Extension::Edbp { .. }) {
                let total =
                    (self.cfg.system.dcache.size_bytes / self.cfg.system.dcache.block_size) as f64;
                (self.dcache.resident_count() as f64 / total).min(1.0)
            } else {
                1.0
            };
            let cache_leak = (self.cfg.system.icache.leakage()
                + self.cfg.system.dcache.leakage() * dcache_scale)
                * dt;
            self.spend(EnergyCategory::CacheOther, cache_leak);
            let mon = self.monitor.standby_power() * dt;
            self.spend(EnergyCategory::Other, mon);
        }
        self.now += dt;
    }

    /// [`Simulator::advance`] with the loop-invariant standby powers
    /// hoisted into [`FastCtx`]. Bit-exact: the fast path only calls this
    /// while `running` is true, `icache.leakage()` / `dcache.leakage()`
    /// are pure functions of the immutable config, and without EDBP the
    /// reference computes `(i_leak + d_leak * 1.0) * dt` — multiplying by
    /// `1.0` is an IEEE identity, so the precomputed `i_leak + d_leak`
    /// times `dt` rounds identically. Under EDBP (`sram_leak == None`,
    /// leakage scales with the live line fraction) it falls back to the
    /// full recomputation.
    fn advance_fast(&mut self, dt: SimTime, ctx: &FastCtx) {
        let Some(sram_leak) = ctx.sram_leak else {
            return self.advance(dt);
        };
        let harvest = self.trace.power_at(self.now);
        let before = self.cap.stored();
        let cap_leak = self.cap.charge(harvest, dt);
        let gained = (self.cap.stored() - before + cap_leak).clamp_non_negative();
        self.stats.harvested += gained;
        self.stats.cap_leak += cap_leak;
        self.breakdown.record(EnergyCategory::Other, cap_leak);
        self.spend(EnergyCategory::CacheOther, sram_leak * dt);
        self.spend(EnergyCategory::Other, ctx.mon_power * dt);
        self.now += dt;
    }

    /// Handles the side effects of a fill: compression energy/latency,
    /// victim write-backs, oracle bookkeeping. Returns extra stall cycles.
    fn absorb_fill(&mut self, outcome: &FillOutcome, addr: Address, is_dcache: bool) -> u64 {
        let mut extra = 0u64;
        if outcome.compressions > 0 {
            self.spend(
                EnergyCategory::Compress,
                self.comp_cost.compress_energy * outcome.compressions as f64,
            );
            extra += self.comp_cost.compress_latency.get();
        }
        if outcome.compressions > 0 || outcome.stored_compressed {
            self.gov.on_fill(outcome.stored_compressed);
        }
        if !outcome.evicted.is_empty() {
            self.gov.on_evictions(outcome.evicted.len() as u32);
        }
        if let Some((t, h)) = self.telemetry.as_mut() {
            let t_us = self.now.micros();
            let cycle = self.cycles_done;
            if outcome.stored_compressed {
                t.metrics.inc(h.compressed_fills, 1);
                t.emit(t_us, cycle, Event::CompressedFill { dcache: is_dcache });
            } else {
                t.metrics.inc(h.bypassed_fills, 1);
                t.emit(t_us, cycle, Event::BypassedFill { dcache: is_dcache });
            }
            if !outcome.evicted.is_empty() {
                t.metrics.inc(h.evictions, outcome.evicted.len() as u64);
                t.emit(
                    t_us,
                    cycle,
                    Event::Eviction { count: outcome.evicted.len() as u32, dcache: is_dcache },
                );
            }
        }
        let block_size = self.cfg.system.dcache.block_size;
        for e in &outcome.evicted {
            self.forget_fill(e.addr, is_dcache);
            if e.dirty {
                if e.was_compressed {
                    // The cache already counted the decompression op; pay it.
                    self.spend(EnergyCategory::Decompress, self.comp_cost.decompress_energy);
                }
                self.writeback(e);
            }
        }
        // Oracle attribution for the incoming block.
        if outcome.stored_compressed {
            if self.telemetry.is_some() {
                self.flight.on_compressed_fill(addr.block_index(block_size), is_dcache);
            }
            if let Some(id) = self.gov.record_fill() {
                let params =
                    if is_dcache { self.cfg.system.dcache } else { self.cfg.system.icache };
                let set = addr.set_index(block_size, params.num_sets());
                let idx = addr.block_index(block_size);
                if is_dcache {
                    self.oracle_d.insert(set, idx, id);
                } else {
                    self.oracle_i.insert(set, idx, id);
                }
            }
        }
        // Kagura RM accounting: a bypassed fill while in RM is an averted
        // compression.
        if !outcome.stored_compressed && outcome.compressions == 0 && self.in_rm() {
            self.stats.rm_bypassed_fills += 1;
        }
        extra
    }

    fn in_rm(&self) -> bool {
        matches!(&self.gov, Governor::Kagura(k) if k.mode() == Mode::Regular)
    }

    fn forget_fill(&mut self, addr: Address, is_dcache: bool) {
        let idx = addr.block_index(self.cfg.system.dcache.block_size);
        if is_dcache {
            self.oracle_d.remove(idx);
        } else {
            self.oracle_i.remove(idx);
        }
    }

    /// A deep hit (rank beyond the nominal ways) landed at `addr`: credit
    /// every live compressed fill in that set.
    fn credit_deep_hit(&mut self, addr: Address, is_dcache: bool) {
        let params = if is_dcache { self.cfg.system.dcache } else { self.cfg.system.icache };
        let set = addr.set_index(params.block_size, params.num_sets());
        let map = if is_dcache { &self.oracle_d } else { &self.oracle_i };
        let ids: Vec<usize> = map.ids_in_set(set).collect();
        for id in ids {
            self.gov.mark_useful(id);
        }
    }

    /// Writes an evicted dirty block back to NVM (demand traffic).
    fn writeback(&mut self, e: &Evicted) {
        match self.cfg.design {
            EhsDesign::Nvmr => {
                // Already persisted incrementally by the renaming buffer.
                self.nvm.store_silent_from(e.addr, &e.data);
            }
            _ => {
                let w = self.nvm.write_block_from(e.addr, &e.data);
                self.spend(EnergyCategory::Memory, w.energy);
            }
        }
    }

    /// One committed instruction.
    fn step(&mut self) {
        let inst = self.program.inst_at(self.inst_index);
        let mut cycles = 1u64; // base CPI of the in-order pipeline
        self.scope_attr(|a| a.tag_cycles += 1);
        let i_ways = self.cfg.system.icache.ways;
        let d_ways = self.cfg.system.dcache.ways;
        let block_size = self.cfg.system.dcache.block_size;

        // --- Fetch through the ICache. ---
        self.spend(EnergyCategory::CacheOther, self.cfg.system.icache.access_energy);
        let i_sets = self.cfg.system.icache.num_sets();
        let shadow_hit = self
            .shadow_i
            .access(inst.pc.set_index(block_size, i_sets), inst.pc.tag(block_size, i_sets));
        match self.icache.read(inst.pc) {
            Some(hit) => {
                if self.telemetry.is_some() {
                    self.flight.on_hit(inst.pc.block_index(block_size), false);
                }
                if hit.was_compressed {
                    self.spend(EnergyCategory::Decompress, self.comp_cost.decompress_energy);
                    let stall = self.comp_cost.decompress_latency.get();
                    cycles += stall;
                    self.scope_attr(|a| a.decompress_cycles += stall);
                }
                if !shadow_hit || hit.lru_rank >= i_ways {
                    // The uncompressed baseline would have missed here (or
                    // the block sat beyond the nominal ways): compression
                    // earned this hit.
                    self.credit_deep_hit(inst.pc, false);
                }
                self.gov.on_hit(&hit, i_ways);
            }
            None => {
                let read = self.nvm.read_block(inst.pc);
                self.spend(EnergyCategory::Memory, read.energy);
                let stall = read.latency.get();
                cycles += stall;
                self.scope_attr(|a| a.nvm_cycles += stall);
                let mode = self.gov.fill_mode();
                let base = inst.pc.block_base(block_size);
                let out = self.icache.fill(base, read.data, mode, None);
                self.spend(EnergyCategory::CacheOther, self.cfg.system.icache.access_energy);
                let fill_stall = self.absorb_fill(&out, base, false);
                cycles += fill_stall;
                self.scope_attr(|a| a.writeback_cycles += fill_stall);
            }
        }

        // --- Execute / data access. ---
        match inst.kind {
            InstKind::Alu => {}
            InstKind::Load { addr } => {
                cycles += self.data_access(addr, None, d_ways, block_size, true);
                self.cycle.loads += 1;
                self.gov.on_mem_commit();
            }
            InstKind::Store { addr, value } => {
                cycles += self.data_access(addr, Some(value), d_ways, block_size, true);
                self.cycle.stores += 1;
                self.gov.on_mem_commit();
                if self.cfg.design == EhsDesign::Nvmr {
                    // Renaming buffer persists the store incrementally.
                    let e = self.cfg.system.nvm.write_energy * self.cfg.costs.nvmr_store_factor;
                    self.spend(EnergyCategory::Memory, e);
                }
            }
        }

        // --- Pipeline energy, time, harvest. ---
        self.spend(EnergyCategory::Other, self.cfg.system.core.inst_energy);
        let dt = SimTime::from_seconds(cycles as f64 / self.cfg.system.core.clock_hz);
        self.advance(dt);

        self.cycle.insts += 1;
        self.cycle.cycles += cycles;
        self.stats.total_cycles += cycles;
        self.stats.executed_insts += 1;
        self.inst_index += 1;

        // --- Voltage sample for voltage-triggered policies. ---
        self.gov.on_voltage(
            self.cap.voltage(),
            self.cfg.capacitor.v_ckpt,
            self.cfg.capacitor.v_rst,
        );

        // --- Extensions and region sweeping. ---
        match self.cfg.extension {
            Extension::Edbp { decay_ticks } => {
                self.edbp_countdown -= 1;
                if self.edbp_countdown == 0 {
                    self.edbp_countdown = EDBP_SCAN_PERIOD;
                    self.edbp_scan(decay_ticks);
                }
            }
            Extension::Ipex { .. } | Extension::None => {}
        }
        if self.cfg.design == EhsDesign::SweepCache
            && self.inst_index - self.last_persist >= self.sweep_region_live
        {
            self.sweep();
        }
        self.cachescope_tick();

        self.pump_gov_events();
    }

    /// The full ICache fetch path for `step_fast` — taken when the fetch
    /// is anything but an MRU uncompressed hit under a non-recording
    /// governor. Returns the extra stall cycles (decompression or fill).
    fn fetch_slow(&mut self, pc: Address, ctx: &FastCtx) -> u64 {
        let mut extra = 0u64;
        let shadow_hit = if ctx.track_oracle {
            self.shadow_i.access(
                pc.set_index(ctx.block_size, ctx.i_sets),
                pc.tag(ctx.block_size, ctx.i_sets),
            )
        } else {
            true
        };
        match self.icache.read(pc) {
            Some(hit) => {
                if hit.was_compressed {
                    self.spend(EnergyCategory::Decompress, self.comp_cost.decompress_energy);
                    let stall = self.comp_cost.decompress_latency.get();
                    extra += stall;
                    self.scope_attr(|a| a.decompress_cycles += stall);
                }
                if ctx.track_oracle && (!shadow_hit || hit.lru_rank >= ctx.i_ways) {
                    self.credit_deep_hit(pc, false);
                }
                self.gov.on_hit(&hit, ctx.i_ways);
            }
            None => {
                let read = self.nvm.read_block(pc);
                self.spend(EnergyCategory::Memory, read.energy);
                let stall = read.latency.get();
                extra += stall;
                self.scope_attr(|a| a.nvm_cycles += stall);
                let mode = self.gov.fill_mode();
                let base = pc.block_base(ctx.block_size);
                let out = self.icache.fill(base, read.data, mode, None);
                self.spend(EnergyCategory::CacheOther, ctx.i_access);
                let fill_stall = self.absorb_fill(&out, base, false);
                extra += fill_stall;
                self.scope_attr(|a| a.writeback_cycles += fill_stall);
            }
        }
        extra
    }

    /// One committed instruction on the fast path. The simulated work is
    /// identical to [`Simulator::step`]; the host work drops everything
    /// unobservable in a detached-telemetry run under the active governor:
    ///
    /// * no flight-recorder or event-pump probes (telemetry is `None` by
    ///   construction of [`Simulator::run_loop`]);
    /// * shadow tags and oracle deep-hit credit only for recording
    ///   governors — for all others `credit_deep_hit` walks maps that are
    ///   provably empty (`record_fill` returns `None`, so nothing is ever
    ///   inserted) and `mark_useful` is a no-op;
    /// * the per-instruction voltage sample only for voltage-sensitive
    ///   policies — for all others `on_voltage` is a no-op;
    /// * the instruction decodes through the incremental cursor and `dt`
    ///   comes from a table precomputed with the identical expression.
    fn step_fast(&mut self, cursor: &mut InstCursor<'_>, ctx: &FastCtx) {
        let inst = cursor.next_inst();
        let mut cycles = 1u64; // base CPI of the in-order pipeline
        self.scope_attr(|a| a.tag_cycles += 1);

        // --- Fetch through the ICache. ---
        self.spend(EnergyCategory::CacheOther, ctx.i_access);
        // A shallow uncompressed fetch hit (the common case: straight-line
        // code re-fetching its own block) needs none of the full read
        // path — no decompression, `on_hit` ignores shallow uncompressed
        // hits, and without a recording governor there are no shadow tags
        // or deep-hit credit to maintain.
        if ctx.track_oracle || !self.icache.try_commit_shallow_read(inst.pc) {
            cycles += self.fetch_slow(inst.pc, ctx);
        }

        // --- Execute / data access. ---
        match inst.kind {
            InstKind::Alu => {}
            InstKind::Load { addr } => {
                cycles +=
                    self.data_access(addr, None, ctx.d_ways, ctx.block_size, ctx.track_oracle);
                self.cycle.loads += 1;
                self.gov.on_mem_commit();
            }
            InstKind::Store { addr, value } => {
                cycles += self.data_access(
                    addr,
                    Some(value),
                    ctx.d_ways,
                    ctx.block_size,
                    ctx.track_oracle,
                );
                self.cycle.stores += 1;
                self.gov.on_mem_commit();
                if self.cfg.design == EhsDesign::Nvmr {
                    // Renaming buffer persists the store incrementally.
                    let e = self.cfg.system.nvm.write_energy * self.cfg.costs.nvmr_store_factor;
                    self.spend(EnergyCategory::Memory, e);
                }
            }
        }

        // --- Pipeline energy, time, harvest. ---
        self.spend(EnergyCategory::Other, ctx.inst_energy);
        self.advance_fast(ctx.dt(cycles), ctx);

        self.cycle.insts += 1;
        self.cycle.cycles += cycles;
        self.stats.total_cycles += cycles;
        self.stats.executed_insts += 1;
        self.inst_index += 1;

        // --- Voltage sample for voltage-triggered policies. ---
        if ctx.voltage_sensitive {
            self.gov.on_voltage(
                self.cap.voltage(),
                self.cfg.capacitor.v_ckpt,
                self.cfg.capacitor.v_rst,
            );
        }

        // --- Extensions and region sweeping. ---
        match self.cfg.extension {
            Extension::Edbp { decay_ticks } => {
                self.edbp_countdown -= 1;
                if self.edbp_countdown == 0 {
                    self.edbp_countdown = EDBP_SCAN_PERIOD;
                    self.edbp_scan(decay_ticks);
                }
            }
            Extension::Ipex { .. } | Extension::None => {}
        }
        if self.cfg.design == EhsDesign::SweepCache
            && self.inst_index - self.last_persist >= self.sweep_region_live
        {
            self.sweep();
        }
        self.cachescope_tick();
    }

    /// Stamps and forwards any controller events the governor logged
    /// during the work just performed (mode switches fire inside
    /// `on_mem_commit`/`on_voltage`, mid-step). One untaken branch when
    /// telemetry is detached; one cheap emptiness check per step when it
    /// is attached.
    fn pump_gov_events(&mut self) {
        if let Some((t, _)) = self.telemetry.as_mut() {
            if self.gov.events_pending() {
                let t_us = self.now.micros();
                let cycle = self.cycles_done;
                self.gov.drain_events(|ev| t.emit(t_us, cycle, ev));
            }
        }
    }

    /// A load or store through the DCache; returns extra stall cycles.
    ///
    /// `track_shadow` gates the shadow-directory access and the oracle
    /// deep-hit credit; the fast path passes `false` for non-recording
    /// governors, where both are provably unobservable.
    fn data_access(
        &mut self,
        addr: Address,
        store: Option<u32>,
        d_ways: u32,
        block_size: u32,
        track_shadow: bool,
    ) -> u64 {
        let mut cycles = self.cfg.system.dcache.hit_latency.get();
        self.scope_attr(|a| a.tag_cycles += cycles);
        self.spend(EnergyCategory::CacheOther, self.cfg.system.dcache.access_energy);
        // Fast path: an access hitting a *shallow uncompressed* line (one
        // an uncompressed cache would also serve) with shadow tracking off
        // and telemetry detached reduces to the LRU stamp, the hit
        // counter, and (for stores) the word write + dirty bit. Bit-exact
        // versus the full path below: `read()`/`write()` on such a line do
        // exactly the commit's state changes, and every consumer of the
        // `HitInfo` is provably inert — `on_hit` only reacts to deep or
        // compressed hits, and there is no decompression, repack,
        // eviction, or deep-hit credit.
        if !track_shadow && self.telemetry.is_none() {
            let fast = match store {
                None => self.dcache.try_commit_shallow_read(addr),
                Some(v) => self.dcache.try_commit_shallow_write(addr, v),
            };
            if fast {
                return cycles;
            }
        }
        let shadow_hit = if track_shadow {
            let d_sets = self.cfg.system.dcache.num_sets();
            self.shadow_d.access(addr.set_index(block_size, d_sets), addr.tag(block_size, d_sets))
        } else {
            true
        };

        let repack = self.gov.compression_enabled();
        let hit = match store {
            None => self.dcache.read(addr).map(|h| (h, Vec::new())),
            Some(v) => self.dcache.write(addr, v, repack),
        };
        match hit {
            Some((info, evicted)) => {
                if self.telemetry.is_some() {
                    self.flight.on_hit(addr.block_index(block_size), true);
                }
                if info.was_compressed {
                    self.spend(EnergyCategory::Decompress, self.comp_cost.decompress_energy);
                    let stall = self.comp_cost.decompress_latency.get();
                    cycles += stall;
                    self.scope_attr(|a| a.decompress_cycles += stall);
                    if store.is_some() && repack {
                        // A store to a compressed line repacks it.
                        self.spend(EnergyCategory::Compress, self.comp_cost.compress_energy);
                        let repack_stall = self.comp_cost.compress_latency.get();
                        cycles += repack_stall;
                        self.scope_attr(|a| a.writeback_cycles += repack_stall);
                    }
                    if store.is_some() && !repack {
                        // The line just expanded: it is no longer a live
                        // compressed fill for oracle purposes.
                        self.forget_fill(addr.block_base(block_size), true);
                    }
                }
                if track_shadow && (!shadow_hit || info.lru_rank >= d_ways) {
                    self.credit_deep_hit(addr, true);
                }
                self.gov.on_hit(&info, d_ways);
                if !evicted.is_empty() {
                    self.gov.on_evictions(evicted.len() as u32);
                    if let Some((t, h)) = self.telemetry.as_mut() {
                        t.metrics.inc(h.evictions, evicted.len() as u64);
                        t.emit(
                            self.now.micros(),
                            self.cycles_done,
                            Event::Eviction { count: evicted.len() as u32, dcache: true },
                        );
                    }
                    for e in &evicted {
                        self.forget_fill(e.addr, true);
                        if e.dirty {
                            if e.was_compressed {
                                self.spend(
                                    EnergyCategory::Decompress,
                                    self.comp_cost.decompress_energy,
                                );
                            }
                            self.writeback(e);
                        }
                    }
                }
            }
            None => {
                // Miss: fetch from NVM, write-allocate with pending store.
                let read = self.nvm.read_block(addr);
                self.spend(EnergyCategory::Memory, read.energy);
                let stall = read.latency.get();
                cycles += stall;
                self.scope_attr(|a| a.nvm_cycles += stall);
                let mode = self.gov.fill_mode();
                let base = addr.block_base(block_size);
                let apply = store.map(|v| (addr.block_offset(block_size), v));
                let out = self.dcache.fill(base, read.data, mode, apply);
                self.spend(EnergyCategory::CacheOther, self.cfg.system.dcache.access_energy);
                let fill_stall = self.absorb_fill(&out, base, true);
                cycles += fill_stall;
                self.scope_attr(|a| a.writeback_cycles += fill_stall);

                // IPEX: on a detected sequential stream, prefetch the next
                // block when energy-rich.
                if let Extension::Ipex { min_energy_fraction } = self.cfg.extension {
                    let idx = base.block_index(block_size);
                    // A tight window keeps the detector from firing on
                    // random access patterns that happen to touch adjacent
                    // blocks occasionally.
                    let streaming = self.recent_misses.contains(&idx.wrapping_sub(1));
                    self.recent_misses.push(idx);
                    if self.recent_misses.len() > 4 {
                        self.recent_misses.remove(0);
                    }
                    if store.is_none() && streaming {
                        self.maybe_prefetch(base, block_size, min_energy_fraction);
                    }
                }
            }
        }
        cycles
    }

    fn maybe_prefetch(&mut self, base: Address, block_size: u32, min_fraction: f64) {
        let cfg = &self.cfg.capacitor;
        let window = cfg.energy_at(cfg.v_rst) - cfg.energy_at(cfg.v_ckpt);
        let above = (self.cap.stored() - cfg.energy_at(cfg.v_ckpt)).clamp_non_negative();
        if window.is_zero() || above / window < min_fraction {
            return;
        }
        let Some(next) = base.checked_add(block_size as u64) else {
            return;
        };
        if self.dcache.contains(next) {
            return;
        }
        let read = self.nvm.read_block(next);
        self.spend(EnergyCategory::Memory, read.energy);
        let mode = self.gov.fill_mode();
        let out = self.dcache.fill(next.block_base(block_size), read.data, mode, None);
        self.spend(EnergyCategory::CacheOther, self.cfg.system.dcache.access_energy);
        // Prefetch overlaps execution: energy paid, no stall cycles.
        let _ = self.absorb_fill(&out, next.block_base(block_size), true);
    }

    /// EDBP: retire blocks idle longer than the decay window.
    fn edbp_scan(&mut self, decay_ticks: u64) {
        let now = self.dcache.now();
        let dead: Vec<Address> = self
            .dcache
            .resident_blocks()
            .into_iter()
            .filter(|b| now.saturating_sub(b.last_tick) > decay_ticks)
            .map(|b| b.addr)
            .collect();
        for addr in dead {
            if let Some(e) = self.dcache.invalidate_block(addr) {
                self.forget_fill(e.addr, true);
                if e.dirty {
                    if e.was_compressed {
                        self.spend(EnergyCategory::Decompress, self.comp_cost.decompress_energy);
                    }
                    self.writeback(&e);
                }
            }
        }
    }

    /// SweepCache: persist dirty blocks at a region boundary.
    fn sweep(&mut self) {
        // The drain visits blocks in place; energy is spent inline (the
        // closure captures the capacitor and breakdown disjointly from the
        // cache) so the accounting order matches a block-by-block drain.
        let cap = &mut self.cap;
        let breakdown = &mut self.breakdown;
        let nvm = &mut self.nvm;
        let decompress_energy = self.comp_cost.decompress_energy;
        let mut blocks = 0u32;
        self.dcache.for_each_dirty(|addr, data, was_compressed| {
            if was_compressed {
                cap.drain(decompress_energy);
                breakdown.record(EnergyCategory::Decompress, decompress_energy);
            }
            let w = nvm.write_block_from(addr, data);
            cap.drain(w.energy);
            breakdown.record(EnergyCategory::CheckpointRestore, w.energy);
            blocks += 1;
        });
        self.spend(EnergyCategory::CheckpointRestore, self.cfg.costs.sweep_boundary);
        if let Some((t, h)) = self.telemetry.as_mut() {
            self.flight.ckpt_blocks += blocks as u64;
            t.metrics.inc(h.checkpoint_blocks, blocks as u64);
            t.emit(self.now.micros(), self.cycles_done, Event::Checkpoint { blocks });
        }
        self.last_persist = self.inst_index;
        self.sweeps_this_cycle += 1;
    }

    /// The voltage monitor fired (or the supply browned out), or a forced
    /// fault is firing (`injected`): wind down.
    fn power_failure(&mut self, injected: Option<FaultKind>) {
        let mut ckpt_blocks = 0u32;
        let mut decode_faults = 0u32;
        match self.cfg.design {
            EhsDesign::NvsramCache => {
                // JIT checkpoint: dirty blocks + registers to NVM/NVFF.
                // Blocks are visited in place and energy spent inline (see
                // `sweep` for the capture pattern) — the checkpoint path
                // copies nothing per block.
                let cap = &mut self.cap;
                let breakdown = &mut self.breakdown;
                let nvm = &mut self.nvm;
                let comp = self.dcache.compressor().clone();
                let decompress_energy = self.comp_cost.decompress_energy;
                let clock_hz = self.cfg.system.core.clock_hz;
                let mut ckpt_time = SimTime::ZERO;
                let blocks = &mut ckpt_blocks;
                let faults = &mut decode_faults;
                // Injected checkpoint-path mutations (None in real runs).
                let torn_limit = match injected {
                    Some(FaultKind::TornCheckpoint { persist_blocks }) => Some(persist_blocks),
                    _ => None,
                };
                let mut corrupt_bit = match injected {
                    Some(FaultKind::CorruptPayload { bit }) => Some(bit),
                    _ => None,
                };
                self.dcache.for_each_dirty(|addr, data, was_compressed| {
                    if torn_limit.is_some_and(|limit| *blocks >= limit) {
                        return; // power died mid-checkpoint: block lost
                    }
                    if was_compressed {
                        cap.drain(decompress_energy);
                        breakdown.record(EnergyCategory::Decompress, decompress_energy);
                    }
                    if was_compressed && corrupt_bit.is_some() {
                        // The injected datapath fault mangles this block's
                        // encoded form on its way out. A decode failure is
                        // *detected* (the block is dropped, not persisted);
                        // a flip that still decodes writes mangled bytes.
                        let bit = corrupt_bit.take().expect("checked is_some");
                        let enc = comp.compress(data.as_slice());
                        let mut payload = enc.payload().to_vec();
                        let b = bit as usize % (payload.len() * 8);
                        payload[b / 8] ^= 1 << (b % 8);
                        let mangled = ehs_compress::CompressedBlock::new(
                            enc.algorithm(),
                            enc.original_bytes(),
                            payload,
                            enc.encoded_bits(),
                        );
                        let mut scratch = vec![0u8; data.len()];
                        match comp.try_decompress_into(&mangled, &mut scratch) {
                            Ok(()) => {
                                let block = ehs_model::BlockData::from_bytes(scratch);
                                let w = nvm.write_block_from(addr, &block);
                                cap.drain(w.energy);
                                breakdown.record(EnergyCategory::CheckpointRestore, w.energy);
                                ckpt_time +=
                                    SimTime::from_seconds(w.latency.get() as f64 / clock_hz);
                                *blocks += 1;
                            }
                            Err(_) => *faults += 1,
                        }
                        return;
                    }
                    let w = nvm.write_block_from(addr, data);
                    cap.drain(w.energy);
                    breakdown.record(EnergyCategory::CheckpointRestore, w.energy);
                    ckpt_time += SimTime::from_seconds(w.latency.get() as f64 / clock_hz);
                    *blocks += 1;
                });
                self.spend(EnergyCategory::CheckpointRestore, self.cfg.costs.checkpoint_fixed);
                self.now += ckpt_time;
            }
            EhsDesign::Nvmr => {
                // Stores are already persistent; write back silently for
                // functional coherence only.
                let nvm = &mut self.nvm;
                self.dcache.for_each_dirty(|addr, data, _| nvm.store_silent_from(addr, data));
            }
            EhsDesign::SweepCache => {
                // Work since the last boundary is lost; dirty blocks are
                // dropped and those instructions re-execute after reboot.
                self.inst_index = self.last_persist;
                // Adaptive region sizing (§VII-C): never persisting within
                // a cycle means zero forward progress — shrink; several
                // boundaries per cycle means headroom — grow back.
                if self.sweeps_this_cycle == 0 {
                    self.sweep_region_live = (self.sweep_region_live / 2).max(32);
                } else if self.sweeps_this_cycle >= 4
                    && self.sweep_region_live < self.cfg.costs.sweep_region
                {
                    self.sweep_region_live =
                        (self.sweep_region_live + self.sweep_region_live / 4 + 1)
                            .min(self.cfg.costs.sweep_region);
                }
                self.sweeps_this_cycle = 0;
            }
        }
        self.icache.invalidate_all();
        self.dcache.invalidate_all();
        // After the invalidations so the cycle's power-loss evictions are
        // already folded into the probe counters; before the telemetry
        // block so mirrored gauges ride this cycle's metric snapshot.
        self.cachescope_cycle_boundary();
        self.oracle_i.clear();
        self.oracle_d.clear();
        self.shadow_i.clear();
        self.shadow_d.clear();
        // Kagura's registers and mode must be read before the governor's
        // own failure handling rolls them into the next cycle.
        let kagura = self.gov.kagura_snapshot();
        self.gov.on_power_failure();
        self.stats.decode_faults += decode_faults as u64;
        // All of the cycle's energy is spent by this point: close and
        // audit the ledger row (always on; the audit is a handful of
        // f64 compares per power cycle).
        let row = self.close_ledger_row();
        if let Some((t, h)) = self.telemetry.as_mut() {
            let t_us = self.now.micros();
            // The cycle being closed: its index is the number already
            // recorded (pushed just below).
            let cycle = self.cycles_done;
            if self.cfg.design == EhsDesign::NvsramCache {
                t.metrics.inc(h.checkpoint_blocks, ckpt_blocks as u64);
                t.emit(t_us, cycle, Event::Checkpoint { blocks: ckpt_blocks });
            }
            if decode_faults > 0 {
                t.emit(t_us, cycle, Event::DecodeFault { blocks: decode_faults });
            }
            self.gov.drain_events(|ev| t.emit(t_us, cycle, ev));
            let wasted_fills = self.flight.wasted_fills();
            let block_size = self.cfg.system.dcache.block_size as u64;
            let ckpt_total = self.flight.ckpt_blocks + ckpt_blocks as u64;
            let (registers, mode) = match kagura {
                Some((regs, Mode::Compression)) => (regs, "CM"),
                Some((regs, Mode::Regular)) => (regs, "RM"),
                None => ((0, 0, 0, 0, 0), "-"),
            };
            t.emit(
                t_us,
                cycle,
                Event::FlightRecord(ehs_telemetry::FlightRecord {
                    insts: self.cycle.insts,
                    mem_ops: self.cycle.loads + self.cycle.stores,
                    predicted_remaining: registers.0,
                    actual_remaining: registers.1,
                    mode,
                    late_compressions: self.flight.late_compressions(),
                    wasted_fills,
                    wasted_pj: (self.comp_cost.compress_energy * wasted_fills as f64).picojoules(),
                    checkpoint_bytes: ckpt_total * block_size,
                    harvested_pj: row.harvested.picojoules(),
                    compress_pj: row.consumed[EnergyCategory::Compress].picojoules(),
                    decompress_pj: row.consumed[EnergyCategory::Decompress].picojoules(),
                    cache_other_pj: row.consumed[EnergyCategory::CacheOther].picojoules(),
                    memory_pj: row.consumed[EnergyCategory::Memory].picojoules(),
                    checkpoint_restore_pj: row.consumed[EnergyCategory::CheckpointRestore]
                        .picojoules(),
                    other_pj: row.consumed[EnergyCategory::Other].picojoules(),
                    cap_leak_pj: row.cap_leak.picojoules(),
                    delta_stored_pj: row.delta_stored.picojoules(),
                }),
            );
            let voltage = self.cap.voltage();
            t.emit(t_us, cycle, Event::PowerFailure { insts: self.cycle.insts, voltage });
            t.metrics.inc(h.power_failures, 1);
            t.metrics.set(h.voltage, voltage);
            t.metrics.observe(h.cycle_insts, self.cycle.insts as f64);
            t.metrics.snapshot(cycle, t_us);
        }
        self.audit_ledger(&row);
        self.flight.reset();
        self.stats.checkpoints += 1;
        if self.cfg.record_cycles {
            self.stats.power_cycles.push(self.cycle);
        }
        self.cycles_done += 1;
        self.cycle = CycleRecord::default();
        self.running = false;
    }

    /// Charges until `V_rst`, then performs the reboot sequence. Returns
    /// `false` on charge timeout.
    fn hibernate_and_reboot(&mut self) -> bool {
        let hibernate_start = self.now;
        while !self.cap.above_restore() {
            if self.now >= self.cfg.max_sim_time {
                return false;
            }
            // A wall-clock budget also covers hibernation: a near-dead
            // trace with a generous simulated-time guard would otherwise
            // spin here for a long host time before giving up.
            if self.budget_armed {
                if let Some(reason) = self.budget_exceeded() {
                    self.stats.budget_exhausted = Some(reason);
                    return false;
                }
            }
            let harvest = self.trace.power_at(self.now);
            let before = self.cap.stored();
            let cap_leak = self.cap.charge(harvest, CHARGE_STEP);
            let gained = (self.cap.stored() - before + cap_leak).clamp_non_negative();
            self.stats.harvested += gained;
            self.stats.cap_leak += cap_leak;
            self.breakdown.record(EnergyCategory::Other, cap_leak);
            // The monitor keeps watching the capacitor while hibernating.
            let mon = self.monitor.standby_power() * CHARGE_STEP;
            self.cap.drain(mon);
            self.breakdown.record(EnergyCategory::Other, mon);
            self.now += CHARGE_STEP;
        }
        // Reboot: restore checkpointed state, re-init the monitor.
        self.spend(EnergyCategory::CheckpointRestore, self.cfg.costs.restore_fixed);
        self.spend(EnergyCategory::Other, self.monitor.init_energy());
        let latency = self.cfg.costs.restore_latency + self.monitor.init_latency();
        self.now += SimTime::from_seconds(latency.get() as f64 / self.cfg.system.core.clock_hz);
        self.gov.on_reboot();
        if let Some((t, h)) = self.telemetry.as_mut() {
            let t_us = self.now.micros();
            let cycle = self.cycles_done;
            let voltage = self.cap.voltage();
            let charge_us = (self.now - hibernate_start).micros();
            t.emit(t_us, cycle, Event::Reboot { charge_us, voltage });
            self.gov.drain_events(|ev| t.emit(t_us, cycle, ev));
            t.metrics.inc(h.reboots, 1);
            t.metrics.set(h.voltage, voltage);
            t.metrics.observe(h.charge_us, charge_us);
        }
        self.running = true;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GovernorSpec;
    use ehs_energy::TraceKind;
    use ehs_workloads::App;

    fn run_small(app: App, governor: GovernorSpec) -> SimStats {
        let cfg = SimConfig::table1().with_governor(governor);
        let program = app.build(0.02);
        let trace = PowerTrace::generate(cfg.trace_kind, cfg.trace_seed, 400_000);
        Simulator::new(cfg, &program, &trace).run()
    }

    #[test]
    fn cachescope_boundary_rows_mirror_into_metrics_when_telemetry_attached() {
        use ehs_telemetry::NullSink;

        let cfg = SimConfig::table1().with_governor(GovernorSpec::Acc);
        let program = App::Sha.build(0.02);
        let trace = PowerTrace::generate(cfg.trace_kind, cfg.trace_seed, 400_000);
        let mut sink = NullSink;
        let mut sim = Simulator::new(cfg, &program, &trace);
        sim.attach_telemetry(&mut sink);
        sim.attach_cachescope(CachescopeConfig::default());
        sim.run_loop();
        let (t, _) = sim.telemetry.take().expect("telemetry attached");
        let mut metrics = t.into_metrics();
        let report = sim.take_cachescope_report();
        assert!(sim.stats.power_cycles.len() >= 2, "run too short to cross a boundary");
        // One row per power-cycle boundary plus the end-of-run row.
        assert_eq!(report.cycles.len(), sim.stats.power_cycles.len() + 1);
        // Mirrored gauges hold the last boundary's cumulative values
        // (`gauge` is get-or-register by name, so this finds the existing
        // ids; a fresh registration would read 0.0 and fail below).
        let hits = metrics.gauge("cachescope_dcache_hits");
        let last_boundary = report.cycles[report.cycles.len() - 2];
        assert_eq!(metrics.gauge_value(hits), last_boundary.dcache.hits as f64);
        assert!(metrics.gauge_value(hits) > 0.0);
        for name in ["cachescope_tag_cycles", "cachescope_nvm_cycles"] {
            let g = metrics.gauge(name);
            assert!(metrics.gauge_value(g) > 0.0, "gauge {name} never mirrored");
        }
    }

    #[test]
    fn baseline_completes_with_power_cycles() {
        let stats = run_small(App::Sha, GovernorSpec::NoCompression);
        assert!(stats.completed, "did not finish: {} insts", stats.committed_insts);
        assert!(stats.power_cycles.len() >= 2, "cycles: {}", stats.power_cycles.len());
        assert_eq!(stats.power_cycle_count, stats.power_cycles.len() as u64);
        assert!(stats.checkpoints >= 1);
        assert!(stats.total_energy().picojoules() > 0.0);
        assert_eq!(stats.dcache.compressions, 0, "baseline must not compress");
    }

    #[test]
    fn disabling_cycle_records_changes_nothing_but_the_vector() {
        let recorded = run_small(App::Sha, GovernorSpec::AccKagura(Default::default()));
        let mut cfg =
            SimConfig::table1().with_governor(GovernorSpec::AccKagura(Default::default()));
        cfg.record_cycles = false;
        let program = App::Sha.build(0.02);
        let trace = PowerTrace::generate(cfg.trace_kind, cfg.trace_seed, 400_000);
        let unrecorded = Simulator::new(cfg, &program, &trace).run();

        assert!(unrecorded.power_cycles.is_empty());
        assert_eq!(unrecorded.power_cycle_count, recorded.power_cycle_count);
        assert!(unrecorded.power_cycle_count >= 2);
        // Everything except the record vector must be byte-identical —
        // the flag is observability-only, never behavioural.
        let mut stripped = recorded;
        stripped.power_cycles.clear();
        assert_eq!(stripped, unrecorded);
    }

    #[test]
    fn acc_compresses_and_completes() {
        let stats = run_small(App::Jpegd, GovernorSpec::Acc);
        assert!(stats.completed);
        assert!(stats.compression_ops() > 0, "ACC should compress sometimes");
        assert!(stats.breakdown[EnergyCategory::Compress].picojoules() > 0.0);
    }

    #[test]
    fn kagura_averts_compressions() {
        // g721d keeps ACC's predictor positive all cycle (table reuse), so
        // end-of-cycle compressions exist for Kagura's RM mode to avert.
        let acc = run_small(App::G721d, GovernorSpec::Acc);
        let kag = run_small(App::G721d, GovernorSpec::AccKagura(Default::default()));
        assert!(kag.completed);
        assert!(
            kag.compression_ops() < acc.compression_ops(),
            "Kagura ({}) should compress less than ACC ({})",
            kag.compression_ops(),
            acc.compression_ops()
        );
    }

    #[test]
    fn energy_conservation_within_budget() {
        // Total consumed energy cannot exceed harvested + initial charge.
        let stats = run_small(App::Gsm, GovernorSpec::Acc);
        let initial = {
            let c = SimConfig::table1().capacitor;
            c.energy_at(c.v_max)
        };
        let budget = stats.harvested + initial;
        assert!(
            stats.total_energy().picojoules() <= budget.picojoules() * 1.001,
            "consumed {} > budget {}",
            stats.total_energy(),
            budget
        );
    }

    #[test]
    fn cap_leak_is_counted_once_inside_other() {
        // Strict per-cycle conservation auditing: double-counting the
        // capacitor leakage inside the `Other` bucket would inflate
        // consumed beyond harvested − Δstored by the leak amount every
        // cycle and abort the run here.
        let cfg = SimConfig::table1().with_audit_strict(true);
        let program = App::Sha.build(0.02);
        let trace = PowerTrace::generate(cfg.trace_kind, cfg.trace_seed, 400_000);
        let stats = Simulator::new(cfg, &program, &trace).run();
        assert!(stats.completed);
        assert_eq!(stats.ledger_violations, 0);
        assert!(stats.cap_leak.picojoules() > 0.0, "leakage must be modelled");
        // Leakage sits inside `Other` (Table III reports it as a share of
        // the total) — once, alongside pipeline and monitor energy.
        assert!(stats.breakdown[EnergyCategory::Other] >= stats.cap_leak);
    }

    #[test]
    fn ledger_balances_across_designs_and_governors() {
        for design in EhsDesign::ALL {
            for governor in [
                GovernorSpec::NoCompression,
                GovernorSpec::Acc,
                GovernorSpec::AccKagura(Default::default()),
            ] {
                let cfg = SimConfig::table1()
                    .with_design(design)
                    .with_governor(governor)
                    .with_audit_strict(true);
                let program = App::Crc32.build(0.02);
                let trace = PowerTrace::generate(cfg.trace_kind, cfg.trace_seed, 400_000);
                let stats = Simulator::new(cfg, &program, &trace).run();
                assert!(stats.completed, "{design}/{} did not complete", governor.label());
                assert_eq!(stats.ledger_violations, 0, "{design}/{}", governor.label());
            }
        }
    }

    #[test]
    fn power_cycles_are_in_the_paper_regime() {
        let stats = run_small(App::Sha, GovernorSpec::NoCompression);
        let avg = stats.avg_insts_per_cycle();
        assert!((500.0..50_000.0).contains(&avg), "avg insts/cycle = {avg}");
    }

    #[test]
    fn nvmr_and_sweepcache_complete() {
        for design in [EhsDesign::Nvmr, EhsDesign::SweepCache] {
            let cfg = SimConfig::table1().with_design(design).with_governor(GovernorSpec::Acc);
            let program = App::Gsm.build(0.02);
            let trace = PowerTrace::generate(cfg.trace_kind, cfg.trace_seed, 400_000);
            let stats = Simulator::new(cfg, &program, &trace).run();
            assert!(stats.completed, "{design} did not complete");
        }
    }

    #[test]
    fn sweepcache_reexecutes_lost_work() {
        let cfg = SimConfig::table1().with_design(EhsDesign::SweepCache);
        let program = App::Gsm.build(0.02);
        let trace = PowerTrace::generate(cfg.trace_kind, cfg.trace_seed, 400_000);
        let stats = Simulator::new(cfg, &program, &trace).run();
        assert!(stats.completed);
        assert!(
            stats.executed_insts > stats.committed_insts,
            "rollback must cause re-execution ({} executed vs {} committed)",
            stats.executed_insts,
            stats.committed_insts
        );
    }

    #[test]
    fn extensions_run_to_completion() {
        for ext in [Extension::edbp(), Extension::ipex()] {
            let mut cfg = SimConfig::table1().with_governor(GovernorSpec::Acc);
            cfg.extension = ext;
            let program = App::Jpegd.build(0.02);
            let trace = PowerTrace::generate(cfg.trace_kind, cfg.trace_seed, 400_000);
            let stats = Simulator::new(cfg, &program, &trace).run();
            assert!(stats.completed, "{ext:?} did not complete");
        }
    }

    #[test]
    fn dead_trace_hits_time_guard() {
        let mut cfg = SimConfig::table1();
        cfg.max_sim_time = SimTime::from_seconds(0.5);
        let program = App::Sha.build(1.0);
        let trace = PowerTrace::constant(ehs_model::Power::from_microwatts(0.001), 100);
        let stats = Simulator::new(cfg, &program, &trace).run();
        assert!(!stats.completed);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_small(App::Dijkstra, GovernorSpec::AccKagura(Default::default()));
        let b = run_small(App::Dijkstra, GovernorSpec::AccKagura(Default::default()));
        assert_eq!(a.sim_time, b.sim_time);
        assert_eq!(a.committed_insts, b.committed_insts);
        assert_eq!(a.compression_ops(), b.compression_ops());
    }

    #[test]
    fn instrumented_run_matches_plain_run_and_records_events() {
        use ehs_telemetry::VecSink;

        let cfg = SimConfig::table1().with_governor(GovernorSpec::AccKagura(Default::default()));
        let program = App::G721d.build(0.02);
        let trace = PowerTrace::generate(cfg.trace_kind, cfg.trace_seed, 400_000);

        let plain = Simulator::new(cfg.clone(), &program, &trace).run();

        let mut sink = VecSink::new();
        let mut sim = Simulator::new(cfg, &program, &trace);
        sim.attach_telemetry(&mut sink);
        let (stats, metrics) = sim.run_instrumented();

        // Telemetry must observe, never perturb.
        assert_eq!(stats.sim_time, plain.sim_time);
        assert_eq!(stats.committed_insts, plain.committed_insts);
        assert_eq!(stats.compression_ops(), plain.compression_ops());
        assert_eq!(stats.power_cycles.len(), plain.power_cycles.len());

        let events = sink.into_events();
        let failures =
            events.iter().filter(|e| matches!(e.event, Event::PowerFailure { .. })).count();
        let reboots = events.iter().filter(|e| matches!(e.event, Event::Reboot { .. })).count();
        let samples =
            events.iter().filter(|e| matches!(e.event, Event::EstimatorSample { .. })).count();
        assert_eq!(failures, stats.checkpoints as usize);
        assert_eq!(reboots + 1, failures + if stats.completed { 1 } else { 0 });
        // One estimator sample per failure once history exists.
        assert_eq!(samples, failures - 1);
        assert!(events.iter().any(|e| matches!(e.event, Event::CompressedFill { .. })));
        assert!(events.iter().any(|e| matches!(e.event, Event::ModeSwitch { cm_to_rm: true, .. })));

        // One flight record per power-cycle boundary, none spurious, and
        // its ledger row balances (the audit also ran in-sim: zero
        // violations on a healthy trace).
        let flights: Vec<_> = events
            .iter()
            .filter_map(|e| match &e.event {
                Event::FlightRecord(r) => Some(r),
                _ => None,
            })
            .collect();
        assert_eq!(flights.len(), failures);
        assert_eq!(stats.ledger_violations, 0);
        assert!(!events.iter().any(|e| matches!(e.event, Event::LedgerImbalance { .. })));
        for r in &flights {
            assert_eq!(r.mem_ops, r.actual_remaining, "Kagura's R_mem counts the cycle's mem ops");
            assert!(r.mode == "CM" || r.mode == "RM");
            let consumed = r.compress_pj
                + r.decompress_pj
                + r.cache_other_pj
                + r.memory_pj
                + r.checkpoint_restore_pj
                + r.other_pj;
            let residual = (r.harvested_pj - consumed - r.delta_stored_pj).abs();
            assert!(residual < 1.0, "flight-record ledger row out of balance by {residual} pJ");
            // Late fills (after the last useful one) are never
            // re-referenced, so they are a subset of the wasted ones.
            assert!(r.wasted_fills >= r.late_compressions);
        }
        // Compression happened, so some cycles must show wasted fills
        // (blocks compressed and never re-referenced before the outage).
        assert!(flights.iter().any(|r| r.wasted_fills > 0 && r.wasted_pj > 0.0));

        // Stamps are monotone and cycle indices agree with the stats.
        for w in events.windows(2) {
            assert!(w[1].t_us >= w[0].t_us, "time went backwards");
            assert!(w[1].cycle >= w[0].cycle, "cycle index went backwards");
        }
        // One metrics snapshot per closed cycle plus the end-of-run one.
        assert_eq!(metrics.snapshots().len(), stats.checkpoints as usize + 1);
    }

    #[test]
    fn trace_kinds_all_work() {
        for kind in TraceKind::ALL {
            let mut cfg = SimConfig::table1();
            cfg.trace_kind = kind;
            let program = App::Crc32.build(0.01);
            let trace = PowerTrace::generate(kind, 1, 400_000);
            let stats = Simulator::new(cfg, &program, &trace).run();
            assert!(stats.completed, "{kind} failed");
        }
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;
    use crate::config::GovernorSpec;
    use ehs_workloads::App;

    #[test]
    #[ignore]
    fn dump_stats() {
        let app = App::from_name(&std::env::var("DUMP_APP").unwrap_or("jpeg".into())).unwrap();
        let scale: f64 =
            std::env::var("DUMP_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(0.1);
        for gov in [
            GovernorSpec::NoCompression,
            GovernorSpec::Acc,
            GovernorSpec::AccKagura(Default::default()),
        ] {
            let mut cfg = SimConfig::table1().with_governor(gov);
            if let Ok(sweep) = std::env::var("DUMP_SWEEP") {
                cfg.design = EhsDesign::SweepCache;
                cfg.costs.sweep_region = sweep.parse().unwrap_or(512);
            }
            let program = app.build(scale);
            let trace = PowerTrace::generate(cfg.trace_kind, cfg.trace_seed, 4_000_000);
            let stats = Simulator::new(cfg, &program, &trace).run();
            println!("== {:?}", gov.label());
            println!(
                "completed={} insts={} cycles={} time={} ckpts={}",
                stats.completed,
                stats.committed_insts,
                stats.power_cycles.len(),
                stats.sim_time,
                stats.checkpoints
            );
            println!("dcache: {:?}", stats.dcache);
            println!("icache hits/misses: {}/{}", stats.icache.hits(), stats.icache.misses());
            println!(
                "rm_bypassed={} comp_ops={} kagura={:?}",
                stats.rm_bypassed_fills,
                stats.compression_ops(),
                stats.kagura_state
            );
            println!("breakdown: {}", stats.breakdown);
        }
    }
}
