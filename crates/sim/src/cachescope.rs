//! Cachescope: constant-memory online aggregation of cache-probe events.
//!
//! The cache crate defines the reporting side ([`CacheProbe`]); this
//! module is the folding side. A [`CachescopeAggregator`] attaches to
//! each cache and folds every hit, fill and eviction into fixed-size
//! histograms and counters — per-set occupancy, compression ratio, block
//! lifetime, dead time, sampled reuse distance, and the eviction-reason
//! split — so memory stays O(sets + buckets) no matter how long the run.
//! The simulator adds what only it can see: the per-access latency
//! attribution split ([`LatencyAttribution`]) and boundary snapshots
//! ([`CycleScope`] at every power-cycle boundary, [`OccupancySnapshot`]
//! every `snapshot_period` committed instructions).
//!
//! # Determinism
//!
//! Everything here is a pure fold over the probe event stream plus
//! simulator state that both execution loops maintain identically, so a
//! [`CachescopeReport`] is bit-identical between the fast-forward and
//! reference loops (`tests/fastpath.rs` asserts this, along with
//! `SimStats` equality and the exact cycle partition
//! `latency.total() == stats.total_cycles`). Unlike telemetry, an
//! attached cachescope does *not* force the reference loop.

use ehs_cache::SetOccupancy;
use ehs_cache::{CacheConfig, CacheProbe, EvictionReason, ProbeEviction, ProbeFill, ProbeHit};
use ehs_telemetry::Histogram;

/// Reuse-distance observations are sampled: every `REUSE_SAMPLE_PERIOD`-th
/// hit contributes its reuse distance to the histogram. Sampling keeps the
/// batched fast-path report O(1) per run ([`CacheProbe::on_hit_run`]
/// computes how many multiples of the period the run crosses) while the
/// distribution stays representative.
pub const REUSE_SAMPLE_PERIOD: u64 = 64;

/// Log-spaced bucket bounds for recency-tick distances (lifetime, dead
/// time, reuse).
const TICK_BOUNDS: [f64; 8] = [1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0];

/// Bucket bounds for compression ratio (`full_segments / segments` of
/// compressed fills; 4-segment blocks can land on 4/3, 2, or 4).
const RATIO_BOUNDS: [f64; 5] = [1.0, 1.5, 2.0, 3.0, 4.0];

/// What to sample, beyond the always-on aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CachescopeConfig {
    /// Committed instructions between sampled full-cache occupancy
    /// snapshots ([`OccupancySnapshot`]); `None` (the default) disables
    /// periodic sampling. Power-cycle boundary rows are always recorded.
    pub snapshot_period: Option<u64>,
}

impl CachescopeConfig {
    /// Config with periodic occupancy sampling every `period` committed
    /// instructions.
    pub fn periodic(period: u64) -> Self {
        CachescopeConfig { snapshot_period: Some(period) }
    }
}

/// Cumulative event counters of one cache, as folded by its aggregator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScopeCounters {
    /// Read and write hits (shallow fused commits and batched runs
    /// included).
    pub hits: u64,
    /// Hits that landed on a compressed line (each paid a decompression).
    pub compressed_hits: u64,
    /// Blocks inserted.
    pub fills: u64,
    /// Fills stored compressed.
    pub compressed_fills: u64,
    /// Evictions by LRU replacement pressure.
    pub capacity_evictions: u64,
    /// Evictions by explicit invalidation (EDBP dead-block retirement).
    pub forced_evictions: u64,
    /// Blocks lost to power failures.
    pub power_loss_evictions: u64,
}

impl ScopeCounters {
    /// All evictions, across every reason.
    pub fn evictions(&self) -> u64 {
        self.capacity_evictions + self.forced_evictions + self.power_loss_evictions
    }
}

/// Where the run's execution cycles went, split by microarchitectural
/// source. The four buckets exactly partition `SimStats::total_cycles`:
///
/// * `tag` — base pipeline CPI plus the cache hit latency paid on every
///   data access (tag match + data-array read);
/// * `decompress` — stalls decompressing compressed lines on hits and
///   fetches;
/// * `nvm` — miss stalls reading blocks from NVM;
/// * `writeback` — compression stalls storing blocks (fill-path
///   compression of incoming and resident blocks, and store repacks).
///
/// IPEX prefetches spend energy but overlap execution, so they add no
/// cycles and appear in no bucket — matching the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyAttribution {
    /// Base pipeline + tag/data-array access cycles.
    pub tag_cycles: u64,
    /// Decompression stall cycles.
    pub decompress_cycles: u64,
    /// NVM read stall cycles.
    pub nvm_cycles: u64,
    /// Compression (fill/repack) stall cycles.
    pub writeback_cycles: u64,
}

impl LatencyAttribution {
    /// Sum of every bucket — equals the run's `total_cycles`.
    pub fn total(&self) -> u64 {
        self.tag_cycles + self.decompress_cycles + self.nvm_cycles + self.writeback_cycles
    }
}

/// Cumulative cachescope state at one power-cycle boundary (or end of
/// run). Diffing consecutive rows yields per-cycle activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleScope {
    /// Index of the power cycle being closed (the end-of-run row is one
    /// past the last failure's).
    pub cycle: u64,
    /// ICache counters as of this boundary.
    pub icache: ScopeCounters,
    /// DCache counters as of this boundary.
    pub dcache: ScopeCounters,
    /// Latency attribution as of this boundary.
    pub latency: LatencyAttribution,
}

/// One sampled full-cache occupancy map: every set's resident blocks
/// (segment footprint and compressed flag), for both caches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccupancySnapshot {
    /// Committed-instruction index at the capture.
    pub inst_index: u64,
    /// Power cycle the capture fell in.
    pub cycle: u64,
    /// Per-set occupancy of the ICache.
    pub icache: Vec<SetOccupancy>,
    /// Per-set occupancy of the DCache.
    pub dcache: Vec<SetOccupancy>,
}

/// The probe implementation: folds one cache's event stream into
/// constant-memory aggregates. Recovered from the cache after the run by
/// downcasting ([`CacheProbe::into_any`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CachescopeAggregator {
    /// Data-array segments in use in each set, observed after every fill
    /// into that set.
    pub per_set_occupancy: Vec<Histogram>,
    /// Compression ratio (`full_segments / segments`) of compressed
    /// fills.
    pub ratio: Histogram,
    /// Recency ticks between fill and eviction.
    pub lifetime: Histogram,
    /// Recency ticks between last access and eviction.
    pub dead_time: Histogram,
    /// Sampled reuse distance (every [`REUSE_SAMPLE_PERIOD`]-th hit).
    pub reuse: Histogram,
    /// Event counters.
    pub counters: ScopeCounters,
}

impl CachescopeAggregator {
    /// Aggregator sized for `cfg`'s geometry. Bucket bounds depend only
    /// on the static config, so aggregators built for the same config
    /// merge and compare cleanly.
    pub fn new(cfg: &CacheConfig) -> Self {
        let sps = cfg.segments_per_set();
        let occ_bounds: Vec<f64> = (0..=sps).map(f64::from).collect();
        CachescopeAggregator {
            per_set_occupancy: (0..cfg.params.num_sets())
                .map(|_| Histogram::with_bounds(&occ_bounds))
                .collect(),
            ratio: Histogram::with_bounds(&RATIO_BOUNDS),
            lifetime: Histogram::with_bounds(&TICK_BOUNDS),
            dead_time: Histogram::with_bounds(&TICK_BOUNDS),
            reuse: Histogram::with_bounds(&TICK_BOUNDS),
            counters: ScopeCounters::default(),
        }
    }

    /// The cumulative counters.
    pub fn counters(&self) -> ScopeCounters {
        self.counters
    }

    /// One merged occupancy histogram over every set.
    pub fn occupancy_overall(&self) -> Histogram {
        let mut all = self.per_set_occupancy[0].clone();
        for h in &self.per_set_occupancy[1..] {
            all.merge(h).expect("per-set occupancy histograms share bounds");
        }
        all
    }
}

impl CacheProbe for CachescopeAggregator {
    fn on_hit(&mut self, hit: ProbeHit) {
        self.counters.hits += 1;
        if hit.was_compressed {
            self.counters.compressed_hits += 1;
        }
        if self.counters.hits.is_multiple_of(REUSE_SAMPLE_PERIOD) {
            self.reuse.observe(hit.reuse as f64);
        }
    }

    fn on_hit_run(&mut self, _set: u32, _full_segments: u32, n: u64) {
        // Exactly n on_hit reports with reuse 1: the sampled hits are the
        // multiples of the period the counter crosses, each of value 1.
        let before = self.counters.hits;
        self.counters.hits += n;
        let samples = self.counters.hits / REUSE_SAMPLE_PERIOD - before / REUSE_SAMPLE_PERIOD;
        self.reuse.observe_n(1.0, samples);
    }

    fn on_fill(&mut self, fill: ProbeFill) {
        self.counters.fills += 1;
        if fill.stored_compressed {
            self.counters.compressed_fills += 1;
            self.ratio.observe(f64::from(fill.full_segments) / f64::from(fill.segments));
        }
        self.per_set_occupancy[fill.set as usize].observe(f64::from(fill.used_after));
    }

    fn on_evict(&mut self, evt: ProbeEviction) {
        match evt.reason {
            EvictionReason::Capacity => self.counters.capacity_evictions += 1,
            EvictionReason::Forced => self.counters.forced_evictions += 1,
            EvictionReason::PowerLoss => self.counters.power_loss_evictions += 1,
        }
        self.lifetime.observe(evt.lifetime as f64);
        self.dead_time.observe(evt.idle as f64);
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// Everything cachescope learned about one run. Compare with `==` in
/// differential tests; serialize through `kagura-bench`'s JSON adapters.
#[derive(Debug, Clone, PartialEq)]
pub struct CachescopeReport {
    /// Compression algorithm label of the run.
    pub algorithm: String,
    /// ICache aggregates.
    pub icache: CachescopeAggregator,
    /// DCache aggregates.
    pub dcache: CachescopeAggregator,
    /// Final latency attribution (partitions `total_cycles`).
    pub latency: LatencyAttribution,
    /// One row per power-cycle boundary, plus the end-of-run row.
    pub cycles: Vec<CycleScope>,
    /// Sampled full-cache occupancy maps (empty unless the config set a
    /// `snapshot_period`).
    pub snapshots: Vec<OccupancySnapshot>,
}

/// Simulator-side live state while a cachescope is attached: the latency
/// attribution accumulators, the periodic-snapshot countdown, and the
/// rows collected so far. Boxed into the `Simulator` so the detached
/// fast path carries only a null check.
#[derive(Debug)]
pub(crate) struct ScopeState {
    /// Committed instructions between occupancy snapshots; 0 disables.
    pub period: u64,
    /// Instructions until the next snapshot. Maintained exactly like the
    /// EDBP scan countdown: the fast path's ALU batch is capped to
    /// `countdown - 1` so the count never reaches 0 inside a batched run
    /// and both loops fire snapshots on identical instruction boundaries.
    pub snap_countdown: u64,
    /// Where the cycles went so far.
    pub attr: LatencyAttribution,
    /// Boundary rows collected so far.
    pub cycles: Vec<CycleScope>,
    /// Occupancy snapshots collected so far.
    pub snapshots: Vec<OccupancySnapshot>,
}

impl ScopeState {
    pub fn new(cfg: CachescopeConfig) -> Self {
        let period = cfg.snapshot_period.unwrap_or(0);
        ScopeState {
            period,
            snap_countdown: period,
            attr: LatencyAttribution::default(),
            cycles: Vec::new(),
            snapshots: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehs_cache::CacheConfig;
    use ehs_compress::Algorithm;
    use ehs_model::CacheParams;

    fn agg() -> CachescopeAggregator {
        CachescopeAggregator::new(&CacheConfig::new(CacheParams::table1(), Algorithm::Bdi))
    }

    #[test]
    fn hit_run_samples_match_per_hit_reports() {
        // Same total hits, delivered per-hit vs in batched runs, must
        // sample the reuse histogram identically (all reuse 1).
        let mut one = agg();
        let mut batched = agg();
        let hit = |a: &mut CachescopeAggregator| {
            a.on_hit(ProbeHit { set: 0, was_compressed: false, segments: 4, reuse: 1 })
        };
        for _ in 0..300 {
            hit(&mut one);
        }
        batched.on_hit_run(0, 4, 100);
        for _ in 0..7 {
            hit(&mut batched);
        }
        batched.on_hit_run(0, 4, 193);
        assert_eq!(one, batched);
        assert_eq!(one.reuse.count(), 300 / REUSE_SAMPLE_PERIOD);
    }

    #[test]
    fn fill_and_evict_fold_into_the_right_buckets() {
        let mut a = agg();
        a.on_fill(ProbeFill {
            set: 1,
            segments: 2,
            full_segments: 4,
            stored_compressed: true,
            used_after: 6,
            blocks_after: 3,
        });
        a.on_fill(ProbeFill {
            set: 1,
            segments: 4,
            full_segments: 4,
            stored_compressed: false,
            used_after: 8,
            blocks_after: 3,
        });
        a.on_evict(ProbeEviction {
            set: 1,
            reason: EvictionReason::Forced,
            segments: 2,
            was_compressed: true,
            lifetime: 40,
            idle: 3,
        });
        assert_eq!(a.counters.fills, 2);
        assert_eq!(a.counters.compressed_fills, 1);
        assert_eq!(a.ratio.count(), 1);
        assert_eq!(a.ratio.mean(), 2.0);
        assert_eq!(a.per_set_occupancy[1].count(), 2);
        assert_eq!(a.per_set_occupancy[0].count(), 0);
        assert_eq!(a.counters.forced_evictions, 1);
        assert_eq!(a.counters.evictions(), 1);
        assert_eq!(a.lifetime.mean(), 40.0);
        let overall = a.occupancy_overall();
        assert_eq!(overall.count(), 2);
        assert_eq!(overall.mean(), 7.0);
    }

    #[test]
    fn latency_attribution_totals() {
        let l = LatencyAttribution {
            tag_cycles: 10,
            decompress_cycles: 3,
            nvm_cycles: 20,
            writeback_cycles: 7,
        };
        assert_eq!(l.total(), 40);
    }
}
