//! Dependency-free parallel execution for simulation sweeps.
//!
//! Every simulation in this workspace is a pure function of its inputs
//! (program, power trace, config), so experiment grids parallelize
//! trivially — the only requirements are **deterministic result order**
//! (results come back indexed by submission order, never by completion
//! order) and **bounded concurrency** across the whole process.
//!
//! The pool is built on [`std::thread::scope`] only; the build
//! environment is offline, so no external crates (rayon, crossbeam) are
//! available.
//!
//! # Concurrency model
//!
//! Two layers share one process-wide budget of `max_workers()` (set via
//! [`set_max_workers`], e.g. from `repro --jobs N`; defaults to
//! [`std::thread::available_parallelism`]):
//!
//! * [`run_concurrent`] — coarse, *independent* tasks (e.g. whole
//!   experiments). Runs at most `max_workers()` tasks at a time but
//!   holds **no** worker permits, because its tasks are coordinators
//!   that submit leaf batches of their own.
//! * [`map`] / [`run_batch`] — leaf simulation jobs. Each in-flight job
//!   holds one permit from a global counting semaphore, so no matter how
//!   many experiments fan out concurrently, at most `max_workers()`
//!   simulations execute at once (coordinators waiting on their batches
//!   park in `join`, holding no permit — the layering cannot deadlock).
//!
//! With `--jobs 1` everything runs inline on the caller's thread; output
//! JSON is byte-identical to any other job count because results are
//! ordered by index and simulations are deterministic.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread;

use ehs_telemetry::spans;
use ehs_workloads::App;

use crate::config::SimConfig;
use crate::runner::run_app;
use crate::stats::SimStats;

/// Process-wide worker cap; 0 means "unset, use available parallelism".
static MAX_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide worker cap (clamped to at least 1). Called once
/// at startup by binaries with a `--jobs` flag; safe to call anytime.
pub fn set_max_workers(n: usize) {
    MAX_WORKERS.store(n.max(1), Ordering::SeqCst);
}

/// The current worker cap: the last [`set_max_workers`] value, or the
/// machine's available parallelism if never set.
pub fn max_workers() -> usize {
    match MAX_WORKERS.load(Ordering::SeqCst) {
        0 => thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    }
}

/// Counting semaphore state: number of leaf jobs currently executing.
fn in_flight() -> &'static (Mutex<usize>, Condvar) {
    static SEM: OnceLock<(Mutex<usize>, Condvar)> = OnceLock::new();
    SEM.get_or_init(|| (Mutex::new(0), Condvar::new()))
}

/// RAII permit for one executing leaf job.
struct Permit;

impl Permit {
    fn acquire() -> Permit {
        let (lock, cv) = in_flight();
        let mut running = lock.lock().unwrap_or_else(|e| e.into_inner());
        while *running >= max_workers() {
            running = cv.wait(running).unwrap_or_else(|e| e.into_inner());
        }
        *running += 1;
        Permit
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        let (lock, cv) = in_flight();
        *lock.lock().unwrap_or_else(|e| e.into_inner()) -= 1;
        cv.notify_all();
    }
}

/// One simulation of `app` at `scale` under `cfg`.
///
/// The unit of work accepted by [`run_batch`]: experiments flatten their
/// app × governor grids into these.
#[derive(Debug, Clone)]
pub struct SimJob {
    pub app: App,
    pub scale: f64,
    pub cfg: SimConfig,
}

impl SimJob {
    pub fn new(app: App, scale: f64, cfg: SimConfig) -> Self {
        SimJob { app, scale, cfg }
    }

    fn run(self) -> SimStats {
        // The span label names the workload and policy; its cost is only
        // paid when span recording is enabled (see `ehs_telemetry::spans`).
        let label = format!("{}:{}", self.app, self.cfg.governor.label());
        let _span = spans::span("sim", || label.clone());
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_app(self.app, self.scale, &self.cfg)
        })) {
            Ok(stats) => stats,
            // Re-panic with the workload × policy attached, so a batch
            // failure names the simulation that died, not just a slot.
            Err(payload) => panic!("simulation {label} panicked: {}", panic_message(&*payload)),
        }
    }
}

/// Best-effort text of a panic payload (panics carry `&str` or `String`
/// in practice; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("<non-string panic payload>")
}

/// Runs a batch of simulation jobs on the worker pool.
///
/// `results[i]` always corresponds to `jobs[i]`, regardless of job count
/// or completion order.
pub fn run_batch(jobs: Vec<SimJob>) -> Vec<SimStats> {
    map(jobs, SimJob::run)
}

/// Parallel map over leaf work items with deterministic result order.
///
/// Each in-flight item holds one global worker permit; see the module
/// docs for how this composes with [`run_concurrent`]. Panics in `f`
/// propagate to the caller once the scope joins.
pub fn map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    execute(items, &|item| {
        let _permit = Permit::acquire();
        f(item)
    })
}

/// Runs independent coarse-grained tasks concurrently (at most
/// `max_workers()` at a time), returning results in submission order.
///
/// Unlike [`map`], tasks hold no worker permit — use this only for
/// coordinators (e.g. whole experiments) whose real work happens in
/// nested [`map`]/[`run_batch`] calls.
pub fn run_concurrent<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    execute(items, &f)
}

/// Shared scoped-pool driver: `n = min(len, max_workers())` workers pull
/// items off a shared index and write results into per-index slots.
fn execute<T, R>(items: Vec<T>, f: &(dyn Fn(T) -> R + Sync)) -> Vec<R>
where
    T: Send,
    R: Send,
{
    let len = items.len();
    let workers = max_workers().min(len);
    if workers <= 1 {
        // Inline fast path: no threads, no locks — and the exact
        // execution order the parallel path's slot indexing emulates.
        return items.into_iter().map(f).collect();
    }

    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    // Each slot holds the job's result or its captured panic message:
    // one dead job must not discard the rest of the batch unexplained.
    let slots: Vec<Mutex<Option<Result<R, String>>>> = (0..len).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    thread::scope(|scope| {
        let (work, slots, next) = (&work, &slots, &next);
        for w in 0..workers {
            scope.spawn(move || {
                // 1-based so timing spans can distinguish pool workers
                // from inline/coordinator execution (slot 0).
                spans::set_worker_slot(w + 1);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        return;
                    }
                    let item = work[i]
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .take()
                        .expect("work item taken twice");
                    // Catch the payload so the coordinator can name the
                    // job that died (the raw scope join would surface an
                    // anonymous "a scoped thread panicked").
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item)))
                        .map_err(|p| panic_message(&*p).to_string());
                    *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
                }
            });
        }
    });

    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| match slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
            Some(Ok(result)) => result,
            Some(Err(msg)) => panic!("job {i} panicked: {msg}"),
            None => panic!("job {i} produced no result (worker died before storing it)"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GovernorSpec;

    #[test]
    fn map_preserves_submission_order() {
        set_max_workers(4);
        let out = map((0..64).collect::<Vec<u64>>(), |i| i * 3);
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<u64>>());
        set_max_workers(1);
        let serial = map((0..64).collect::<Vec<u64>>(), |i| i * 3);
        assert_eq!(out, serial);
    }

    #[test]
    fn nested_coordinators_do_not_deadlock() {
        // More coordinators than workers, each submitting leaf batches
        // that need permits: must complete because coordinators hold none.
        set_max_workers(2);
        let out = run_concurrent((0..6).collect::<Vec<u64>>(), |outer| {
            let inner = map((0..8).collect::<Vec<u64>>(), |i| i + outer * 100);
            inner.iter().sum::<u64>()
        });
        let expect: Vec<u64> = (0..6).map(|outer| (0..8).map(|i| i + outer * 100).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn run_batch_matches_direct_runs() {
        set_max_workers(2);
        let cfg = SimConfig::table1().with_governor(GovernorSpec::Acc);
        let jobs: Vec<SimJob> =
            [App::Sha, App::Crc32].iter().map(|&a| SimJob::new(a, 0.01, cfg.clone())).collect();
        let batch = run_batch(jobs.clone());
        for (job, stats) in jobs.into_iter().zip(&batch) {
            let direct = run_app(job.app, job.scale, &job.cfg);
            assert_eq!(direct.sim_time, stats.sim_time, "batch result diverged for {:?}", job.app);
            assert_eq!(direct.total_cycles, stats.total_cycles);
        }
    }

    #[test]
    fn worker_panics_resurface_with_job_context() {
        set_max_workers(4);
        let result = std::panic::catch_unwind(|| {
            map((0..8).collect::<Vec<u64>>(), |i| {
                if i == 5 {
                    panic!("boom at {i}");
                }
                i
            })
        });
        let payload = result.expect_err("batch with a panicking job must panic");
        let msg = panic_message(&*payload);
        assert!(msg.contains("job 5"), "missing job index: {msg}");
        assert!(msg.contains("boom at 5"), "missing original payload: {msg}");
    }

    #[test]
    fn worker_cap_defaults_to_available_parallelism() {
        MAX_WORKERS.store(0, Ordering::SeqCst);
        assert!(max_workers() >= 1);
        set_max_workers(0); // clamps to 1
        assert_eq!(max_workers(), 1);
    }
}
