//! Dependency-free parallel execution for simulation sweeps.
//!
//! Every simulation in this workspace is a pure function of its inputs
//! (program, power trace, config), so experiment grids parallelize
//! trivially — the only requirements are **deterministic result order**
//! (results come back indexed by submission order, never by completion
//! order) and **bounded concurrency** across the whole process.
//!
//! The pool is built on [`std::thread::scope`] only; the build
//! environment is offline, so no external crates (rayon, crossbeam) are
//! available.
//!
//! # Concurrency model
//!
//! Two layers share one process-wide budget of `max_workers()` (set via
//! [`set_max_workers`], e.g. from `repro --jobs N`; defaults to
//! [`std::thread::available_parallelism`]):
//!
//! * [`run_concurrent`] — coarse, *independent* tasks (e.g. whole
//!   experiments). Runs at most `max_workers()` tasks at a time but
//!   holds **no** worker permits, because its tasks are coordinators
//!   that submit leaf batches of their own.
//! * [`map`] / [`run_batch`] — leaf simulation jobs. Each in-flight job
//!   holds one permit from a global counting semaphore, so no matter how
//!   many experiments fan out concurrently, at most `max_workers()`
//!   simulations execute at once (coordinators waiting on their batches
//!   park in `join`, holding no permit — the layering cannot deadlock).
//!
//! With `--jobs 1` (or a single-item batch) everything runs inline on
//! the caller's thread with **no permits, threads, or locks** — the pool
//! machinery is bypassed entirely, so a serial sweep pays nothing over a
//! plain loop. The concurrency cap still holds: an inline batch executes
//! one leaf at a time on its coordinator's thread, and coordinators are
//! themselves capped at `max_workers()`. Output JSON is byte-identical
//! to any other job count because results are ordered by index and
//! simulations are deterministic.
//!
//! # Fault containment
//!
//! [`run_batch`] never re-panics: each job returns
//! `Result<SimStats, JobFailure>`, so one dead grid cell degrades to one
//! failed report cell instead of poisoning the whole batch. The
//! [`JobFailure`] taxonomy distinguishes panics, watchdog cancellations
//! ([`crate::config::StepBudget`]), workers that died without storing a
//! result, and transient failures that still failed after bounded
//! retry-with-backoff ([`RetryPolicy`]). Every terminal failure and
//! retry is mirrored into the pool's harness event log
//! ([`drain_pool_events`]) as `JobFailed`/`JobRetried`/`JobTimedOut`
//! events, and per-job latency lands in the pool metrics
//! ([`pool_metrics`]), so the orchestration layer is observable end to
//! end.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use ehs_telemetry::{spans, Event, MetricsRegistry, Stamped};
use ehs_workloads::App;

use crate::config::SimConfig;
use crate::runner::run_app;
use crate::stats::SimStats;

/// Process-wide worker cap; 0 means "unset, use available parallelism".
static MAX_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide worker cap (clamped to at least 1). Called once
/// at startup by binaries with a `--jobs` flag; safe to call anytime.
pub fn set_max_workers(n: usize) {
    MAX_WORKERS.store(n.max(1), Ordering::SeqCst);
}

/// The current worker cap: the last [`set_max_workers`] value, or the
/// machine's available parallelism if never set.
pub fn max_workers() -> usize {
    match MAX_WORKERS.load(Ordering::SeqCst) {
        0 => thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    }
}

/// Counting semaphore state: number of leaf jobs currently executing.
fn in_flight() -> &'static (Mutex<usize>, Condvar) {
    static SEM: OnceLock<(Mutex<usize>, Condvar)> = OnceLock::new();
    SEM.get_or_init(|| (Mutex::new(0), Condvar::new()))
}

/// Number of leaf jobs currently holding a worker permit. Admission
/// layers (e.g. `simrun serve`) read this to size their load-shedding
/// decisions against the real pool occupancy rather than a guess.
pub fn pool_in_flight() -> usize {
    *in_flight().0.lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether [`execute`] holds one global worker permit per in-flight item
/// (leaf simulation batches) or none (coordinator fan-out, whose real
/// work happens in nested leaf batches).
#[derive(Clone, Copy)]
enum Permits {
    PerItem,
    None,
}

/// RAII permit for one executing leaf job.
struct Permit;

impl Permit {
    fn acquire() -> Permit {
        let (lock, cv) = in_flight();
        let mut running = lock.lock().unwrap_or_else(|e| e.into_inner());
        while *running >= max_workers() {
            running = cv.wait(running).unwrap_or_else(|e| e.into_inner());
        }
        *running += 1;
        Permit
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        let (lock, cv) = in_flight();
        *lock.lock().unwrap_or_else(|e| e.into_inner()) -= 1;
        cv.notify_all();
    }
}

/// Why one batch job failed, without taking the rest of the batch down.
///
/// Classification drives the retry machinery: only
/// [`JobFailure::is_transient`] failures are re-attempted, and a job
/// that stays transiently broken after [`RetryPolicy::max_attempts`]
/// surfaces as [`JobFailure::Retryable`] with its attempt count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobFailure {
    /// The simulation panicked; the message names the workload × policy.
    Panicked {
        /// The captured panic text, with job context attached.
        message: String,
    },
    /// The cooperative watchdog ([`crate::config::StepBudget`])
    /// cancelled the run.
    TimedOut {
        /// Cancellation reason from [`SimStats::budget_exhausted`].
        detail: String,
        /// Instructions executed when the budget expired.
        executed_insts: u64,
    },
    /// The worker thread died before storing any result — the slot came
    /// back empty (this should be unreachable; it is kept as a contained
    /// failure rather than an assertion so one broken worker cannot
    /// poison the batch).
    WorkerDied,
    /// A failure classed transient that persisted through every retry.
    Retryable {
        /// The last attempt's failure text.
        message: String,
        /// Total attempts made (the first run plus all retries).
        attempts: u32,
    },
}

/// Marker that classifies a panic as transient: panics whose payload
/// contains this substring are retried under the batch's
/// [`RetryPolicy`]. Simulations are pure functions of their inputs, so
/// genuine nondeterministic failures can only come from the host
/// environment (or an injected test flake) — both of which opt in by
/// carrying the marker.
pub const TRANSIENT_MARKER: &str = "transient";

impl JobFailure {
    /// `true` for failures worth retrying (see [`TRANSIENT_MARKER`]).
    pub fn is_transient(&self) -> bool {
        matches!(self, JobFailure::Panicked { message } if message.contains(TRANSIENT_MARKER))
    }

    /// Stable machine-readable tag for failure manifests.
    pub fn kind(&self) -> &'static str {
        match self {
            JobFailure::Panicked { .. } => "panic",
            JobFailure::TimedOut { .. } => "timeout",
            JobFailure::WorkerDied => "worker-died",
            JobFailure::Retryable { .. } => "retry-exhausted",
        }
    }
}

impl fmt::Display for JobFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobFailure::Panicked { message } => write!(f, "panicked: {message}"),
            JobFailure::TimedOut { detail, executed_insts } => {
                write!(f, "timed out after {executed_insts} executed insts: {detail}")
            }
            JobFailure::WorkerDied => {
                write!(f, "worker died before storing a result")
            }
            JobFailure::Retryable { message, attempts } => {
                write!(f, "still failing after {attempts} attempts: {message}")
            }
        }
    }
}

impl std::error::Error for JobFailure {}

/// Bounded retry-with-backoff for transient job failures.
///
/// Retry round *k* (1-based) sleeps `base_backoff × 2^(k−1)` before
/// re-submitting the still-failing jobs, so a busy host gets geometric
/// breathing room. The schedule is deterministic — same failures, same
/// attempt counts — which keeps batch results reproducible under a
/// seeded flaky-job injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per job, the first run included (min 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles every further round.
    pub base_backoff: Duration,
}

impl RetryPolicy {
    /// No retries at all: every failure is terminal.
    pub const NONE: RetryPolicy =
        RetryPolicy { max_attempts: 1, base_backoff: Duration::from_millis(0) };
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 3, base_backoff: Duration::from_millis(20) }
    }
}

/// Process-wide pool observability: harness-level job events plus a
/// metrics registry with per-job latency histograms. Guarded by one
/// mutex — all updates happen at job boundaries, never in the
/// simulation hot path.
struct PoolTelemetry {
    /// Wall-clock origin for event stamps (`t_us` = µs since this).
    start: Instant,
    events: Vec<Stamped>,
    metrics: MetricsRegistry,
    latency_ms: ehs_telemetry::HistogramId,
    jobs_ok: ehs_telemetry::Counter,
    jobs_failed: ehs_telemetry::Counter,
    jobs_retried: ehs_telemetry::Counter,
    jobs_timed_out: ehs_telemetry::Counter,
}

impl PoolTelemetry {
    fn emit(&mut self, event: Event) {
        let t_us = self.start.elapsed().as_secs_f64() * 1e6;
        // Harness events carry no simulated power cycle; 0 by convention.
        self.events.push(Stamped { t_us, cycle: 0, event });
    }
}

fn pool() -> &'static Mutex<PoolTelemetry> {
    static POOL: OnceLock<Mutex<PoolTelemetry>> = OnceLock::new();
    POOL.get_or_init(|| {
        let mut metrics = MetricsRegistry::default();
        let latency_ms =
            metrics.histogram("job_latency_ms", &[1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1e3, 1e4]);
        let jobs_ok = metrics.counter("jobs_ok");
        let jobs_failed = metrics.counter("jobs_failed");
        let jobs_retried = metrics.counter("jobs_retried");
        let jobs_timed_out = metrics.counter("jobs_timed_out");
        Mutex::new(PoolTelemetry {
            start: Instant::now(),
            events: Vec::new(),
            metrics,
            latency_ms,
            jobs_ok,
            jobs_failed,
            jobs_retried,
            jobs_timed_out,
        })
    })
}

/// Drains the pool's accumulated harness events
/// (`JobFailed`/`JobRetried`/`JobTimedOut`). Stamps are host wall-clock
/// microseconds since the pool first ran a batch; `cycle` is always 0.
pub fn drain_pool_events() -> Vec<Stamped> {
    std::mem::take(&mut pool().lock().unwrap_or_else(|e| e.into_inner()).events)
}

/// A snapshot of the pool's metrics: per-job latency histogram
/// (`job_latency_ms`) and `jobs_ok`/`jobs_failed`/`jobs_retried`/
/// `jobs_timed_out` counters.
pub fn pool_metrics() -> MetricsRegistry {
    pool().lock().unwrap_or_else(|e| e.into_inner()).metrics.clone()
}

/// One simulation of `app` at `scale` under `cfg`.
///
/// The unit of work accepted by [`run_batch`]: experiments flatten their
/// app × governor grids into these.
#[derive(Debug, Clone)]
pub struct SimJob {
    pub app: App,
    pub scale: f64,
    pub cfg: SimConfig,
}

impl SimJob {
    pub fn new(app: App, scale: f64, cfg: SimConfig) -> Self {
        SimJob { app, scale, cfg }
    }

    /// Copy with a watchdog budget on the job's config.
    pub fn with_budget(mut self, budget: crate::config::StepBudget) -> Self {
        self.cfg.step_budget = budget;
        self
    }

    /// Runs the job with both failure modes contained: a panic comes
    /// back as [`JobFailure::Panicked`] with the workload × policy
    /// attached, a watchdog cancellation as [`JobFailure::TimedOut`].
    fn try_run(self) -> Result<SimStats, JobFailure> {
        // The span label names the workload and policy; its cost is only
        // paid when span recording is enabled (see `ehs_telemetry::spans`).
        let label = format!("{}:{}", self.app, self.cfg.governor.label());
        let _span = spans::span("sim", || label.clone());
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_app(self.app, self.scale, &self.cfg)
        })) {
            Ok(stats) => match stats.budget_exhausted {
                Some(ref reason) => Err(JobFailure::TimedOut {
                    detail: format!("simulation {label}: {reason}"),
                    executed_insts: stats.executed_insts,
                }),
                None => Ok(stats),
            },
            Err(payload) => Err(JobFailure::Panicked {
                message: format!("simulation {label} panicked: {}", panic_message(&*payload)),
            }),
        }
    }
}

/// Best-effort text of a panic payload (panics carry `&str` or `String`
/// in practice; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("<non-string panic payload>")
}

/// Runs a batch of simulation jobs on the worker pool under the default
/// [`RetryPolicy`], containing every failure.
///
/// `results[i]` always corresponds to `jobs[i]`, regardless of job count
/// or completion order. A panicking, hanging (budget-cancelled) or
/// worker-killed job degrades to `Err(JobFailure)` in its own slot; the
/// rest of the batch completes untouched.
pub fn run_batch(jobs: Vec<SimJob>) -> Vec<Result<SimStats, JobFailure>> {
    run_batch_with(jobs, RetryPolicy::default())
}

/// [`run_batch`] with an explicit retry policy.
///
/// Per-job latency is recorded into the pool's `job_latency_ms`
/// histogram, and every terminal failure emits a `JobFailed` (plus
/// `JobTimedOut` for watchdog cancellations) into the pool event log.
pub fn run_batch_with(jobs: Vec<SimJob>, policy: RetryPolicy) -> Vec<Result<SimStats, JobFailure>> {
    let results = try_map_retry(
        jobs,
        |job: SimJob| {
            let t0 = Instant::now();
            let outcome = job.try_run();
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            let mut p = pool().lock().unwrap_or_else(|e| e.into_inner());
            let (latency, ok) = (p.latency_ms, p.jobs_ok);
            p.metrics.observe(latency, ms);
            if outcome.is_ok() {
                p.metrics.inc(ok, 1);
            }
            outcome
        },
        policy,
    );
    let mut p = pool().lock().unwrap_or_else(|e| e.into_inner());
    for (i, result) in results.iter().enumerate() {
        if let Err(failure) = result {
            if let JobFailure::TimedOut { executed_insts, .. } = failure {
                let timed_out = p.jobs_timed_out;
                p.metrics.inc(timed_out, 1);
                p.emit(Event::JobTimedOut { job: i as u64, executed_insts: *executed_insts });
            }
            let failed = p.jobs_failed;
            p.metrics.inc(failed, 1);
            p.emit(Event::JobFailed { job: i as u64, reason: failure.to_string() });
        }
    }
    results
}

/// Runs one simulation job on the worker pool under the default
/// [`RetryPolicy`], blocking until a global worker permit frees up.
///
/// This is the serving layer's entry point: one interactive request
/// maps to one job and shares the process-wide `max_workers()` budget
/// with any concurrent batch work, so a burst of what-if queries can
/// never oversubscribe the host. Failure containment and telemetry
/// match [`run_batch_with`] exactly.
pub fn run_job(job: SimJob) -> Result<SimStats, JobFailure> {
    run_job_with(job, RetryPolicy::default())
}

/// [`run_job`] with an explicit retry policy: failures classed
/// transient ([`JobFailure::is_transient`]) re-run after
/// `base_backoff × 2^(round−1)` sleep, each retry emitting a
/// `JobRetried` pool event; a job still transiently failing after
/// `max_attempts` surfaces as [`JobFailure::Retryable`]. Terminal
/// failures emit `JobFailed` (plus `JobTimedOut` for watchdog
/// cancellations) just like the batch path.
pub fn run_job_with(job: SimJob, policy: RetryPolicy) -> Result<SimStats, JobFailure> {
    let max_attempts = policy.max_attempts.max(1);
    let mut outcome = run_job_attempt(job.clone());
    for round in 1..max_attempts {
        if !matches!(&outcome, Err(failure) if failure.is_transient()) {
            break;
        }
        let backoff = policy.base_backoff * 2u32.pow(round - 1);
        if !backoff.is_zero() {
            thread::sleep(backoff);
        }
        {
            let mut p = pool().lock().unwrap_or_else(|e| e.into_inner());
            let retried = p.jobs_retried;
            p.metrics.inc(retried, 1);
            p.emit(Event::JobRetried { job: 0, attempt: round as u64 });
        }
        outcome = run_job_attempt(job.clone());
    }
    if matches!(&outcome, Err(failure) if failure.is_transient()) {
        if let Err(JobFailure::Panicked { message }) = outcome {
            outcome = Err(JobFailure::Retryable { message, attempts: max_attempts });
        }
    }
    if let Err(failure) = &outcome {
        let mut p = pool().lock().unwrap_or_else(|e| e.into_inner());
        if let JobFailure::TimedOut { executed_insts, .. } = failure {
            let timed_out = p.jobs_timed_out;
            p.metrics.inc(timed_out, 1);
            p.emit(Event::JobTimedOut { job: 0, executed_insts: *executed_insts });
        }
        let failed = p.jobs_failed;
        p.metrics.inc(failed, 1);
        p.emit(Event::JobFailed { job: 0, reason: failure.to_string() });
    }
    outcome
}

/// One permit-holding attempt with its latency recorded — the unit the
/// [`run_job_with`] retry loop repeats. The permit is held only for the
/// simulation itself, never across a backoff sleep.
fn run_job_attempt(job: SimJob) -> Result<SimStats, JobFailure> {
    let _permit = Permit::acquire();
    let t0 = Instant::now();
    let outcome = job.try_run();
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut p = pool().lock().unwrap_or_else(|e| e.into_inner());
    let (latency, ok) = (p.latency_ms, p.jobs_ok);
    p.metrics.observe(latency, ms);
    if outcome.is_ok() {
        p.metrics.inc(ok, 1);
    }
    outcome
}

/// Parallel map over leaf work items with deterministic result order.
///
/// Each in-flight item holds one global worker permit; see the module
/// docs for how this composes with [`run_concurrent`]. Panics in `f`
/// propagate to the caller once the scope joins, renamed with the job
/// index — callers that need containment instead use [`try_map`].
pub fn map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    execute(items, &f, Permits::PerItem)
        .into_iter()
        .enumerate()
        .map(|(i, slot)| unwrap_contained(i, slot))
        .collect()
}

/// Fault-contained parallel map: each item's panic or typed failure
/// comes back as `Err(JobFailure)` in its own slot instead of unwinding
/// through the whole batch. Result order matches submission order.
pub fn try_map<T, R, F>(items: Vec<T>, f: F) -> Vec<Result<R, JobFailure>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> Result<R, JobFailure> + Sync,
{
    execute(items, &f, Permits::PerItem)
        .into_iter()
        .map(|slot| slot.and_then(|inner| inner))
        .collect()
}

/// [`try_map`] plus bounded retry: failures classed transient
/// ([`JobFailure::is_transient`]) are re-submitted in rounds, with
/// `policy.base_backoff × 2^(round−1)` sleep before round *k*. Jobs
/// still transiently failing after `policy.max_attempts` total attempts
/// surface as [`JobFailure::Retryable`]. Each retry emits a `JobRetried`
/// pool event, so attempt counts are auditable after the fact.
pub fn try_map_retry<T, R, F>(
    items: Vec<T>,
    f: F,
    policy: RetryPolicy,
) -> Vec<Result<R, JobFailure>>
where
    T: Send + Clone,
    R: Send,
    F: Fn(T) -> Result<R, JobFailure> + Sync,
{
    let max_attempts = policy.max_attempts.max(1);
    // Retry rounds re-submit the original item, so retain copies only
    // when the policy can actually use them.
    let retained: Option<Vec<T>> = (max_attempts > 1).then(|| items.clone());
    let mut results = try_map(items, &f);
    for round in 1..max_attempts {
        let pending: Vec<usize> = results
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r, Err(failure) if failure.is_transient()))
            .map(|(i, _)| i)
            .collect();
        if pending.is_empty() {
            break;
        }
        let backoff = policy.base_backoff * 2u32.pow(round - 1);
        if !backoff.is_zero() {
            thread::sleep(backoff);
        }
        {
            let mut p = pool().lock().unwrap_or_else(|e| e.into_inner());
            let retried = p.jobs_retried;
            for &i in &pending {
                p.metrics.inc(retried, 1);
                p.emit(Event::JobRetried { job: i as u64, attempt: round as u64 });
            }
        }
        let originals = retained.as_ref().expect("retained items exist when retrying");
        let retry_items: Vec<T> = pending.iter().map(|&i| originals[i].clone()).collect();
        for (&i, r) in pending.iter().zip(try_map(retry_items, &f)) {
            results[i] = r;
        }
    }
    // Whatever is still transient has exhausted its attempts.
    for r in &mut results {
        let exhausted = matches!(r, Err(failure) if failure.is_transient());
        if exhausted {
            if let Err(JobFailure::Panicked { message }) = r {
                let message = std::mem::take(message);
                *r = Err(JobFailure::Retryable { message, attempts: max_attempts });
            }
        }
    }
    results
}

/// Runs independent coarse-grained tasks concurrently (at most
/// `max_workers()` at a time), returning results in submission order.
///
/// Unlike [`map`], tasks hold no worker permit — use this only for
/// coordinators (e.g. whole experiments) whose real work happens in
/// nested [`map`]/[`run_batch`] calls.
pub fn run_concurrent<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    execute(items, &f, Permits::None)
        .into_iter()
        .enumerate()
        .map(|(i, slot)| unwrap_contained(i, slot))
        .collect()
}

/// Re-raises a contained failure with its job index attached, for the
/// panicking entry points ([`map`], [`run_concurrent`]).
fn unwrap_contained<R>(i: usize, slot: Result<R, JobFailure>) -> R {
    match slot {
        Ok(result) => result,
        Err(JobFailure::Panicked { message }) => panic!("job {i} panicked: {message}"),
        Err(JobFailure::WorkerDied) => {
            panic!("job {i} produced no result (worker died before storing it)")
        }
        Err(other) => panic!("job {i} failed: {other}"),
    }
}

/// Shared scoped-pool driver: `n = min(len, max_workers())` workers pull
/// items off a shared index and write results into per-index slots.
///
/// Failures are contained, never re-raised: a panic in `f` becomes
/// [`JobFailure::Panicked`] in that item's slot, and a slot left empty
/// by a dead worker becomes [`JobFailure::WorkerDied`]. The panicking
/// wrappers layer their legacy contract on top via [`unwrap_contained`].
fn execute<T, R>(
    items: Vec<T>,
    f: &(dyn Fn(T) -> R + Sync),
    permits: Permits,
) -> Vec<Result<R, JobFailure>>
where
    T: Send,
    R: Send,
{
    let len = items.len();
    let workers = max_workers().min(len);
    if workers <= 1 {
        // Inline fast path: no threads, no locks, and **no permits** — the
        // items run one at a time on this (coordinator) thread, and
        // coordinators are themselves bounded by `max_workers()`, so the
        // global leaf cap holds without touching the semaphore. Execution
        // order is exactly what the parallel path's slot indexing
        // emulates, and panics are still contained so the `--jobs 1`
        // failure contract matches the parallel one.
        return items
            .into_iter()
            .map(|item| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item)))
                    .map_err(|p| JobFailure::Panicked { message: panic_message(&*p).to_string() })
            })
            .collect();
    }

    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    // Each slot holds the job's result or its captured panic message:
    // one dead job must not discard the rest of the batch unexplained.
    let slots: Vec<Mutex<Option<Result<R, String>>>> = (0..len).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    thread::scope(|scope| {
        let (work, slots, next) = (&work, &slots, &next);
        for w in 0..workers {
            scope.spawn(move || {
                // 1-based so timing spans can distinguish pool workers
                // from inline/coordinator execution (slot 0).
                spans::set_worker_slot(w + 1);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        return;
                    }
                    let item = work[i]
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .take()
                        .expect("work item taken twice");
                    let _permit = match permits {
                        Permits::PerItem => Some(Permit::acquire()),
                        Permits::None => None,
                    };
                    // Catch the payload so the coordinator can name the
                    // job that died (the raw scope join would surface an
                    // anonymous "a scoped thread panicked").
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item)))
                        .map_err(|p| panic_message(&*p).to_string());
                    *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| match slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
            Some(Ok(result)) => Ok(result),
            Some(Err(message)) => Err(JobFailure::Panicked { message }),
            None => Err(JobFailure::WorkerDied),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GovernorSpec;

    #[test]
    fn map_preserves_submission_order() {
        set_max_workers(4);
        let out = map((0..64).collect::<Vec<u64>>(), |i| i * 3);
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<u64>>());
        set_max_workers(1);
        let serial = map((0..64).collect::<Vec<u64>>(), |i| i * 3);
        assert_eq!(out, serial);
    }

    #[test]
    fn nested_coordinators_do_not_deadlock() {
        // More coordinators than workers, each submitting leaf batches
        // that need permits: must complete because coordinators hold none.
        set_max_workers(2);
        let out = run_concurrent((0..6).collect::<Vec<u64>>(), |outer| {
            let inner = map((0..8).collect::<Vec<u64>>(), |i| i + outer * 100);
            inner.iter().sum::<u64>()
        });
        let expect: Vec<u64> = (0..6).map(|outer| (0..8).map(|i| i + outer * 100).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn run_batch_matches_direct_runs() {
        set_max_workers(2);
        let cfg = SimConfig::table1().with_governor(GovernorSpec::Acc);
        let jobs: Vec<SimJob> =
            [App::Sha, App::Crc32].iter().map(|&a| SimJob::new(a, 0.01, cfg.clone())).collect();
        let batch = run_batch(jobs.clone());
        for (job, result) in jobs.into_iter().zip(&batch) {
            let stats = result.as_ref().expect("healthy job must succeed");
            let direct = run_app(job.app, job.scale, &job.cfg);
            assert_eq!(direct.sim_time, stats.sim_time, "batch result diverged for {:?}", job.app);
            assert_eq!(direct.total_cycles, stats.total_cycles);
        }
    }

    #[test]
    fn try_map_contains_panics_to_their_own_slot() {
        set_max_workers(4);
        let out = try_map((0..8).collect::<Vec<u64>>(), |i| {
            if i == 5 {
                panic!("boom at {i}");
            }
            Ok(i * 2)
        });
        for (i, slot) in out.iter().enumerate() {
            if i == 5 {
                match slot {
                    Err(JobFailure::Panicked { message }) => {
                        assert!(message.contains("boom at 5"), "wrong payload: {message}");
                    }
                    other => panic!("expected contained panic, got {other:?}"),
                }
            } else {
                assert_eq!(*slot, Ok(i as u64 * 2), "healthy slot {i} corrupted");
            }
        }
    }

    #[test]
    fn transient_failures_retry_then_succeed_deterministically() {
        set_max_workers(2);
        // Seeded flaky injector: job 3 fails its first two attempts with
        // a transient panic, then succeeds; everything else is healthy.
        let attempts: Vec<AtomicUsize> = (0..6).map(|_| AtomicUsize::new(0)).collect();
        let policy = RetryPolicy { max_attempts: 3, base_backoff: Duration::ZERO };
        let out = try_map_retry(
            (0..6).collect::<Vec<u64>>(),
            |i| {
                let n = attempts[i as usize].fetch_add(1, Ordering::SeqCst);
                if i == 3 && n < 2 {
                    panic!("transient flake on job {i} attempt {n}");
                }
                Ok(i + 100)
            },
            policy,
        );
        assert_eq!(out, (0..6).map(|i| Ok(i + 100)).collect::<Vec<_>>());
        assert_eq!(attempts[3].load(Ordering::SeqCst), 3, "job 3 must run exactly 3 times");
        for (i, a) in attempts.iter().enumerate() {
            if i != 3 {
                assert_eq!(a.load(Ordering::SeqCst), 1, "healthy job {i} must not be retried");
            }
        }
    }

    #[test]
    fn persistent_transient_failure_exhausts_to_retryable() {
        set_max_workers(2);
        let attempts = AtomicUsize::new(0);
        let policy = RetryPolicy { max_attempts: 3, base_backoff: Duration::ZERO };
        let out = try_map_retry(
            vec![0u64],
            |_| -> Result<u64, JobFailure> {
                attempts.fetch_add(1, Ordering::SeqCst);
                panic!("transient but never recovers");
            },
            policy,
        );
        assert_eq!(attempts.load(Ordering::SeqCst), 3, "must attempt exactly max_attempts times");
        match &out[0] {
            Err(JobFailure::Retryable { message, attempts }) => {
                assert_eq!(*attempts, 3);
                assert!(message.contains("never recovers"), "wrong payload: {message}");
            }
            other => panic!("expected Retryable, got {other:?}"),
        }
    }

    #[test]
    fn non_transient_failures_are_not_retried() {
        set_max_workers(2);
        let attempts = AtomicUsize::new(0);
        let out = try_map_retry(
            vec![0u64],
            |_| -> Result<u64, JobFailure> {
                attempts.fetch_add(1, Ordering::SeqCst);
                panic!("hard failure, no marker");
            },
            RetryPolicy::default(),
        );
        assert_eq!(attempts.load(Ordering::SeqCst), 1, "permanent failures must not retry");
        assert!(matches!(&out[0], Err(JobFailure::Panicked { .. })));
    }

    #[test]
    fn run_job_matches_direct_run_and_contains_budget_exhaustion() {
        set_max_workers(2);
        let cfg = SimConfig::table1().with_governor(GovernorSpec::Acc);
        let stats = run_job(SimJob::new(App::Sha, 0.01, cfg.clone()))
            .expect("healthy single job must succeed");
        let direct = run_app(App::Sha, 0.01, &cfg);
        assert_eq!(direct.sim_time, stats.sim_time);
        assert_eq!(direct.total_cycles, stats.total_cycles);
        assert_eq!(pool_in_flight(), 0, "permit must be released after the run");

        // A starvation-level instruction budget must come back as a
        // contained TimedOut, never a wedged or panicking worker.
        let starved =
            SimJob::new(App::Sha, 0.01, cfg).with_budget(crate::config::StepBudget::insts(10));
        match run_job_with(starved, RetryPolicy::NONE) {
            Err(JobFailure::TimedOut { executed_insts, .. }) => {
                assert!(executed_insts >= 10, "watchdog fired before its budget")
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
        assert_eq!(pool_in_flight(), 0, "permit must be released after a failure");
    }

    #[test]
    fn run_batch_contains_a_panicking_job() {
        set_max_workers(2);
        let cfg = SimConfig::table1().with_governor(GovernorSpec::Acc);
        // Negative scale trips `App::build`'s "scale must be positive"
        // assertion — a deterministic in-simulation panic.
        let jobs = vec![
            SimJob::new(App::Sha, 0.01, cfg.clone()),
            SimJob::new(App::Crc32, -1.0, cfg.clone()),
            SimJob::new(App::Crc32, 0.01, cfg),
        ];
        let batch = run_batch_with(jobs, RetryPolicy::NONE);
        assert!(batch[0].is_ok(), "healthy job 0 must survive: {:?}", batch[0]);
        assert!(batch[2].is_ok(), "healthy job 2 must survive: {:?}", batch[2]);
        match &batch[1] {
            Err(JobFailure::Panicked { message }) => {
                assert!(
                    message.contains("crc32") && message.contains("scale"),
                    "panic must name the simulation and cause: {message}"
                );
            }
            other => panic!("expected contained panic, got {other:?}"),
        }
    }

    #[test]
    fn worker_panics_resurface_with_job_context() {
        set_max_workers(4);
        let result = std::panic::catch_unwind(|| {
            map((0..8).collect::<Vec<u64>>(), |i| {
                if i == 5 {
                    panic!("boom at {i}");
                }
                i
            })
        });
        let payload = result.expect_err("batch with a panicking job must panic");
        let msg = panic_message(&*payload);
        assert!(msg.contains("job 5"), "missing job index: {msg}");
        assert!(msg.contains("boom at 5"), "missing original payload: {msg}");
    }

    #[test]
    fn worker_cap_defaults_to_available_parallelism() {
        MAX_WORKERS.store(0, Ordering::SeqCst);
        assert!(max_workers() >= 1);
        set_max_workers(0); // clamps to 1
        assert_eq!(max_workers(), 1);
    }
}
