//! Leakscope: a compressed-cache timing side-channel harness.
//!
//! Compression turns a cache's *occupancy* into a function of its
//! *contents*: a block that compresses well leaves room for its
//! neighbours, one that doesn't evicts them. Safecracker-style attacks
//! exploit this by co-locating attacker-controlled bytes with a victim
//! secret in one block and observing — through timing alone — whether a
//! probe block survived. This module reproduces that attack against every
//! compressor and governor in the repo, measures the channel it opens
//! ([`mutual_information_bits`]), and evaluates the randomized-threshold
//! countermeasure ([`GovernorSpec::RandThreshold`]) with the same
//! pipeline.
//!
//! # The eviction oracle
//!
//! On the Table 1 D-cache (32 B blocks, 2 ways, 4 sets, 8-byte segments ⇒
//! 8 segments and 4 tag slots per set) the harness stages four blocks in
//! one set: the shared victim block `V` and three filler blocks
//! `F1..F3` calibrated to compress to exactly 2 segments each. The probe
//! program is
//!
//! ```text
//! load V; load F1; load F2; load V (re-touch: F1 becomes LRU);
//! load F3; load F1            // the probe
//! ```
//!
//! If `V` compresses to ≤ 2 segments everything fits (2+2+2+2 = 8) and
//! the probe **hits**; at ≥ 3 segments `F3`'s fill must evict the LRU
//! block — `F1` — and the probe **misses**. Governor bypasses only
//! inflate footprints, so a probe hit *proves* the ≤ 2-segment case: the
//! oracle has no false positives and a sweep may stop at its first hit.
//!
//! # The sliding window
//!
//! The secret is recovered byte-at-a-time à la Safecracker: for byte `j`
//! the victim maps its secret at block offset `31 − j`, so bytes
//! `0..31-j` are attacker pads, bytes `31-j..31` are already-recovered
//! secret, and byte 31 is the unknown `s_j`. The attacker embeds a guess
//! word `G` (the predicted final word, with guess `c` as its high byte)
//! in the pads and *calibrates* — entirely offline, using the public
//! compressor — a pad family for which the block lands at ≤ 2 segments
//! iff `s_j = c` and ≥ 3 segments for **all 255** wrong values. Only
//! calibrated layouts are attacked, which is what makes the oracle
//! sound; compressors where no layout calibrates (per-word codes like
//! FPC/DZC, whose final-word cost is independent of the pads) are
//! structurally immune and reported as such.

use std::collections::BTreeMap;
use std::sync::Arc;

use ehs_cache::{TimelineRecord, SEGMENT_BYTES, TAG_FACTOR};
use ehs_compress::{AnyCompressor, Compressor};
use ehs_energy::PowerTrace;
use ehs_mem::{ImageKind, MemoryImage};
use ehs_telemetry::{
    channel_capacity_bits, mutual_information_bits, AttackStats, LatencyHistogram,
};
use ehs_workloads::{AddrGen, KernelProgram, KernelSpec, Op, Phase};

use crate::config::{GovernorSpec, SimConfig};
use crate::runner::{default_trace, run_program_with_leak_timeline};

/// Pad byte for attacker-controlled positions inside the final words.
/// Non-zero so a wrong final word never degenerates into a
/// three-zero-bytes pattern (C-PACK `zzzx`) that would compress past the
/// miss threshold.
const PAD_BYTE: u8 = 0xA7;

/// Incompressible pad words: no zero bytes, no small values, mutually
/// distinct in every byte lane so they never partially match each other
/// or a guess word under C-PACK's granularities.
const PAD_HEAVY: [u32; 5] = [0xB7E1_5163, 0x8AED_2A6B, 0xF142_9CD7, 0x4528_21E6, 0x38D0_1377];

/// Filler heavy words, disjoint from [`PAD_HEAVY`] (fillers live in other
/// blocks, but distinct values keep FVC frequency counts unpolluted).
const FILL_HEAVY: [u32; 8] = [
    0xBE54_66CF,
    0x34E9_0C6C,
    0xC97C_50DD,
    0x3F84_D5B5,
    0xB547_1915,
    0x2AFE_D7C1,
    0x6C8E_9D2B,
    0xD1A4_73E9,
];

/// SplitMix64 — derives per-run nonce seeds for the randomized governor.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Harness knobs. [`Default`] is the configuration the `leakscope`
/// experiment and CI gate run.
#[derive(Debug, Clone)]
pub struct LeakscopeOptions {
    /// The planted victim secret (recovered tail-first byte order
    /// `secret[0]`, `secret[1]`, …).
    pub secret: [u8; 8],
    /// Base address of the victim block; fillers follow at one set-stride
    /// each. Must be block-aligned.
    pub base_addr: u64,
    /// Bound on retained timeline records per micro-run.
    pub timeline_capacity: usize,
    /// Extra full guess sweeps (with longer ALU spacers / fresh governor
    /// nonces) after a sweep with zero hits before giving up on a byte.
    pub max_retries: u32,
    /// Independent trace seeds per secret value in the MI measurement.
    pub mi_trials: u32,
    /// Secret alphabet for the MI measurement (keep small: the MI sweep
    /// runs `|A|² × mi_trials` micro-simulations).
    pub mi_alphabet: Vec<u8>,
}

impl Default for LeakscopeOptions {
    fn default() -> Self {
        LeakscopeOptions {
            secret: [0x2A, 0x07, 0x11, 0x5C, 0x3D, 0x66, 0x08, 0x4B],
            base_addr: 0x2000,
            timeline_capacity: 4096,
            max_retries: 3,
            mi_trials: 3,
            // 16 values spread over the byte range (never 0x00: an
            // all-zero tail is degenerate for every compressor).
            mi_alphabet: (0..16u16).map(|i| (i * 0x11 + 7) as u8).collect(),
        }
    }
}

/// One probe run of the guess loop, as seen by the attacker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuessProbe {
    /// Secret byte index this probe targets.
    pub byte_index: u8,
    /// Guessed value embedded in the pads.
    pub guess: u8,
    /// Which retry sweep the probe belongs to.
    pub retry: u32,
    /// Attacker-visible latency of the probe load.
    pub latency: u64,
    /// Probe outcome: `true` = filler survived = guess confirmed.
    pub hit: bool,
    /// Compressed-occupancy delta attributed to the probe access.
    pub occ_delta: i64,
}

/// Everything leakscope learned about one (compressor, governor) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellAttackReport {
    /// Compressor under attack.
    pub algorithm: ehs_compress::Algorithm,
    /// Governor label (`SimConfig::governor.label()`).
    pub governor: &'static str,
    /// Whether an eviction-oracle layout calibrated for byte 0. `false`
    /// means the compressor/geometry is structurally immune — nothing was
    /// recoverable even in principle, and the MI sweep measures the
    /// (absent) channel honestly.
    pub supported: bool,
    /// Calibrated pad-family index for byte 0, if any.
    pub pad_family: Option<u32>,
    /// Filler block contents (compress to the calibrated segment count).
    pub filler: Option<[u32; 8]>,
    /// The planted secret.
    pub secret: [u8; 8],
    /// Bytes actually recovered through the timing channel, in order.
    pub recovered: Vec<u8>,
    /// Attack effort accounting.
    pub stats: AttackStats,
    /// Per-probe guess timeline (ordered).
    pub probes: Vec<GuessProbe>,
    /// Plug-in mutual information of the measured channel, bits.
    pub mi_bits: f64,
    /// Blahut–Arimoto capacity of the measured channel, bits.
    pub capacity_bits: f64,
    /// Raw `(secret index, observable)` samples behind the estimates.
    pub mi_samples: Vec<(u64, u64)>,
    /// Per-secret-value probe latency histograms from the MI sweep.
    pub histograms: Vec<(u8, LatencyHistogram)>,
}

/// Set geometry the eviction oracle needs, derived from the D-cache
/// parameters. `None` when no filler size can pin the set exactly one
/// victim segment away from overflow (the oracle needs
/// `fillers × filler_segs == budget − 2`).
#[derive(Debug, Clone, Copy)]
struct Geometry {
    block: u64,
    stride: u64,
    set: u32,
    filler_segs: u32,
}

fn geometry(cfg: &SimConfig, base_addr: u64) -> Option<Geometry> {
    let d = &cfg.system.dcache;
    let block = d.block_size as u64;
    let sets = d.num_sets() as u64;
    let budget = d.ways * d.block_size / SEGMENT_BYTES; // segments per set
    let slots = d.ways * TAG_FACTOR; // tag entries per set
    if slots < 4 || budget < 5 {
        return None;
    }
    let fillers = 3u32; // victim + 3 fillers = the 4 staged blocks
                        // Hit: 2 + fillers·f ≤ budget; miss: 3 + fillers·f > budget
                        // ⇒ fillers·f = budget − 2 exactly.
    if !(budget - 2).is_multiple_of(fillers) {
        return None;
    }
    let filler_segs = (budget - 2) / fillers;
    let full_segs = d.block_size / SEGMENT_BYTES;
    if filler_segs == 0 || filler_segs >= full_segs {
        return None;
    }
    Some(Geometry {
        block,
        stride: sets * block,
        set: ((base_addr / block) % sets) as u32,
        filler_segs,
    })
}

/// Segment footprint of a block of eight words — the same arithmetic the
/// cache's size memo uses, so calibration is exact, not a model.
fn segs_of(comp: &AnyCompressor, words: &[u32; 8]) -> u32 {
    let mut data = [0u8; 32];
    for (i, w) in words.iter().enumerate() {
        data[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
    }
    comp.compressed_size_bits(&data).div_ceil(8).div_ceil(SEGMENT_BYTES).max(1)
}

/// Pad families: `w0 = G` always, then `g` more copies of `G`, `h` heavy
/// words, zeros for the rest of `w1..w5`. Enumerated lightest-first.
fn families() -> Vec<(u32, u32)> {
    let mut out = Vec::with_capacity(21);
    for g in 0..=5u32 {
        for h in 0..=(5 - g) {
            out.push((g, h));
        }
    }
    out
}

/// The victim block for window `j`: attacker pads from `family` around
/// the secret tail. `byte31` is the value actually occupying the unknown
/// slot (the real secret byte in a live run, a hypothesis during
/// calibration); `guess` is the attacker's guess embedded in the pads.
fn victim_words(j: usize, known: &[u8], byte31: u8, guess: u8, family: (u32, u32)) -> [u32; 8] {
    let off = 31 - j;
    let byte_at = |p: usize| -> u8 {
        if p == 31 {
            byte31
        } else if p >= off {
            known[p - off]
        } else {
            PAD_BYTE
        }
    };
    let tail = |p: usize| if p >= off { byte_at(p) } else { PAD_BYTE };
    let g = u32::from_le_bytes([tail(28), tail(29), tail(30), guess]);
    let (gc, hc) = family;
    let mut w = [0u32; 8];
    w[0] = g;
    let mut idx = 1;
    for _ in 0..gc {
        w[idx] = g;
        idx += 1;
    }
    for &heavy in PAD_HEAVY.iter().take(hc as usize) {
        w[idx] = heavy;
        idx += 1;
    }
    // Remaining w1..w5 slots stay zero.
    w[6] = if off >= 28 {
        g // fully attacker-controlled: another guess copy
    } else {
        u32::from_le_bytes([tail(24), tail(25), tail(26), tail(27)])
    };
    w[7] = u32::from_le_bytes([tail(28), tail(29), tail(30), byte_at(31)]);
    w
}

/// Offline calibration for window `j`: the first pad family whose layout
/// is a *sound* oracle — for every guess `c`, the block compresses to
/// ≤ 2 segments when the unknown byte equals `c` and to ≥ 3 segments for
/// all 255 wrong values. Purely attacker-side computation on the public
/// compressor; no simulation involved.
fn calibrate(comp: &AnyCompressor, j: usize, known: &[u8]) -> Option<(u32, u32)> {
    'family: for fam in families() {
        for c in 0..=255u8 {
            if segs_of(comp, &victim_words(j, known, c, c, fam)) > 2 {
                continue 'family;
            }
            for v in 0..=255u8 {
                if v != c && segs_of(comp, &victim_words(j, known, v, c, fam)) < 3 {
                    continue 'family;
                }
            }
        }
        return Some(fam);
    }
    None
}

/// First filler pattern hitting exactly `target` segments: heavy
/// prefixes over zeros, then small-delta ramps for base-delta coders.
fn find_filler(comp: &AnyCompressor, target: u32) -> Option<[u32; 8]> {
    let mut candidates: Vec<[u32; 8]> = Vec::new();
    for k in 1..=8usize {
        let mut w = [0u32; 8];
        w[..k].copy_from_slice(&FILL_HEAVY[..k]);
        candidates.push(w);
    }
    for (base, step) in [(0x4050_6071u32, 0x13u32), (0x1122_3341, 0x0101), (0x0BAD_5EED, 0x3)] {
        let mut w = [0u32; 8];
        for (i, wi) in w.iter_mut().enumerate() {
            *wi = base.wrapping_add(step.wrapping_mul(i as u32));
        }
        candidates.push(w);
    }
    candidates.into_iter().find(|w| segs_of(comp, w) == target)
}

/// Runs one probe micro-simulation and returns the probe-load record
/// (`None` if the run produced no access in the staged set) plus the
/// number of attacker accesses actually issued.
#[allow(clippy::too_many_arguments)]
fn run_probe(
    cfg: &SimConfig,
    trace: &PowerTrace,
    victim: &[u32; 8],
    filler: &[u32; 8],
    geo: Geometry,
    opts: &LeakscopeOptions,
    spacer: u32,
    nonce: &mut u64,
) -> (Option<TimelineRecord>, u64) {
    *nonce += 1;
    let mut cfg = cfg.clone();
    // The randomized-threshold hardware draws fresh randomness every run;
    // model that with a per-run nonce folded into the seed (deterministic
    // given the attack's own progress).
    if let GovernorSpec::RandThreshold(mut rc) = cfg.governor {
        rc.seed ^= mix(*nonce);
        cfg.governor = GovernorSpec::RandThreshold(rc);
    }
    let (v, f1, f2, f3) = (
        opts.base_addr,
        opts.base_addr + geo.stride,
        opts.base_addr + 2 * geo.stride,
        opts.base_addr + 3 * geo.stride,
    );
    let mut image = MemoryImage::builder(ImageKind::Zeros);
    for (addr, words) in [(v, victim), (f1, filler), (f2, filler), (f3, filler)] {
        image = image
            .region(addr, ImageKind::Literal { words: *words })
            .region(addr + geo.block, ImageKind::Zeros);
    }
    // Spacer ALUs shift the load sequence relative to the power trace so
    // a retry lands the probe window in a different part of the cycle.
    let mut body = vec![Op::Alu; 1 + spacer as usize * 24];
    for addr in [v, f1, f2, v, f3, f1] {
        body.push(Op::Load(AddrGen::Fixed { addr }));
    }
    let program = KernelProgram::new(KernelSpec {
        name: "leakscope-probe",
        phases: vec![Phase { body, iterations: 1, code_base: 0x0010_0000, code_paths: 1 }],
        repeats: 1,
        image: image.build(),
    });
    let (_stats, timeline) =
        run_program_with_leak_timeline(&program, trace, &cfg, opts.timeline_capacity);
    let accesses = timeline.records().len() as u64 + timeline.dropped();
    (timeline.last_in_set(geo.set), accesses)
}

/// Attacks one (compressor, governor) cell end to end: calibrates the
/// eviction oracle, recovers as much of the planted secret as the
/// channel allows, then measures the channel's mutual information and
/// capacity over a secret alphabet. Fully deterministic for a given
/// `cfg` and `opts`.
pub fn attack_cell(cfg: &SimConfig, opts: &LeakscopeOptions) -> CellAttackReport {
    let comp = cfg.algorithm.compressor();
    let mut report = CellAttackReport {
        algorithm: cfg.algorithm,
        governor: cfg.governor.label(),
        supported: false,
        pad_family: None,
        filler: None,
        secret: opts.secret,
        recovered: Vec::new(),
        stats: AttackStats { secret_bytes: 8, ..Default::default() },
        probes: Vec::new(),
        mi_bits: 0.0,
        capacity_bits: 0.0,
        mi_samples: Vec::new(),
        histograms: Vec::new(),
    };
    let Some(geo) = geometry(cfg, opts.base_addr) else {
        return report;
    };
    let Some(filler) = find_filler(&comp, geo.filler_segs) else {
        return report;
    };
    report.filler = Some(filler);

    let fam0 = calibrate(&comp, 0, &[]);
    report.supported = fam0.is_some();
    report.pad_family = fam0.map(|(g, h)| g * 6 + h);

    let mut nonce = 0u64;
    let trace = default_trace(cfg);

    // Phase 1: byte-at-a-time recovery.
    if report.supported {
        'bytes: for j in 0..8usize {
            let known = report.recovered.clone();
            let Some(fam) = (if j == 0 { fam0 } else { calibrate(&comp, j, &known) }) else {
                break 'bytes; // window no longer calibrates (e.g. BDI past w6)
            };
            let mut found = None;
            'sweep: for retry in 0..=opts.max_retries {
                for c in 0..=255u8 {
                    let words = victim_words(j, &known, opts.secret[j], c, fam);
                    let (rec, accesses) =
                        run_probe(cfg, &trace, &words, &filler, geo, opts, retry, &mut nonce);
                    report.stats.guesses += 1;
                    report.stats.probe_accesses += accesses;
                    let (latency, hit, occ_delta) =
                        rec.map_or((0, false, 0), |r| (r.latency, r.hit, r.occ_delta));
                    report.probes.push(GuessProbe {
                        byte_index: j as u8,
                        guess: c,
                        retry,
                        latency,
                        hit,
                        occ_delta,
                    });
                    if hit {
                        found = Some(c);
                        break 'sweep;
                    }
                }
                if retry < opts.max_retries {
                    report.stats.retries += 1;
                }
            }
            match found {
                Some(c) => report.recovered.push(c),
                None => break 'bytes,
            }
        }
    }
    report.stats.recovered_bytes = report.recovered.len() as u32;
    report.stats.bytes_probed = report.stats.probe_accesses * geo.block;

    // Phase 2: channel measurement over the secret alphabet. Uses the
    // byte-0 window (fully attacker-controlled pads); falls back to the
    // lightest family when nothing calibrates, which honestly measures
    // the absent channel as ~0 bits.
    let fam = fam0.unwrap_or((0, 0));
    let alphabet = &opts.mi_alphabet;
    let none_obs = alphabet.len() as u64;
    let mut hists: BTreeMap<u8, LatencyHistogram> = BTreeMap::new();
    for (si, &s) in alphabet.iter().enumerate() {
        for trial in 0..opts.mi_trials {
            let mut tcfg = cfg.clone();
            tcfg.trace_seed = cfg.trace_seed ^ mix(0xD1B5_4A32 ^ u64::from(trial));
            let ttrace = default_trace(&tcfg);
            let mut obs = none_obs;
            for (ci, &c) in alphabet.iter().enumerate() {
                let words = victim_words(0, &[], s, c, fam);
                let (rec, _) = run_probe(&tcfg, &ttrace, &words, &filler, geo, opts, 0, &mut nonce);
                if let Some(r) = rec {
                    hists.entry(s).or_default().record(r.latency);
                    if r.hit {
                        obs = ci as u64;
                        break;
                    }
                }
            }
            report.mi_samples.push((si as u64, obs));
        }
    }
    report.mi_bits = mutual_information_bits(&report.mi_samples);
    report.capacity_bits = channel_capacity_bits(&report.mi_samples);
    report.histograms = hists.into_iter().collect();
    report
}

/// Convenience: Arc-free clone of the default trace for callers that
/// need the same trace the attack used (tests, differential suites).
pub fn attack_trace(cfg: &SimConfig) -> Arc<PowerTrace> {
    default_trace(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use ehs_compress::Algorithm;

    fn cfg_for(alg: Algorithm, governor: GovernorSpec) -> SimConfig {
        let mut cfg = SimConfig::table1();
        cfg.algorithm = alg;
        cfg.governor = governor;
        cfg
    }

    #[test]
    fn calibration_finds_sound_cpack_layout() {
        let comp = Algorithm::CPack.compressor();
        let fam = calibrate(&comp, 0, &[]).expect("C-PACK layout must calibrate");
        // Spot-check soundness at a few guesses.
        for c in [0u8, 0x2A, 0xFF] {
            assert!(segs_of(&comp, &victim_words(0, &[], c, c, fam)) <= 2);
            for v in [1u8, 0x2B, 0x80] {
                if v != c {
                    assert!(segs_of(&comp, &victim_words(0, &[], v, c, fam)) >= 3);
                }
            }
        }
    }

    #[test]
    fn per_word_codes_are_structurally_immune() {
        for alg in [Algorithm::Fpc, Algorithm::Dzc] {
            let comp = alg.compressor();
            assert!(
                calibrate(&comp, 0, &[]).is_none(),
                "{alg:?} final-word cost is pad-independent; no layout should calibrate"
            );
        }
    }

    #[test]
    fn fillers_calibrate_for_attackable_compressors() {
        for alg in [Algorithm::CPack, Algorithm::Fvc, Algorithm::Bdi] {
            let comp = alg.compressor();
            assert_eq!(find_filler(&comp, 2).map(|w| segs_of(&comp, &w)), Some(2), "{alg:?}");
        }
    }

    #[test]
    fn cpack_attack_recovers_the_planted_secret() {
        let cfg = cfg_for(Algorithm::CPack, GovernorSpec::AlwaysCompress);
        let opts = LeakscopeOptions::default();
        let report = attack_cell(&cfg, &opts);
        assert!(report.supported);
        assert_eq!(report.recovered, opts.secret.to_vec(), "full 8-byte recovery");
        assert!(report.stats.recovered());
        assert!(report.stats.guesses > 0 && report.stats.bytes_probed > 0);
        // A perfect deterministic channel over a 16-value alphabet.
        assert!(report.mi_bits > 3.9, "mi = {}", report.mi_bits);
    }

    #[test]
    fn randomized_threshold_reduces_mi_on_the_same_cell() {
        let baseline = attack_cell(
            &cfg_for(Algorithm::CPack, GovernorSpec::AlwaysCompress),
            &LeakscopeOptions::default(),
        );
        let hardened = attack_cell(
            &cfg_for(Algorithm::CPack, GovernorSpec::RandThreshold(Default::default())),
            &LeakscopeOptions::default(),
        );
        assert!(
            hardened.mi_bits < baseline.mi_bits,
            "countermeasure must strictly reduce MI: {} vs {}",
            hardened.mi_bits,
            baseline.mi_bits
        );
    }

    #[test]
    fn attack_is_deterministic() {
        let cfg = cfg_for(Algorithm::Fvc, GovernorSpec::AlwaysCompress);
        let opts = LeakscopeOptions::default();
        let a = attack_cell(&cfg, &opts);
        let b = attack_cell(&cfg, &opts);
        assert_eq!(a.recovered, b.recovered);
        assert_eq!(a.probes, b.probes);
        assert_eq!(a.mi_samples, b.mi_samples);
        assert_eq!(a.mi_bits.to_bits(), b.mi_bits.to_bits());
    }
}
