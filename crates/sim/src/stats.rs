//! Simulation statistics: per-power-cycle records, cache/NVM counters, the
//! energy breakdown, and the derived metrics the paper's figures report.

use ehs_cache::CacheStats;
use ehs_energy::EnergyBreakdown;
use ehs_mem::NvmStats;
use ehs_model::{Cycles, Energy, SimTime};
use serde::{Deserialize, Serialize};

/// Kagura's register snapshot `(R_prev, R_mem, R_adjust, R_thres, R_evict)`.
pub type KaguraRegisters = (u64, u64, i64, u64, u64);

/// What happened during one power cycle (reboot → power failure).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CycleRecord {
    /// Committed instructions.
    pub insts: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Core cycles spent executing.
    pub cycles: u64,
}

impl CycleRecord {
    /// Cycles per instruction (0 for an empty cycle).
    pub fn cpi(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.cycles as f64 / self.insts as f64
        }
    }
}

/// Fig 12's neighbouring-power-cycle consistency metrics for one metric
/// stream: mean relative difference between consecutive cycles, and the
/// fraction of neighbour pairs differing by less than 20 %.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConsistencyReport {
    /// Mean |x_{i+1} − x_i| / max(x_i, 1) over neighbouring cycles.
    pub mean_diff: f64,
    /// Fraction of neighbouring pairs with relative difference < 20 %.
    pub frac_below_20: f64,
}

fn consistency(values: impl Iterator<Item = f64> + Clone) -> ConsistencyReport {
    let v: Vec<f64> = values.collect();
    if v.len() < 2 {
        return ConsistencyReport { mean_diff: 0.0, frac_below_20: 1.0 };
    }
    let mut sum = 0.0;
    let mut below = 0usize;
    for w in v.windows(2) {
        let denom = w[0].abs().max(1.0);
        let d = (w[1] - w[0]).abs() / denom;
        sum += d;
        if d < 0.20 {
            below += 1;
        }
    }
    let n = (v.len() - 1) as f64;
    ConsistencyReport { mean_diff: sum / n, frac_below_20: below as f64 / n }
}

/// Full results of one simulation run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SimStats {
    /// The program ran to completion (vs hitting the simulated-time guard).
    pub completed: bool,
    /// Total committed instructions (excluding re-executed work).
    pub committed_insts: u64,
    /// Instructions executed including SweepCache re-execution.
    pub executed_insts: u64,
    /// Total core cycles while powered.
    pub total_cycles: u64,
    /// Simulated wall-clock time at the end of the run (the paper's
    /// performance metric: lower = faster under the same energy trace).
    pub sim_time: SimTime,
    /// One record per completed power cycle. Empty when the run was
    /// configured with `record_cycles: false` (population-scale
    /// campaigns); use [`SimStats::power_cycle_count`] for the count.
    pub power_cycles: Vec<CycleRecord>,
    /// Number of completed power cycles, maintained whether or not the
    /// per-cycle records above were kept.
    #[serde(default)]
    pub power_cycle_count: u64,
    /// Number of JIT checkpoints (= power failures seen while running).
    pub checkpoints: u64,
    /// ICache counters.
    pub icache: CacheStats,
    /// DCache counters.
    pub dcache: CacheStats,
    /// NVM traffic (demand + checkpoint).
    pub nvm: NvmStats,
    /// Energy per Fig 16 category.
    pub breakdown: EnergyBreakdown,
    /// Total harvested energy actually absorbed by the capacitor.
    pub harvested: Energy,
    /// Capacitor self-leakage (also included in the `Other` breakdown
    /// bucket); Table III reports this as a share of the total.
    pub cap_leak: Energy,
    /// Compressions averted by Kagura's RM mode: fills that would have
    /// compressed under CM but bypassed instead.
    pub rm_bypassed_fills: u64,
    /// Checkpoint blocks whose compressed payload failed to decode and
    /// were dropped — *detected* consistency violations. Always zero in
    /// real runs; nonzero only under an injected
    /// [`crate::machine::FaultKind::CorruptPayload`] fault.
    #[serde(default)]
    pub decode_faults: u64,
    /// Power cycles whose energy-ledger row failed its conservation
    /// audit (`harvested ≠ Σ consumed + Δstored` beyond tolerance).
    /// Always zero on healthy traces; see `ehs_energy::ledger`.
    #[serde(default)]
    pub ledger_violations: u64,
    /// Why the cooperative watchdog cancelled the run, when it did
    /// ([`StepBudget`](crate::config::StepBudget)); `None` for runs that
    /// ended naturally. A cancelled run always has `completed == false`.
    #[serde(default)]
    pub budget_exhausted: Option<String>,
    /// Final Kagura registers and RM-entry count, when the governor was
    /// Kagura.
    pub kagura_state: Option<(KaguraRegisters, u64)>,
}

impl SimStats {
    /// Mean committed instructions per power cycle.
    pub fn avg_insts_per_cycle(&self) -> f64 {
        if self.power_cycles.is_empty() {
            self.committed_insts as f64
        } else {
            self.power_cycles.iter().map(|c| c.insts).sum::<u64>() as f64
                / self.power_cycles.len() as f64
        }
    }

    /// Overall cycles-per-instruction.
    pub fn cpi(&self) -> f64 {
        if self.executed_insts == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.executed_insts as f64
        }
    }

    /// Total energy consumed, all categories.
    pub fn total_energy(&self) -> Energy {
        self.breakdown.total()
    }

    /// Total compression + decompression operation count across caches.
    pub fn compression_ops(&self) -> u64 {
        self.icache.compressions + self.dcache.compressions
    }

    /// Fig 12: consistency of committed loads across neighbouring cycles.
    pub fn load_consistency(&self) -> ConsistencyReport {
        consistency(self.power_cycles.iter().map(|c| c.loads as f64))
    }

    /// Fig 12: consistency of committed stores across neighbouring cycles.
    pub fn store_consistency(&self) -> ConsistencyReport {
        consistency(self.power_cycles.iter().map(|c| c.stores as f64))
    }

    /// Fig 12: consistency of CPI across neighbouring cycles.
    pub fn cpi_consistency(&self) -> ConsistencyReport {
        consistency(self.power_cycles.iter().map(|c| c.cpi()))
    }

    /// Fig 14: histogram of power-cycle lengths (committed instructions),
    /// as `(bin_upper_bound, fraction)` rows over `bins` equal-width bins.
    pub fn cycle_length_histogram(&self, bins: usize) -> Vec<(u64, f64)> {
        assert!(bins > 0, "need at least one bin");
        if self.power_cycles.is_empty() {
            return vec![(0, 0.0); bins];
        }
        let max = self.power_cycles.iter().map(|c| c.insts).max().unwrap_or(0).max(1);
        let width = max.div_ceil(bins as u64).max(1);
        let mut counts = vec![0u64; bins];
        for c in &self.power_cycles {
            let b = ((c.insts / width) as usize).min(bins - 1);
            counts[b] += 1;
        }
        let n = self.power_cycles.len() as f64;
        counts
            .into_iter()
            .enumerate()
            .map(|(i, c)| ((i as u64 + 1) * width, c as f64 / n))
            .collect()
    }

    /// Speedup of this run over a baseline run of the same program
    /// (ratio of simulated completion times).
    ///
    /// # Panics
    ///
    /// Panics if either run failed to complete.
    pub fn speedup_over(&self, baseline: &SimStats) -> f64 {
        assert!(
            self.completed && baseline.completed,
            "speedup requires completed runs (self: {}, baseline: {})",
            self.completed,
            baseline.completed
        );
        baseline.sim_time.seconds() / self.sim_time.seconds()
    }

    /// Non-panicking [`SimStats::speedup_over`]: `None` when either run
    /// failed to complete (or this run's time is degenerate), so a
    /// truncated simulation degrades one report row instead of aborting a
    /// whole experiment batch.
    pub fn try_speedup_over(&self, baseline: &SimStats) -> Option<f64> {
        (self.completed && baseline.completed && self.sim_time.seconds() > 0.0)
            .then(|| baseline.sim_time.seconds() / self.sim_time.seconds())
    }

    /// Latency overhead helper: total stall cycles beyond 1 CPI.
    pub fn stall_cycles(&self) -> u64 {
        self.total_cycles.saturating_sub(self.executed_insts)
    }

    /// Convenience alias used by the benches: average power-cycle length.
    pub fn mean_cycle_cycles(&self) -> Cycles {
        if self.power_cycles.is_empty() {
            Cycles::ZERO
        } else {
            Cycles::new(
                self.power_cycles.iter().map(|c| c.cycles).sum::<u64>()
                    / self.power_cycles.len() as u64,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cyc(insts: u64, loads: u64, stores: u64, cycles: u64) -> CycleRecord {
        CycleRecord { insts, loads, stores, cycles }
    }

    #[test]
    fn cycle_record_cpi() {
        assert_eq!(cyc(100, 10, 5, 150).cpi(), 1.5);
        assert_eq!(CycleRecord::default().cpi(), 0.0);
    }

    #[test]
    fn consistency_of_identical_cycles_is_perfect() {
        let stats =
            SimStats { power_cycles: vec![cyc(100, 40, 20, 120); 5], ..SimStats::default() };
        let r = stats.load_consistency();
        assert_eq!(r.mean_diff, 0.0);
        assert_eq!(r.frac_below_20, 1.0);
    }

    #[test]
    fn consistency_flags_erratic_cycles() {
        let stats = SimStats {
            power_cycles: vec![cyc(100, 40, 0, 100), cyc(100, 400, 0, 100), cyc(100, 40, 0, 100)],
            ..SimStats::default()
        };
        let r = stats.load_consistency();
        assert!(r.mean_diff > 1.0);
        assert_eq!(r.frac_below_20, 0.0);
    }

    #[test]
    fn histogram_partitions_cycles() {
        let stats = SimStats {
            power_cycles: vec![
                cyc(10, 0, 0, 0),
                cyc(20, 0, 0, 0),
                cyc(95, 0, 0, 0),
                cyc(100, 0, 0, 0),
            ],
            ..SimStats::default()
        };
        let h = stats.cycle_length_histogram(4);
        assert_eq!(h.len(), 4);
        let total: f64 = h.iter().map(|&(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Two short cycles land in the first bin, two long in the last.
        assert_eq!(h[0].1, 0.5);
        assert_eq!(h[3].1, 0.5);
    }

    #[test]
    fn speedup_is_ratio_of_times() {
        let fast = SimStats {
            completed: true,
            sim_time: SimTime::from_seconds(1.0),
            ..SimStats::default()
        };
        let slow = SimStats {
            completed: true,
            sim_time: SimTime::from_seconds(1.2),
            ..SimStats::default()
        };
        assert!((fast.speedup_over(&slow) - 1.2).abs() < 1e-12);
        assert!((slow.speedup_over(&fast) - 1.0 / 1.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "completed")]
    fn speedup_requires_completion() {
        let a = SimStats { completed: false, ..SimStats::default() };
        let b = SimStats { completed: true, ..SimStats::default() };
        let _ = a.speedup_over(&b);
    }

    #[test]
    fn try_speedup_degrades_incomplete_runs_to_none() {
        let done = SimStats {
            completed: true,
            sim_time: SimTime::from_seconds(1.0),
            ..SimStats::default()
        };
        let slower = SimStats {
            completed: true,
            sim_time: SimTime::from_seconds(1.2),
            ..SimStats::default()
        };
        let truncated = SimStats { completed: false, ..SimStats::default() };
        assert!((done.try_speedup_over(&slower).unwrap() - 1.2).abs() < 1e-12);
        assert_eq!(truncated.try_speedup_over(&slower), None);
        assert_eq!(done.try_speedup_over(&truncated), None);
    }

    #[test]
    fn avg_insts_per_cycle() {
        let stats = SimStats {
            power_cycles: vec![cyc(100, 0, 0, 0), cyc(300, 0, 0, 0)],
            ..SimStats::default()
        };
        assert_eq!(stats.avg_insts_per_cycle(), 200.0);
    }
}
