//! Fleet-scale campaign sampling: deterministic populations of
//! heterogeneous EHS deployment cells.
//!
//! The paper evaluates Kagura on ~20 apps × 3 ambient traces; a real
//! deployment is a *fleet* of thousands-to-millions of nodes differing
//! in workload, EHS runtime design, capacitor size, NVM technology and
//! harvesting environment. This module turns a compact [`FleetSpec`]
//! into that population lazily: [`FleetSpec::cell`] is a pure function
//! of `(spec, index)`, so any shard of the population can be
//! regenerated independently — no materialized cell list, O(1) memory
//! regardless of population size, and resume-after-crash sees exactly
//! the cells the first run saw.
//!
//! # Sampling design
//!
//! * **Stratified dimension** — `(EhsDesign × TraceKind)` = 9 strata
//!   assigned round-robin by cell index, so every stratum receives an
//!   exactly balanced share and per-stratum confidence intervals have
//!   predictable sample counts.
//! * **Latin-hypercube dimensions** — app, NVM technology and
//!   capacitor size each use a seeded bijective permutation of
//!   `[0, N)` (a small Feistel network with cycle-walking) plus a
//!   deterministic intra-bin jitter: each dimension is sampled once
//!   per 1/N-wide bin with no two cells sharing a bin, the classic
//!   LHS guarantee, yet computing cell `i` never touches cell `j`.

use crate::config::{EhsDesign, GovernorSpec, SimConfig, StepBudget};
use crate::parallel::SimJob;
use ehs_energy::{CapacitorConfig, TraceKind};
use ehs_model::{NvmKind, NvmParams};
use ehs_workloads::App;

/// splitmix64 finalizer (the same mixer the telemetry reservoir uses).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded bijective permutation of `[0, n)`: a 4-round balanced
/// Feistel network over the smallest even-width power-of-two domain
/// covering `n`, with cycle-walking to stay inside `[0, n)`.
///
/// Because the Feistel rounds biject the power-of-two domain and
/// cycle-walking follows the permutation until it re-enters `[0, n)`,
/// the composition bijects `[0, n)` — the property Latin-hypercube
/// sampling needs (every bin hit exactly once) without ever
/// materializing the permutation.
#[derive(Debug, Clone, Copy)]
pub struct Permutation {
    n: u64,
    half_bits: u32,
    keys: [u64; 4],
}

impl Permutation {
    /// The identity-domain permutation of `[0, n)` seeded by `seed`.
    /// `n` must be non-zero.
    pub fn new(n: u64, seed: u64) -> Self {
        assert!(n > 0, "permutation domain must be non-empty");
        // Smallest h with 2^(2h) >= n, so the walk domain is < 4n and
        // cycle-walking terminates quickly.
        let mut half_bits = 1;
        while 1u128 << (2 * half_bits) < n as u128 {
            half_bits += 1;
        }
        let keys = [
            splitmix64(seed ^ 0x5EED_0001),
            splitmix64(seed ^ 0x5EED_0002),
            splitmix64(seed ^ 0x5EED_0003),
            splitmix64(seed ^ 0x5EED_0004),
        ];
        Permutation { n, half_bits, keys }
    }

    fn feistel(&self, x: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        let (mut l, mut r) = (x >> self.half_bits, x & mask);
        for &k in &self.keys {
            let f = splitmix64(r ^ k) & mask;
            let (nl, nr) = (r, l ^ f);
            l = nl;
            r = nr;
        }
        (l << self.half_bits) | r
    }

    /// The image of `i` (`i < n`).
    pub fn apply(&self, i: u64) -> u64 {
        debug_assert!(i < self.n);
        let mut x = self.feistel(i);
        while x >= self.n {
            x = self.feistel(x);
        }
        x
    }
}

/// A campaign description: everything needed to regenerate every cell.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// Number of cells in the population.
    pub population: u64,
    /// Campaign seed; drives the LHS permutations, jitters and trace
    /// seeds.
    pub seed: u64,
    /// Workload scale factor handed to every job.
    pub scale: f64,
    /// Per-job instruction/wall budget.
    pub budget: StepBudget,
    /// Run every cell with strict energy-ledger auditing.
    pub audit_strict: bool,
}

/// Capacitor sizes sampled log-uniformly over this range (µF): the
/// paper's 4.7 µF default sits inside; 1000 µF matches its largest
/// Table III sweep point.
pub const CAPACITOR_RANGE_UF: (f64, f64) = (1.0, 1000.0);

/// One sampled deployment cell.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetCell {
    /// Population index (unique key for reservoir sampling).
    pub index: u64,
    /// Workload.
    pub app: App,
    /// EHS runtime design (stratified).
    pub design: EhsDesign,
    /// Ambient power trace class (stratified).
    pub trace_kind: TraceKind,
    /// NVM latency/energy class (LHS).
    pub nvm_kind: NvmKind,
    /// Capacitor size in µF (LHS, log-uniform).
    pub capacitor_uf: f64,
    /// Per-cell power-trace seed.
    pub trace_seed: u64,
}

impl FleetCell {
    /// Stratum label: the `(design, trace)` pair this cell was
    /// allocated to. Report aggregation groups by this.
    pub fn stratum(&self) -> String {
        format!("{}/{}", self.design.name(), self.trace_kind.name())
    }
}

impl FleetSpec {
    /// Number of `(design, trace)` strata.
    pub const STRATA: u64 = (EhsDesign::ALL.len() * TraceKind::ALL.len()) as u64;

    /// All stratum labels in allocation order.
    pub fn stratum_labels() -> Vec<String> {
        let mut out = Vec::new();
        for design in EhsDesign::ALL {
            for kind in TraceKind::ALL {
                out.push(format!("{}/{}", design.name(), kind.name()));
            }
        }
        out
    }

    /// Uniform LHS coordinate of cell `i` in dimension `dim`: the
    /// cell's permuted bin plus a deterministic intra-bin jitter,
    /// scaled to `[0, 1)`.
    fn lhs_coord(&self, dim: u64, i: u64) -> f64 {
        let perm = Permutation::new(self.population, splitmix64(self.seed ^ (dim << 32)));
        let bin = perm.apply(i);
        let jitter =
            splitmix64(self.seed ^ (dim << 32) ^ splitmix64(i)) as f64 / (u64::MAX as f64 + 1.0);
        (bin as f64 + jitter) / self.population as f64
    }

    /// The `i`-th cell of the population (`i < population`). Pure in
    /// `(self, i)`: shards and resumed runs regenerate identical cells.
    pub fn cell(&self, i: u64) -> FleetCell {
        assert!(i < self.population, "cell index {i} out of population {}", self.population);
        // Stratified round-robin over (design, trace).
        let stratum = i % Self::STRATA;
        let design = EhsDesign::ALL[(stratum / TraceKind::ALL.len() as u64) as usize];
        let trace_kind = TraceKind::ALL[(stratum % TraceKind::ALL.len() as u64) as usize];
        // LHS over the remaining dimensions.
        let apps = App::ALL;
        let app = apps[((self.lhs_coord(1, i) * apps.len() as f64) as usize).min(apps.len() - 1)];
        let nvm_kind = NvmKind::ALL[((self.lhs_coord(2, i) * NvmKind::ALL.len() as f64) as usize)
            .min(NvmKind::ALL.len() - 1)];
        let (lo, hi) = CAPACITOR_RANGE_UF;
        let capacitor_uf = (lo.ln() + self.lhs_coord(3, i) * (hi.ln() - lo.ln())).exp();
        FleetCell {
            index: i,
            app,
            design,
            trace_kind,
            nvm_kind,
            capacitor_uf,
            trace_seed: splitmix64(self.seed ^ 0xF1EE_7000 ^ i),
        }
    }

    /// The simulator configuration for `cell` under `governor`.
    pub fn config(&self, cell: &FleetCell, governor: GovernorSpec) -> SimConfig {
        let mut cfg = SimConfig::table1()
            .with_design(cell.design)
            .with_governor(governor)
            .with_step_budget(self.budget)
            .with_audit_strict(self.audit_strict);
        cfg.trace_kind = cell.trace_kind;
        cfg.trace_seed = cell.trace_seed;
        cfg.capacitor = CapacitorConfig::with_capacitance_uf(cell.capacitor_uf);
        cfg.system.nvm = NvmParams::new(cell.nvm_kind, cfg.system.nvm.size_bytes);
        // A tiny-capacitor cell can see millions of power cycles; the
        // per-cycle records are the one per-run allocation that scales
        // with cycle count, and no fleet metric reads them. Dropping
        // them keeps campaign RSS flat at any population size.
        cfg.record_cycles = false;
        cfg
    }

    /// The paired jobs for one cell: the uncompressed baseline and the
    /// Kagura-governed run, in that order. The population metric for
    /// the cell (speedup etc.) is defined over this pair.
    pub fn cell_jobs(&self, cell: &FleetCell) -> [SimJob; 2] {
        [
            SimJob::new(cell.app, self.scale, self.config(cell, GovernorSpec::NoCompression)),
            SimJob::new(
                cell.app,
                self.scale,
                self.config(cell, GovernorSpec::AccKagura(Default::default())),
            ),
        ]
    }

    /// Cell-index ranges `[start, end)` for sharded execution:
    /// contiguous chunks of at most `shard_size` cells.
    pub fn shards(&self, shard_size: u64) -> Vec<(u64, u64)> {
        assert!(shard_size > 0, "shard size must be non-zero");
        let mut out = Vec::new();
        let mut start = 0;
        while start < self.population {
            let end = (start + shard_size).min(self.population);
            out.push((start, end));
            start = end;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(population: u64) -> FleetSpec {
        FleetSpec {
            population,
            seed: 0xF1EE7,
            scale: 0.01,
            budget: StepBudget::UNLIMITED,
            audit_strict: false,
        }
    }

    #[test]
    fn permutation_bijects_arbitrary_domains() {
        for n in [1u64, 2, 9, 100, 1000, 1023] {
            let p = Permutation::new(n, 42);
            let mut seen = vec![false; n as usize];
            for i in 0..n {
                let x = p.apply(i);
                assert!(x < n, "image {x} escaped domain {n}");
                assert!(!seen[x as usize], "collision at {x} for n={n}");
                seen[x as usize] = true;
            }
        }
    }

    #[test]
    fn cells_are_pure_functions_of_spec_and_index() {
        let s = spec(500);
        for i in [0u64, 17, 499] {
            assert_eq!(s.cell(i), s.cell(i));
        }
        // A different seed reshuffles the LHS dimensions.
        let mut other = s.clone();
        other.seed ^= 1;
        assert_ne!(
            (0..500).map(|i| s.cell(i).app).collect::<Vec<_>>(),
            (0..500).map(|i| other.cell(i).app).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn strata_are_exactly_balanced() {
        let s = spec(9 * 40);
        let mut counts = std::collections::BTreeMap::new();
        for i in 0..s.population {
            *counts.entry(s.cell(i).stratum()).or_insert(0u64) += 1;
        }
        assert_eq!(counts.len(), FleetSpec::STRATA as usize);
        assert!(counts.values().all(|&c| c == 40), "{counts:?}");
    }

    #[test]
    fn lhs_dimensions_cover_bins_evenly() {
        // With population a multiple of the bin count, LHS guarantees
        // each app and NVM kind is hit the same number of times.
        let s = spec(App::ALL.len() as u64 * NvmKind::ALL.len() as u64 * 10);
        let mut apps = std::collections::BTreeMap::new();
        let mut nvms = std::collections::BTreeMap::new();
        for i in 0..s.population {
            let c = s.cell(i);
            *apps.entry(c.app.name()).or_insert(0u64) += 1;
            *nvms.entry(c.nvm_kind.name()).or_insert(0u64) += 1;
            assert!(
                c.capacitor_uf >= CAPACITOR_RANGE_UF.0 && c.capacitor_uf <= CAPACITOR_RANGE_UF.1
            );
        }
        assert!(apps.values().all(|&c| c == s.population / App::ALL.len() as u64), "{apps:?}");
        assert!(nvms.values().all(|&c| c == s.population / NvmKind::ALL.len() as u64), "{nvms:?}");
    }

    #[test]
    fn shards_tile_the_population() {
        let s = spec(103);
        let shards = s.shards(25);
        assert_eq!(shards.len(), 5);
        assert_eq!(shards.first(), Some(&(0, 25)));
        assert_eq!(shards.last(), Some(&(100, 103)));
        assert_eq!(shards.iter().map(|(a, b)| b - a).sum::<u64>(), 103);
    }

    #[test]
    fn cell_jobs_pair_baseline_with_kagura() {
        let s = spec(10);
        let cell = s.cell(3);
        let [base, kagura] = s.cell_jobs(&cell);
        assert_eq!(base.cfg.governor, GovernorSpec::NoCompression);
        assert!(matches!(kagura.cfg.governor, GovernorSpec::AccKagura(_)));
        assert_eq!(base.cfg.trace_seed, kagura.cfg.trace_seed);
    }
}
