//! Exact, order-insensitive summation of `f64` streams.
//!
//! Floating-point addition is not associative, so an aggregate carrying
//! a plain `f64` running sum produces *different bits* depending on how
//! a stream was sharded — fatal for the fleet engine's contract that
//! reports are byte-identical at any shard count and that a merge of N
//! shard aggregates equals single-stream aggregation. [`FixedSum`]
//! restores associativity by accumulating in integer fixed point:
//! every observation is converted once (deterministically) to units of
//! 2⁻⁶⁴, and from then on only i128 additions happen, which commute and
//! associate exactly.

/// An exact fixed-point accumulator: the running sum in units of 2⁻⁶⁴.
///
/// Conversion truncates each observation toward zero at 2⁻⁶⁴ absolute
/// resolution; magnitudes at or above 2⁶³ saturate, as does the
/// accumulator itself (via saturating adds), and NaN contributes zero.
/// All of these edges are deterministic per observation, so the folded
/// total is a pure function of the multiset of observations — never of
/// their order or grouping. Campaign metrics (speedups, fractions,
/// counts) sit far inside both resolution edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FixedSum(i128);

/// One `f64` in 2⁻⁶⁴ units, truncated toward zero, saturating at ±2¹²⁷.
fn to_fixed(v: f64) -> i128 {
    let bits = v.to_bits();
    let negative = bits >> 63 == 1;
    let exp = ((bits >> 52) & 0x7FF) as i64;
    let frac = (bits & ((1u64 << 52) - 1)) as i128;
    let magnitude = if exp == 0x7FF {
        // Infinity saturates; NaN contributes nothing.
        if frac == 0 {
            i128::MAX
        } else {
            0
        }
    } else {
        let (m, e) = if exp == 0 { (frac, -1074i64) } else { (frac | (1 << 52), exp - 1075) };
        // Shift the 53-bit mantissa into 2⁻⁶⁴ units.
        match e + 64 {
            s if s >= 75 => i128::MAX, // ≥ 2⁶³: saturate
            s if s >= 0 => m << s,
            s if s > -53 => m >> -s, // truncate sub-resolution bits
            _ => 0,
        }
    };
    if negative {
        magnitude.checked_neg().unwrap_or(i128::MIN)
    } else {
        magnitude
    }
}

impl FixedSum {
    /// The zero accumulator.
    pub fn zero() -> Self {
        FixedSum(0)
    }

    /// Adds one observation.
    pub fn add(&mut self, v: f64) {
        self.0 = self.0.saturating_add(to_fixed(v));
    }

    /// Adds `n` observations of the same value in O(1).
    pub fn add_n(&mut self, v: f64, n: u64) {
        let unit = to_fixed(v);
        let scaled =
            unit.checked_mul(n as i128).unwrap_or(if unit < 0 { i128::MIN } else { i128::MAX });
        self.0 = self.0.saturating_add(scaled);
    }

    /// Folds another accumulator in. Integer addition, hence exactly
    /// associative and commutative.
    pub fn merge(&mut self, other: &FixedSum) {
        self.0 = self.0.saturating_add(other.0);
    }

    /// The sum as an `f64` (correctly rounded from the exact total).
    pub fn value(&self) -> f64 {
        // i128→f64 rounds correctly; the 2⁻⁶⁴ rescale is a power of
        // two, exact for every non-subnormal result.
        (self.0 as f64) / 18_446_744_073_709_551_616.0
    }

    /// Decimal string of the raw fixed-point total, for lossless
    /// journaling (JSON numbers cannot carry 128 bits).
    pub fn to_decimal(&self) -> String {
        self.0.to_string()
    }

    /// Parses [`FixedSum::to_decimal`] output.
    ///
    /// # Errors
    ///
    /// Returns `Err` when `s` is not a decimal i128.
    pub fn from_decimal(s: &str) -> Result<Self, String> {
        s.parse::<i128>().map(FixedSum).map_err(|e| format!("bad fixed-point sum `{s}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_and_dyadics_accumulate_exactly() {
        let mut s = FixedSum::zero();
        for v in [5.0, 7.0, 50.0, 5000.0, 0.25, -12.75] {
            s.add(v);
        }
        assert_eq!(s.value(), 5049.5);
    }

    #[test]
    fn sharded_folds_match_any_grouping_bit_for_bit() {
        let values: Vec<f64> = (0..1000).map(|k| (k as f64).sin() * 1e6).collect();
        let mut whole = FixedSum::zero();
        for &v in &values {
            whole.add(v);
        }
        // Three shards, interleaved assignment, merged in reverse order.
        let mut shards = [FixedSum::zero(), FixedSum::zero(), FixedSum::zero()];
        for (k, &v) in values.iter().enumerate() {
            shards[k % 3].add(v);
        }
        let mut folded = FixedSum::zero();
        for s in shards.iter().rev() {
            folded.merge(s);
        }
        assert_eq!(folded, whole);
    }

    #[test]
    fn add_n_matches_repeated_add() {
        let mut batched = FixedSum::zero();
        let mut looped = FixedSum::zero();
        batched.add_n(0.3, 7);
        for _ in 0..7 {
            looped.add(0.3);
        }
        assert_eq!(batched, looped);
    }

    #[test]
    fn nan_is_ignored_and_infinity_saturates() {
        let mut s = FixedSum::zero();
        s.add(f64::NAN);
        assert_eq!(s, FixedSum::zero());
        s.add(f64::INFINITY);
        assert!(s.value() > 1e18);
    }

    #[test]
    fn decimal_round_trip() {
        let mut s = FixedSum::zero();
        s.add(-123.456);
        let back = FixedSum::from_decimal(&s.to_decimal()).unwrap();
        assert_eq!(s, back);
        assert!(FixedSum::from_decimal("not a number").is_err());
    }
}
