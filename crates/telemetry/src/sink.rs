//! Event sinks: where stamped events go.
//!
//! A [`Sink`] is deliberately tiny — `record` plus an optional `flush` —
//! so the simulator can hold `&mut dyn Sink` without caring whether
//! events are dropped, ring-buffered, streamed to disk as JSONL, or
//! accumulated into a Chrome trace.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use serde_json::Value;

use crate::event::{Event, Stamped};

/// Consumer of stamped events.
///
/// Implementations must not panic on `record`; a sink that can fail
/// (e.g. an I/O-backed one) should hold the error and surface it from
/// `flush`-time accessors instead of aborting a simulation mid-run.
pub trait Sink {
    /// `false` when recording is a no-op ([`NullSink`]); lets generic
    /// callers skip building expensive event payloads.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one stamped event.
    fn record(&mut self, ev: &Stamped);

    /// Flushes buffered output; default is a no-op.
    fn flush(&mut self) {}
}

/// The zero-cost disabled path: discards everything.
///
/// An instrumented call site holding a `NullSink` performs no
/// allocation and no I/O; the simulator's own disabled path is even
/// cheaper (no sink attached at all — a single untaken branch).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _ev: &Stamped) {}
}

/// Collects every event in memory, in arrival order. The sink the
/// `estimator_accuracy` experiment replays.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    events: Vec<Stamped>,
}

impl VecSink {
    pub fn new() -> Self {
        VecSink::default()
    }

    /// Events recorded so far, in arrival order.
    pub fn events(&self) -> &[Stamped] {
        &self.events
    }

    /// Consumes the sink, returning the events.
    pub fn into_events(self) -> Vec<Stamped> {
        self.events
    }
}

impl Sink for VecSink {
    fn record(&mut self, ev: &Stamped) {
        self.events.push(ev.clone());
    }
}

/// Keeps only the most recent `capacity` events — bounded memory for
/// long runs where only the tail (e.g. the cycles before a failure of
/// interest) matters.
#[derive(Debug, Clone)]
pub struct RingSink {
    buf: VecDeque<Stamped>,
    capacity: usize,
    /// Total events ever offered, including overwritten ones.
    seen: u64,
}

impl RingSink {
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingSink { buf: VecDeque::with_capacity(capacity), capacity, seen: 0 }
    }

    /// The retained tail, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Stamped> {
        self.buf.iter()
    }

    /// Retained event count (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events offered over the sink's lifetime.
    pub fn total_seen(&self) -> u64 {
        self.seen
    }
}

impl Sink for RingSink {
    fn record(&mut self, ev: &Stamped) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(ev.clone());
        self.seen += 1;
    }
}

/// Streams one compact JSON object per event, newline-delimited.
///
/// Write errors are held (not panicked) and surfaced by
/// [`JsonlSink::error`]; subsequent records are dropped.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    error: Option<io::Error>,
}

impl JsonlSink<BufWriter<File>> {
    /// Opens (truncating) a JSONL file at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    pub fn new(out: W) -> Self {
        JsonlSink { out, error: None }
    }

    /// The first write error, if any occurred.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn record(&mut self, ev: &Stamped) {
        if self.error.is_some() {
            return;
        }
        let line = serde_json::to_string(&ev.to_value()).expect("event serializes");
        if let Err(e) = self.out.write_all(line.as_bytes()).and_then(|()| self.out.write_all(b"\n"))
        {
            self.error = Some(e);
        }
    }

    fn flush(&mut self) {
        if let Err(e) = self.out.flush() {
            self.error.get_or_insert(e);
        }
    }
}

/// Parses a JSONL stream produced by [`JsonlSink`] back into events.
/// Lines that fail to parse are skipped.
pub fn parse_jsonl(text: &str) -> Vec<Stamped> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| serde_json::from_str(l).ok())
        .filter_map(|v| Stamped::from_value(&v))
        .collect()
}

/// Builds a Chrome trace-event file (the JSON object format with a
/// `traceEvents` array), loadable in Perfetto / `chrome://tracing`.
///
/// Every event becomes an instant (`"ph":"i"`) record whose `args`
/// carry the full payload, so the trace is also a lossless transport:
/// [`ChromeTraceSink::parse_events`] recovers the original sequence.
/// Power cycles additionally become duration (`"ph":"X"`) slices from
/// each `Reboot` to the next `PowerFailure`, which is what makes the
/// intermittent execution pattern visible on the timeline.
#[derive(Debug, Clone, Default)]
pub struct ChromeTraceSink {
    records: Vec<Value>,
    cycle_start_us: f64,
}

impl ChromeTraceSink {
    pub fn new() -> Self {
        ChromeTraceSink::default()
    }

    /// The finished trace as a JSON tree.
    pub fn to_json(&self) -> Value {
        serde_json::json!({
            "traceEvents": self.records.clone(),
            "displayTimeUnit": "ms",
        })
    }

    /// Writes the trace to `path` (pretty-printed).
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        let text = serde_json::to_string_pretty(&self.to_json()).expect("trace serializes");
        std::fs::write(path, text)
    }

    /// Recovers the stamped events embedded in a trace produced by this
    /// sink (instant records only; synthesized power-cycle slices are
    /// skipped).
    pub fn parse_events(trace: &Value) -> Vec<Stamped> {
        let Some(records) = trace.get("traceEvents").and_then(Value::as_array) else {
            return Vec::new();
        };
        records
            .iter()
            .filter(|r| r.get("ph").and_then(Value::as_str) == Some("i"))
            .filter_map(|r| {
                let args = r.get("args")?;
                let kind = r.get("name")?.as_str()?;
                Some(Stamped {
                    t_us: r.get("ts")?.as_f64()?,
                    cycle: args.get("cycle")?.as_u64()?,
                    event: Event::from_kind_fields(kind, args)?,
                })
            })
            .collect()
    }
}

impl Sink for ChromeTraceSink {
    fn record(&mut self, ev: &Stamped) {
        // Synthesize the power-cycle slice when a cycle closes.
        if let Event::PowerFailure { .. } = ev.event {
            self.records.push(serde_json::json!({
                "name": "power-cycle",
                "ph": "X",
                "ts": self.cycle_start_us,
                "dur": ev.t_us - self.cycle_start_us,
                "pid": 1,
                "tid": 0,
            }));
        }
        if let Event::Reboot { .. } = ev.event {
            self.cycle_start_us = ev.t_us;
        }
        let mut args: Vec<(String, Value)> = vec![("cycle".to_string(), ev.cycle.into())];
        args.extend(ev.event.fields().into_iter().map(|(k, v)| (k.to_string(), v)));
        self.records.push(serde_json::json!({
            "name": ev.event.kind(),
            "ph": "i",
            "s": "t",
            "ts": ev.t_us,
            "pid": 1,
            "tid": 0,
            "args": Value::Object(args),
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_us: f64, cycle: u64, event: Event) -> Stamped {
        Stamped { t_us, cycle, event }
    }

    #[test]
    fn null_sink_reports_disabled() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.record(&ev(1.0, 0, Event::Checkpoint { blocks: 3 }));
    }

    #[test]
    fn ring_sink_keeps_only_the_tail() {
        let mut s = RingSink::new(3);
        for i in 0..10u64 {
            s.record(&ev(i as f64, 0, Event::Checkpoint { blocks: i as u32 }));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.total_seen(), 10);
        let blocks: Vec<u32> = s
            .events()
            .map(|e| match e.event {
                Event::Checkpoint { blocks } => blocks,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(blocks, vec![7, 8, 9]);
    }

    #[test]
    fn chrome_trace_synthesizes_cycle_slices() {
        let mut s = ChromeTraceSink::new();
        s.record(&ev(5.0, 0, Event::PowerFailure { insts: 10, voltage: 2.0 }));
        s.record(&ev(9.0, 1, Event::Reboot { charge_us: 4.0, voltage: 2.016 }));
        s.record(&ev(12.0, 1, Event::PowerFailure { insts: 4, voltage: 2.0 }));
        let json = s.to_json();
        let slices: Vec<&Value> = json
            .get("traceEvents")
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .filter(|r| r.get("ph").and_then(Value::as_str) == Some("X"))
            .collect();
        assert_eq!(slices.len(), 2);
        assert_eq!(slices[1].get("ts").and_then(Value::as_f64), Some(9.0));
        assert_eq!(slices[1].get("dur").and_then(Value::as_f64), Some(3.0));
    }
}
