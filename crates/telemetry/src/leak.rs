//! Information-leakage metrics for the leakscope pipeline.
//!
//! The leakscope harness (in `ehs-sim`) turns a compressed-cache timing
//! side channel into samples: pairs of (planted secret value, attacker
//! observable). This module quantifies the channel those samples witness:
//!
//! * [`mutual_information_bits`] — the plug-in (maximum-likelihood)
//!   estimator of `I(S; O)` over the empirical joint histogram. Zero iff
//!   the observable is independent of the secret in the sample; bounded by
//!   `log2(|S|)`.
//! * [`channel_capacity_bits`] — Blahut–Arimoto capacity of the empirical
//!   conditional `P(O | S)`: the best any input distribution could extract,
//!   not just the uniform one the harness happened to plant.
//! * [`LatencyHistogram`] — per-secret-value probe-latency counts, the raw
//!   distributions behind the estimates.
//! * [`AttackStats`] — guesses-to-recovery / bytes-probed accounting in
//!   the style of the YACC/C-PACK attack exemplar.
//!
//! Everything here is deterministic `f64` arithmetic over integer counts —
//! no RNG, no ambient state — so leakscope reports stay byte-identical
//! across runs and job counts.

use std::collections::BTreeMap;

/// Per-secret-value histogram of attacker-observed probe latencies.
///
/// `BTreeMap` keys keep iteration order (and therefore JSONL emission
/// order) deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: BTreeMap<u64, u64>,
}

impl LatencyHistogram {
    /// Records one observed latency.
    pub fn record(&mut self, latency: u64) {
        *self.counts.entry(latency).or_insert(0) += 1;
    }

    /// `(latency, count)` pairs in ascending latency order.
    pub fn bins(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&l, &c)| (l, c))
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }
}

/// Attack effort accounting, à la the YACC/C-PACK exemplar's
/// `AttackStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AttackStats {
    /// Guess runs issued until the secret was recovered (or given up on).
    pub guesses: u64,
    /// Attacker memory accesses across all guess runs.
    pub probe_accesses: u64,
    /// Bytes touched by those accesses (accesses × block size).
    pub bytes_probed: u64,
    /// Guess-sweep retries forced by inconclusive rounds (e.g. a power
    /// outage landing inside the probe window).
    pub retries: u64,
    /// Secret bytes recovered.
    pub recovered_bytes: u32,
    /// Secret bytes planted.
    pub secret_bytes: u32,
}

impl AttackStats {
    /// `true` when every planted byte was recovered.
    pub fn recovered(&self) -> bool {
        self.secret_bytes > 0 && self.recovered_bytes == self.secret_bytes
    }
}

/// `x·log2(x)` with the continuous extension `0·log2(0) = 0`.
fn xlog2(x: f64) -> f64 {
    if x > 0.0 {
        x * x.log2()
    } else {
        0.0
    }
}

/// Plug-in mutual information `I(S; O)` in bits over `(secret,
/// observable)` samples.
///
/// The estimator is the maximum-likelihood one: empirical joint and
/// marginal frequencies plugged into `Σ p(s,o)·log2(p(s,o)/(p(s)p(o)))`.
/// It is non-negative, at most `log2(#distinct secrets)` (and
/// `log2(#distinct observables)`), invariant under sample order, and
/// exactly zero when the empirical distributions are independent —
/// properties the proptests below pin.
pub fn mutual_information_bits(samples: &[(u64, u64)]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let n = samples.len() as f64;
    let mut joint: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    let mut ps: BTreeMap<u64, u64> = BTreeMap::new();
    let mut po: BTreeMap<u64, u64> = BTreeMap::new();
    for &(s, o) in samples {
        *joint.entry((s, o)).or_insert(0) += 1;
        *ps.entry(s).or_insert(0) += 1;
        *po.entry(o).or_insert(0) += 1;
    }
    // I = H(S) + H(O) − H(S,O), computed from entropies for numerical
    // symmetry (every term is a clean Σ x·log2(x) over one histogram).
    let h = |counts: &BTreeMap<_, u64>| -> f64 {
        -counts.values().map(|&c| xlog2(c as f64 / n)).sum::<f64>()
    };
    let hs = -ps.values().map(|&c| xlog2(c as f64 / n)).sum::<f64>();
    let ho = h(&po);
    let hso = -joint.values().map(|&c| xlog2(c as f64 / n)).sum::<f64>();
    // Clamp: floating-point cancellation can leave a tiny negative.
    (hs + ho - hso).max(0.0)
}

/// Blahut–Arimoto channel capacity in bits of the empirical conditional
/// `P(O | S)` built from `(secret, observable)` samples.
///
/// Capacity maximizes `I(X; O)` over input distributions, so it upper
/// bounds [`mutual_information_bits`] of the same samples (up to the
/// iteration tolerance). Secrets never seen contribute nothing; with one
/// distinct secret (or none) the capacity is zero.
pub fn channel_capacity_bits(samples: &[(u64, u64)]) -> f64 {
    // Row-normalized conditional: rows = secrets, cols = observables.
    let mut rows: BTreeMap<u64, BTreeMap<u64, u64>> = BTreeMap::new();
    let mut cols: BTreeMap<u64, usize> = BTreeMap::new();
    for &(s, o) in samples {
        *rows.entry(s).or_default().entry(o).or_insert(0) += 1;
        let next = cols.len();
        cols.entry(o).or_insert(next);
    }
    let (ns, no) = (rows.len(), cols.len());
    // With fewer than two inputs or outputs the channel carries nothing;
    // returning early also keeps the estimate exactly 0.0 (the iteration
    // would otherwise leave Σp ≈ 1 rounding noise in log2).
    if ns < 2 || no < 2 {
        return 0.0;
    }
    let mut w = vec![vec![0.0f64; no]; ns]; // P(o | s)
    for (i, row) in rows.values().enumerate() {
        let tot: u64 = row.values().sum();
        for (o, &c) in row {
            w[i][cols[o]] = c as f64 / tot as f64;
        }
    }
    let mut p = vec![1.0 / ns as f64; ns];
    let mut capacity = 0.0;
    for _ in 0..200 {
        // q(o) = Σ_s p(s)·w(o|s)
        let mut q = vec![0.0f64; no];
        for (i, pi) in p.iter().enumerate() {
            for (j, qj) in q.iter_mut().enumerate() {
                *qj += pi * w[i][j];
            }
        }
        // D_i = exp2(Σ_o w(o|s_i)·log2(w(o|s_i)/q(o)))
        let mut d = vec![0.0f64; ns];
        for (i, di) in d.iter_mut().enumerate() {
            let mut acc = 0.0;
            for j in 0..no {
                if w[i][j] > 0.0 && q[j] > 0.0 {
                    acc += w[i][j] * (w[i][j] / q[j]).log2();
                }
            }
            *di = acc.exp2();
        }
        let z: f64 = p.iter().zip(&d).map(|(pi, di)| pi * di).sum();
        let next_capacity = z.log2();
        for (pi, di) in p.iter_mut().zip(&d) {
            *pi = *pi * di / z;
        }
        if (next_capacity - capacity).abs() < 1e-9 {
            capacity = next_capacity;
            break;
        }
        capacity = next_capacity;
    }
    capacity.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic_binary_channel_has_full_mi() {
        // Observable = secret: I = log2(4) = 2 bits; capacity agrees.
        let samples: Vec<(u64, u64)> = (0..4).flat_map(|s| [(s, s); 3]).collect();
        let mi = mutual_information_bits(&samples);
        assert!((mi - 2.0).abs() < 1e-9, "mi = {mi}");
        let cap = channel_capacity_bits(&samples);
        assert!((cap - 2.0).abs() < 1e-6, "cap = {cap}");
    }

    #[test]
    fn independent_samples_have_zero_mi() {
        // Full product distribution: exactly independent.
        let samples: Vec<(u64, u64)> = (0..4).flat_map(|s| (0..3).map(move |o| (s, o))).collect();
        assert_eq!(mutual_information_bits(&samples), 0.0);
    }

    #[test]
    fn degenerate_inputs_are_zero() {
        assert_eq!(mutual_information_bits(&[]), 0.0);
        assert_eq!(mutual_information_bits(&[(1, 7), (1, 9)]), 0.0);
        assert_eq!(channel_capacity_bits(&[]), 0.0);
        assert_eq!(channel_capacity_bits(&[(1, 7), (1, 9)]), 0.0);
    }

    #[test]
    fn capacity_upper_bounds_plugin_mi() {
        // A noisy, skewed channel: capacity re-weights inputs and can only
        // gain over the planted uniform distribution.
        let samples =
            [(0, 10), (0, 10), (0, 21), (1, 21), (1, 21), (1, 10), (2, 33), (2, 33), (2, 33)];
        let mi = mutual_information_bits(&samples);
        let cap = channel_capacity_bits(&samples);
        assert!(cap + 1e-6 >= mi, "cap {cap} < mi {mi}");
    }

    #[test]
    fn latency_histogram_orders_bins() {
        let mut h = LatencyHistogram::default();
        for l in [11, 5, 11, 42, 5, 5] {
            h.record(l);
        }
        let bins: Vec<_> = h.bins().collect();
        assert_eq!(bins, vec![(5, 3), (11, 2), (42, 1)]);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn attack_stats_recovery_flag() {
        let mut s = AttackStats { secret_bytes: 8, recovered_bytes: 8, ..Default::default() };
        assert!(s.recovered());
        s.recovered_bytes = 7;
        assert!(!s.recovered());
        assert!(!AttackStats::default().recovered());
    }

    /// Strategy: a joint sample set over small alphabets.
    fn samples_strategy() -> impl Strategy<Value = Vec<(u64, u64)>> {
        proptest::collection::vec((0u64..6, 0u64..5), 1..200)
    }

    proptest! {
        #[test]
        fn mi_is_non_negative(samples in samples_strategy()) {
            prop_assert!(mutual_information_bits(&samples) >= 0.0);
        }

        #[test]
        fn mi_bounded_by_log2_of_alphabets(samples in samples_strategy()) {
            let mi = mutual_information_bits(&samples);
            let ns = samples.iter().map(|&(s, _)| s).collect::<std::collections::BTreeSet<_>>().len();
            let no = samples.iter().map(|&(_, o)| o).collect::<std::collections::BTreeSet<_>>().len();
            prop_assert!(mi <= (ns as f64).log2() + 1e-9, "mi {} > log2({})", mi, ns);
            prop_assert!(mi <= (no as f64).log2() + 1e-9, "mi {} > log2({})", mi, no);
        }

        #[test]
        fn mi_is_permutation_invariant(samples in samples_strategy(), rot in 0usize..199) {
            let mut shuffled = samples.clone();
            let k = rot % shuffled.len().max(1);
            shuffled.rotate_left(k);
            shuffled.reverse();
            // Identical joint histogram ⇒ bit-identical estimate.
            prop_assert_eq!(
                mutual_information_bits(&samples).to_bits(),
                mutual_information_bits(&shuffled).to_bits()
            );
        }

        #[test]
        fn mi_is_zero_on_secret_independent_timings(
            secrets in proptest::collection::vec(0u64..6, 1..40),
            timing in 0u64..4,
        ) {
            // Every secret sees the same (constant) timing: no information.
            let samples: Vec<(u64, u64)> = secrets.iter().map(|&s| (s, timing)).collect();
            prop_assert_eq!(mutual_information_bits(&samples), 0.0);
            prop_assert_eq!(channel_capacity_bits(&samples), 0.0);
        }

        #[test]
        fn capacity_never_below_zero(samples in samples_strategy()) {
            prop_assert!(channel_capacity_bits(&samples) >= 0.0);
        }
    }
}
