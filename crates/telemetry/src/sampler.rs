//! Seeded, mergeable reservoir sampling for population statistics.
//!
//! Fleet campaigns stream millions of per-cell metrics through
//! constant-memory aggregation. Fixed-bucket [`Histogram`]s give exact
//! mergeable bucket counts, but quantiles between bucket bounds and
//! bootstrap confidence intervals need actual sample values. A classic
//! Vitter reservoir is *order-dependent* — merging two shard reservoirs
//! does not reproduce the single-stream reservoir — which would break
//! the fleet engine's byte-identical-at-any-shard-count contract.
//!
//! [`Reservoir`] is instead a **bottom-k sketch**: every observation is
//! keyed by a caller-supplied unique id (the fleet cell index), the key
//! is hashed with a campaign seed into a uniform priority, and the
//! reservoir keeps the `k` entries with the smallest priorities. The
//! kept set is a pure function of the *set* of (key, value) pairs and
//! the seed, so merge is exactly associative, commutative and
//! partition-invariant: merging any sharding of a stream equals
//! feeding the whole stream into one reservoir (proptest-pinned in
//! `tests/merge_props.rs`). Memory is O(k) regardless of stream length.
//!
//! [`Histogram`]: crate::metrics::Histogram

use crate::fixed::FixedSum;
use serde_json::Value;

/// splitmix64 finalizer: a cheap, well-distributed 64-bit mixer.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One retained sample: hash priority, originating key, and value.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    priority: u64,
    key: u64,
    value: f64,
}

/// A seeded bottom-k reservoir over `(key, value)` observations.
///
/// Keys must be unique across the whole population (fleet cell
/// indices are); duplicate keys are deduplicated on merge so feeding
/// the same observation to two shards cannot double-count it.
#[derive(Debug, Clone, PartialEq)]
pub struct Reservoir {
    seed: u64,
    capacity: usize,
    /// Sorted ascending by `(priority, key)`; at most `capacity` long.
    entries: Vec<Entry>,
    /// Total observations offered, kept or not.
    seen: u64,
    /// Exact fixed-point running sum (partition-invariant; see
    /// [`FixedSum`]).
    sum: FixedSum,
    min: f64,
    max: f64,
}

impl Reservoir {
    /// An empty reservoir retaining at most `capacity` samples, with
    /// priorities derived from `seed`. `capacity` must be non-zero.
    pub fn new(seed: u64, capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be non-zero");
        Reservoir {
            seed,
            capacity,
            entries: Vec::new(),
            seen: 0,
            sum: FixedSum::zero(),
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Offers one observation under a population-unique `key`.
    pub fn offer(&mut self, key: u64, value: f64) {
        self.seen += 1;
        self.sum.add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let priority = splitmix64(self.seed ^ splitmix64(key));
        if self.entries.len() == self.capacity {
            let worst = self.entries[self.capacity - 1];
            if (priority, key) >= (worst.priority, worst.key) {
                return;
            }
            self.entries.pop();
        }
        let entry = Entry { priority, key, value };
        let at =
            self.entries.partition_point(|e| (e.priority, e.key) < (entry.priority, entry.key));
        self.entries.insert(at, entry);
    }

    /// Folds `other` into `self`: bottom-k over the union of kept
    /// entries (deduplicated by key), with seen/sum/min/max combined.
    ///
    /// # Errors
    ///
    /// Returns `Err` when seed or capacity differ — their priorities
    /// would not be comparable.
    pub fn merge(&mut self, other: &Reservoir) -> Result<(), String> {
        if self.seed != other.seed || self.capacity != other.capacity {
            return Err(format!(
                "reservoir shape mismatch: seed {} cap {} vs seed {} cap {}",
                self.seed, self.capacity, other.seed, other.capacity
            ));
        }
        let mut union: Vec<Entry> = Vec::with_capacity(self.entries.len() + other.entries.len());
        union.extend_from_slice(&self.entries);
        union.extend_from_slice(&other.entries);
        union.sort_by_key(|a| (a.priority, a.key));
        union.dedup_by_key(|e| (e.priority, e.key));
        union.truncate(self.capacity);
        self.entries = union;
        self.seen += other.seen;
        self.sum.merge(&other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        Ok(())
    }

    /// Total observations offered (kept or not).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Number of samples currently retained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Mean over *all* offered observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.seen == 0 {
            0.0
        } else {
            self.sum.value() / self.seen as f64
        }
    }

    /// Smallest offered observation (`INFINITY` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest offered observation (`NEG_INFINITY` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Retained sample values sorted ascending — the uniform
    /// subsample quantile and bootstrap machinery work from this.
    pub fn sorted_values(&self) -> Vec<f64> {
        let mut vs: Vec<f64> = self.entries.iter().map(|e| e.value).collect();
        vs.sort_by(f64::total_cmp);
        vs
    }

    /// Estimates the `q`-quantile from the retained sample by linear
    /// interpolation between order statistics. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let vs = self.sorted_values();
        quantile_of_sorted(&vs, q)
    }

    /// Serializes losslessly (f64s as IEEE-754 bit patterns, the
    /// fixed-point sum as a decimal string) so a journaled shard
    /// round-trips bit-for-bit through [`Reservoir::from_exact_json`].
    pub fn to_exact_json(&self) -> Value {
        let entries: Vec<Value> = self
            .entries
            .iter()
            .map(|e| serde_json::json!([e.priority, e.key, e.value.to_bits()]))
            .collect();
        serde_json::json!({
            "seed": self.seed,
            "capacity": self.capacity as u64,
            "entries": entries,
            "seen": self.seen,
            "sum_fixed": self.sum.to_decimal(),
            "min_bits": self.min.to_bits(),
            "max_bits": self.max.to_bits(),
        })
    }

    /// Rebuilds a reservoir from [`Reservoir::to_exact_json`] output.
    ///
    /// # Errors
    ///
    /// Returns `Err` naming the offending field on any missing or
    /// mistyped value, and rejects entry lists that are unsorted,
    /// duplicated or over capacity (a corrupt journal record).
    pub fn from_exact_json(v: &Value) -> Result<Self, String> {
        let u = |path: &str| -> Result<u64, String> {
            v.get(path)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("reservoir field `{path}` is not a u64"))
        };
        let capacity = u("capacity")? as usize;
        if capacity == 0 {
            return Err("reservoir field `capacity` must be non-zero".into());
        }
        let raw = v
            .get("entries")
            .and_then(Value::as_array)
            .ok_or_else(|| "reservoir field `entries` is not an array".to_string())?;
        let mut entries = Vec::with_capacity(raw.len());
        for (i, e) in raw.iter().enumerate() {
            let triple = e.as_array().filter(|t| t.len() == 3).ok_or_else(|| {
                format!("reservoir field `entries[{i}]` is not a [priority, key, bits] triple")
            })?;
            let part = |j: usize| -> Result<u64, String> {
                triple[j]
                    .as_u64()
                    .ok_or_else(|| format!("reservoir field `entries[{i}][{j}]` is not a u64"))
            };
            entries.push(Entry {
                priority: part(0)?,
                key: part(1)?,
                value: f64::from_bits(part(2)?),
            });
        }
        if entries.len() > capacity {
            return Err(format!(
                "reservoir holds {} entries over capacity {capacity}",
                entries.len()
            ));
        }
        if !entries.windows(2).all(|w| (w[0].priority, w[0].key) < (w[1].priority, w[1].key)) {
            return Err("reservoir `entries` are not strictly sorted by (priority, key)".into());
        }
        Ok(Reservoir {
            seed: u("seed")?,
            capacity,
            entries,
            seen: u("seen")?,
            sum: FixedSum::from_decimal(
                v.get("sum_fixed")
                    .and_then(Value::as_str)
                    .ok_or_else(|| "reservoir field `sum_fixed` is not a string".to_string())?,
            )?,
            min: f64::from_bits(u("min_bits")?),
            max: f64::from_bits(u("max_bits")?),
        })
    }
}

/// Linear-interpolated quantile of an ascending-sorted slice
/// (the `R-7` estimator). Returns 0 for an empty slice.
pub fn quantile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    match sorted.len() {
        0 => 0.0,
        1 => sorted[0],
        n => {
            let pos = q.clamp(0.0, 1.0) * (n - 1) as f64;
            let i = pos.floor() as usize;
            let frac = pos - i as f64;
            if i + 1 == n {
                sorted[n - 1]
            } else {
                sorted[i] + (sorted[i + 1] - sorted[i]) * frac
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_at_most_capacity_and_tracks_moments() {
        let mut r = Reservoir::new(7, 8);
        for k in 0..100u64 {
            r.offer(k, k as f64);
        }
        assert_eq!(r.len(), 8);
        assert_eq!(r.seen(), 100);
        assert!((r.mean() - 49.5).abs() < 1e-9);
        assert_eq!(r.min(), 0.0);
        assert_eq!(r.max(), 99.0);
    }

    #[test]
    fn merge_equals_single_stream() {
        let mut whole = Reservoir::new(42, 16);
        let mut a = Reservoir::new(42, 16);
        let mut b = Reservoir::new(42, 16);
        for k in 0..500u64 {
            let v = (k as f64).sin() * 100.0;
            whole.offer(k, v);
            if k % 2 == 0 { &mut a } else { &mut b }.offer(k, v);
        }
        a.merge(&b).unwrap();
        assert_eq!(a, whole);
    }

    #[test]
    fn merge_rejects_mismatched_shape() {
        let mut a = Reservoir::new(1, 4);
        let b = Reservoir::new(2, 4);
        assert!(a.merge(&b).unwrap_err().contains("mismatch"));
    }

    #[test]
    fn merge_deduplicates_shared_keys() {
        let mut a = Reservoir::new(9, 4);
        let mut b = Reservoir::new(9, 4);
        a.offer(3, 1.5);
        b.offer(3, 1.5);
        a.merge(&b).unwrap();
        assert_eq!(a.len(), 1, "the same key offered to both shards is kept once");
    }

    #[test]
    fn quantiles_interpolate_order_statistics() {
        let mut r = Reservoir::new(0, 128);
        for k in 0..101u64 {
            r.offer(k, k as f64);
        }
        // Capacity exceeds the population, so the sample is exact.
        assert_eq!(r.len(), 101);
        assert!((r.quantile(0.5) - 50.0).abs() < 1e-9);
        assert!((r.quantile(0.25) - 25.0).abs() < 1e-9);
        assert_eq!(r.quantile(0.0), 0.0);
        assert_eq!(r.quantile(1.0), 100.0);
        assert_eq!(Reservoir::new(0, 4).quantile(0.5), 0.0);
    }

    #[test]
    fn exact_json_round_trip_is_bit_identical() {
        let mut r = Reservoir::new(0xDEAD_BEEF, 6);
        for k in 0..40u64 {
            r.offer(k, (k as f64).sqrt() * -3.25);
        }
        let back = Reservoir::from_exact_json(&r.to_exact_json()).unwrap();
        assert_eq!(r, back);
        assert_eq!(r.sum, back.sum);
        // Corrupt ordering is rejected.
        let mut bad = r.to_exact_json();
        let Value::Object(fields) = &mut bad else { panic!("exact json is an object") };
        let entry_list = &mut fields.iter_mut().find(|(k, _)| k == "entries").unwrap().1;
        let Value::Array(entries) = entry_list else { panic!("entries is an array") };
        entries.reverse();
        let err = Reservoir::from_exact_json(&bad).unwrap_err();
        assert!(err.contains("sorted"), "{err}");
    }
}
