//! A small metrics registry: named counters, gauges and fixed-bucket
//! histograms, with point-in-time snapshots at power-cycle boundaries.
//!
//! Handles ([`Counter`], [`Gauge`], [`HistogramId`]) are plain indices
//! resolved once at registration, so the per-update cost is one array
//! index — no hashing on the hot path.

use serde_json::Value;

/// Handle to a monotonically increasing counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counter(usize);

/// Handle to a last-value-wins gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gauge(usize);

/// Handle to a fixed-bucket histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A histogram over fixed, caller-supplied bucket upper bounds; one
/// overflow bucket catches everything beyond the last bound.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` entries; the last is the overflow bucket.
    counts: Vec<u64>,
    total: u64,
    sum: f64,
}

impl Histogram {
    /// A standalone histogram over `bounds` (ascending upper bounds).
    ///
    /// Most histograms live inside a [`MetricsRegistry`], but online
    /// aggregators (cachescope, fleet roll-ups) also keep free-standing
    /// ones and fold them together with [`Histogram::merge`].
    pub fn with_bounds(bounds: &[f64]) -> Self {
        Histogram { bounds: bounds.to_vec(), counts: vec![0; bounds.len() + 1], total: 0, sum: 0.0 }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        let i = self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len());
        self.counts[i] += 1;
        self.total += 1;
        self.sum += v;
    }

    /// Records `n` observations of the same value in O(1).
    pub fn observe_n(&mut self, v: f64, n: u64) {
        let i = self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len());
        self.counts[i] += n;
        self.total += n;
        self.sum += v * n as f64;
    }

    /// Folds `other` into `self` bucket-by-bucket. Because the buckets
    /// are fixed, the merge is exact: counts, totals and sums add, and
    /// every quantile estimate afterwards equals the estimate a single
    /// histogram would have produced over the union of observations
    /// (the online quantile merge cachescope's cross-cycle roll-ups and
    /// fleet aggregation rely on).
    ///
    /// # Errors
    ///
    /// Returns `Err` when the bucket bounds differ — merging histograms
    /// of different shapes would silently corrupt quantiles.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), String> {
        if self.bounds != other.bounds {
            return Err(format!(
                "histogram bounds mismatch: {:?} vs {:?}",
                self.bounds, other.bounds
            ));
        }
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
        self.sum += other.sum;
        Ok(())
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// `(upper_bound, count)` rows; the final row uses `f64::INFINITY`.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(self.counts.iter().copied())
            .collect()
    }

    /// Estimates the `q`-quantile (`0.0 ≤ q ≤ 1.0`) by linear
    /// interpolation within the bucket containing the target rank, the
    /// standard fixed-bucket estimator. The first bucket interpolates
    /// from 0; observations in the overflow bucket clamp to the last
    /// finite bound (the histogram cannot resolve beyond it). Returns 0
    /// for an empty histogram.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.total as f64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if (seen + c) as f64 >= rank {
                let Some(&hi) = self.bounds.get(i) else {
                    // Overflow bucket: unbounded above, clamp to the
                    // last finite bound (or 0 with no bounds at all).
                    return self.bounds.last().copied().unwrap_or(0.0);
                };
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let within = ((rank - seen as f64) / c as f64).clamp(0.0, 1.0);
                return lo + (hi - lo) * within;
            }
            seen += c;
        }
        self.bounds.last().copied().unwrap_or(0.0)
    }
}

/// Counter/gauge values captured at one power-cycle boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Power-cycle index at the capture.
    pub cycle: u64,
    /// Simulated time of the capture (µs).
    pub t_us: f64,
    /// Counter values, index-aligned with registration order.
    pub counters: Vec<u64>,
    /// Gauge values, index-aligned with registration order.
    pub gauges: Vec<f64>,
}

/// The registry: get-or-register by name, update through handles,
/// snapshot at cycle boundaries, serialize once at the end.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counter_names: Vec<String>,
    counter_vals: Vec<u64>,
    gauge_names: Vec<String>,
    gauge_vals: Vec<f64>,
    hist_names: Vec<String>,
    hists: Vec<Histogram>,
    snapshots: Vec<Snapshot>,
}

impl MetricsRegistry {
    /// Registers (or finds) a counter named `name`.
    pub fn counter(&mut self, name: &str) -> Counter {
        if let Some(i) = self.counter_names.iter().position(|n| n == name) {
            return Counter(i);
        }
        self.counter_names.push(name.to_string());
        self.counter_vals.push(0);
        Counter(self.counter_names.len() - 1)
    }

    /// Registers (or finds) a gauge named `name`.
    pub fn gauge(&mut self, name: &str) -> Gauge {
        if let Some(i) = self.gauge_names.iter().position(|n| n == name) {
            return Gauge(i);
        }
        self.gauge_names.push(name.to_string());
        self.gauge_vals.push(0.0);
        Gauge(self.gauge_names.len() - 1)
    }

    /// Registers (or finds) a histogram named `name`. The bounds of the
    /// first registration win.
    pub fn histogram(&mut self, name: &str, bounds: &[f64]) -> HistogramId {
        if let Some(i) = self.hist_names.iter().position(|n| n == name) {
            return HistogramId(i);
        }
        self.hist_names.push(name.to_string());
        self.hists.push(Histogram::with_bounds(bounds));
        HistogramId(self.hist_names.len() - 1)
    }

    /// Adds `by` to a counter.
    #[inline]
    pub fn inc(&mut self, c: Counter, by: u64) {
        self.counter_vals[c.0] += by;
    }

    /// Sets a gauge.
    #[inline]
    pub fn set(&mut self, g: Gauge, v: f64) {
        self.gauge_vals[g.0] = v;
    }

    /// Records one histogram observation.
    #[inline]
    pub fn observe(&mut self, h: HistogramId, v: f64) {
        self.hists[h.0].observe(v);
    }

    /// Current value of a counter.
    pub fn counter_value(&self, c: Counter) -> u64 {
        self.counter_vals[c.0]
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, g: Gauge) -> f64 {
        self.gauge_vals[g.0]
    }

    /// The histogram behind a handle.
    pub fn histogram_data(&self, h: HistogramId) -> &Histogram {
        &self.hists[h.0]
    }

    /// Captures all counter and gauge values at a cycle boundary.
    pub fn snapshot(&mut self, cycle: u64, t_us: f64) {
        self.snapshots.push(Snapshot {
            cycle,
            t_us,
            counters: self.counter_vals.clone(),
            gauges: self.gauge_vals.clone(),
        });
    }

    /// Snapshots captured so far, in capture order.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snapshots
    }

    /// Serializes final values, histogram buckets and every snapshot.
    pub fn to_json(&self) -> Value {
        let counters: Vec<Value> = self
            .counter_names
            .iter()
            .zip(&self.counter_vals)
            .map(|(n, v)| serde_json::json!({ "name": n, "value": v }))
            .collect();
        let gauges: Vec<Value> = self
            .gauge_names
            .iter()
            .zip(&self.gauge_vals)
            .map(|(n, v)| serde_json::json!({ "name": n, "value": v }))
            .collect();
        let hists: Vec<Value> = self
            .hist_names
            .iter()
            .zip(&self.hists)
            .map(|(n, h)| {
                let buckets: Vec<Value> = h
                    .buckets()
                    .into_iter()
                    .map(|(ub, c)| serde_json::json!({ "le": ub, "count": c }))
                    .collect();
                serde_json::json!({
                    "name": n, "count": h.count(), "mean": h.mean(),
                    "p50": h.percentile(0.50), "p90": h.percentile(0.90),
                    "p99": h.percentile(0.99), "buckets": buckets,
                })
            })
            .collect();
        let snapshots: Vec<Value> = self
            .snapshots
            .iter()
            .map(|s| {
                serde_json::json!({
                    "cycle": s.cycle,
                    "t_us": s.t_us,
                    "counters": s.counters.clone(),
                    "gauges": s.gauges.clone(),
                })
            })
            .collect();
        serde_json::json!({
            "counters": counters,
            "gauges": gauges,
            "histograms": hists,
            "snapshots": snapshots,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once() {
        let mut m = MetricsRegistry::default();
        let a = m.counter("fills");
        let b = m.counter("fills");
        assert_eq!(a, b);
        m.inc(a, 3);
        m.inc(b, 2);
        assert_eq!(m.counter_value(a), 5);
        let g = m.gauge("voltage");
        m.set(g, 2.01);
        assert_eq!(m.gauge_value(g), 2.01);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut m = MetricsRegistry::default();
        let h = m.histogram("cycle_insts", &[10.0, 100.0]);
        for v in [5.0, 7.0, 50.0, 5000.0] {
            m.observe(h, v);
        }
        let data = m.histogram_data(h);
        assert_eq!(data.count(), 4);
        let buckets = data.buckets();
        assert_eq!(buckets[0], (10.0, 2));
        assert_eq!(buckets[1], (100.0, 1));
        assert_eq!(buckets[2].1, 1, "overflow bucket catches the rest");
        assert!((data.mean() - 1265.5).abs() < 1e-9);
    }

    #[test]
    fn percentiles_on_a_known_uniform_distribution() {
        let mut m = MetricsRegistry::default();
        // 10-wide buckets up to 100; observe 1..=100 → exactly 10 per
        // bucket, a uniform distribution with known quantiles.
        let bounds: Vec<f64> = (1..=10).map(|i| (i * 10) as f64).collect();
        let h = m.histogram("uniform", &bounds);
        for v in 1..=100 {
            m.observe(h, v as f64);
        }
        let data = m.histogram_data(h);
        assert!((data.percentile(0.50) - 50.0).abs() < 1e-9);
        assert!((data.percentile(0.90) - 90.0).abs() < 1e-9);
        assert!((data.percentile(0.99) - 99.0).abs() < 1e-9);
        assert_eq!(data.percentile(0.0), 0.0);
        assert!((data.percentile(1.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_interpolate_and_clamp_overflow() {
        let mut m = MetricsRegistry::default();
        let h = m.histogram("latency", &[10.0, 100.0]);
        // 3 observations in (0,10], 1 in the overflow bucket.
        for v in [2.0, 4.0, 9.0, 5000.0] {
            m.observe(h, v);
        }
        let data = m.histogram_data(h);
        // p50 → rank 2 of 3 inside the first bucket: 10 × (2/3).
        assert!((data.percentile(0.50) - 10.0 * (2.0 / 3.0)).abs() < 1e-9);
        // p99 lands in the overflow bucket → clamps to the last bound.
        assert_eq!(data.percentile(0.99), 100.0);
        // Empty histogram reports zero everywhere.
        let e = m.histogram("empty", &[1.0]);
        assert_eq!(m.histogram_data(e).percentile(0.5), 0.0);
    }

    #[test]
    fn merge_is_exact_for_counts_mean_and_quantiles() {
        let bounds: Vec<f64> = (1..=10).map(|i| (i * 10) as f64).collect();
        // Split the 1..=100 uniform across two histograms, merge, and
        // compare against one histogram fed the whole population.
        let mut left = Histogram::with_bounds(&bounds);
        let mut right = Histogram::with_bounds(&bounds);
        let mut whole = Histogram::with_bounds(&bounds);
        for v in 1..=100 {
            if v % 3 == 0 { &mut left } else { &mut right }.observe(v as f64);
            whole.observe(v as f64);
        }
        left.merge(&right).unwrap();
        assert_eq!(left, whole);
        assert_eq!(left.count(), 100);
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert!((left.percentile(q) - whole.percentile(q)).abs() < 1e-12, "q={q}");
        }
    }

    #[test]
    fn merge_rejects_mismatched_bounds() {
        let mut a = Histogram::with_bounds(&[1.0, 2.0]);
        let b = Histogram::with_bounds(&[1.0, 4.0]);
        let err = a.merge(&b).unwrap_err();
        assert!(err.contains("bounds mismatch"), "{err}");
    }

    #[test]
    fn observe_n_matches_repeated_observe() {
        let mut batched = Histogram::with_bounds(&[4.0, 8.0]);
        let mut looped = Histogram::with_bounds(&[4.0, 8.0]);
        batched.observe_n(3.0, 5);
        batched.observe_n(100.0, 2);
        for _ in 0..5 {
            looped.observe(3.0);
        }
        for _ in 0..2 {
            looped.observe(100.0);
        }
        assert_eq!(batched, looped);
    }

    #[test]
    fn snapshots_capture_point_in_time_values() {
        let mut m = MetricsRegistry::default();
        let c = m.counter("evictions");
        m.inc(c, 4);
        m.snapshot(0, 100.0);
        m.inc(c, 6);
        m.snapshot(1, 250.0);
        let snaps = m.snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].counters, vec![4]);
        assert_eq!(snaps[1].counters, vec![10]);
        assert_eq!(snaps[1].cycle, 1);
    }
}
