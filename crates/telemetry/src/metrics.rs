//! A small metrics registry: named counters, gauges and fixed-bucket
//! histograms, with point-in-time snapshots at power-cycle boundaries.
//!
//! Handles ([`Counter`], [`Gauge`], [`HistogramId`]) are plain indices
//! resolved once at registration, so the per-update cost is one array
//! index — no hashing on the hot path.

use crate::fixed::FixedSum;
use serde_json::Value;

/// Handle to a monotonically increasing counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counter(usize);

/// Handle to a last-value-wins gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gauge(usize);

/// Handle to a fixed-bucket histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A histogram over fixed, caller-supplied bucket upper bounds; one
/// overflow bucket catches everything beyond the last bound.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` entries; the last is the overflow bucket.
    counts: Vec<u64>,
    total: u64,
    /// Exact fixed-point running sum, so merged shard histograms equal
    /// the single-stream histogram bit-for-bit (f64 addition is not
    /// associative; integer addition is).
    sum: FixedSum,
    /// Largest observation (`NEG_INFINITY` when empty). Gives the
    /// overflow bucket a finite upper edge so tail quantiles can
    /// interpolate instead of clamping to the last bound.
    max: f64,
}

impl Histogram {
    /// A standalone histogram over `bounds` (ascending upper bounds).
    ///
    /// Most histograms live inside a [`MetricsRegistry`], but online
    /// aggregators (cachescope, fleet roll-ups) also keep free-standing
    /// ones and fold them together with [`Histogram::merge`].
    pub fn with_bounds(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: FixedSum::zero(),
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        let i = self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len());
        self.counts[i] += 1;
        self.total += 1;
        self.sum.add(v);
        self.max = self.max.max(v);
    }

    /// Records `n` observations of the same value in O(1).
    pub fn observe_n(&mut self, v: f64, n: u64) {
        if n == 0 {
            return;
        }
        let i = self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len());
        self.counts[i] += n;
        self.total += n;
        self.sum.add_n(v, n);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self` bucket-by-bucket. Because the buckets
    /// are fixed, the merge is exact: counts, totals and sums add, and
    /// every quantile estimate afterwards equals the estimate a single
    /// histogram would have produced over the union of observations
    /// (the online quantile merge cachescope's cross-cycle roll-ups and
    /// fleet aggregation rely on).
    ///
    /// # Errors
    ///
    /// Returns `Err` when the bucket bounds differ — merging histograms
    /// of different shapes would silently corrupt quantiles.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), String> {
        if self.bounds != other.bounds {
            return Err(format!(
                "histogram bounds mismatch: {:?} vs {:?}",
                self.bounds, other.bounds
            ));
        }
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
        self.sum.merge(&other.sum);
        self.max = self.max.max(other.max);
        Ok(())
    }

    /// Largest observation so far (`NEG_INFINITY` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum.value() / self.total as f64
        }
    }

    /// Serializes to JSON losslessly: `f64`s are encoded as IEEE-754
    /// bit patterns (`u64`) and the fixed-point sum as a decimal
    /// string, so a round-trip through [`Histogram::from_exact_json`]
    /// reproduces the histogram bit-for-bit. Journaling layers (fleet
    /// shard checkpoints) rely on this to make resumed aggregation
    /// byte-identical.
    pub fn to_exact_json(&self) -> Value {
        serde_json::json!({
            "bounds_bits": self.bounds.iter().map(|b| b.to_bits()).collect::<Vec<u64>>(),
            "counts": self.counts.clone(),
            "total": self.total,
            "sum_fixed": self.sum.to_decimal(),
            "max_bits": self.max.to_bits(),
        })
    }

    /// Rebuilds a histogram from [`Histogram::to_exact_json`] output.
    ///
    /// # Errors
    ///
    /// Returns `Err` naming the offending field when the value is
    /// missing, mistyped, or the counts length disagrees with bounds.
    pub fn from_exact_json(v: &Value) -> Result<Self, String> {
        let bits = |path: &str| -> Result<f64, String> {
            v.get(path)
                .and_then(Value::as_u64)
                .map(f64::from_bits)
                .ok_or_else(|| format!("histogram field `{path}` is not a u64"))
        };
        let u64s = |path: &str| -> Result<Vec<u64>, String> {
            v.get(path)
                .and_then(Value::as_array)
                .ok_or_else(|| format!("histogram field `{path}` is not an array"))?
                .iter()
                .map(|x| {
                    x.as_u64().ok_or_else(|| format!("histogram field `{path}` has a non-u64"))
                })
                .collect()
        };
        let bounds: Vec<f64> = u64s("bounds_bits")?.into_iter().map(f64::from_bits).collect();
        let counts = u64s("counts")?;
        if counts.len() != bounds.len() + 1 {
            return Err(format!(
                "histogram counts length {} does not match {} bounds + overflow",
                counts.len(),
                bounds.len()
            ));
        }
        let total = v
            .get("total")
            .and_then(Value::as_u64)
            .ok_or_else(|| "histogram field `total` is not a u64".to_string())?;
        let sum = FixedSum::from_decimal(
            v.get("sum_fixed")
                .and_then(Value::as_str)
                .ok_or_else(|| "histogram field `sum_fixed` is not a string".to_string())?,
        )?;
        Ok(Histogram { bounds, counts, total, sum, max: bits("max_bits")? })
    }

    /// `(upper_bound, count)` rows; the final row uses `f64::INFINITY`.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(self.counts.iter().copied())
            .collect()
    }

    /// Estimates the `q`-quantile (`0.0 ≤ q ≤ 1.0`) by linear
    /// interpolation within the bucket containing the target rank, the
    /// standard fixed-bucket estimator. The first bucket interpolates
    /// from 0; the overflow bucket interpolates into
    /// `[last_bound, observed max]`, so tail quantiles reflect the real
    /// extent of the data instead of clamping to the last finite bound.
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.total as f64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if (seen + c) as f64 >= rank {
                let within = ((rank - seen as f64) / c as f64).clamp(0.0, 1.0);
                let (lo, hi) = match self.bounds.get(i) {
                    Some(&hi) => (if i == 0 { 0.0 } else { self.bounds[i - 1] }, hi),
                    // Overflow bucket: unbounded above, but the tracked
                    // maximum gives it a finite edge to interpolate to.
                    None => (self.bounds.last().copied().unwrap_or(0.0), self.max),
                };
                return lo + (hi - lo) * within;
            }
            seen += c;
        }
        self.max
    }
}

/// Counter/gauge values captured at one power-cycle boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Power-cycle index at the capture.
    pub cycle: u64,
    /// Simulated time of the capture (µs).
    pub t_us: f64,
    /// Counter values, index-aligned with registration order.
    pub counters: Vec<u64>,
    /// Gauge values, index-aligned with registration order.
    pub gauges: Vec<f64>,
}

/// The registry: get-or-register by name, update through handles,
/// snapshot at cycle boundaries, serialize once at the end.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counter_names: Vec<String>,
    counter_vals: Vec<u64>,
    gauge_names: Vec<String>,
    gauge_vals: Vec<f64>,
    hist_names: Vec<String>,
    hists: Vec<Histogram>,
    snapshots: Vec<Snapshot>,
}

impl MetricsRegistry {
    /// Registers (or finds) a counter named `name`.
    pub fn counter(&mut self, name: &str) -> Counter {
        if let Some(i) = self.counter_names.iter().position(|n| n == name) {
            return Counter(i);
        }
        self.counter_names.push(name.to_string());
        self.counter_vals.push(0);
        Counter(self.counter_names.len() - 1)
    }

    /// Registers (or finds) a gauge named `name`.
    pub fn gauge(&mut self, name: &str) -> Gauge {
        if let Some(i) = self.gauge_names.iter().position(|n| n == name) {
            return Gauge(i);
        }
        self.gauge_names.push(name.to_string());
        self.gauge_vals.push(0.0);
        Gauge(self.gauge_names.len() - 1)
    }

    /// Registers (or finds) a histogram named `name`. The bounds of the
    /// first registration win.
    pub fn histogram(&mut self, name: &str, bounds: &[f64]) -> HistogramId {
        if let Some(i) = self.hist_names.iter().position(|n| n == name) {
            return HistogramId(i);
        }
        self.hist_names.push(name.to_string());
        self.hists.push(Histogram::with_bounds(bounds));
        HistogramId(self.hist_names.len() - 1)
    }

    /// Adds `by` to a counter.
    #[inline]
    pub fn inc(&mut self, c: Counter, by: u64) {
        self.counter_vals[c.0] += by;
    }

    /// Sets a gauge.
    #[inline]
    pub fn set(&mut self, g: Gauge, v: f64) {
        self.gauge_vals[g.0] = v;
    }

    /// Records one histogram observation.
    #[inline]
    pub fn observe(&mut self, h: HistogramId, v: f64) {
        self.hists[h.0].observe(v);
    }

    /// Current value of a counter.
    pub fn counter_value(&self, c: Counter) -> u64 {
        self.counter_vals[c.0]
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, g: Gauge) -> f64 {
        self.gauge_vals[g.0]
    }

    /// The histogram behind a handle.
    pub fn histogram_data(&self, h: HistogramId) -> &Histogram {
        &self.hists[h.0]
    }

    /// Captures all counter and gauge values at a cycle boundary.
    pub fn snapshot(&mut self, cycle: u64, t_us: f64) {
        self.snapshots.push(Snapshot {
            cycle,
            t_us,
            counters: self.counter_vals.clone(),
            gauges: self.gauge_vals.clone(),
        });
    }

    /// Snapshots captured so far, in capture order.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snapshots
    }

    /// Serializes final values, histogram buckets and every snapshot.
    pub fn to_json(&self) -> Value {
        let counters: Vec<Value> = self
            .counter_names
            .iter()
            .zip(&self.counter_vals)
            .map(|(n, v)| serde_json::json!({ "name": n, "value": v }))
            .collect();
        let gauges: Vec<Value> = self
            .gauge_names
            .iter()
            .zip(&self.gauge_vals)
            .map(|(n, v)| serde_json::json!({ "name": n, "value": v }))
            .collect();
        let hists: Vec<Value> = self
            .hist_names
            .iter()
            .zip(&self.hists)
            .map(|(n, h)| {
                let buckets: Vec<Value> = h
                    .buckets()
                    .into_iter()
                    .map(|(ub, c)| serde_json::json!({ "le": ub, "count": c }))
                    .collect();
                serde_json::json!({
                    "name": n, "count": h.count(), "mean": h.mean(),
                    "p50": h.percentile(0.50), "p90": h.percentile(0.90),
                    "p99": h.percentile(0.99), "buckets": buckets,
                })
            })
            .collect();
        let snapshots: Vec<Value> = self
            .snapshots
            .iter()
            .map(|s| {
                serde_json::json!({
                    "cycle": s.cycle,
                    "t_us": s.t_us,
                    "counters": s.counters.clone(),
                    "gauges": s.gauges.clone(),
                })
            })
            .collect();
        serde_json::json!({
            "counters": counters,
            "gauges": gauges,
            "histograms": hists,
            "snapshots": snapshots,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once() {
        let mut m = MetricsRegistry::default();
        let a = m.counter("fills");
        let b = m.counter("fills");
        assert_eq!(a, b);
        m.inc(a, 3);
        m.inc(b, 2);
        assert_eq!(m.counter_value(a), 5);
        let g = m.gauge("voltage");
        m.set(g, 2.01);
        assert_eq!(m.gauge_value(g), 2.01);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut m = MetricsRegistry::default();
        let h = m.histogram("cycle_insts", &[10.0, 100.0]);
        for v in [5.0, 7.0, 50.0, 5000.0] {
            m.observe(h, v);
        }
        let data = m.histogram_data(h);
        assert_eq!(data.count(), 4);
        let buckets = data.buckets();
        assert_eq!(buckets[0], (10.0, 2));
        assert_eq!(buckets[1], (100.0, 1));
        assert_eq!(buckets[2].1, 1, "overflow bucket catches the rest");
        assert!((data.mean() - 1265.5).abs() < 1e-9);
    }

    #[test]
    fn percentiles_on_a_known_uniform_distribution() {
        let mut m = MetricsRegistry::default();
        // 10-wide buckets up to 100; observe 1..=100 → exactly 10 per
        // bucket, a uniform distribution with known quantiles.
        let bounds: Vec<f64> = (1..=10).map(|i| (i * 10) as f64).collect();
        let h = m.histogram("uniform", &bounds);
        for v in 1..=100 {
            m.observe(h, v as f64);
        }
        let data = m.histogram_data(h);
        assert!((data.percentile(0.50) - 50.0).abs() < 1e-9);
        assert!((data.percentile(0.90) - 90.0).abs() < 1e-9);
        assert!((data.percentile(0.99) - 99.0).abs() < 1e-9);
        assert_eq!(data.percentile(0.0), 0.0);
        assert!((data.percentile(1.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_interpolate_into_overflow_tail() {
        let mut m = MetricsRegistry::default();
        let h = m.histogram("latency", &[10.0, 100.0]);
        // 3 observations in (0,10], 1 in the overflow bucket.
        for v in [2.0, 4.0, 9.0, 5000.0] {
            m.observe(h, v);
        }
        let data = m.histogram_data(h);
        // p50 → rank 2 of 3 inside the first bucket: 10 × (2/3).
        assert!((data.percentile(0.50) - 10.0 * (2.0 / 3.0)).abs() < 1e-9);
        // p99 → rank 3.96 in the overflow bucket: interpolates 96 % of
        // the way into [last_bound=100, max=5000], not a clamp to 100.
        assert!((data.percentile(0.99) - (100.0 + 4900.0 * 0.96)).abs() < 1e-9);
        // p100 reaches the observed maximum exactly.
        assert_eq!(data.percentile(1.0), 5000.0);
        assert_eq!(data.max(), 5000.0);
        // Empty histogram reports zero everywhere.
        let e = m.histogram("empty", &[1.0]);
        assert_eq!(m.histogram_data(e).percentile(0.5), 0.0);
    }

    #[test]
    fn overflow_p99_regression_tail_not_clamped() {
        // Regression for the fleet-campaign tail bug: 99 observations at
        // 1.0 and 2 far out in the overflow bucket put p99 in overflow.
        // The old estimator returned the last finite bound (10.0),
        // understating the tail by orders of magnitude.
        let mut h = Histogram::with_bounds(&[5.0, 10.0]);
        h.observe_n(1.0, 99);
        h.observe(800.0);
        h.observe(1000.0);
        let p99 = h.percentile(0.99);
        assert!(p99 > 10.0, "p99 must escape the last finite bound, got {p99}");
        assert!(p99 <= 1000.0, "p99 cannot exceed the observed max, got {p99}");
        // rank 99.99 with 99 seen → 0.495 of the way through the
        // 2-count overflow bucket spanning [10, 1000].
        assert!((p99 - (10.0 + 990.0 * 0.495)).abs() < 1e-9);
    }

    #[test]
    fn exact_json_round_trip_is_bit_identical() {
        let mut h = Histogram::with_bounds(&[0.1, 2.5, 10.0]);
        for v in [0.05, 0.3, 3.3, 1e9, 7.77] {
            h.observe(v);
        }
        let back = Histogram::from_exact_json(&h.to_exact_json()).unwrap();
        assert_eq!(h, back);
        assert_eq!(h.sum, back.sum);
        assert_eq!(h.max.to_bits(), back.max.to_bits());
        // Empty histograms round-trip too (max = -inf has no JSON f64).
        let e = Histogram::with_bounds(&[1.0]);
        assert_eq!(Histogram::from_exact_json(&e.to_exact_json()).unwrap(), e);
        // Mangled counts are rejected with a named field.
        let mut bad = h.to_exact_json();
        let Value::Object(fields) = &mut bad else { panic!("exact json is an object") };
        fields.iter_mut().find(|(k, _)| k == "counts").unwrap().1 = serde_json::json!([1, 2]);
        let err = Histogram::from_exact_json(&bad).unwrap_err();
        assert!(err.contains("counts"), "{err}");
    }

    #[test]
    fn merge_is_exact_for_counts_mean_and_quantiles() {
        let bounds: Vec<f64> = (1..=10).map(|i| (i * 10) as f64).collect();
        // Split the 1..=100 uniform across two histograms, merge, and
        // compare against one histogram fed the whole population.
        let mut left = Histogram::with_bounds(&bounds);
        let mut right = Histogram::with_bounds(&bounds);
        let mut whole = Histogram::with_bounds(&bounds);
        for v in 1..=100 {
            if v % 3 == 0 { &mut left } else { &mut right }.observe(v as f64);
            whole.observe(v as f64);
        }
        left.merge(&right).unwrap();
        assert_eq!(left, whole);
        assert_eq!(left.count(), 100);
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert!((left.percentile(q) - whole.percentile(q)).abs() < 1e-12, "q={q}");
        }
    }

    #[test]
    fn merge_rejects_mismatched_bounds() {
        let mut a = Histogram::with_bounds(&[1.0, 2.0]);
        let b = Histogram::with_bounds(&[1.0, 4.0]);
        let err = a.merge(&b).unwrap_err();
        assert!(err.contains("bounds mismatch"), "{err}");
    }

    #[test]
    fn observe_n_matches_repeated_observe() {
        let mut batched = Histogram::with_bounds(&[4.0, 8.0]);
        let mut looped = Histogram::with_bounds(&[4.0, 8.0]);
        batched.observe_n(3.0, 5);
        batched.observe_n(100.0, 2);
        for _ in 0..5 {
            looped.observe(3.0);
        }
        for _ in 0..2 {
            looped.observe(100.0);
        }
        assert_eq!(batched, looped);
    }

    #[test]
    fn snapshots_capture_point_in_time_values() {
        let mut m = MetricsRegistry::default();
        let c = m.counter("evictions");
        m.inc(c, 4);
        m.snapshot(0, 100.0);
        m.inc(c, 6);
        m.snapshot(1, 250.0);
        let snaps = m.snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].counters, vec![4]);
        assert_eq!(snaps[1].counters, vec![10]);
        assert_eq!(snaps[1].cycle, 1);
    }
}
