//! Telemetry for the Kagura simulator stack: typed event tracing, a
//! metrics registry, and wall-clock timing spans.
//!
//! The simulator's end-of-run aggregates ([`SimStats`]) say *what*
//! happened; this crate records *when*. Kagura's contribution is a
//! temporal decision — predicting the remaining memory operations of a
//! power cycle and switching CM→RM at the right moment — so estimator
//! quality, AIMD threshold dynamics and mode-switch timing only become
//! visible through an in-run event stream.
//!
//! [`SimStats`]: ../ehs_sim/stats/struct.SimStats.html
//!
//! # Architecture
//!
//! * [`Event`] — the typed event taxonomy (power-cycle lifecycle, Kagura
//!   controller decisions, cache fill outcomes, estimator samples), each
//!   stamped with simulated time and power-cycle index ([`Stamped`]).
//! * [`Sink`] — where stamped events go. The simulator holds
//!   `Option<&mut Telemetry>`: the `None` default costs one untaken
//!   branch per event site and performs **zero** allocations, calls or
//!   writes — experiment output is byte-identical with telemetry off.
//!   [`NullSink`] is the trait-level no-op for generic contexts;
//!   [`RingSink`] keeps the last N events in memory; [`JsonlSink`]
//!   streams one compact JSON object per line; [`ChromeTraceSink`]
//!   builds a Chrome trace-event file loadable in Perfetto.
//! * [`MetricsRegistry`] — named counters, gauges and fixed-bucket
//!   histograms, snapshotted at every power-cycle boundary.
//! * [`Reservoir`] — a seeded bottom-k sample sketch whose shard merges
//!   are exactly associative; fleet campaigns stream per-cell metrics
//!   through it for constant-memory population quantiles and bootstrap
//!   confidence intervals.
//! * [`spans`] — process-wide wall-clock spans (per experiment, per
//!   simulation job) with the worker slot that ran them; drained by the
//!   bench harness into `BENCH_harness.json`.
//!
//! # Overhead contract
//!
//! Event emission sites compile to a branch on `Option::is_some` when
//! telemetry is detached; the `run_app` criterion bench guards this at
//! ≤ 2 % regression. Span creation with spans disabled is one relaxed
//! atomic load (labels are built lazily).

pub mod event;
pub mod fixed;
pub mod leak;
pub mod metrics;
pub mod sampler;
pub mod sink;
pub mod spans;

pub use event::{Event, FlightRecord, Registers, Stamped};
pub use fixed::FixedSum;
pub use leak::{channel_capacity_bits, mutual_information_bits, AttackStats, LatencyHistogram};
pub use metrics::{Counter, Gauge, Histogram, HistogramId, MetricsRegistry};
pub use sampler::{quantile_of_sorted, Reservoir};
pub use sink::{ChromeTraceSink, JsonlSink, NullSink, RingSink, Sink, VecSink};

/// A sink plus the metrics registry fed alongside it: what an
/// instrumented simulator borrows for the duration of one run.
pub struct Telemetry<'a> {
    sink: &'a mut dyn Sink,
    /// Counters/gauges/histograms updated by the instrumented run and
    /// snapshotted at every power-cycle boundary.
    pub metrics: MetricsRegistry,
}

impl std::fmt::Debug for Telemetry<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry").field("metrics", &self.metrics).finish_non_exhaustive()
    }
}

impl<'a> Telemetry<'a> {
    /// Wraps `sink` with a fresh metrics registry.
    pub fn new(sink: &'a mut dyn Sink) -> Self {
        Telemetry { sink, metrics: MetricsRegistry::default() }
    }

    /// Stamps and records one event.
    pub fn emit(&mut self, t_us: f64, cycle: u64, event: Event) {
        self.sink.record(&Stamped { t_us, cycle, event });
    }

    /// Flushes the sink and returns the accumulated metrics.
    pub fn into_metrics(self) -> MetricsRegistry {
        self.sink.flush();
        self.metrics
    }
}
