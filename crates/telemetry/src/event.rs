//! The typed event taxonomy and its JSON wire format.
//!
//! Every event is stamped with simulated time (`t_us`) and the index of
//! the power cycle it occurred in, then serialized as one *flat* JSON
//! object — `{"t_us":…,"cycle":…,"kind":"ModeSwitch",…fields}` — so a
//! JSONL stream greps cleanly and round-trips losslessly through
//! [`Stamped::to_value`] / [`Stamped::from_value`].

use serde_json::Value;

/// Kagura's register snapshot carried by [`Event::ModeSwitch`]:
/// `(R_prev, R_mem, R_adjust, R_thres, R_evict)` at the switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Registers {
    /// Predicted memory-op count of the current power cycle.
    pub r_prev: u64,
    /// Memory ops committed so far in this cycle.
    pub r_mem: u64,
    /// Last cycle's prediction error `R_mem − R_prev`.
    pub r_adjust: i64,
    /// Compression-disabling threshold.
    pub r_thres: u64,
    /// Blocks evicted since the decision point.
    pub r_evict: u64,
}

impl From<(u64, u64, i64, u64, u64)> for Registers {
    fn from(t: (u64, u64, i64, u64, u64)) -> Self {
        Registers { r_prev: t.0, r_mem: t.1, r_adjust: t.2, r_thres: t.3, r_evict: t.4 }
    }
}

/// Per-power-cycle flight-recorder payload carried by
/// [`Event::FlightRecord`]: what the cycle executed, what the governor
/// decided, and where every picojoule went (the conservation-audited
/// ledger row, flattened).
///
/// One record is emitted at each power-cycle boundary when a flight
/// recorder is attached (`simrun --flight-record`, `repro --telemetry`);
/// the detached path emits nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightRecord {
    /// Instructions committed in the cycle.
    pub insts: u64,
    /// Memory operations committed in the cycle.
    pub mem_ops: u64,
    /// Estimator-predicted memory-op count for the cycle (`R_prev`);
    /// zero for governors without an estimator.
    pub predicted_remaining: u64,
    /// Memory ops the cycle actually delivered (oracle ground truth).
    pub actual_remaining: u64,
    /// Governor mode at the end of the cycle: `"CM"`, `"RM"`, or `"-"`
    /// for governors without a Kagura mode machine.
    pub mode: &'static str,
    /// Compressed fills performed after the last one whose block was
    /// re-referenced before the outage — compressions an ideal
    /// switch-off point would have avoided.
    pub late_compressions: u64,
    /// Compressed fills whose block was never re-referenced before the
    /// outage (the paper's wasted-work population).
    pub wasted_fills: u64,
    /// Compression energy spent on those wasted fills (pJ).
    pub wasted_pj: f64,
    /// Bytes persisted by checkpoints (JIT + sweep) during the cycle.
    pub checkpoint_bytes: u64,
    /// Ledger row: energy harvested during the cycle (pJ).
    pub harvested_pj: f64,
    /// Ledger row: per-category consumption (pJ).
    pub compress_pj: f64,
    /// Ledger row: decompression energy (pJ).
    pub decompress_pj: f64,
    /// Ledger row: other cache energy (pJ).
    pub cache_other_pj: f64,
    /// Ledger row: NVM demand-traffic energy (pJ).
    pub memory_pj: f64,
    /// Ledger row: checkpoint/restore traffic energy (pJ).
    pub checkpoint_restore_pj: f64,
    /// Ledger row: everything else — pipeline, leakage, monitor (pJ).
    pub other_pj: f64,
    /// Capacitor leakage during the cycle (pJ); informational, already
    /// inside `other_pj`.
    pub cap_leak_pj: f64,
    /// Change in capacitor stored energy over the cycle (pJ; signed).
    pub delta_stored_pj: f64,
}

impl Default for FlightRecord {
    /// An all-zero record with the governor-without-mode-machine marker
    /// (`mode: "-"`), so defaulted records survive the parse validation.
    fn default() -> Self {
        FlightRecord {
            insts: 0,
            mem_ops: 0,
            predicted_remaining: 0,
            actual_remaining: 0,
            mode: "-",
            late_compressions: 0,
            wasted_fills: 0,
            wasted_pj: 0.0,
            checkpoint_bytes: 0,
            harvested_pj: 0.0,
            compress_pj: 0.0,
            decompress_pj: 0.0,
            cache_other_pj: 0.0,
            memory_pj: 0.0,
            checkpoint_restore_pj: 0.0,
            other_pj: 0.0,
            cap_leak_pj: 0.0,
            delta_stored_pj: 0.0,
        }
    }
}

impl FlightRecord {
    fn mode_from_str(s: &str) -> Option<&'static str> {
        match s {
            "CM" => Some("CM"),
            "RM" => Some("RM"),
            "-" => Some("-"),
            _ => None,
        }
    }
}

/// One traced occurrence inside a simulation run.
///
/// Power-cycle lifecycle events come from the simulator's machine loop;
/// controller events (`ModeSwitch`, `ThresholdAdjust`,
/// `EstimatorSample`) originate inside Kagura and are drained through
/// the governor at instruction boundaries; fill/eviction events come
/// from the cache-fill path.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The capacitor crossed `V_ckpt` while running: the cycle ended.
    PowerFailure {
        /// Instructions committed in the cycle that just ended.
        insts: u64,
        /// Capacitor voltage at the failure (volts).
        voltage: f64,
    },
    /// The capacitor recharged past `V_rst` and execution resumed.
    Reboot {
        /// Time spent hibernating before this reboot (µs).
        charge_us: f64,
        /// Capacitor voltage at resumption (volts).
        voltage: f64,
    },
    /// A checkpoint (JIT or sweep-boundary) persisted dirty state.
    Checkpoint {
        /// Dirty cache blocks written to NVM.
        blocks: u32,
    },
    /// Kagura switched modes (CM→RM at the decision point, RM→CM at
    /// reboot).
    ModeSwitch {
        /// `true` for CM→RM (compression disabled), `false` for RM→CM.
        cm_to_rm: bool,
        /// Register file at the moment of the switch.
        registers: Registers,
    },
    /// AIMD adapted `R_thres` at a reboot.
    ThresholdAdjust {
        /// Threshold before adaptation.
        old: u64,
        /// Threshold after adaptation.
        new: u64,
        /// RM-mode evictions the decision was based on.
        evicted: u64,
    },
    /// A fill was stored compressed.
    CompressedFill {
        /// `true` for the DCache, `false` for the ICache.
        dcache: bool,
    },
    /// A fill bypassed compression (RM mode or uncompressible data).
    BypassedFill {
        /// `true` for the DCache, `false` for the ICache.
        dcache: bool,
    },
    /// A fill or fat write evicted resident blocks.
    Eviction {
        /// Number of blocks evicted by this one operation.
        count: u32,
        /// `true` for the DCache, `false` for the ICache.
        dcache: bool,
    },
    /// A checkpoint block's compressed payload failed to decode and was
    /// dropped: a *detected* crash-consistency violation. Only emitted
    /// under fault injection (a real run never corrupts its own stream).
    DecodeFault {
        /// Checkpoint blocks dropped by this failure.
        blocks: u32,
    },
    /// One per power-cycle boundary under Kagura: the cycle-length
    /// prediction made at reboot vs what the cycle actually delivered
    /// (the oracle ground truth), both in committed memory operations.
    EstimatorSample {
        /// `R_prev` as predicted at the start of the ended cycle.
        predicted_remaining: u64,
        /// Memory ops the cycle actually committed.
        actual_remaining: u64,
    },
    /// One per power-cycle boundary when a flight recorder is attached:
    /// the cycle's execution, governor decisions and full energy-ledger
    /// row (see [`FlightRecord`]).
    FlightRecord(FlightRecord),
    /// The cycle's energy-ledger row failed its conservation audit:
    /// `harvested − consumed − Δstored` exceeded the tolerance. A real
    /// accounting bug or a degenerate (nearly dead) trace.
    LedgerImbalance {
        /// Signed conservation residual (pJ).
        imbalance_pj: f64,
        /// Tolerance the residual was audited against (pJ).
        tolerance_pj: f64,
    },
    /// A harness job failed terminally (after any retries). Emitted by
    /// the parallel pool, not the simulator: `t_us` is host wall-clock
    /// microseconds since process start and `cycle` is always 0.
    JobFailed {
        /// Submission index of the job within its batch.
        job: u64,
        /// Human-readable failure description (the `JobFailure` text).
        reason: String,
    },
    /// A harness job failed transiently and is being retried.
    JobRetried {
        /// Submission index of the job within its batch.
        job: u64,
        /// 1-based attempt number that just failed.
        attempt: u64,
    },
    /// A harness job was cancelled by its cooperative watchdog budget.
    JobTimedOut {
        /// Submission index of the job within its batch.
        job: u64,
        /// Instructions the simulation had executed when cancelled.
        executed_insts: u64,
    },
    /// The serving layer shed a request at admission because the queue
    /// was full. Emitted by `simrun serve`, not the simulator: like the
    /// job events, `t_us` is host wall-clock microseconds and `cycle`
    /// is always 0.
    RequestShed {
        /// Requests admitted (queued or running) at the shed decision.
        admitted: u64,
        /// Back-off hint returned to the client (milliseconds).
        retry_after_ms: u64,
    },
    /// The serving layer began its graceful drain (SIGTERM or
    /// stdin EOF): new work is rejected while in-flight requests finish.
    ServerDrain {
        /// Requests still in flight when the drain began.
        in_flight: u64,
        /// Result-cache entries about to be persisted.
        cache_entries: u64,
    },
}

impl Event {
    /// Stable identifier used as the `kind` field on the wire.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::PowerFailure { .. } => "PowerFailure",
            Event::Reboot { .. } => "Reboot",
            Event::Checkpoint { .. } => "Checkpoint",
            Event::ModeSwitch { .. } => "ModeSwitch",
            Event::ThresholdAdjust { .. } => "ThresholdAdjust",
            Event::CompressedFill { .. } => "CompressedFill",
            Event::BypassedFill { .. } => "BypassedFill",
            Event::Eviction { .. } => "Eviction",
            Event::DecodeFault { .. } => "DecodeFault",
            Event::EstimatorSample { .. } => "EstimatorSample",
            Event::FlightRecord(_) => "FlightRecord",
            Event::LedgerImbalance { .. } => "LedgerImbalance",
            Event::JobFailed { .. } => "JobFailed",
            Event::JobRetried { .. } => "JobRetried",
            Event::JobTimedOut { .. } => "JobTimedOut",
            Event::RequestShed { .. } => "RequestShed",
            Event::ServerDrain { .. } => "ServerDrain",
        }
    }

    /// The event's payload as ordered `(name, value)` pairs.
    pub fn fields(&self) -> Vec<(&'static str, Value)> {
        if let Event::JobFailed { job, reason } = self {
            return vec![("job", (*job).into()), ("reason", reason.clone().into())];
        }
        match *self {
            Event::PowerFailure { insts, voltage } => {
                vec![("insts", insts.into()), ("voltage", voltage.into())]
            }
            Event::Reboot { charge_us, voltage } => {
                vec![("charge_us", charge_us.into()), ("voltage", voltage.into())]
            }
            Event::Checkpoint { blocks } => vec![("blocks", Value::U64(blocks as u64))],
            Event::ModeSwitch { cm_to_rm, registers: r } => vec![
                ("cm_to_rm", cm_to_rm.into()),
                ("r_prev", r.r_prev.into()),
                ("r_mem", r.r_mem.into()),
                ("r_adjust", r.r_adjust.into()),
                ("r_thres", r.r_thres.into()),
                ("r_evict", r.r_evict.into()),
            ],
            Event::ThresholdAdjust { old, new, evicted } => {
                vec![("old", old.into()), ("new", new.into()), ("evicted", evicted.into())]
            }
            Event::CompressedFill { dcache } | Event::BypassedFill { dcache } => {
                vec![("dcache", dcache.into())]
            }
            Event::Eviction { count, dcache } => {
                vec![("count", Value::U64(count as u64)), ("dcache", dcache.into())]
            }
            Event::DecodeFault { blocks } => vec![("blocks", Value::U64(blocks as u64))],
            Event::EstimatorSample { predicted_remaining, actual_remaining } => vec![
                ("predicted_remaining", predicted_remaining.into()),
                ("actual_remaining", actual_remaining.into()),
            ],
            Event::FlightRecord(r) => vec![
                ("insts", r.insts.into()),
                ("mem_ops", r.mem_ops.into()),
                ("predicted_remaining", r.predicted_remaining.into()),
                ("actual_remaining", r.actual_remaining.into()),
                ("mode", r.mode.into()),
                ("late_compressions", r.late_compressions.into()),
                ("wasted_fills", r.wasted_fills.into()),
                ("wasted_pj", r.wasted_pj.into()),
                ("checkpoint_bytes", r.checkpoint_bytes.into()),
                ("harvested_pj", r.harvested_pj.into()),
                ("compress_pj", r.compress_pj.into()),
                ("decompress_pj", r.decompress_pj.into()),
                ("cache_other_pj", r.cache_other_pj.into()),
                ("memory_pj", r.memory_pj.into()),
                ("checkpoint_restore_pj", r.checkpoint_restore_pj.into()),
                ("other_pj", r.other_pj.into()),
                ("cap_leak_pj", r.cap_leak_pj.into()),
                ("delta_stored_pj", r.delta_stored_pj.into()),
            ],
            Event::LedgerImbalance { imbalance_pj, tolerance_pj } => {
                vec![("imbalance_pj", imbalance_pj.into()), ("tolerance_pj", tolerance_pj.into())]
            }
            // Handled by the borrow-matching prologue above (String field).
            Event::JobFailed { .. } => unreachable!("JobFailed returned early"),
            Event::JobRetried { job, attempt } => {
                vec![("job", job.into()), ("attempt", attempt.into())]
            }
            Event::JobTimedOut { job, executed_insts } => {
                vec![("job", job.into()), ("executed_insts", executed_insts.into())]
            }
            Event::RequestShed { admitted, retry_after_ms } => {
                vec![("admitted", admitted.into()), ("retry_after_ms", retry_after_ms.into())]
            }
            Event::ServerDrain { in_flight, cache_entries } => {
                vec![("in_flight", in_flight.into()), ("cache_entries", cache_entries.into())]
            }
        }
    }

    /// Rebuilds an event from its `kind` and a flat field object.
    /// Returns `None` for unknown kinds or missing/mistyped fields.
    pub fn from_kind_fields(kind: &str, obj: &Value) -> Option<Event> {
        Event::from_kind_fields_strict(kind, obj).ok()
    }

    /// Like [`Event::from_kind_fields`], but on malformed input the error
    /// names the offending field (missing, mistyped, or out of range) so
    /// strict stream parsers can point at the exact defect.
    pub fn from_kind_fields_strict(kind: &str, obj: &Value) -> Result<Event, String> {
        fn field<'a>(obj: &'a Value, k: &str) -> Result<&'a Value, String> {
            obj.get(k).ok_or_else(|| format!("missing field `{k}`"))
        }
        let u = |k: &str| {
            field(obj, k)?.as_u64().ok_or_else(|| format!("field `{k}` is not an unsigned integer"))
        };
        let f =
            |k: &str| field(obj, k)?.as_f64().ok_or_else(|| format!("field `{k}` is not a number"));
        let b = |k: &str| {
            field(obj, k)?.as_bool().ok_or_else(|| format!("field `{k}` is not a boolean"))
        };
        let s =
            |k: &str| field(obj, k)?.as_str().ok_or_else(|| format!("field `{k}` is not a string"));
        Ok(match kind {
            "PowerFailure" => Event::PowerFailure { insts: u("insts")?, voltage: f("voltage")? },
            "Reboot" => Event::Reboot { charge_us: f("charge_us")?, voltage: f("voltage")? },
            "Checkpoint" => Event::Checkpoint { blocks: u("blocks")? as u32 },
            "ModeSwitch" => Event::ModeSwitch {
                cm_to_rm: b("cm_to_rm")?,
                registers: Registers {
                    r_prev: u("r_prev")?,
                    r_mem: u("r_mem")?,
                    r_adjust: field(obj, "r_adjust")?
                        .as_i64()
                        .ok_or_else(|| "field `r_adjust` is not an integer".to_string())?,
                    r_thres: u("r_thres")?,
                    r_evict: u("r_evict")?,
                },
            },
            "ThresholdAdjust" => {
                Event::ThresholdAdjust { old: u("old")?, new: u("new")?, evicted: u("evicted")? }
            }
            "CompressedFill" => Event::CompressedFill { dcache: b("dcache")? },
            "BypassedFill" => Event::BypassedFill { dcache: b("dcache")? },
            "Eviction" => Event::Eviction { count: u("count")? as u32, dcache: b("dcache")? },
            "DecodeFault" => Event::DecodeFault { blocks: u("blocks")? as u32 },
            "EstimatorSample" => Event::EstimatorSample {
                predicted_remaining: u("predicted_remaining")?,
                actual_remaining: u("actual_remaining")?,
            },
            "FlightRecord" => Event::FlightRecord(FlightRecord {
                insts: u("insts")?,
                mem_ops: u("mem_ops")?,
                predicted_remaining: u("predicted_remaining")?,
                actual_remaining: u("actual_remaining")?,
                mode: FlightRecord::mode_from_str(s("mode")?).ok_or_else(|| {
                    "field `mode` is not one of \"CM\", \"RM\", \"-\"".to_string()
                })?,
                late_compressions: u("late_compressions")?,
                wasted_fills: u("wasted_fills")?,
                wasted_pj: f("wasted_pj")?,
                checkpoint_bytes: u("checkpoint_bytes")?,
                harvested_pj: f("harvested_pj")?,
                compress_pj: f("compress_pj")?,
                decompress_pj: f("decompress_pj")?,
                cache_other_pj: f("cache_other_pj")?,
                memory_pj: f("memory_pj")?,
                checkpoint_restore_pj: f("checkpoint_restore_pj")?,
                other_pj: f("other_pj")?,
                cap_leak_pj: f("cap_leak_pj")?,
                delta_stored_pj: f("delta_stored_pj")?,
            }),
            "LedgerImbalance" => Event::LedgerImbalance {
                imbalance_pj: f("imbalance_pj")?,
                tolerance_pj: f("tolerance_pj")?,
            },
            "JobFailed" => Event::JobFailed { job: u("job")?, reason: s("reason")?.to_string() },
            "JobRetried" => Event::JobRetried { job: u("job")?, attempt: u("attempt")? },
            "JobTimedOut" => {
                Event::JobTimedOut { job: u("job")?, executed_insts: u("executed_insts")? }
            }
            "RequestShed" => Event::RequestShed {
                admitted: u("admitted")?,
                retry_after_ms: u("retry_after_ms")?,
            },
            "ServerDrain" => Event::ServerDrain {
                in_flight: u("in_flight")?,
                cache_entries: u("cache_entries")?,
            },
            _ => return Err(format!("unknown event kind `{kind}`")),
        })
    }

    /// Whether this event belongs in a flight-record stream
    /// (`flight_<app>.jsonl`): the per-cycle records themselves plus the
    /// governor-decision events `repro explain` reconstructs timelines
    /// from. Shared filter between `simrun --flight-record`, the
    /// `energy_waste` experiment and `repro explain`.
    pub fn flight_relevant(&self) -> bool {
        matches!(
            self,
            Event::FlightRecord(_)
                | Event::LedgerImbalance { .. }
                | Event::ModeSwitch { .. }
                | Event::ThresholdAdjust { .. }
                | Event::EstimatorSample { .. }
                | Event::Reboot { .. }
        )
    }
}

/// An [`Event`] stamped with simulated time and power-cycle index.
#[derive(Debug, Clone, PartialEq)]
pub struct Stamped {
    /// Simulated time of the event in microseconds.
    pub t_us: f64,
    /// Index of the power cycle the event occurred in (0-based; the
    /// `PowerFailure` closing cycle *k* is stamped with cycle *k*).
    pub cycle: u64,
    /// The event itself.
    pub event: Event,
}

impl Stamped {
    /// Flat JSON object: stamp first, then `kind`, then the payload.
    pub fn to_value(&self) -> Value {
        let mut members: Vec<(String, Value)> = vec![
            ("t_us".to_string(), self.t_us.into()),
            ("cycle".to_string(), self.cycle.into()),
            ("kind".to_string(), self.event.kind().into()),
        ];
        members.extend(self.event.fields().into_iter().map(|(k, v)| (k.to_string(), v)));
        Value::Object(members)
    }

    /// Inverse of [`Stamped::to_value`]; `None` on malformed input.
    pub fn from_value(v: &Value) -> Option<Stamped> {
        Stamped::from_value_strict(v).ok()
    }

    /// Like [`Stamped::from_value`], but the error names the offending
    /// field (stamp fields included), for strict stream parsers that
    /// report defects instead of swallowing them.
    pub fn from_value_strict(v: &Value) -> Result<Stamped, String> {
        let kind = v
            .get("kind")
            .ok_or_else(|| "missing field `kind`".to_string())?
            .as_str()
            .ok_or_else(|| "field `kind` is not a string".to_string())?;
        Ok(Stamped {
            t_us: v
                .get("t_us")
                .ok_or_else(|| "missing field `t_us`".to_string())?
                .as_f64()
                .ok_or_else(|| "field `t_us` is not a number".to_string())?,
            cycle: v
                .get("cycle")
                .ok_or_else(|| "missing field `cycle`".to_string())?
                .as_u64()
                .ok_or_else(|| "field `cycle` is not an unsigned integer".to_string())?,
            event: Event::from_kind_fields_strict(kind, v)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Stamped> {
        vec![
            Stamped { t_us: 0.5, cycle: 0, event: Event::CompressedFill { dcache: true } },
            Stamped {
                t_us: 1.25,
                cycle: 0,
                event: Event::ModeSwitch {
                    cm_to_rm: true,
                    registers: Registers {
                        r_prev: 900,
                        r_mem: 868,
                        r_adjust: -32,
                        r_thres: 32,
                        r_evict: 0,
                    },
                },
            },
            Stamped {
                t_us: 2.0,
                cycle: 0,
                event: Event::EstimatorSample { predicted_remaining: 900, actual_remaining: 912 },
            },
            Stamped {
                t_us: 2.0,
                cycle: 0,
                event: Event::PowerFailure { insts: 4096, voltage: 2.0 },
            },
            Stamped {
                t_us: 9.75,
                cycle: 1,
                event: Event::Reboot { charge_us: 7.75, voltage: 2.016 },
            },
            Stamped {
                t_us: 10.0,
                cycle: 1,
                event: Event::ThresholdAdjust { old: 32, new: 35, evicted: 0 },
            },
        ]
    }

    #[test]
    fn every_variant_round_trips_through_value() {
        let all = vec![
            Event::PowerFailure { insts: 1, voltage: 1.99 },
            Event::Reboot { charge_us: 3.5, voltage: 2.016 },
            Event::Checkpoint { blocks: 12 },
            Event::ModeSwitch { cm_to_rm: false, registers: Registers::default() },
            Event::ThresholdAdjust { old: 64, new: 32, evicted: 9 },
            Event::CompressedFill { dcache: false },
            Event::BypassedFill { dcache: true },
            Event::Eviction { count: 2, dcache: true },
            Event::DecodeFault { blocks: 1 },
            Event::EstimatorSample { predicted_remaining: 7, actual_remaining: 9 },
            Event::FlightRecord(FlightRecord {
                insts: 4096,
                mem_ops: 812,
                predicted_remaining: 900,
                actual_remaining: 812,
                mode: "RM",
                late_compressions: 3,
                wasted_fills: 5,
                wasted_pj: 19.2,
                checkpoint_bytes: 1024,
                harvested_pj: 60_000.0,
                compress_pj: 42.0,
                decompress_pj: 17.5,
                cache_other_pj: 300.25,
                memory_pj: 12_000.0,
                checkpoint_restore_pj: 512.0,
                other_pj: 47_000.125,
                cap_leak_pj: 1_000.5,
                delta_stored_pj: 128.125,
            }),
            Event::LedgerImbalance { imbalance_pj: 1.75, tolerance_pj: 0.5 },
            Event::JobFailed { job: 3, reason: "simulation panicked: boom".to_string() },
            Event::JobRetried { job: 3, attempt: 1 },
            Event::JobTimedOut { job: 4, executed_insts: 1_000_000 },
            Event::RequestShed { admitted: 9, retry_after_ms: 250 },
            Event::ServerDrain { in_flight: 2, cache_entries: 31 },
        ];
        for (i, event) in all.into_iter().enumerate() {
            let s = Stamped { t_us: i as f64 + 0.125, cycle: i as u64, event };
            let back = Stamped::from_value(&s.to_value()).expect("round trip");
            assert_eq!(back, s);
        }
    }

    #[test]
    fn wire_format_is_flat_and_greppable() {
        let s = &samples()[1];
        let text = serde_json::to_string(&s.to_value()).unwrap();
        assert!(text.starts_with("{\"t_us\":1.25,\"cycle\":0,\"kind\":\"ModeSwitch\""), "{text}");
        assert!(text.contains("\"r_adjust\":-32"));
    }

    #[test]
    fn flight_relevant_selects_decision_events_only() {
        assert!(Event::LedgerImbalance { imbalance_pj: 1.0, tolerance_pj: 0.5 }.flight_relevant());
        assert!(Event::ThresholdAdjust { old: 32, new: 35, evicted: 0 }.flight_relevant());
        assert!(Event::Reboot { charge_us: 1.0, voltage: 2.016 }.flight_relevant());
        assert!(!Event::CompressedFill { dcache: true }.flight_relevant());
        assert!(!Event::Checkpoint { blocks: 4 }.flight_relevant());
        assert!(!Event::PowerFailure { insts: 1, voltage: 2.0 }.flight_relevant());
    }

    #[test]
    fn flight_record_mode_is_validated_on_parse() {
        let mut v = Stamped {
            t_us: 1.0,
            cycle: 0,
            event: Event::FlightRecord(FlightRecord {
                insts: 0,
                mem_ops: 0,
                predicted_remaining: 0,
                actual_remaining: 0,
                mode: "CM",
                late_compressions: 0,
                wasted_fills: 0,
                wasted_pj: 0.0,
                checkpoint_bytes: 0,
                harvested_pj: 0.0,
                compress_pj: 0.0,
                decompress_pj: 0.0,
                cache_other_pj: 0.0,
                memory_pj: 0.0,
                checkpoint_restore_pj: 0.0,
                other_pj: 0.0,
                cap_leak_pj: 0.0,
                delta_stored_pj: 0.0,
            }),
        }
        .to_value();
        if let Value::Object(members) = &mut v {
            for (k, val) in members.iter_mut() {
                if k == "mode" {
                    *val = Value::String("XX".to_string());
                }
            }
        }
        assert!(Stamped::from_value(&v).is_none());
    }

    #[test]
    fn malformed_values_are_rejected_not_panicked() {
        assert!(Stamped::from_value(&Value::Null).is_none());
        let missing = serde_json::json!({"t_us": 1.0, "cycle": 0, "kind": "Eviction"});
        assert!(Stamped::from_value(&missing).is_none());
        let unknown = serde_json::json!({"t_us": 1.0, "cycle": 0, "kind": "Nope"});
        assert!(Stamped::from_value(&unknown).is_none());
    }

    #[test]
    fn strict_parse_names_the_offending_field() {
        let missing = serde_json::json!({"t_us": 1.0, "cycle": 0, "kind": "Eviction"});
        let err = Stamped::from_value_strict(&missing).unwrap_err();
        assert!(err.contains("`count`"), "{err}");

        let mistyped =
            serde_json::json!({"t_us": 1.0, "cycle": 0, "kind": "Eviction", "count": "two"});
        let err = Stamped::from_value_strict(&mistyped).unwrap_err();
        assert!(err.contains("`count`") && err.contains("not an unsigned integer"), "{err}");

        let no_stamp = serde_json::json!({"kind": "Checkpoint", "blocks": 4});
        let err = Stamped::from_value_strict(&no_stamp).unwrap_err();
        assert!(err.contains("`t_us`"), "{err}");

        let unknown = serde_json::json!({"t_us": 1.0, "cycle": 0, "kind": "Nope"});
        let err = Stamped::from_value_strict(&unknown).unwrap_err();
        assert!(err.contains("unknown event kind"), "{err}");
    }
}
