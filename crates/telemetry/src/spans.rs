//! Process-wide wall-clock timing spans.
//!
//! The parallel experiment harness wraps each experiment and each leaf
//! simulation job in a span; the `bench` binary drains them into
//! `BENCH_harness.json` so per-experiment wall-clock sits next to the
//! harness total. Recording is off by default: creating a span while
//! disabled is one relaxed atomic load and the label closure is never
//! invoked.
//!
//! Worker attribution: the pool in `ehs_sim::parallel` tags each worker
//! thread with a slot number (1-based; 0 = the caller's thread / inline
//! execution), which every span records.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use serde_json::Value;

static ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    static WORKER_SLOT: Cell<usize> = const { Cell::new(0) };
}

/// Turns span recording on or off process-wide.
pub fn set_enabled(on: bool) {
    if on {
        let _ = epoch(); // pin t=0 before the first span
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether spans are currently recorded.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Tags the current thread with a worker-pool slot (1-based; 0 means
/// "not a pool worker").
pub fn set_worker_slot(slot: usize) {
    WORKER_SLOT.with(|w| w.set(slot));
}

/// The current thread's worker slot.
pub fn worker_slot() -> usize {
    WORKER_SLOT.with(|w| w.get())
}

/// Process start reference for span timestamps.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn records() -> &'static Mutex<Vec<SpanRecord>> {
    static RECORDS: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    RECORDS.get_or_init(|| Mutex::new(Vec::new()))
}

/// One finished span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Coarse grouping: `"experiment"`, `"sim"`, `"harness"`, …
    pub category: &'static str,
    /// Span-specific label (experiment id, `app:governor`, …).
    pub label: String,
    /// Start time relative to the span epoch (µs).
    pub start_us: f64,
    /// Duration (µs).
    pub dur_us: f64,
    /// Worker slot of the recording thread (0 = inline).
    pub worker: usize,
}

/// An in-flight span; records itself on drop. Inert when recording was
/// disabled at creation.
#[derive(Debug)]
#[must_use = "a span measures until dropped"]
pub struct Span {
    inner: Option<(&'static str, String, Instant)>,
}

impl Span {
    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some((category, label, start)) = self.inner.take() else {
            return;
        };
        let record = SpanRecord {
            category,
            label,
            start_us: start.duration_since(epoch()).as_secs_f64() * 1e6,
            dur_us: start.elapsed().as_secs_f64() * 1e6,
            worker: worker_slot(),
        };
        records().lock().unwrap_or_else(|e| e.into_inner()).push(record);
    }
}

/// Starts a span. `label` is only invoked when recording is enabled.
pub fn span(category: &'static str, label: impl FnOnce() -> String) -> Span {
    if !enabled() {
        return Span { inner: None };
    }
    Span { inner: Some((category, label(), Instant::now())) }
}

/// Removes and returns every finished span recorded so far.
pub fn drain() -> Vec<SpanRecord> {
    std::mem::take(&mut *records().lock().unwrap_or_else(|e| e.into_inner()))
}

/// Serializes span records (one object per span, seconds for
/// readability alongside the µs fields).
pub fn to_json(spans: &[SpanRecord]) -> Value {
    let rows: Vec<Value> = spans
        .iter()
        .map(|s| {
            serde_json::json!({
                "category": s.category,
                "label": s.label.clone(),
                "start_us": s.start_us,
                "dur_us": s.dur_us,
                "seconds": s.dur_us / 1e6,
                "worker": s.worker,
            })
        })
        .collect();
    Value::Array(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_only_while_enabled() {
        // Serialize against other tests of this module via the records
        // lock: drain to start clean.
        let _ = drain();
        set_enabled(false);
        {
            let _s = span("test", || unreachable!("label must not be built while disabled"));
        }
        assert!(drain().iter().all(|s| s.category != "test"));

        set_enabled(true);
        {
            let _s = span("test", || "one".to_string());
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        set_enabled(false);
        let spans: Vec<SpanRecord> = drain().into_iter().filter(|s| s.category == "test").collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].label, "one");
        assert!(spans[0].dur_us >= 1000.0, "slept 2ms, recorded {}", spans[0].dur_us);
    }

    #[test]
    fn worker_slot_is_per_thread() {
        set_worker_slot(3);
        assert_eq!(worker_slot(), 3);
        let other = std::thread::spawn(worker_slot).join().unwrap();
        assert_eq!(other, 0, "fresh threads start at slot 0");
        set_worker_slot(0);
    }
}
