//! Pins the fleet engine's aggregation contract: histogram and
//! reservoir shard merges are exactly associative and order-
//! insensitive, and merging any sharding of a stream is bit-identical
//! to feeding the whole stream into one aggregate.
//!
//! These properties are what make `repro fleet` reports byte-identical
//! at any `--jobs` value and `--fleet-shard` size, and what lets a
//! SIGKILLed campaign resume from journaled shard aggregates without
//! drifting — so they are proptest-pinned rather than example-tested.

use ehs_telemetry::{Histogram, Reservoir};
use proptest::prelude::*;

const BOUNDS: &[f64] = &[0.25, 0.5, 1.0, 2.0, 4.0];

/// A keyed observation stream: the value and which shard gets it.
fn stream(max_shards: usize) -> impl Strategy<Value = Vec<(f64, usize)>> {
    proptest::collection::vec((-1e6f64..1e6, 0..max_shards), 0..300)
}

proptest! {
    /// Merging per-shard histograms — in any merge order — equals the
    /// single-stream histogram bit-for-bit (counts, fixed-point sum,
    /// and max, hence every derived percentile).
    #[test]
    fn histogram_shard_merge_equals_single_stream(
        obs in stream(4),
        order in Just([3usize, 0, 2, 1]),
    ) {
        let mut whole = Histogram::with_bounds(BOUNDS);
        let mut shards = vec![Histogram::with_bounds(BOUNDS); 4];
        for &(v, s) in &obs {
            whole.observe(v);
            shards[s].observe(v);
        }
        let mut folded = Histogram::with_bounds(BOUNDS);
        for &s in &order {
            folded.merge(&shards[s]).unwrap();
        }
        prop_assert_eq!(&folded, &whole);
        // Identity: merging an empty histogram changes nothing.
        folded.merge(&Histogram::with_bounds(BOUNDS)).unwrap();
        prop_assert_eq!(&folded, &whole);
    }

    /// Histogram merge is associative: (a ∪ b) ∪ c == a ∪ (b ∪ c).
    #[test]
    fn histogram_merge_is_associative(obs in stream(3)) {
        let mut parts = vec![Histogram::with_bounds(BOUNDS); 3];
        for &(v, s) in &obs {
            parts[s].observe(v);
        }
        let mut left = parts[0].clone();
        left.merge(&parts[1]).unwrap();
        left.merge(&parts[2]).unwrap();
        let mut bc = parts[1].clone();
        bc.merge(&parts[2]).unwrap();
        let mut right = parts[0].clone();
        right.merge(&bc).unwrap();
        prop_assert_eq!(left, right);
    }

    /// Merging per-shard reservoirs — in any merge order — equals the
    /// single-stream reservoir exactly: same retained entries, same
    /// moments. Keys are unique (stream index), as fleet cell indices
    /// are.
    #[test]
    fn reservoir_shard_merge_equals_single_stream(
        obs in stream(4),
        seed in any::<u64>(),
        order in Just([2usize, 3, 0, 1]),
    ) {
        const CAP: usize = 16;
        let mut whole = Reservoir::new(seed, CAP);
        let mut shards: Vec<Reservoir> = (0..4).map(|_| Reservoir::new(seed, CAP)).collect();
        for (k, &(v, s)) in obs.iter().enumerate() {
            whole.offer(k as u64, v);
            shards[s].offer(k as u64, v);
        }
        let mut folded = Reservoir::new(seed, CAP);
        for &s in &order {
            folded.merge(&shards[s]).unwrap();
        }
        prop_assert_eq!(&folded, &whole);
        prop_assert_eq!(folded.quantile(0.99).to_bits(), whole.quantile(0.99).to_bits());
    }

    /// Reservoir merge is associative and commutative.
    #[test]
    fn reservoir_merge_is_associative_and_commutative(
        obs in stream(3),
        seed in any::<u64>(),
    ) {
        const CAP: usize = 8;
        let mut parts: Vec<Reservoir> = (0..3).map(|_| Reservoir::new(seed, CAP)).collect();
        for (k, &(v, s)) in obs.iter().enumerate() {
            parts[s].offer(k as u64, v);
        }
        let mut left = parts[0].clone();
        left.merge(&parts[1]).unwrap();
        left.merge(&parts[2]).unwrap();
        let mut bc = parts[1].clone();
        bc.merge(&parts[2]).unwrap();
        let mut right = parts[0].clone();
        right.merge(&bc).unwrap();
        prop_assert_eq!(&left, &right);
        let mut swapped = parts[2].clone();
        swapped.merge(&parts[0]).unwrap();
        swapped.merge(&parts[1]).unwrap();
        prop_assert_eq!(&swapped, &left);
    }

    /// The journal's exact-JSON encoding round-trips both aggregates
    /// bit-for-bit for arbitrary contents.
    #[test]
    fn exact_json_round_trips(obs in stream(1), seed in any::<u64>()) {
        let mut h = Histogram::with_bounds(BOUNDS);
        let mut r = Reservoir::new(seed, 8);
        for (k, &(v, _)) in obs.iter().enumerate() {
            h.observe(v);
            r.offer(k as u64, v);
        }
        prop_assert_eq!(Histogram::from_exact_json(&h.to_exact_json()).unwrap(), h);
        prop_assert_eq!(Reservoir::from_exact_json(&r.to_exact_json()).unwrap(), r);
    }
}
