//! Acceptance check: the JSONL and Chrome-trace sinks are lossless
//! transports — a known event sequence written through either sink
//! parses back to exactly the original `Stamped` values.

use ehs_telemetry::sink::parse_jsonl;
use ehs_telemetry::{ChromeTraceSink, Event, JsonlSink, Registers, Sink, Stamped};

/// Two full power cycles exercising every event variant.
fn known_sequence() -> Vec<Stamped> {
    let regs = Registers { r_prev: 900, r_mem: 868, r_adjust: -32, r_thres: 32, r_evict: 3 };
    vec![
        Stamped { t_us: 0.5, cycle: 0, event: Event::CompressedFill { dcache: true } },
        Stamped { t_us: 0.75, cycle: 0, event: Event::CompressedFill { dcache: false } },
        Stamped { t_us: 1.0, cycle: 0, event: Event::Eviction { count: 2, dcache: true } },
        Stamped {
            t_us: 1.25,
            cycle: 0,
            event: Event::ModeSwitch { cm_to_rm: true, registers: regs },
        },
        Stamped { t_us: 1.5, cycle: 0, event: Event::BypassedFill { dcache: true } },
        Stamped {
            t_us: 2.0,
            cycle: 0,
            event: Event::EstimatorSample { predicted_remaining: 900, actual_remaining: 912 },
        },
        Stamped { t_us: 2.0, cycle: 0, event: Event::Checkpoint { blocks: 17 } },
        Stamped { t_us: 2.0, cycle: 0, event: Event::PowerFailure { insts: 4096, voltage: 2.0 } },
        Stamped { t_us: 9.75, cycle: 1, event: Event::Reboot { charge_us: 7.75, voltage: 2.016 } },
        Stamped {
            t_us: 9.75,
            cycle: 1,
            event: Event::ThresholdAdjust { old: 32, new: 35, evicted: 3 },
        },
        Stamped {
            t_us: 9.75,
            cycle: 1,
            event: Event::ModeSwitch { cm_to_rm: false, registers: Registers::default() },
        },
        Stamped { t_us: 11.0, cycle: 1, event: Event::BypassedFill { dcache: false } },
        Stamped { t_us: 12.5, cycle: 1, event: Event::PowerFailure { insts: 128, voltage: 1.999 } },
        // Harness-level job events (wall-clock stamps, cycle 0 by
        // convention — they do not belong to any simulated power cycle).
        Stamped { t_us: 13.0, cycle: 1, event: Event::JobRetried { job: 7, attempt: 1 } },
        Stamped {
            t_us: 13.5,
            cycle: 1,
            event: Event::JobTimedOut { job: 8, executed_insts: 4096 },
        },
        Stamped {
            t_us: 14.0,
            cycle: 1,
            event: Event::JobFailed { job: 7, reason: "simulation sha:ACC panicked".to_string() },
        },
    ]
}

#[test]
fn jsonl_sink_round_trips_a_known_sequence() {
    let events = known_sequence();
    let mut sink = JsonlSink::new(Vec::<u8>::new());
    for ev in &events {
        sink.record(ev);
    }
    assert!(sink.error().is_none());
    let text = String::from_utf8(sink.into_inner()).unwrap();
    assert_eq!(text.lines().count(), events.len());
    assert_eq!(parse_jsonl(&text), events);
}

#[test]
fn chrome_trace_sink_round_trips_a_known_sequence() {
    let events = known_sequence();
    let mut sink = ChromeTraceSink::new();
    for ev in &events {
        sink.record(ev);
    }
    let trace = sink.to_json();
    assert_eq!(ChromeTraceSink::parse_events(&trace), events);

    // The synthesized timeline shows one slice per completed power cycle.
    let slices = trace
        .get("traceEvents")
        .and_then(serde_json::Value::as_array)
        .unwrap()
        .iter()
        .filter(|r| r.get("ph").and_then(serde_json::Value::as_str) == Some("X"))
        .count();
    assert_eq!(slices, 2);
}

#[test]
fn chrome_trace_survives_a_serialize_parse_cycle() {
    let events = known_sequence();
    let mut sink = ChromeTraceSink::new();
    for ev in &events {
        sink.record(ev);
    }
    let text = serde_json::to_string_pretty(&sink.to_json()).unwrap();
    let reparsed = serde_json::from_str(&text).unwrap();
    assert_eq!(ChromeTraceSink::parse_events(&reparsed), events);
}
