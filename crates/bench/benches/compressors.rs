//! Criterion micro-benchmarks: compressor engine throughput per algorithm
//! and per data class. These are the `E_comp`/`E_decomp` code paths that
//! run on every cache fill in compression mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ehs_compress::{Algorithm, Compressor};

fn data_classes() -> Vec<(&'static str, Vec<u8>)> {
    let zeros = vec![0u8; 32];
    let gradient: Vec<u8> = (0..8u32).flat_map(|i| (0x4000_0000 + i * 3).to_le_bytes()).collect();
    let text = b"the quick brown fox jumps over!!".to_vec();
    let mut x = 0x1234_5678u32;
    let random: Vec<u8> = (0..8)
        .flat_map(|_| {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            x.to_le_bytes()
        })
        .collect();
    vec![("zeros", zeros), ("gradient", gradient), ("text", text), ("random", random)]
}

fn bench_compress(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Bytes(32));
    for alg in Algorithm::ALL {
        let engine = alg.compressor();
        for (class, block) in data_classes() {
            group.bench_with_input(BenchmarkId::new(alg.name(), class), &block, |b, block| {
                b.iter(|| engine.compress(std::hint::black_box(block)))
            });
        }
    }
    group.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompress");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Bytes(32));
    for alg in Algorithm::ALL {
        let engine = alg.compressor();
        for (class, block) in data_classes() {
            let enc = engine.compress(&block);
            group.bench_with_input(BenchmarkId::new(alg.name(), class), &enc, |b, enc| {
                b.iter(|| engine.decompress(std::hint::black_box(enc)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_compress, bench_decompress);
criterion_main!(benches);
