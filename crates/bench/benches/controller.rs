//! Criterion micro-benchmarks for the policy controllers: the per-event
//! cost of ACC's predictor and Kagura's countdown. These run on every
//! committed memory instruction, so they must be near-free.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ehs_cache::HitInfo;
use kagura_core::{Acc, CompressionGovernor, Kagura, KaguraConfig};

fn bench_controllers(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(1));

    group.bench_function("acc_on_hit", |b| {
        let mut acc = Acc::new();
        let hit = HitInfo { was_compressed: true, lru_rank: 2, word: 0 };
        b.iter(|| acc.on_hit(std::hint::black_box(&hit), 2))
    });

    group.bench_function("kagura_on_mem_commit", |b| {
        let mut kagura = Kagura::new(KaguraConfig::default(), Acc::new());
        // Give it a history so the countdown logic actually runs.
        for _ in 0..10_000 {
            kagura.on_mem_commit();
        }
        kagura.on_power_failure();
        kagura.on_reboot();
        b.iter(|| kagura.on_mem_commit())
    });

    group.bench_function("kagura_fill_mode", |b| {
        let mut kagura = Kagura::new(KaguraConfig::default(), Acc::new());
        b.iter(|| kagura.fill_mode())
    });

    group.bench_function("kagura_power_cycle_turnaround", |b| {
        let mut kagura = Kagura::new(KaguraConfig::default(), Acc::new());
        b.iter(|| {
            for _ in 0..64 {
                kagura.on_mem_commit();
            }
            kagura.on_evictions(3);
            kagura.on_power_failure();
            kagura.on_reboot();
        })
    });

    group.finish();
}

criterion_group!(benches, bench_controllers);
criterion_main!(benches);
