//! Criterion end-to-end benchmark: full-system simulation throughput
//! (simulated instructions per second of host time) for the baseline and
//! the full ACC+Kagura stack.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ehs_energy::PowerTrace;
use ehs_sim::{GovernorSpec, SimConfig, Simulator};
use ehs_workloads::App;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let scale = 0.05;
    for (label, gov) in [
        ("baseline", GovernorSpec::NoCompression),
        ("acc", GovernorSpec::Acc),
        ("acc_kagura", GovernorSpec::AccKagura(Default::default())),
    ] {
        let cfg = SimConfig::table1().with_governor(gov);
        let program = App::Gsm.build(scale);
        let trace = PowerTrace::generate(cfg.trace_kind, cfg.trace_seed, 400_000);
        group.throughput(Throughput::Elements(program.len()));
        group.bench_with_input(BenchmarkId::new("gsm", label), &cfg, |b, cfg| {
            b.iter(|| Simulator::new(cfg.clone(), &program, &trace).run())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
