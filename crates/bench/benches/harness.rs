//! Criterion end-to-end benchmark of [`ehs_sim::run_app`] — the leaf job
//! the parallel harness executes. Unlike the raw `Simulator` bench this
//! includes the full entry path a worker pays per grid cell: workload
//! construction, the shared power-trace cache, governor dispatch and
//! stats assembly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ehs_sim::{run_app, GovernorSpec, SimConfig};
use ehs_workloads::App;

fn bench_run_app(c: &mut Criterion) {
    let mut group = c.benchmark_group("run_app");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let scale = 0.05;
    for (label, gov) in [
        ("baseline", GovernorSpec::NoCompression),
        ("acc", GovernorSpec::Acc),
        ("acc_kagura", GovernorSpec::AccKagura(Default::default())),
    ] {
        let cfg = SimConfig::table1().with_governor(gov);
        let insts = App::Gsm.build(scale).len();
        group.throughput(Throughput::Elements(insts));
        group.bench_with_input(BenchmarkId::new("gsm", label), &cfg, |b, cfg| {
            b.iter(|| run_app(App::Gsm, scale, cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_run_app);
criterion_main!(benches);
