//! Criterion micro-benchmarks: compressed-cache access paths (hit, miss +
//! fill, fat write) — the per-memory-op mechanism cost of the simulator.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ehs_cache::{CacheConfig, CompressedCache, FillMode};
use ehs_compress::Algorithm;
use ehs_model::{Address, BlockData, CacheParams};

fn fresh_cache() -> CompressedCache {
    CompressedCache::new(CacheConfig::new(CacheParams::table1(), Algorithm::Bdi))
}

fn zero_block() -> BlockData {
    BlockData::zeroed(32)
}

fn bench_read_hit(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(1));
    group.bench_function("read_hit_uncompressed", |b| {
        let mut cache = fresh_cache();
        cache.fill(Address::new(0x100), zero_block(), FillMode::Bypass, None);
        b.iter(|| cache.read(std::hint::black_box(Address::new(0x104))))
    });
    group.bench_function("read_hit_compressed", |b| {
        let mut cache = fresh_cache();
        cache.fill(Address::new(0x100), zero_block(), FillMode::Compress, None);
        b.iter(|| cache.read(std::hint::black_box(Address::new(0x104))))
    });
    group.bench_function("miss_then_fill_compress", |b| {
        let mut cache = fresh_cache();
        let mut i = 0u64;
        b.iter(|| {
            let addr = Address::new(0x1000 + (i % 4096) * 32);
            i += 1;
            if cache.read(addr).is_none() {
                cache.fill(addr.block_base(32), zero_block(), FillMode::Compress, None);
            }
        })
    });
    group.bench_function("write_hit_fat_write", |b| {
        let mut cache = fresh_cache();
        b.iter(|| {
            // Refill compressed, then expand it with a store.
            if !cache.contains(Address::new(0x200)) {
                cache.fill(Address::new(0x200), zero_block(), FillMode::Compress, None);
            }
            cache.write(std::hint::black_box(Address::new(0x200)), 0xAB, false);
            cache.invalidate_block(Address::new(0x200));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_read_hit);
criterion_main!(benches);
