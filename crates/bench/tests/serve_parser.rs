//! Property tests for the `simrun serve` request parser.
//!
//! A long-running service parses hostile input for its whole lifetime,
//! so the parser's contract is pinned adversarially rather than
//! example-tested: *no* input line may panic it, truncations and
//! bit-flips of valid requests must degrade to typed errors (or parse
//! to an equally valid request — a flipped bit inside a string value is
//! still well-formed JSON), and every unknown field or enum value near
//! a valid spelling must come back with a did-you-mean hint.

use kagura_bench::cli::levenshtein;
use kagura_bench::serve::request::{parse_request, Request, KNOWN_FIELDS, KNOWN_OPS};
use proptest::prelude::*;

/// `select`-style helper: a strategy picking one of `items`.
fn pick(items: &'static [&'static str]) -> impl Strategy<Value = &'static str> {
    (0..items.len()).prop_map(move |i| items[i])
}

/// A generator of *valid* query lines covering every field.
fn valid_query_line() -> impl Strategy<Value = String> {
    (
        pick(&["sha", "crc32", "gsm", "jpeg", "dijkstra"]),
        1u32..=1000,
        pick(&["baseline", "none", "always", "acc", "kagura", "ideal-acc", "ideal-kagura"]),
        pick(&["nvsram", "nvmr", "sweepcache", "sweep"]),
        (
            pick(&["bdi", "fpc", "cpack", "dzc", "bpc", "fvc"]),
            pick(&["rfhome", "solar", "thermal"]),
        ),
        (any::<u16>(), prop_oneof![Just(None), (1u64..=1_000_000).prop_map(Some)]),
    )
        .prop_map(|(app, scale_mil, gov, design, (alg, trace), (seed, max_insts))| {
            let scale = f64::from(scale_mil) / 1000.0;
            let budget = match max_insts {
                Some(n) => format!(",\"max_insts\":{n}"),
                None => String::new(),
            };
            format!(
                "{{\"op\":\"query\",\"id\":\"p\",\"app\":\"{app}\",\"scale\":{scale},\
                 \"governor\":\"{gov}\",\"design\":\"{design}\",\"algorithm\":\"{alg}\",\
                 \"trace\":\"{trace}\",\"seed\":{seed}{budget}}}"
            )
        })
}

proptest! {
    /// Arbitrary byte soup must never panic the parser — at worst it is
    /// a `bad_request` whose detail names the problem.
    #[test]
    fn arbitrary_input_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let line = String::from_utf8_lossy(&bytes);
        match parse_request(&line) {
            Ok(_) => {}
            Err((_, detail)) => prop_assert!(!detail.is_empty(), "error must carry detail"),
        }
    }

    /// Valid queries always parse, and canonicalization is total: the
    /// cache key embeds the resolved governor, never the alias.
    #[test]
    fn valid_queries_always_parse_and_canonicalize(line in valid_query_line()) {
        let parsed = parse_request(&line);
        prop_assert!(parsed.is_ok(), "{} -> {:?}", line, parsed);
        let Ok(Request::Query { query, .. }) = parsed else {
            prop_assert!(false, "expected a query");
            return Ok(());
        };
        let key = query.cache_key();
        prop_assert!(!key.contains("\"governor\":\"none\""), "alias must canonicalize: {}", key);
        prop_assert!(!key.contains("max_insts"), "budgets must stay out of the key: {}", key);
        prop_assert!(parse_request(&line).unwrap() == Request::Query {
            id: serde_json::Value::String("p".into()),
            query: query.clone(),
        }, "parsing is deterministic");
    }

    /// Truncating a valid request at any byte boundary never panics and
    /// never silently succeeds: a cut `{…}` line always loses its
    /// closing brace, so it must fail typed.
    #[test]
    fn truncated_requests_fail_typed(line in valid_query_line(), cut in 0usize..100) {
        let cut = cut.min(line.len().saturating_sub(1));
        let truncated: String = line.chars().take(cut).collect();
        match parse_request(&truncated) {
            Err((_, detail)) => prop_assert!(!detail.is_empty()),
            Ok(_) => prop_assert!(false, "a truncated object cannot be valid: {:?}", truncated),
        }
    }

    /// Flipping one bit of one byte of a valid request line never
    /// panics the parser; when the line still parses, it parses to a
    /// well-formed request (the flip landed inside a string value).
    #[test]
    fn bit_flipped_requests_never_panic(
        line in valid_query_line(),
        pos in 0usize..200,
        bit in 0u8..7,
    ) {
        let mut bytes = line.into_bytes();
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        // Parser input is &str; non-UTF-8 flips are rejected before the
        // parser ever sees them, exactly as the server's line reader does.
        if let Ok(corrupted) = String::from_utf8(bytes) {
            let _ = parse_request(&corrupted);
        }
    }

    /// Every near-miss of a known field name gets a did-you-mean hint
    /// naming the intended field.
    #[test]
    fn misspelled_fields_get_did_you_mean(which in 0usize..16, swap in 0usize..8) {
        let field = KNOWN_FIELDS[which % KNOWN_FIELDS.len()];
        if field == "op" || field == "id" || field.len() < 3 {
            return Ok(());
        }
        // Transpose two adjacent characters: a classic typo at edit
        // distance ≤ 2, always within the suggestion budget.
        let mut chars: Vec<char> = field.chars().collect();
        let i = swap % (chars.len() - 1);
        chars.swap(i, i + 1);
        let typo: String = chars.into_iter().collect();
        if typo == field || KNOWN_FIELDS.contains(&typo.as_str()) {
            return Ok(());
        }
        prop_assert!(levenshtein(&typo, field) <= 2);
        let line = format!("{{\"op\":\"query\",\"app\":\"sha\",\"{typo}\":1}}");
        let (_, detail) = parse_request(&line).unwrap_err();
        prop_assert!(
            detail.contains(&format!("`{typo}`")),
            "error must name the offender: {}",
            detail
        );
        prop_assert!(
            detail.contains("did you mean"),
            "near-miss of `{}` must get a hint: {}",
            field,
            detail
        );
    }

    /// Same for op values: a transposed op name is suggested back.
    #[test]
    fn misspelled_ops_get_did_you_mean(which in 0usize..8, swap in 0usize..8) {
        let op = KNOWN_OPS[which % KNOWN_OPS.len()];
        let mut chars: Vec<char> = op.chars().collect();
        let i = swap % (chars.len() - 1);
        chars.swap(i, i + 1);
        let typo: String = chars.into_iter().collect();
        if typo == op {
            return Ok(());
        }
        let line = format!("{{\"op\":\"{typo}\",\"id\":3}}");
        let (id, detail) = parse_request(&line).unwrap_err();
        prop_assert_eq!(id, serde_json::Value::U64(3), "id must survive an op typo");
        prop_assert!(detail.contains("did you mean"), "{}", detail);
    }
}
