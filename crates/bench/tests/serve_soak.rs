//! Soak/chaos test for `simrun serve` over TCP: concurrent clients,
//! malformed requests, poison queries under tiny budgets, a client that
//! disconnects mid-response, a SIGKILL mid-run with a byte-identity
//! check on the restarted server's cache, and a SIGTERM graceful drain.
//!
//! Everything here drives the real binary (`CARGO_BIN_EXE_simrun`)
//! through real sockets — the in-process unit tests in
//! `kagura_bench::serve` already cover the core logic; this file pins
//! the process-level contract: the server survives hostile clients and
//! dies only when asked, cleanly.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use serde_json::Value;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kagura_serve_soak_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawns `simrun serve --tcp 127.0.0.1:0` and waits for the port file.
fn spawn_server(dir: &Path, extra: &[&str]) -> (Child, String) {
    let port_file = dir.join("port");
    let _ = std::fs::remove_file(&port_file);
    let child = Command::new(env!("CARGO_BIN_EXE_simrun"))
        .arg("serve")
        .args(["--tcp", "127.0.0.1:0"])
        .args(["--port-file", port_file.to_str().unwrap()])
        .args(["--state", dir.join("state.jsonl").to_str().unwrap()])
        .args(extra)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn simrun serve");
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if let Ok(addr) = std::fs::read_to_string(&port_file) {
            if !addr.trim().is_empty() {
                return (child, addr.trim().to_string());
            }
        }
        assert!(Instant::now() < deadline, "server never wrote its port file");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// One request/response round trip on a fresh connection.
fn request(addr: &str, line: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    writeln!(stream, "{line}").expect("write request");
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    assert!(response.ends_with('\n'), "response must be one NDJSON line: {response:?}");
    response.trim_end().to_string()
}

fn parsed(response: &str) -> Value {
    serde_json::from_str(response).unwrap_or_else(|e| panic!("bad response {response:?}: {e}"))
}

fn error_kind(v: &Value) -> Option<&str> {
    v.get("error")?.get("kind")?.as_str()
}

const QUERY: &str = r#"{"op":"query","id":"soak","app":"sha","scale":0.004,"governor":"kagura"}"#;

#[test]
fn soak_chaos_sigkill_restart_and_byte_identity() {
    let dir = tmp("chaos");
    let (mut child, addr) = spawn_server(&dir, &["--workers", "2", "--queue-depth", "8"]);

    // Concurrent clients: valid queries, malformed lines, and poison
    // queries under a tiny instruction budget, all at once.
    let mut threads = Vec::new();
    for i in 0..4 {
        let addr = addr.clone();
        threads.push(std::thread::spawn(move || {
            for round in 0..3 {
                let (line, expect_ok, expect_kind) = match (i + round) % 3 {
                    0 => (QUERY.to_string(), true, None),
                    1 => (
                        format!(
                            r#"{{"op":"query","id":"p{i}","app":"crc32","scale":0.01,"max_insts":40}}"#
                        ),
                        false,
                        Some("budget_exhausted"),
                    ),
                    _ => (format!(r#"{{"op":"qeury","id":{i}}}"#), false, Some("bad_request")),
                };
                let v = parsed(&request(&addr, &line));
                assert_eq!(v.get("ok"), Some(&Value::Bool(expect_ok)), "{line} -> {v:?}");
                if let Some(kind) = expect_kind {
                    assert_eq!(error_kind(&v), Some(kind), "{line} -> {v:?}");
                }
            }
        }));
    }
    for t in threads {
        t.join().expect("client thread");
    }

    // A client that sends a query and hangs up before reading the
    // response must only kill its own connection.
    {
        let mut stream = TcpStream::connect(&addr).unwrap();
        writeln!(stream, "{QUERY}").unwrap();
        drop(stream);
    }
    let health = parsed(&request(&addr, r#"{"op":"health","id":"alive"}"#));
    assert_eq!(
        health.get("health").and_then(|h| h.get("status")).and_then(Value::as_str),
        Some("ok"),
        "server must survive a mid-response disconnect: {health:?}"
    );

    // Capture the canonical response bytes, then SIGKILL the server.
    let before = request(&addr, QUERY);
    assert_eq!(parsed(&before).get("ok"), Some(&Value::Bool(true)));
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");

    // A restarted server must warm from the persisted cache and serve
    // the same query byte-identically — as a cache hit, not a re-run.
    let (mut child, addr) = spawn_server(&dir, &["--workers", "2"]);
    let after = request(&addr, QUERY);
    assert_eq!(before, after, "restart must preserve response bytes");
    let metrics = parsed(&request(&addr, r#"{"op":"metrics","id":"m"}"#));
    let text = serde_json::to_string(&metrics).unwrap();
    assert!(
        text.contains(r#"{"name":"server_cache_hits","value":1}"#),
        "the repeat must be a cache hit on the restarted server: {text}"
    );
    assert!(
        text.contains(r#"{"name":"server_cache_misses","value":0}"#),
        "nothing may have re-run: {text}"
    );

    // Graceful shutdown via the shutdown op: exit code 0.
    let bye = parsed(&request(&addr, r#"{"op":"shutdown","id":"bye"}"#));
    assert_eq!(bye.get("ok"), Some(&Value::Bool(true)));
    let status = child.wait().expect("wait for drain");
    assert_eq!(status.code(), Some(0), "drain must exit cleanly");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sigterm_drains_in_flight_work_and_exits_cleanly() {
    let dir = tmp("sigterm");
    let (mut child, addr) = spawn_server(&dir, &["--workers", "1"]);

    // Start a query, then SIGTERM the server while it is in flight.
    let in_flight = {
        let addr = addr.clone();
        std::thread::spawn(move || request(&addr, QUERY))
    };
    std::thread::sleep(Duration::from_millis(50));
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());

    // The in-flight request must still complete with a full response.
    let response = in_flight.join().expect("client thread");
    assert_eq!(parsed(&response).get("ok"), Some(&Value::Bool(true)), "{response}");

    let status = child.wait().expect("wait for drain");
    assert_eq!(status.code(), Some(0), "SIGTERM drain must exit cleanly");

    // The drained cache state must warm the next server generation.
    let (mut child, addr) = spawn_server(&dir, &[]);
    assert_eq!(request(&addr, QUERY), response, "post-drain restart must serve cached bytes");
    child.kill().unwrap();
    child.wait().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}
