//! The harness determinism guarantee: experiment output is byte-identical
//! at any `--jobs` value.
//!
//! Simulations are pure functions of their inputs and the worker pool
//! collects results in submission order, so the JSON an experiment saves
//! must not depend on how many workers raced to produce it. This runs two
//! representative experiments — `summary` (a plain app × governor grid)
//! and `fig23` (nested `mean_gains` batches per algorithm) — at one and
//! at four workers and compares the saved files byte for byte.

use std::fs;
use std::path::PathBuf;

use ehs_workloads::App;
use kagura_bench::experiments::find;
use kagura_bench::ExpContext;

/// Runs `id` with `jobs` workers into a fresh directory and returns the
/// saved JSON bytes.
fn run_at(jobs: usize, id: &str) -> Vec<u8> {
    let out_dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("{id}-jobs{jobs}"));
    let ctx = ExpContext {
        scale: 0.02,
        apps: vec![App::Sha, App::Crc32, App::G721d],
        sens_apps: vec![App::Sha, App::G721d],
        out_dir: out_dir.clone(),
        ..ExpContext::default()
    };
    ehs_sim::parallel::set_max_workers(jobs);
    let f = find(id).expect("known experiment");
    let _ = f(&ctx);
    fs::read(out_dir.join(format!("{id}.json"))).expect("experiment saved its JSON")
}

#[test]
fn experiment_json_is_byte_identical_across_job_counts() {
    for id in ["summary", "fig23"] {
        let serial = run_at(1, id);
        let parallel = run_at(4, id);
        assert!(
            serial == parallel,
            "{id}.json differs between --jobs 1 and --jobs 4:\n--- jobs 1 ---\n{}\n--- jobs 4 ---\n{}",
            String::from_utf8_lossy(&serial),
            String::from_utf8_lossy(&parallel),
        );
        assert!(!serial.is_empty(), "{id}.json is empty");
    }
}

/// Runs the leakscope experiment with `jobs` workers and returns the
/// saved JSON plus every dumped `leakscope_<cell>.jsonl` stream, sorted
/// by file name.
fn run_leakscope_at(jobs: usize) -> (Vec<u8>, Vec<(String, Vec<u8>)>) {
    let out_dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("leakscope-jobs{jobs}"));
    let tel_dir = out_dir.join("telemetry");
    let ctx = ExpContext {
        out_dir: out_dir.clone(),
        telemetry_dir: Some(tel_dir.clone()),
        ..ExpContext::default()
    };
    ehs_sim::parallel::set_max_workers(jobs);
    let f = find("leakscope").expect("known experiment");
    let _ = f(&ctx);
    let json = fs::read(out_dir.join("leakscope.json")).expect("experiment saved its JSON");
    let mut streams: Vec<(String, Vec<u8>)> = fs::read_dir(&tel_dir)
        .expect("telemetry dir exists")
        .map(|e| {
            let e = e.expect("readable entry");
            let name = e.file_name().to_string_lossy().into_owned();
            (name, fs::read(e.path()).expect("readable stream"))
        })
        .collect();
    streams.sort();
    (json, streams)
}

#[test]
fn leakscope_jsonl_is_byte_identical_across_job_counts() {
    // The attack reports carry f64 channel estimates and RNG-driven
    // (seeded) probe outcomes; both the saved JSON and every dumped
    // JSONL stream must still be byte-identical at any worker count.
    let (serial_json, serial_streams) = run_leakscope_at(1);
    let (parallel_json, parallel_streams) = run_leakscope_at(4);
    assert!(serial_json == parallel_json, "leakscope.json differs between --jobs 1 and --jobs 4");
    let names: Vec<&String> = serial_streams.iter().map(|(n, _)| n).collect();
    assert_eq!(
        names,
        parallel_streams.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        "stream file sets differ"
    );
    // All six compressors × four governors.
    assert_eq!(serial_streams.len(), 24, "expected one stream per grid cell: {names:?}");
    for ((name, serial), (_, parallel)) in serial_streams.iter().zip(&parallel_streams) {
        assert!(serial == parallel, "{name} differs between --jobs 1 and --jobs 4");
        assert!(!serial.is_empty(), "{name} is empty");
    }
}
