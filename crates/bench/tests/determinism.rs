//! The harness determinism guarantee: experiment output is byte-identical
//! at any `--jobs` value.
//!
//! Simulations are pure functions of their inputs and the worker pool
//! collects results in submission order, so the JSON an experiment saves
//! must not depend on how many workers raced to produce it. This runs two
//! representative experiments — `summary` (a plain app × governor grid)
//! and `fig23` (nested `mean_gains` batches per algorithm) — at one and
//! at four workers and compares the saved files byte for byte.

use std::fs;
use std::path::PathBuf;

use ehs_workloads::App;
use kagura_bench::experiments::find;
use kagura_bench::ExpContext;

/// Runs `id` with `jobs` workers into a fresh directory and returns the
/// saved JSON bytes.
fn run_at(jobs: usize, id: &str) -> Vec<u8> {
    let out_dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("{id}-jobs{jobs}"));
    let ctx = ExpContext {
        scale: 0.02,
        apps: vec![App::Sha, App::Crc32, App::G721d],
        sens_apps: vec![App::Sha, App::G721d],
        out_dir: out_dir.clone(),
        ..ExpContext::default()
    };
    ehs_sim::parallel::set_max_workers(jobs);
    let f = find(id).expect("known experiment");
    let _ = f(&ctx);
    fs::read(out_dir.join(format!("{id}.json"))).expect("experiment saved its JSON")
}

#[test]
fn experiment_json_is_byte_identical_across_job_counts() {
    for id in ["summary", "fig23"] {
        let serial = run_at(1, id);
        let parallel = run_at(4, id);
        assert!(
            serial == parallel,
            "{id}.json differs between --jobs 1 and --jobs 4:\n--- jobs 1 ---\n{}\n--- jobs 4 ---\n{}",
            String::from_utf8_lossy(&serial),
            String::from_utf8_lossy(&parallel),
        );
        assert!(!serial.is_empty(), "{id}.json is empty");
    }
}
