//! End-to-end resilience of the `repro` driver: an interrupted run —
//! torn `.tmp` artifact and torn journal line included — resumes to
//! byte-identical output, mismatched fingerprints refuse to resume, and
//! watchdog-failed grid cells degrade to `null` report cells plus a
//! failure manifest.

use std::collections::BTreeMap;
use std::fs::{self, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::Command;

use ehs_sim::StepBudget;
use ehs_workloads::App;
use kagura_bench::journal::JOURNAL_FILE;
use kagura_bench::ExpContext;
use serde_json::Value;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kagura_resume_{name}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(cmd: &mut Command) {
    let out = cmd.output().expect("spawn repro");
    assert!(
        out.status.success(),
        "repro failed: {}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Every artifact in `dir` except the journal (whose cell order reflects
/// completion order, not content).
fn read_tree(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut tree = BTreeMap::new();
    for entry in fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if path.is_file() && name != JOURNAL_FILE {
            tree.insert(name, fs::read(&path).unwrap());
        }
    }
    tree
}

#[test]
fn interrupted_run_resumes_to_byte_identical_output() {
    let baseline = tmpdir("baseline");
    let cut = tmpdir("interrupted");

    // The uninterrupted reference run: two cheap analytic experiments.
    run_ok(repro().args(["fig3", "hw", "--quiet", "--jobs", "1", "--out"]).arg(&baseline));

    // The "interrupted" run completed only fig3 before dying…
    run_ok(repro().args(["fig3", "--quiet", "--jobs", "1", "--out"]).arg(&cut));
    // …and left SIGKILL debris behind: a torn artifact mid-atomic-write
    // and a torn journal line mid-append.
    fs::write(cut.join("hw.json.tmp"), b"{\"torn").unwrap();
    let mut j = OpenOptions::new().append(true).open(cut.join(JOURNAL_FILE)).unwrap();
    j.write_all(b"{\"id\":\"hw").unwrap();
    drop(j);

    run_ok(repro().args(["fig3", "hw", "--quiet", "--jobs", "1", "--resume"]).arg(&cut));

    assert!(!cut.join("hw.json.tmp").exists(), "resume must sweep torn .tmp debris");
    assert_eq!(
        read_tree(&baseline),
        read_tree(&cut),
        "resumed output tree must be byte-identical to the uninterrupted run"
    );
}

#[test]
fn resume_skips_journaled_experiments() {
    let dir = tmpdir("skip");
    run_ok(repro().args(["fig3", "--quiet", "--jobs", "1", "--out"]).arg(&dir));
    let first = fs::metadata(dir.join("fig3.json")).unwrap().modified().unwrap();
    let out = repro()
        .args(["fig3", "--quiet", "--jobs", "1", "--resume"])
        .arg(&dir)
        .output()
        .expect("spawn repro");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("already journaled"), "missing skip notice:\n{stdout}");
    let second = fs::metadata(dir.join("fig3.json")).unwrap().modified().unwrap();
    assert_eq!(first, second, "journaled artifact must not be rewritten on resume");
}

#[test]
fn resume_refuses_a_mismatched_fingerprint() {
    let dir = tmpdir("fingerprint");
    run_ok(repro().args(["fig3", "--quiet", "--jobs", "1", "--out"]).arg(&dir));
    let out = repro()
        .args(["fig3", "--quiet", "--jobs", "1", "--scale", "0.123", "--resume"])
        .arg(&dir)
        .output()
        .expect("spawn repro");
    assert!(!out.status.success(), "resume under a different --scale must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("fingerprint"), "unhelpful refusal:\n{stderr}");
}

#[test]
fn watchdog_failed_cells_become_null_with_manifest_records() {
    let dir = tmpdir("nullcells");
    let ctx = ExpContext {
        scale: 0.02,
        apps: vec![App::Sha],
        sens_apps: vec![App::Sha],
        out_dir: dir.clone(),
        quiet: true,
        // Far below any kernel's length: every grid cell is cancelled.
        job_budget: StepBudget::insts(2_000),
        exp_id: Some("fig13".into()),
        ..ExpContext::default()
    };
    let out = kagura_bench::experiments::headline::fig13(&ctx);

    let rows = out.get("rows").and_then(Value::as_array).expect("fig13 rows");
    assert!(!rows.is_empty());
    for row in rows {
        assert_eq!(
            row.get("speedup_pct"),
            Some(&Value::Null),
            "failed cell must degrade to null, got {row:?}"
        );
    }
    let failures = ctx.take_failures();
    // fig13 runs baseline + 4 variants: 5 cells, all cancelled.
    assert_eq!(failures.len(), 5, "one manifest record per failed cell");
    for f in &failures {
        assert_eq!(f.get("kind").and_then(Value::as_str), Some("timeout"));
        assert_eq!(f.get("exp").and_then(Value::as_str), Some("fig13"));
        assert_eq!(f.get("app").and_then(Value::as_str), Some("sha"));
    }
    assert!(dir.join("fig13.json").exists(), "experiment must still save its artifact");
}
