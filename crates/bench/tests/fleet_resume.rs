//! End-to-end guarantees of the `fleet` campaign engine: the report is
//! byte-identical at any `--jobs` value and any `--fleet-shard` size,
//! and a campaign SIGKILLed mid-flight resumes through the shard
//! journal to the same bytes an uninterrupted run produces.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

use kagura_bench::fleet::FLEET_JOURNAL_FILE;
use kagura_bench::journal::JOURNAL_FILE;

/// One small campaign, cheap enough for a debug binary: 12 cells across
/// the 9 strata. Everything that fingerprints the population is pinned
/// here; worker count and shard size are the knobs under test.
const CAMPAIGN: &[&str] =
    &["fleet", "--quiet", "--scale", "0.002", "--fleet-size", "12", "--fleet-seed", "1"];

fn fleet_cmd(extra: &[&str], dir: &Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.args(CAMPAIGN).args(extra).arg(dir);
    cmd
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kagura_fleet_{name}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("spawn repro");
    assert!(
        out.status.success(),
        "repro failed: {}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Every artifact except the two journals: the run journal's cell order
/// reflects completion order, and the fleet journal's shard records
/// depend on `--fleet-shard` — both are mechanisms, not outputs.
fn read_tree(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut tree = BTreeMap::new();
    for entry in fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if path.is_file() && name != JOURNAL_FILE && name != FLEET_JOURNAL_FILE {
            tree.insert(name, fs::read(&path).unwrap());
        }
    }
    tree
}

/// Complete (newline-terminated) lines currently in the fleet journal.
fn journaled_lines(journal: &Path) -> usize {
    fs::read_to_string(journal)
        .map(|t| t.split_inclusive('\n').filter(|l| l.ends_with('\n')).count())
        .unwrap_or(0)
}

#[test]
fn fleet_report_survives_reshard_rejob_and_sigkill() {
    // Reference campaign: serial workers, 5-cell shards.
    let reference = tmpdir("reference");
    run_ok(&mut fleet_cmd(&["--jobs", "1", "--fleet-shard", "5", "--out"], &reference));
    let reference_tree = read_tree(&reference);
    assert!(reference_tree.contains_key("fleet.json"));
    assert!(reference_tree.contains_key("fleet.jsonl"));

    // Same population under 2 workers and 3-cell shards: every shard
    // aggregate merges exactly, so the output bytes cannot move.
    let resharded = tmpdir("resharded");
    run_ok(&mut fleet_cmd(&["--jobs", "2", "--fleet-shard", "3", "--out"], &resharded));
    assert_eq!(
        reference_tree,
        read_tree(&resharded),
        "fleet output must be byte-identical across --jobs and --fleet-shard"
    );

    // SIGKILL the resharded variant mid-campaign — after at least one
    // shard is journaled but before the report exists — then resume.
    let killed = tmpdir("killed");
    let mut mid_flight = false;
    for _attempt in 0..3 {
        let _ = fs::remove_dir_all(&killed);
        fs::create_dir_all(&killed).unwrap();
        let mut child = fleet_cmd(&["--jobs", "2", "--fleet-shard", "3", "--out"], &killed)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn repro fleet");
        let journal = killed.join(FLEET_JOURNAL_FILE);
        let deadline = Instant::now() + Duration::from_secs(300);
        // Wait for the header plus at least one durable shard record.
        while child.try_wait().unwrap().is_none()
            && journaled_lines(&journal) < 2
            && Instant::now() < deadline
        {
            thread::sleep(Duration::from_millis(10));
        }
        child.kill().unwrap();
        child.wait().unwrap();
        if journaled_lines(&journal) >= 2 && !killed.join("fleet.json").exists() {
            mid_flight = true;
            break;
        }
        // The campaign outran the poll (or stalled); try again.
    }
    assert!(mid_flight, "could not catch the campaign mid-flight to kill it");

    let stdout =
        run_ok(&mut fleet_cmd(&["--jobs", "2", "--fleet-shard", "3", "--resume"], &killed));
    assert!(
        stdout.contains("resume:"),
        "resume must report the journaled shards it skipped:\n{stdout}"
    );
    assert_eq!(
        reference_tree,
        read_tree(&killed),
        "a SIGKILLed campaign must resume to byte-identical output"
    );

    for dir in [reference, resharded, killed] {
        let _ = fs::remove_dir_all(&dir);
    }
}
