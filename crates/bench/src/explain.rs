//! `repro explain` — render per-app decision reports from the
//! flight-record streams dumped by `repro energy_waste --telemetry DIR`
//! or `simrun --flight-record FILE`.
//!
//! The parser here is deliberately *strict*, unlike the lenient
//! [`ehs_telemetry::sink::parse_jsonl`] used for ad-hoc analysis: every
//! line of every `flight_<app>.jsonl` must be valid JSON and a
//! well-formed [`Stamped`] event, and a malformed line fails the whole
//! command with a `file:line` diagnostic. CI uses this as the
//! parse-back gate for the flight-record schema.

use std::path::{Path, PathBuf};

use ehs_telemetry::{Event, FlightRecord, Stamped};
use serde_json::Value;

/// How many mode switches / threshold adjustments the timeline prints
/// before eliding the middle.
const TIMELINE_HEAD: usize = 10;

/// Strictly parses one flight-record JSONL file.
///
/// Blank lines are allowed (trailing newline); anything else that does
/// not round-trip through [`Stamped::from_value_strict`] is an error
/// naming the file, the 1-based line, *and* the offending field
/// (missing, mistyped, or unknown kind).
pub fn parse_flight_file(path: &Path) -> Result<Vec<Stamped>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut events = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = serde_json::from_str(line)
            .map_err(|e| format!("{}:{}: invalid JSON: {e}", path.display(), idx + 1))?;
        let s = Stamped::from_value_strict(&v)
            .map_err(|e| format!("{}:{}: {e}", path.display(), idx + 1))?;
        events.push(s);
    }
    Ok(events)
}

/// Finds every `flight_<app>.jsonl` under `dir`, sorted by app name so
/// the report order is deterministic.
pub fn discover_flight_files(dir: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut found = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(app) = name.strip_prefix("flight_").and_then(|n| n.strip_suffix(".jsonl")) {
            found.push((app.to_string(), entry.path()));
        }
    }
    found.sort();
    Ok(found)
}

/// The flight records of a stream, in emission order.
fn flights(events: &[Stamped]) -> Vec<&FlightRecord> {
    events
        .iter()
        .filter_map(|s| match &s.event {
            Event::FlightRecord(r) => Some(r),
            _ => None,
        })
        .collect()
}

fn fmt_pj(pj: f64) -> String {
    if pj.abs() >= 1e6 {
        format!("{:.2} µJ", pj / 1e6)
    } else if pj.abs() >= 1e3 {
        format!("{:.2} nJ", pj / 1e3)
    } else {
        format!("{pj:.1} pJ")
    }
}

/// Renders the per-app decision report.
///
/// `waste_baseline` is the optional `(acc_wasted_pj, kagura_wasted_pj)`
/// pair from `energy_waste.json`, used for the recovered-vs-baseline
/// line; without it the report still renders everything derivable from
/// the stream alone.
pub fn render_report(app: &str, events: &[Stamped], waste_baseline: Option<(f64, f64)>) -> String {
    let mut out = String::new();
    let fr = flights(events);
    let mut w = |s: String| out.push_str(&(s + "\n"));

    w(format!("=== {app} ==="));
    let insts: u64 = fr.iter().map(|r| r.insts).sum();
    let mem_ops: u64 = fr.iter().map(|r| r.mem_ops).sum();
    w(format!("  {} power cycle(s), {insts} instruction(s), {mem_ops} memory op(s)", fr.len()));

    // Energy ledger roll-up: the audited conservation identity, summed.
    let harvested: f64 = fr.iter().map(|r| r.harvested_pj).sum();
    let consumed: f64 = fr
        .iter()
        .map(|r| {
            r.compress_pj
                + r.decompress_pj
                + r.cache_other_pj
                + r.memory_pj
                + r.checkpoint_restore_pj
                + r.other_pj
        })
        .sum();
    let delta: f64 = fr.iter().map(|r| r.delta_stored_pj).sum();
    let residual = harvested - consumed - delta;
    let violations =
        events.iter().filter(|s| matches!(s.event, Event::LedgerImbalance { .. })).count();
    w(format!(
        "  ledger: harvested {} = consumed {} + stored Δ{}  (residual {}, {} violation(s))",
        fmt_pj(harvested),
        fmt_pj(consumed),
        fmt_pj(delta),
        fmt_pj(residual),
        violations
    ));

    // Governor mode machine: residency at cycle end + switch timeline.
    let cm = fr.iter().filter(|r| r.mode == "CM").count();
    let rm = fr.iter().filter(|r| r.mode == "RM").count();
    let switches: Vec<&Stamped> =
        events.iter().filter(|s| matches!(s.event, Event::ModeSwitch { .. })).collect();
    if cm + rm > 0 {
        w(format!("  mode at cycle end: {cm} CM / {rm} RM; {} mode switch(es)", switches.len()));
        for s in switches.iter().take(TIMELINE_HEAD) {
            if let Event::ModeSwitch { cm_to_rm, registers: r } = &s.event {
                let arrow = if *cm_to_rm { "CM->RM" } else { "RM->CM" };
                w(format!(
                    "    t={:<10.1}us cycle {:<4} {arrow}  R_prev={} R_mem={} R_adjust={} R_thres={}",
                    s.t_us, s.cycle, r.r_prev, r.r_mem, r.r_adjust, r.r_thres
                ));
            }
        }
        if switches.len() > TIMELINE_HEAD {
            w(format!("    ... {} more switch(es)", switches.len() - TIMELINE_HEAD));
        }
    } else {
        w("  governor has no Kagura mode machine (no CM/RM telemetry)".to_string());
    }

    // AIMD R_thres trajectory.
    let adjusts: Vec<(u64, u64, u64)> = events
        .iter()
        .filter_map(|s| match s.event {
            Event::ThresholdAdjust { old, new, evicted } => Some((old, new, evicted)),
            _ => None,
        })
        .collect();
    if let (Some(first), Some(last)) = (adjusts.first(), adjusts.last()) {
        let lo = adjusts.iter().map(|&(_, n, _)| n).min().unwrap_or(0);
        let hi = adjusts.iter().map(|&(_, n, _)| n).max().unwrap_or(0);
        let path: Vec<String> = adjusts.iter().map(|&(_, n, _)| n.to_string()).collect();
        let shown = if path.len() > TIMELINE_HEAD {
            format!("{} ... {}", path[..TIMELINE_HEAD].join(" "), path[path.len() - 1])
        } else {
            path.join(" ")
        };
        w(format!(
            "  R_thres: {} -> {} over {} adjustment(s) (range {lo}..{hi}): {shown}",
            first.0,
            last.1,
            adjusts.len()
        ));
    }

    // Estimator accuracy from the per-cycle predicted/actual pair.
    let pairs: Vec<(u64, u64)> = fr
        .iter()
        .filter(|r| r.predicted_remaining > 0 || r.actual_remaining > 0)
        .map(|r| (r.predicted_remaining, r.actual_remaining))
        .collect();
    if !pairs.is_empty() {
        let mae = pairs.iter().map(|&(p, a)| (p as f64 - a as f64).abs()).sum::<f64>()
            / pairs.len() as f64;
        let mape = pairs
            .iter()
            .map(|&(p, a)| (p as f64 - a as f64).abs() / (a.max(1) as f64))
            .sum::<f64>()
            / pairs.len() as f64;
        w(format!(
            "  estimator: MAE {mae:.1} mem ops, MAPE {:.1}% over {} cycle(s)",
            mape * 100.0,
            pairs.len()
        ));
    }

    // Counterfactual waste attribution.
    let wasted: u64 = fr.iter().map(|r| r.wasted_fills).sum();
    let late: u64 = fr.iter().map(|r| r.late_compressions).sum();
    let wasted_pj: f64 = fr.iter().map(|r| r.wasted_pj).sum();
    let compress_pj: f64 = fr.iter().map(|r| r.compress_pj).sum();
    let frac = if compress_pj > 0.0 {
        format!("{:.1}% of compression energy", wasted_pj / compress_pj * 100.0)
    } else {
        "no compression energy spent".to_string()
    };
    w(format!(
        "  waste: {wasted} never-re-referenced fill(s) ({late} past the last useful one) = {} ({frac})",
        fmt_pj(wasted_pj)
    ));
    if let Some((acc_pj, kagura_pj)) = waste_baseline {
        let recovered = acc_pj - kagura_pj;
        let pct = if acc_pj > 0.0 {
            format!(" ({:.1}% of the ACC waste)", recovered / acc_pj * 100.0)
        } else {
            String::new()
        };
        w(format!(
            "  vs baseline: ACC wasted {}, +Kagura wasted {} -> recovered {}{pct}",
            fmt_pj(acc_pj),
            fmt_pj(kagura_pj),
            fmt_pj(recovered)
        ));
    }

    // Checkpoint traffic.
    let ckpt: u64 = fr.iter().map(|r| r.checkpoint_bytes).sum();
    w(format!("  checkpoints: {ckpt} byte(s) persisted across all cycles"));
    out
}

/// Looks up the `(acc_wasted_pj, kagura_wasted_pj)` baseline pair for
/// `app` on the canonical NVSRAMCache design inside a parsed
/// `energy_waste.json` document; `None` when absent or malformed (the
/// report degrades gracefully).
pub fn waste_baseline(doc: &Value, app: &str) -> Option<(f64, f64)> {
    let rows = doc.get("rows")?.as_array()?;
    let row = rows.iter().find(|r| {
        r.get("app").and_then(Value::as_str) == Some(app)
            && r.get("design").and_then(Value::as_str) == Some("NVSRAMCache")
    })?;
    let cells = row.get("cells")?.as_array()?;
    let wasted = |key: &str| {
        cells
            .iter()
            .find(|c| c.get("governor").and_then(Value::as_str) == Some(key))
            .and_then(|c| c.get("wasted_pj"))
            .and_then(Value::as_f64)
    };
    Some((wasted("acc")?, wasted("acc_kagura")?))
}

/// Entry point for `repro explain DIR`: parses every flight stream,
/// every cachescope stream and every leakscope stream under `dir`
/// strictly, renders one report per stream (plus the cross-cell leak
/// table when more than one leakscope cell is present), and returns the
/// number of streams rendered.
pub fn explain_dir(dir: &Path) -> Result<usize, String> {
    let files = discover_flight_files(dir)?;
    let scopes = crate::cachescope::discover_cachescope_files(dir)?;
    let leaks = crate::leakscope::discover_leakscope_files(dir)?;
    if files.is_empty() && scopes.is_empty() && leaks.is_empty() {
        return Err(format!(
            "no flight_<app>.jsonl, cachescope_<app>.jsonl or leakscope_<cell>.jsonl under \
             {dir} (run `repro energy_waste --telemetry {dir}`, `repro cachescope --telemetry \
             {dir}` or `repro leakscope --telemetry {dir}` first)",
            dir = dir.display(),
        ));
    }
    // Optional baseline: present when the experiment's JSON landed in
    // the same directory (e.g. `--out DIR --telemetry DIR`).
    let baseline_doc = std::fs::read_to_string(dir.join("energy_waste.json"))
        .ok()
        .and_then(|t| serde_json::from_str(&t).ok());
    for (app, path) in &files {
        let events = parse_flight_file(path)?;
        let baseline = baseline_doc.as_ref().and_then(|d| waste_baseline(d, app));
        print!("{}", render_report(app, &events, baseline));
        println!();
    }
    for (_, path) in &scopes {
        let parsed = crate::cachescope::parse_cachescope_file(path)?;
        print!("{}", crate::cachescope::render_report(&parsed));
        println!();
    }
    let mut leak_cells = Vec::with_capacity(leaks.len());
    for (_, path) in &leaks {
        let parsed = crate::leakscope::parse_leakscope_file(path)?;
        print!("{}", crate::leakscope::render_leak_report(&parsed));
        println!();
        leak_cells.push(parsed);
    }
    if leak_cells.len() > 1 {
        print!("{}", crate::leakscope::render_leak_table(&leak_cells));
        println!();
    }
    Ok(files.len() + scopes.len() + leaks.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehs_telemetry::Registers;

    fn stream() -> Vec<Stamped> {
        vec![
            Stamped {
                t_us: 10.0,
                cycle: 0,
                event: Event::ModeSwitch {
                    cm_to_rm: true,
                    registers: Registers {
                        r_prev: 50,
                        r_mem: 40,
                        r_adjust: -3,
                        r_thres: 32,
                        r_evict: 2,
                    },
                },
            },
            Stamped {
                t_us: 11.0,
                cycle: 0,
                event: Event::ThresholdAdjust { old: 32, new: 35, evicted: 9 },
            },
            Stamped {
                t_us: 12.0,
                cycle: 0,
                event: Event::FlightRecord(FlightRecord {
                    insts: 1000,
                    mem_ops: 40,
                    predicted_remaining: 50,
                    actual_remaining: 40,
                    mode: "RM",
                    late_compressions: 2,
                    wasted_fills: 5,
                    wasted_pj: 50.0,
                    compress_pj: 200.0,
                    harvested_pj: 1000.0,
                    other_pj: 800.0,
                    delta_stored_pj: 0.0,
                    ..FlightRecord::default()
                }),
            },
        ]
    }

    fn jsonl(events: &[Stamped]) -> String {
        events.iter().map(|s| serde_json::to_string(&s.to_value()).unwrap() + "\n").collect()
    }

    #[test]
    fn strict_parse_round_trips_a_valid_stream() {
        let dir = std::env::temp_dir().join("kagura_explain_ok");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flight_sha.jsonl");
        std::fs::write(&path, jsonl(&stream())).unwrap();
        let events = parse_flight_file(&path).expect("valid stream parses");
        assert_eq!(events, stream());
        let found = discover_flight_files(&dir).unwrap();
        assert!(found.iter().any(|(app, _)| app == "sha"));
    }

    #[test]
    fn strict_parse_names_the_bad_line() {
        let dir = std::env::temp_dir().join("kagura_explain_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flight_crc32.jsonl");
        let mut text = jsonl(&stream());
        text.push_str("{\"kind\": \"FlightRecord\", \"t_us\": 1.0}\n");
        std::fs::write(&path, text).unwrap();
        let err = parse_flight_file(&path).unwrap_err();
        assert!(err.contains("flight_crc32.jsonl:4"), "error must name file:line, got {err}");
        assert!(err.contains("`cycle`"), "error must name the missing field, got {err}");

        std::fs::write(&path, "not json at all\n").unwrap();
        let err = parse_flight_file(&path).unwrap_err();
        assert!(err.contains("invalid JSON"), "got {err}");
    }

    #[test]
    fn strict_parse_diagnoses_truncated_and_bit_flipped_lines() {
        let dir = std::env::temp_dir().join("kagura_explain_corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flight_gsm.jsonl");

        // A single-bit flip in a field name ('d' ^ 0x02 = 'f') leaves the
        // line valid JSON but the event missing `old`: the error names
        // the exact line and field.
        let good = jsonl(&stream());
        let flipped = good.replacen("\"old\":", "\"olf\":", 1);
        assert_ne!(good, flipped, "fixture must contain a ThresholdAdjust line");
        std::fs::write(&path, flipped).unwrap();
        let err = parse_flight_file(&path).unwrap_err();
        assert!(err.contains("flight_gsm.jsonl:2"), "file:line, got {err}");
        assert!(err.contains("`old`"), "field name, got {err}");

        // A write torn mid-line (e.g. a killed dump) is an invalid-JSON
        // error on that line.
        let lines: Vec<&str> = good.lines().collect();
        let torn = format!("{}\n{}\n{}", lines[0], lines[1], &lines[2][..lines[2].len() / 2]);
        std::fs::write(&path, torn).unwrap();
        let err = parse_flight_file(&path).unwrap_err();
        assert!(err.contains("flight_gsm.jsonl:3"), "file:line, got {err}");
        assert!(err.contains("invalid JSON"), "got {err}");
    }

    #[test]
    fn report_covers_every_section() {
        let report = render_report("sha", &stream(), Some((120.0, 50.0)));
        assert!(report.contains("=== sha ==="));
        assert!(report.contains("1 power cycle(s), 1000 instruction(s), 40 memory op(s)"));
        assert!(report.contains("0 violation(s)"));
        assert!(report.contains("1 CM / 1 RM") || report.contains("0 CM / 1 RM"));
        assert!(report.contains("CM->RM"));
        assert!(report.contains("R_thres: 32 -> 35 over 1 adjustment(s)"));
        assert!(report.contains("MAE 10.0 mem ops"));
        assert!(report.contains("5 never-re-referenced fill(s) (2 past the last useful one)"));
        assert!(report.contains("25.0% of compression energy"));
        assert!(report.contains("recovered 70.0 pJ"), "baseline delta: {report}");
    }

    #[test]
    fn baseline_lookup_matches_the_energy_waste_schema() {
        use serde_json::json;
        let doc = json!({
            "rows": [json!({
                "app": "sha", "design": "NVSRAMCache",
                "cells": [
                    json!({"governor": "always", "wasted_pj": 300.0}),
                    json!({"governor": "acc", "wasted_pj": 120.0}),
                    json!({"governor": "acc_kagura", "wasted_pj": 50.0}),
                ],
            })],
        });
        assert_eq!(waste_baseline(&doc, "sha"), Some((120.0, 50.0)));
        assert_eq!(waste_baseline(&doc, "crc32"), None);
    }

    #[test]
    fn ledger_residual_is_zero_for_a_balanced_stream() {
        let report = render_report("sha", &stream(), None);
        // 1000 harvested = 200 compress + 800 other + 0 Δstored.
        assert!(report.contains("residual 0.0 pJ"), "{report}");
        assert!(!report.contains("vs baseline"), "no baseline section without data");
    }
}
