//! Shared command-line parsing helpers for the harness binaries.
//!
//! The binaries (`repro`, `simrun`, `simbench`) parse their flags by
//! hand; historically a misspelled flag was *silently ignored*
//! (`simrun`) or mis-filed as an experiment id (`repro`), so
//! `--cachescope-peroid 100` ran a full simulation with the option
//! simply dropped. These helpers make unknown flags a hard error that
//! names the nearest valid flag, and let `simrun`-style positional
//! scanners validate the whole argument vector up front (flag arity
//! included) before any simulation starts.

/// A binary-level failure carrying its process exit class.
///
/// The harness binaries distinguish three failure classes so scripted
/// callers (ci.sh, the serve soak tests) can assert on *why* an
/// invocation failed instead of pattern-matching stderr:
///
/// * [`CliError::Usage`] — the command line never parsed (unknown flag,
///   missing value, stray positional). Exit code **2**, the Unix
///   convention for usage errors.
/// * [`CliError::Config`] — the command line parsed but names something
///   invalid (unknown app, bad enum value, mismatched resume
///   fingerprint). Exit code **3**.
/// * [`CliError::Runtime`] — a valid invocation failed while running
///   (I/O error, failed simulation, strict-audit violation). Exit
///   code **1**.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Malformed command line; exit code 2.
    Usage(String),
    /// Valid syntax naming an invalid configuration; exit code 3.
    Config(String),
    /// A valid invocation that failed at runtime; exit code 1.
    Runtime(String),
}

impl CliError {
    /// The process exit code for this failure class.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Config(_) => 3,
            CliError::Runtime(_) => 1,
        }
    }

    /// The user-facing message, without the class prefix.
    pub fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Config(m) | CliError::Runtime(m) => m,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.message())
    }
}

impl std::error::Error for CliError {}

/// Levenshtein edit distance between two ASCII-ish strings.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// The candidate closest to `input` in edit distance, when close
/// enough to plausibly be a typo (distance ≤ max(2, len/3)).
pub fn suggest<'a>(input: &str, candidates: &[&'a str]) -> Option<&'a str> {
    let budget = (input.len() / 3).max(2);
    candidates
        .iter()
        .map(|&c| (levenshtein(input, c), c))
        .min()
        .filter(|&(d, _)| d <= budget)
        .map(|(_, c)| c)
}

/// Error message for an unrecognized flag, naming the nearest valid
/// one when a plausible typo exists.
pub fn unknown_flag_error(flag: &str, known: &[&str]) -> String {
    match suggest(flag, known) {
        Some(nearest) => format!("unknown flag `{flag}` (did you mean `{nearest}`?)"),
        None => format!("unknown flag `{flag}`"),
    }
}

/// One recognized flag: its name and whether it consumes a value.
#[derive(Debug, Clone, Copy)]
pub struct FlagSpec {
    /// Flag literal, including the leading dashes (`--scale`).
    pub name: &'static str,
    /// Whether the next argument is this flag's value.
    pub takes_value: bool,
}

impl FlagSpec {
    /// A flag that consumes the following argument.
    pub const fn value(name: &'static str) -> Self {
        FlagSpec { name, takes_value: true }
    }

    /// A boolean switch.
    pub const fn switch(name: &'static str) -> Self {
        FlagSpec { name, takes_value: false }
    }
}

/// Validates a raw argument vector against a flag table: every
/// `--flag` must be known, value flags must have their value, and at
/// most `max_positionals` non-flag arguments may appear.
///
/// # Errors
///
/// Returns a user-facing message naming the offending argument — with
/// the nearest valid flag for plausible typos.
pub fn validate_args(
    args: &[String],
    flags: &[FlagSpec],
    max_positionals: usize,
) -> Result<(), String> {
    let known: Vec<&str> = flags.iter().map(|f| f.name).collect();
    let mut positionals = 0usize;
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if arg.starts_with('-') && arg.len() > 1 {
            let Some(spec) = flags.iter().find(|f| f.name == *arg) else {
                return Err(unknown_flag_error(arg, &known));
            };
            if spec.takes_value {
                i += 1;
                if i >= args.len() {
                    return Err(format!("flag `{}` needs a value", spec.name));
                }
            }
        } else {
            positionals += 1;
            if positionals > max_positionals {
                return Err(format!("unexpected argument `{arg}`"));
            }
        }
        i += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_error_classes_map_to_distinct_exit_codes() {
        assert_eq!(CliError::Usage("bad flag".into()).exit_code(), 2);
        assert_eq!(CliError::Config("bad governor".into()).exit_code(), 3);
        assert_eq!(CliError::Runtime("io error".into()).exit_code(), 1);
        assert_eq!(CliError::Config("x".into()).message(), "x");
        assert_eq!(CliError::Usage("y".into()).to_string(), "y");
    }

    #[test]
    fn edit_distance() {
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("--cachescope-peroid", "--cachescope-period"), 2);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
    }

    #[test]
    fn suggests_near_misses_only() {
        let known = ["--scale", "--cachescope-period", "--governor"];
        assert_eq!(suggest("--cachescope-peroid", &known), Some("--cachescope-period"));
        assert_eq!(suggest("--scal", &known), Some("--scale"));
        assert_eq!(suggest("--frobnicate", &known), None, "no wild guesses");
        assert!(unknown_flag_error("--scal", &known).contains("did you mean `--scale`"));
        assert!(!unknown_flag_error("--frobnicate", &known).contains("did you mean"));
    }

    #[test]
    fn validate_rejects_unknown_flags_and_missing_values() {
        let flags = [FlagSpec::value("--scale"), FlagSpec::switch("--json")];
        let ok = |v: &[&str]| {
            validate_args(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>(), &flags, 1)
        };
        assert!(ok(&["sha", "--scale", "0.5", "--json"]).is_ok());
        let err = ok(&["sha", "--scael", "0.5"]).unwrap_err();
        assert!(err.contains("--scale"), "{err}");
        assert!(ok(&["sha", "--scale"]).unwrap_err().contains("needs a value"));
        assert!(ok(&["sha", "extra"]).unwrap_err().contains("unexpected argument"));
        // A value that looks numeric is consumed by its flag, not
        // mistaken for a positional.
        assert!(ok(&["sha", "--scale", "-1"]).is_ok());
    }
}
