//! Leakscope experiment: the compression timing side channel, measured.
//!
//! Every cell runs the sliding-window eviction-oracle attack of
//! [`ehs_sim::leakscope`] against one compressor × governor pair on the
//! Table-I dcache: the attacker co-resides with a victim holding a
//! planted 8-byte secret in shared sets and recovers it byte-at-a-time
//! through probe latencies alone. The grid spans all six compressors and
//! four governors — `always`, `acc`, `acc_kagura` (including its CM→RM
//! mode-switch boundaries) and the `rand_threshold` countermeasure — so
//! one table answers both "who leaks" and "does randomizing the
//! compression threshold help". Under `--telemetry DIR` each cell dumps
//! its stream as `leakscope_<cell>.jsonl`, the input `repro explain`
//! renders and CI parses back strictly.

use ehs_compress::Algorithm;
use ehs_sim::{CellAttackReport, GovernorSpec, LeakscopeOptions};
use kagura_core::{KaguraConfig, RandThresholdConfig};
use serde_json::{json, Value};

use super::cfg;
use crate::cachescope::ScopeLabels;
use crate::leakscope::{
    parse_leakscope_str, render_leak_table, report_to_jsonl, to_hex, write_jsonl,
};
use crate::{parallel_map, ExpContext};

/// Governor columns of the grid, in report order. The countermeasure
/// rides last so the table reads attack → defence left to right.
fn governors() -> [GovernorSpec; 4] {
    [
        GovernorSpec::AlwaysCompress,
        GovernorSpec::Acc,
        GovernorSpec::AccKagura(KaguraConfig::default()),
        GovernorSpec::RandThreshold(RandThresholdConfig::default()),
    ]
}

/// Short file/JSON keys matching [`governors`] order.
const GOV_KEYS: [&str; 4] = ["always", "acc", "acc_kagura", "rand_threshold"];

/// File-slug form of a compressor name (`C-Pack` → `cpack`).
pub(crate) fn algorithm_slug(alg: Algorithm) -> String {
    alg.name().to_ascii_lowercase().replace('-', "")
}

/// The leakscope grid: one attack report per compressor × governor.
pub fn leakscope(ctx: &ExpContext) -> Value {
    println!("Leakscope: compression timing side channel, per compressor x governor");
    let jobs: Vec<(Algorithm, usize)> = Algorithm::EXTENDED
        .iter()
        .flat_map(|&alg| (0..GOV_KEYS.len()).map(move |g| (alg, g)))
        .collect();
    let opts = LeakscopeOptions::default();
    let runs: Vec<CellAttackReport> = parallel_map(jobs.clone(), |&(alg, g)| {
        let mut config = cfg(governors()[g]);
        config.algorithm = alg;
        ehs_sim::attack_cell(&config, &opts)
    });

    let cell_slug = |alg: Algorithm, g: usize| format!("{}_{}", algorithm_slug(alg), GOV_KEYS[g]);
    if let Some(dir) = &ctx.telemetry_dir {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
        for (&(alg, g), report) in jobs.iter().zip(&runs) {
            let slug = cell_slug(alg, g);
            let labels = ScopeLabels::new(&slug, cfg(governors()[g]).design.name(), GOV_KEYS[g]);
            let path = dir.join(format!("leakscope_{slug}.jsonl"));
            write_jsonl(&path, &labels, report)
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        }
        println!("  [leakscope streams under {} — render with `repro explain`]", dir.display());
    }

    // Round-trip each cell through the strict parser and print the
    // cross-cell table from the parsed form — the table exercises the
    // same path `repro explain` uses on the files.
    let parsed: Vec<_> = jobs
        .iter()
        .zip(&runs)
        .map(|(&(alg, g), report)| {
            let labels =
                ScopeLabels::new(cell_slug(alg, g), cfg(governors()[g]).design.name(), GOV_KEYS[g]);
            parse_leakscope_str(&report_to_jsonl(&labels, report))
                .unwrap_or_else(|(line, e)| panic!("self parse-back failed at line {line}: {e}"))
        })
        .collect();
    print!("{}", render_leak_table(&parsed));

    let out_rows: Vec<Value> = jobs
        .iter()
        .zip(&runs)
        .map(|(&(alg, g), r)| {
            json!({
                "algorithm": alg.name(),
                "governor": GOV_KEYS[g],
                "supported": r.supported,
                "recovered_bytes": r.stats.recovered_bytes,
                "secret_bytes": r.stats.secret_bytes,
                "recovered": r.stats.recovered(),
                "recovered_hex": to_hex(&r.recovered),
                "guesses": r.stats.guesses,
                "retries": r.stats.retries,
                "probe_accesses": r.stats.probe_accesses,
                "mi_bits": r.mi_bits,
                "capacity_bits": r.capacity_bits,
            })
        })
        .collect();

    // The headline claims the table must support.
    let recovered_algs: Vec<&str> = Algorithm::EXTENDED
        .iter()
        .filter(|&&alg| {
            jobs.iter()
                .zip(&runs)
                .any(|(&(a, g), r)| a == alg && GOV_KEYS[g] == "always" && r.stats.recovered())
        })
        .map(|a| a.name())
        .collect();
    let mi_of = |alg: Algorithm, key: &str| {
        jobs.iter()
            .zip(&runs)
            .find(|(&(a, g), _)| a == alg && GOV_KEYS[g] == key)
            .map(|(_, r)| r.mi_bits)
            .unwrap_or(f64::NAN)
    };
    let cpack_always = mi_of(Algorithm::CPack, "always");
    let cpack_rand = mi_of(Algorithm::CPack, "rand_threshold");
    println!(
        "  secret recovered through timing alone on: {} (always-compress)",
        recovered_algs.join(", ")
    );
    println!(
        "  countermeasure: C-Pack MI {cpack_always:.3} -> {cpack_rand:.3} bit(s) under \
         rand-threshold"
    );

    let out = json!({
        "experiment": "leakscope",
        "secret": to_hex(&opts.secret),
        "recovered_algorithms": recovered_algs,
        "cpack_mi_always": cpack_always,
        "cpack_mi_rand_threshold": cpack_rand,
        "rows": out_rows,
    });
    ctx.save("leakscope", &out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn governor_columns_match_their_keys() {
        let govs = governors();
        assert_eq!(govs.len(), GOV_KEYS.len());
        assert!(matches!(govs[0], GovernorSpec::AlwaysCompress));
        assert!(matches!(govs[1], GovernorSpec::Acc));
        assert!(matches!(govs[2], GovernorSpec::AccKagura(_)));
        assert!(matches!(govs[3], GovernorSpec::RandThreshold(_)));
    }

    #[test]
    fn algorithm_slugs_are_filename_safe_and_unique() {
        let slugs: Vec<String> = Algorithm::EXTENDED.iter().map(|&a| algorithm_slug(a)).collect();
        for s in &slugs {
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()), "{s}");
        }
        let mut dedup = slugs.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), slugs.len());
    }
}
