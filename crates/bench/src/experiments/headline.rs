//! The headline result figures: Fig 12–18.

use ehs_energy::EnergyCategory;
use ehs_sim::GovernorSpec;
use ehs_workloads::App;
use serde_json::{json, Value};

use super::{cfg, fmt_gain, gain_pct, mean_defined, run_grid};
use crate::{amean, print_table, ExpContext};

/// Fig 12: program behaviour between neighbouring power cycles.
pub fn fig12(ctx: &ExpContext) -> Value {
    println!("Fig 12: consistency across neighbouring power cycles (baseline EHS)");
    let grid = run_grid(ctx, &ctx.apps, &[cfg(GovernorSpec::NoCompression)]);
    let results: Vec<_> = ctx
        .apps
        .iter()
        .zip(grid)
        .map(|(&app, mut row)| (app, row.pop().expect("one config")))
        .collect();
    let mut rows = Vec::new();
    let mut out_rows = Vec::new();
    let (mut dl, mut ds, mut dc) = (Vec::new(), Vec::new(), Vec::new());
    let (mut fl, mut fs, mut fc) = (Vec::new(), Vec::new(), Vec::new());
    for (app, stats) in &results {
        let l = stats.load_consistency();
        let s = stats.store_consistency();
        let c = stats.cpi_consistency();
        rows.push(vec![
            app.name().to_string(),
            format!("{:.2}%", l.mean_diff * 100.0),
            format!("{:.2}%", s.mean_diff * 100.0),
            format!("{:.2}%", c.mean_diff * 100.0),
            format!("{:.1}%", l.frac_below_20 * 100.0),
            format!("{:.1}%", s.frac_below_20 * 100.0),
            format!("{:.1}%", c.frac_below_20 * 100.0),
        ]);
        out_rows.push(json!({
            "app": app.name(),
            "load_diff": l.mean_diff, "store_diff": s.mean_diff, "cpi_diff": c.mean_diff,
            "load_below20": l.frac_below_20, "store_below20": s.frac_below_20,
            "cpi_below20": c.frac_below_20,
        }));
        dl.push(l.mean_diff);
        ds.push(s.mean_diff);
        dc.push(c.mean_diff);
        fl.push(l.frac_below_20);
        fs.push(s.frac_below_20);
        fc.push(c.frac_below_20);
    }
    rows.push(vec![
        "MEAN".into(),
        format!("{:.2}%", amean(&dl) * 100.0),
        format!("{:.2}%", amean(&ds) * 100.0),
        format!("{:.2}%", amean(&dc) * 100.0),
        format!("{:.1}%", amean(&fl) * 100.0),
        format!("{:.1}%", amean(&fs) * 100.0),
        format!("{:.1}%", amean(&fc) * 100.0),
    ]);
    print_table(&["app", "d-load", "d-store", "d-CPI", "load<20%", "store<20%", "CPI<20%"], &rows);
    println!("  (paper means: 5.73% / 14.11% / 5.26% diffs; 86.91/80.27/88.48% below 20%)");
    let out = json!({
        "experiment": "fig12", "rows": out_rows,
        "mean": {
            "load_diff": amean(&dl), "store_diff": amean(&ds), "cpi_diff": amean(&dc),
            "load_below20": amean(&fl), "store_below20": amean(&fs), "cpi_below20": amean(&fc),
        }
    });
    ctx.save("fig12", &out);
    out
}

/// The five Fig-13 configurations in presentation order.
fn fig13_specs() -> Vec<(&'static str, GovernorSpec)> {
    vec![
        ("ACC", GovernorSpec::Acc),
        ("ACC+Kagura", GovernorSpec::AccKagura(Default::default())),
        ("ideal ACC", GovernorSpec::IdealAcc),
        ("ideal ACC+Kagura", GovernorSpec::IdealAccKagura(Default::default())),
    ]
}

/// Fig 13: speedup (top) and committed-instruction increase per power
/// cycle (bottom) over the compressor-free baseline.
pub fn fig13(ctx: &ExpContext) -> Value {
    println!("Fig 13: speedup and committed-inst/cycle increase over baseline");
    let specs = fig13_specs();
    let mut configs = vec![cfg(GovernorSpec::NoCompression)];
    configs.extend(specs.iter().map(|&(_, gov)| cfg(gov)));
    let grid = run_grid(ctx, &ctx.apps, &configs);
    let results: Vec<_> = ctx
        .apps
        .iter()
        .zip(&grid)
        .map(|(&app, row)| {
            let base = &row[0];
            let variants: Vec<_> = specs
                .iter()
                .zip(&row[1..])
                .map(|(&(label, _), s)| {
                    let speed = gain_pct(base, s);
                    let inst_inc =
                        (s.avg_insts_per_cycle() / base.avg_insts_per_cycle() - 1.0) * 100.0;
                    (label, speed, inst_inc)
                })
                .collect();
            (app, variants)
        })
        .collect();
    let mut rows = Vec::new();
    let mut out_rows = Vec::new();
    let mut means: Vec<Vec<f64>> = vec![Vec::new(); specs.len()];
    let mut inst_means: Vec<Vec<f64>> = vec![Vec::new(); specs.len()];
    for (app, variants) in &results {
        let mut row = vec![app.name().to_string()];
        for (i, (label, speed, inst)) in variants.iter().enumerate() {
            row.push(fmt_gain(*speed));
            if let Some(s) = speed {
                means[i].push(*s);
            }
            inst_means[i].push(*inst);
            out_rows.push(json!({
                "app": app.name(), "config": label,
                "speedup_pct": *speed, "inst_per_cycle_increase_pct": inst,
            }));
        }
        rows.push(row);
    }
    let mut mean_row = vec!["MEAN".to_string()];
    for m in &means {
        mean_row.push(format!("{:+.2}%", mean_defined(m)));
    }
    rows.push(mean_row);
    let headers: Vec<&str> = std::iter::once("app").chain(specs.iter().map(|&(l, _)| l)).collect();
    print_table(&headers, &rows);
    println!("  committed-inst/cycle increase (means):");
    for (i, (label, _)) in specs.iter().enumerate() {
        println!("    {label}: {:+.2}%", amean(&inst_means[i]));
    }
    println!("  (paper means: ACC +0.0022%, +Kagura +4.74%, ideal +6.19%; insts ACC +0.28%, +Kagura +4.57%)");
    let out = json!({
        "experiment": "fig13", "rows": out_rows,
        "mean_speedup_pct": specs.iter().enumerate()
            .map(|(i, (l, _))| json!({"config": l, "value": mean_defined(&means[i])}))
            .collect::<Vec<_>>(),
        "mean_inst_increase_pct": specs.iter().enumerate()
            .map(|(i, (l, _))| json!({"config": l, "value": amean(&inst_means[i])}))
            .collect::<Vec<_>>(),
    });
    ctx.save("fig13", &out);
    out
}

/// Fig 14: power-cycle length distribution per application.
pub fn fig14(ctx: &ExpContext) -> Value {
    println!("Fig 14: power-cycle length distribution (committed instructions)");
    let grid = run_grid(ctx, &ctx.apps, &[cfg(GovernorSpec::NoCompression)]);
    let results: Vec<_> = ctx
        .apps
        .iter()
        .zip(grid)
        .map(|(&app, mut row)| (app, row.pop().expect("one config")))
        .collect();
    let mut out_rows = Vec::new();
    let mut rows = Vec::new();
    for (app, stats) in &results {
        let hist = stats.cycle_length_histogram(8);
        let mean = stats.avg_insts_per_cycle();
        rows.push(vec![
            app.name().to_string(),
            format!("{}", stats.power_cycles.len()),
            format!("{:.1}k", mean / 1000.0),
            hist.iter().map(|&(_, f)| format!("{:.2}", f)).collect::<Vec<_>>().join(" "),
        ]);
        out_rows.push(json!({
            "app": app.name(),
            "cycles": stats.power_cycles.len(),
            "mean_insts": mean,
            "histogram": hist.iter().map(|&(ub, f)| json!({"upper": ub, "frac": f})).collect::<Vec<_>>(),
        }));
    }
    print_table(&["app", "cycles", "mean len", "density (8 bins)"], &rows);
    println!("  (paper: most cycles cluster at comparable lengths of a few thousand insts)");
    let out = json!({ "experiment": "fig14", "rows": out_rows });
    ctx.save("fig14", &out);
    out
}

/// Fig 15: I/D cache miss rates under base, ACC, ACC+Kagura.
pub fn fig15(ctx: &ExpContext) -> Value {
    println!("Fig 15: cache miss rates");
    let specs = [
        ("baseline", GovernorSpec::NoCompression),
        ("ACC", GovernorSpec::Acc),
        ("ACC+Kagura", GovernorSpec::AccKagura(Default::default())),
    ];
    let configs: Vec<_> = specs.iter().map(|&(_, g)| cfg(g)).collect();
    let grid = run_grid(ctx, &ctx.apps, &configs);
    let results: Vec<_> = ctx
        .apps
        .iter()
        .zip(grid)
        .map(|(&app, row)| {
            let per: Vec<_> = specs.iter().map(|&(l, _)| l).zip(row).collect();
            (app, per)
        })
        .collect();
    let mut rows = Vec::new();
    let mut out_rows = Vec::new();
    let mut means: Vec<(Vec<f64>, Vec<f64>)> = vec![(Vec::new(), Vec::new()); specs.len()];
    for (app, per) in &results {
        let mut row = vec![app.name().to_string()];
        for (i, (label, stats)) in per.iter().enumerate() {
            let im = stats.icache.miss_rate() * 100.0;
            let dm = stats.dcache.miss_rate() * 100.0;
            row.push(format!("{im:.2}/{dm:.2}"));
            means[i].0.push(im);
            means[i].1.push(dm);
            out_rows.push(json!({
                "app": app.name(), "config": label,
                "icache_miss_pct": im, "dcache_miss_pct": dm,
            }));
        }
        rows.push(row);
    }
    let mut mean_row = vec!["MEAN".to_string()];
    for (im, dm) in &means {
        mean_row.push(format!("{:.2}/{:.2}", amean(im), amean(dm)));
    }
    rows.push(mean_row);
    print_table(&["app", "base I/D %", "ACC I/D %", "+Kagura I/D %"], &rows);
    println!("  (paper: ACC cuts miss rates by 1.45%/2.29% (I/D); +Kagura by 2.71%/3.24%)");
    let out = json!({ "experiment": "fig15", "rows": out_rows });
    ctx.save("fig15", &out);
    out
}

/// Fig 16: normalized energy breakdown.
pub fn fig16(ctx: &ExpContext) -> Value {
    println!("Fig 16: energy breakdown normalized to the baseline total");
    let specs = [
        ("baseline", GovernorSpec::NoCompression),
        ("ACC", GovernorSpec::Acc),
        ("ACC+Kagura", GovernorSpec::AccKagura(Default::default())),
    ];
    let configs: Vec<_> = specs.iter().map(|&(_, g)| cfg(g)).collect();
    let grid = run_grid(ctx, &ctx.apps, &configs);
    let results: Vec<_> = ctx
        .apps
        .iter()
        .zip(grid)
        .map(|(&app, row)| {
            let per: Vec<_> = specs.iter().map(|&(l, _)| l).zip(row).collect();
            (app, per)
        })
        .collect();
    let mut out_rows = Vec::new();
    let mut totals: Vec<Vec<f64>> = vec![Vec::new(); specs.len()];
    let mut comp_over: Vec<f64> = Vec::new();
    let mut decomp_over: Vec<f64> = Vec::new();
    let mut comp_over_k: Vec<f64> = Vec::new();
    let mut decomp_over_k: Vec<f64> = Vec::new();
    let mut rows = Vec::new();
    for (app, per) in &results {
        let base_total = per[0].1.total_energy();
        let mut row = vec![app.name().to_string()];
        for (i, (label, stats)) in per.iter().enumerate() {
            let norm = stats.breakdown.normalized_to(base_total);
            let total: f64 = norm.iter().map(|&(_, v)| v).sum();
            totals[i].push(total);
            row.push(format!("{:.3}", total));
            let frac = |c: EnergyCategory| {
                norm.iter().find(|&&(cat, _)| cat == c).map(|&(_, v)| v).unwrap_or(0.0)
            };
            if i == 1 {
                comp_over.push(frac(EnergyCategory::Compress));
                decomp_over.push(frac(EnergyCategory::Decompress));
            }
            if i == 2 {
                comp_over_k.push(frac(EnergyCategory::Compress));
                decomp_over_k.push(frac(EnergyCategory::Decompress));
            }
            out_rows.push(json!({
                "app": app.name(), "config": label, "normalized_total": total,
                "categories": norm.iter()
                    .map(|&(c, v)| json!({"category": c.label(), "value": v}))
                    .collect::<Vec<_>>(),
            }));
        }
        rows.push(row);
    }
    let mut mean_row = vec!["MEAN".to_string()];
    for t in &totals {
        mean_row.push(format!("{:.3}", amean(t)));
    }
    rows.push(mean_row);
    print_table(&["app", "baseline", "ACC", "+Kagura"], &rows);
    println!(
        "  compress/decompress overheads: ACC {:.2}%/{:.2}%, +Kagura {:.2}%/{:.2}% of baseline total",
        amean(&comp_over) * 100.0,
        amean(&decomp_over) * 100.0,
        amean(&comp_over_k) * 100.0,
        amean(&decomp_over_k) * 100.0
    );
    println!("  (paper: ACC 6.88%/3.06% -> +Kagura 4.12%/2.75%; total energy -4.53%)");
    let out = json!({ "experiment": "fig16", "rows": out_rows });
    ctx.save("fig16", &out);
    out
}

/// Fig 17: Kagura's gain vs arithmetic intensity.
pub fn fig17(ctx: &ExpContext) -> Value {
    println!("Fig 17: performance gain vs arithmetic intensity");
    let apps: Vec<App> = App::FIG17.to_vec();
    let configs =
        [cfg(GovernorSpec::NoCompression), cfg(GovernorSpec::AccKagura(Default::default()))];
    let grid = run_grid(ctx, &apps, &configs);
    let results: Vec<_> = apps
        .iter()
        .zip(&grid)
        .map(|(&app, row)| {
            let ai = app.build(0.05).arithmetic_intensity();
            (app, ai, gain_pct(&row[0], &row[1]))
        })
        .collect();
    let mut rows = Vec::new();
    let mut out_rows = Vec::new();
    for (app, ai, gain) in &results {
        rows.push(vec![app.name().to_string(), format!("{ai:.2}"), fmt_gain(*gain)]);
        out_rows.push(json!({ "app": app.name(), "intensity": ai, "speedup_pct": *gain }));
    }
    print_table(&["app", "arith intensity", "Kagura gain"], &rows);
    println!("  (paper: gain inversely related to arithmetic intensity)");
    let out = json!({ "experiment": "fig17", "rows": out_rows });
    ctx.save("fig17", &out);
    out
}

/// Fig 18: compression-operation reduction ratio by Kagura.
pub fn fig18(ctx: &ExpContext) -> Value {
    println!("Fig 18: compression operations eliminated by Kagura (vs ACC)");
    let configs = [cfg(GovernorSpec::Acc), cfg(GovernorSpec::AccKagura(Default::default()))];
    let grid = run_grid(ctx, &ctx.apps, &configs);
    let results: Vec<_> = ctx
        .apps
        .iter()
        .zip(&grid)
        .map(|(&app, row)| {
            let (a, k) = (row[0].compression_ops(), row[1].compression_ops());
            let reduction = if a == 0 { 0.0 } else { (a.saturating_sub(k)) as f64 / a as f64 };
            (app, a, k, reduction)
        })
        .collect();
    let mut rows = Vec::new();
    let mut out_rows = Vec::new();
    let mut reductions = Vec::new();
    for (app, a, k, r) in &results {
        rows.push(vec![
            app.name().to_string(),
            a.to_string(),
            k.to_string(),
            format!("{:.2}%", r * 100.0),
        ]);
        out_rows.push(json!({
            "app": app.name(), "acc_ops": a, "kagura_ops": k, "reduction": r,
        }));
        reductions.push(*r);
    }
    rows.push(vec![
        "MEAN".into(),
        String::new(),
        String::new(),
        format!("{:.2}%", amean(&reductions) * 100.0),
    ]);
    print_table(&["app", "ACC ops", "+Kagura ops", "reduction"], &rows);
    println!("  (paper: ~9.85% average, >40% for g721d/g721e)");
    let out = json!({ "experiment": "fig18", "rows": out_rows,
                      "mean_reduction": amean(&reductions) });
    ctx.save("fig18", &out);
    out
}
