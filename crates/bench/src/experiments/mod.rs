//! Experiment registry: one entry per paper table/figure.

pub mod analytic;
pub mod cachescope;
pub mod energy_waste;
pub mod estimator;
pub mod faultgrid;
pub mod fleet;
pub mod headline;
pub mod leakscope;
pub mod sensitivity;
pub mod summary;

use ehs_sim::{GovernorSpec, SimConfig, SimJob, SimStats};
use ehs_workloads::App;
use serde_json::Value;

use crate::ExpContext;

/// An experiment: prints its rows and returns the JSON payload.
pub type ExpFn = fn(&ExpContext) -> Value;

/// `(id, what it regenerates, runner)` for every experiment.
pub const REGISTRY: &[(&str, &str, ExpFn)] = &[
    ("summary", "the abstract's headline energy/speedup numbers", summary::summary),
    ("fig1", "speedup vs cache size, baseline EHS without compression", sensitivity::fig1),
    ("fig3", "analytical min delta-R_hit surfaces (Eq. 4)", analytic::fig3),
    ("fig11", "ambient power trace characterisation", analytic::fig11),
    ("fig12", "program behaviour across neighbouring power cycles", headline::fig12),
    ("fig13", "speedup and committed-inst increase: base/ACC/+Kagura/ideals", headline::fig13),
    ("fig14", "power-cycle length distribution per application", headline::fig14),
    ("fig15", "I/D cache miss rates: base/ACC/+Kagura", headline::fig15),
    ("fig16", "normalized energy breakdown (six categories)", headline::fig16),
    ("fig17", "performance vs arithmetic intensity", headline::fig17),
    ("fig18", "compression-operation reduction by Kagura", headline::fig18),
    ("fig19", "trigger strategies across EHS designs", sensitivity::fig19),
    ("fig20", "Kagura with EDBP and IPEX cache managements", sensitivity::fig20),
    ("fig21", "R_thres adaptation schemes (AIMD/MIAD/AIAD/MIMD)", sensitivity::fig21),
    ("fig22", "R_thres increase step (5-20%)", sensitivity::fig22),
    ("fig23", "compression algorithms (BDI/FPC/C-Pack/DZC)", sensitivity::fig23),
    ("fig24", "cache size sweep with ACC+Kagura", sensitivity::fig24),
    ("fig25", "cache associativity sweep", sensitivity::fig25),
    ("fig26", "cache block size sweep", sensitivity::fig26),
    ("fig27", "main memory size sweep", sensitivity::fig27),
    ("fig28", "main memory technology sweep", sensitivity::fig28),
    ("fig29", "capacitor size sweep", sensitivity::fig29),
    ("fig30", "power trace sweep", sensitivity::fig30),
    ("table2", "history depth for memory-operation estimation", sensitivity::table2),
    ("table3", "capacitor leakage share of total energy", sensitivity::table3),
    ("table4", "reward/punishment counter width", sensitivity::table4),
    ("hw", "hardware overhead accounting (§VIII-A)", analytic::hw),
    (
        "estimator_accuracy",
        "per-app N_remain prediction error of each estimator vs the oracle",
        estimator::estimator_accuracy,
    ),
    (
        "ablation-estimator",
        "simple vs sophisticated N_remain estimator",
        sensitivity::ablation_estimator,
    ),
    (
        "ablation-region-size",
        "checkpoint region size on SweepCache (§VII-C)",
        sensitivity::ablation_region_size,
    ),
    (
        "faultgrid",
        "crash-consistency certification: injected power failures vs golden image",
        faultgrid::faultgrid,
    ),
    (
        "energy_waste",
        "per-cycle wasted compression energy: design x governor counterfactual",
        energy_waste::energy_waste,
    ),
    (
        "cachescope",
        "cache-microarchitecture reports: occupancy, compressibility, latency attribution",
        cachescope::cachescope,
    ),
    (
        "leakscope",
        "compression timing side channel: secret recovery + MI per compressor x governor",
        leakscope::leakscope,
    ),
    (
        "fleet",
        "population-scale campaign: stratified+LHS cell fleet with bootstrap CIs",
        fleet::fleet,
    ),
];

/// Looks up an experiment by id.
pub fn find(id: &str) -> Option<ExpFn> {
    REGISTRY.iter().find(|(name, _, _)| *name == id).map(|&(_, _, f)| f)
}

/// Shorthand: the Table-I config with a given governor.
pub(crate) fn cfg(gov: GovernorSpec) -> SimConfig {
    SimConfig::table1().with_governor(gov)
}

/// Runs the full `apps × configs` grid as one flat batch on the shared
/// worker pool and regroups the results into one row per app, column
/// order matching `configs`.
///
/// Submitting the whole grid at once (rather than one app or one config
/// at a time) keeps every worker busy until the last cell finishes; with
/// `--jobs 1` the cells run inline in submission order, so results are
/// identical at any job count.
///
/// Failures are contained per cell: a panicking, watchdog-cancelled or
/// worker-killed simulation degrades to a default (incomplete) stats
/// record — so every speedup-derived report cell downstream becomes
/// `null` via [`SimStats::try_speedup_over`] — and one attributed record
/// lands in the context's failure manifest. The context's
/// [`job_budget`](ExpContext::job_budget) is applied to every cell whose
/// config does not carry its own budget.
pub(crate) fn run_grid(
    ctx: &ExpContext,
    apps: &[App],
    configs: &[SimConfig],
) -> Vec<Vec<SimStats>> {
    let jobs: Vec<SimJob> = apps
        .iter()
        .flat_map(|&app| {
            configs.iter().map(move |c| {
                let mut cell_cfg = c.clone();
                // `--audit-strict` escalates per-cycle ledger imbalances
                // from counted to fatal; the panic is contained by the
                // pool and surfaces as a failed-cell record below.
                cell_cfg.audit_strict |= ctx.audit_strict;
                let job = SimJob::new(app, ctx.scale, cell_cfg);
                if c.step_budget.is_unlimited() {
                    job.with_budget(ctx.job_budget)
                } else {
                    job
                }
            })
        })
        .collect();
    let mut results = ehs_sim::run_batch(jobs).into_iter();
    apps.iter()
        .map(|&app| {
            configs
                .iter()
                .map(|c| {
                    let cell = results.next().expect("one result per grid cell");
                    match cell {
                        Ok(s) => {
                            ctx.add_cell_stats(&s);
                            if !s.completed {
                                eprintln!(
                                    "warning: {app} did not complete under {} (design {}) — \
                                     speedup-derived cells for this row degrade to null",
                                    c.governor.label(),
                                    c.design
                                );
                            }
                            s
                        }
                        Err(failure) => {
                            eprintln!(
                                "warning: {app} under {} (design {}) failed ({failure}) — \
                                 its report cells degrade to null",
                                c.governor.label(),
                                c.design
                            );
                            ctx.record_failure(serde_json::json!({
                                "exp": ctx.exp_id.as_deref().unwrap_or("?"),
                                "app": app.to_string(),
                                "governor": c.governor.label(),
                                "design": c.design.to_string(),
                                "kind": failure.kind(),
                                "detail": failure.to_string(),
                            }));
                            // Default stats are `completed == false`, which
                            // every derived metric already nulls out.
                            SimStats::default()
                        }
                    }
                })
                .collect()
        })
        .collect()
}

/// Percentage gain of `t` over `base` where both are completion times;
/// `None` when either run was truncated (see [`SimStats::try_speedup_over`]),
/// so one bad cell nulls a report row instead of aborting the experiment.
pub(crate) fn gain_pct(base: &SimStats, t: &SimStats) -> Option<f64> {
    t.try_speedup_over(base).map(|s| (s - 1.0) * 100.0)
}

/// Formats an optional percentage gain for a table cell (`n/a` when the
/// underlying run was truncated).
pub(crate) fn fmt_gain(g: Option<f64>) -> String {
    g.map_or_else(|| "n/a".into(), |v| format!("{v:+.2}%"))
}

/// Arithmetic mean that degrades to NaN (→ `null` in the JSON output)
/// instead of panicking when every contributing run was truncated.
pub(crate) fn mean_defined(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        f64::NAN
    } else {
        crate::amean(xs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_helpers_degrade_truncated_runs() {
        use ehs_model::SimTime;
        let done = SimStats {
            completed: true,
            sim_time: SimTime::from_seconds(1.0),
            ..SimStats::default()
        };
        let slower = SimStats {
            completed: true,
            sim_time: SimTime::from_seconds(1.25),
            ..SimStats::default()
        };
        let truncated = SimStats::default();
        let g = gain_pct(&slower, &done).expect("both completed");
        assert!((g - 25.0).abs() < 1e-9);
        assert_eq!(gain_pct(&truncated, &done), None);
        assert_eq!(fmt_gain(Some(4.736)), "+4.74%");
        assert_eq!(fmt_gain(None), "n/a");
        assert!(mean_defined(&[]).is_nan());
        assert_eq!(mean_defined(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn registry_ids_are_unique_and_findable() {
        let mut ids: Vec<&str> = REGISTRY.iter().map(|&(id, _, _)| id).collect();
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate experiment ids");
        assert!(find("fig13").is_some());
        assert!(find("nope").is_none());
        // Every paper figure/table from the evaluation section is present.
        for required in [
            "fig1", "fig3", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
            "fig19", "fig20", "fig21", "fig22", "fig23", "fig24", "fig25", "fig26", "fig27",
            "fig28", "fig29", "fig30", "table2", "table3", "table4", "hw",
        ] {
            assert!(find(required).is_some(), "missing experiment {required}");
        }
    }
}
