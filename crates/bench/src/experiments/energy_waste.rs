//! Counterfactual waste attribution: compression energy spent on blocks
//! that were never re-referenced before the outage.
//!
//! Every power cycle the flight recorder (see `ehs-sim`'s
//! [`ehs_telemetry::Event::FlightRecord`]) reports how many compressed
//! fills went unused and what their compression energy cost. Summed over
//! a run, that is the energy an oracle would not have spent — the
//! population Kagura's mode machine tries to shrink by switching to
//! regular mode when few memory operations remain. This experiment runs
//! the counterfactual grid (every EHS design × always-compress / ACC /
//! ACC+Kagura) and reports the waste fraction per cell plus how much of
//! the ACC waste Kagura recovers.

use ehs_sim::{EhsDesign, GovernorSpec, SimStats};
use ehs_telemetry::{Event, Stamped, VecSink};
use ehs_workloads::App;
use kagura_core::KaguraConfig;
use serde_json::{json, Value};

use super::{cfg, mean_defined};
use crate::{parallel_map, print_table, ExpContext};

/// Governor columns of the counterfactual grid, in report order.
fn governors() -> [GovernorSpec; 3] {
    [
        GovernorSpec::AlwaysCompress,
        GovernorSpec::Acc,
        GovernorSpec::AccKagura(KaguraConfig::default()),
    ]
}

/// Short JSON/report keys matching [`governors`] order.
const GOV_KEYS: [&str; 3] = ["always", "acc", "acc_kagura"];

/// Per-run waste totals folded from the flight-record stream.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
struct WasteTotals {
    /// Power cycles that produced a flight record.
    cycles: u64,
    /// Compressed fills never re-referenced before their outage.
    wasted_fills: u64,
    /// Wasted fills after the last useful one (an ideal switch-off
    /// point would have avoided exactly these).
    late_compressions: u64,
    /// Compression energy spent on the wasted fills (pJ).
    wasted_pj: f64,
    /// Total compression energy (pJ) — the waste-fraction denominator.
    compress_pj: f64,
}

impl WasteTotals {
    /// Wasted fraction of all compression energy; NaN when the run
    /// compressed nothing (→ `null` in JSON, `n/a` in the table).
    fn waste_frac(&self) -> f64 {
        if self.compress_pj > 0.0 {
            self.wasted_pj / self.compress_pj
        } else {
            f64::NAN
        }
    }
}

/// Folds the flight records of one run into its waste totals.
fn fold_flights(events: &[Stamped]) -> WasteTotals {
    let mut t = WasteTotals::default();
    for s in events {
        if let Event::FlightRecord(r) = &s.event {
            t.cycles += 1;
            t.wasted_fills += r.wasted_fills;
            t.late_compressions += r.late_compressions;
            t.wasted_pj += r.wasted_pj;
            t.compress_pj += r.compress_pj;
        }
    }
    t
}

fn fmt_frac(f: f64) -> String {
    if f.is_finite() {
        format!("{:.1}%", f * 100.0)
    } else {
        "n/a".into()
    }
}

/// The counterfactual waste-attribution grid (tentpole part 3): wasted
/// compression energy per design × governor, with flight-record streams
/// dumped under `--telemetry DIR` for `repro explain`.
pub fn energy_waste(ctx: &ExpContext) -> Value {
    println!(
        "Energy waste: compression energy on never-re-referenced blocks (per design x governor)"
    );
    let jobs: Vec<(App, EhsDesign, usize)> = ctx
        .sens_apps
        .iter()
        .flat_map(|&app| {
            EhsDesign::ALL.iter().flat_map(move |&design| (0..3).map(move |g| (app, design, g)))
        })
        .collect();
    // The canonical cell whose raw stream `repro explain` reads.
    let canonical = |design: EhsDesign, g: usize| design == EhsDesign::NvsramCache && g == 2;
    type RunOut = (SimStats, WasteTotals, Option<Vec<Stamped>>);
    let runs: Vec<RunOut> = parallel_map(jobs.clone(), |&(app, design, g)| {
        let mut config = cfg(governors()[g]).with_design(design);
        config.audit_strict |= ctx.audit_strict;
        let mut sink = VecSink::new();
        let (stats, _metrics) = ehs_sim::run_app_with_telemetry(app, ctx.scale, &config, &mut sink);
        let events = sink.into_events();
        let totals = fold_flights(&events);
        (stats, totals, canonical(design, g).then_some(events))
    });
    for (stats, _, _) in &runs {
        ctx.add_cell_stats(stats);
    }

    if let Some(dir) = &ctx.telemetry_dir {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
        for ((app, _, _), (_, _, events)) in jobs.iter().zip(&runs) {
            let Some(events) = events else { continue };
            let path = dir.join(format!("flight_{}.jsonl", app.name()));
            let lines: String = events
                .iter()
                .filter(|s| s.event.flight_relevant())
                .map(|s| serde_json::to_string(&s.to_value()).expect("serializable") + "\n")
                .collect();
            crate::fsutil::atomic_write(&path, lines.as_bytes())
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        }
        println!("  [flight records under {} — render with `repro explain`]", dir.display());
    }

    // Regroup the flat run list into (app, design) rows of three
    // governor cells each, preserving submission order.
    let mut rows = Vec::new();
    let mut out_rows = Vec::new();
    let mut frac_by_gov = vec![Vec::new(); 3];
    for (job_row, cells) in jobs.chunks(3).zip(runs.chunks(3)) {
        let (app, design, _) = job_row[0];
        let totals: Vec<WasteTotals> = cells.iter().map(|(_, t, _)| *t).collect();
        // Energy the mode machine recovered: ACC waste minus Kagura waste.
        let recovered_pj = totals[1].wasted_pj - totals[2].wasted_pj;
        rows.push(vec![
            app.name().to_string(),
            design.name().to_string(),
            fmt_frac(totals[0].waste_frac()),
            fmt_frac(totals[1].waste_frac()),
            fmt_frac(totals[2].waste_frac()),
            format!("{recovered_pj:.0}"),
            totals[2].cycles.to_string(),
        ]);
        let mut cells_json = Vec::new();
        for (key, t) in GOV_KEYS.iter().zip(&totals) {
            cells_json.push(json!({
                "governor": *key,
                "cycles": t.cycles,
                "wasted_fills": t.wasted_fills,
                "late_compressions": t.late_compressions,
                "wasted_pj": t.wasted_pj,
                "compress_pj": t.compress_pj,
                "waste_frac": t.waste_frac(),
            }));
        }
        out_rows.push(json!({
            "app": app.name(),
            "design": design.name(),
            "cells": Value::Array(cells_json),
            "kagura_recovered_pj": recovered_pj,
        }));
        for (slot, t) in totals.iter().enumerate() {
            if t.waste_frac().is_finite() {
                frac_by_gov[slot].push(t.waste_frac());
            }
        }
    }
    print_table(
        &["app", "design", "waste always", "waste ACC", "waste +Kagura", "recovered pJ", "cycles"],
        &rows,
    );
    let means: Vec<Value> = GOV_KEYS
        .iter()
        .zip(&frac_by_gov)
        .map(|(&key, f)| json!({ "governor": key, "mean_waste_frac": mean_defined(f) }))
        .collect();
    for mv in &means {
        if let (Some(k), Some(m)) = (mv.get("governor"), mv.get("mean_waste_frac")) {
            println!(
                "  mean waste fraction {}: {}",
                k.as_str().unwrap_or("?"),
                fmt_frac(m.as_f64().unwrap_or(f64::NAN))
            );
        }
    }
    println!("  (Kagura's claim: the +Kagura column should recover most of the ACC waste)");
    let out = json!({
        "experiment": "energy_waste",
        "rows": out_rows,
        "mean_waste_frac": means,
    });
    ctx.save("energy_waste", &out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehs_telemetry::FlightRecord;

    fn flight(wasted_fills: u64, late: u64, wasted_pj: f64, compress_pj: f64) -> Stamped {
        let r = FlightRecord {
            wasted_fills,
            late_compressions: late,
            wasted_pj,
            compress_pj,
            ..FlightRecord::default()
        };
        Stamped { t_us: 1.0, cycle: 0, event: Event::FlightRecord(r) }
    }

    #[test]
    fn fold_sums_flight_records_and_ignores_the_rest() {
        let events = vec![
            flight(3, 1, 30.0, 100.0),
            Stamped { t_us: 2.0, cycle: 1, event: Event::Reboot { charge_us: 3.5, voltage: 2.0 } },
            flight(2, 2, 20.0, 50.0),
        ];
        let t = fold_flights(&events);
        assert_eq!(t.cycles, 2);
        assert_eq!(t.wasted_fills, 5);
        assert_eq!(t.late_compressions, 3);
        assert!((t.wasted_pj - 50.0).abs() < 1e-12);
        assert!((t.compress_pj - 150.0).abs() < 1e-12);
        assert!((t.waste_frac() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn waste_fraction_of_compressionless_run_is_undefined() {
        let t = fold_flights(&[]);
        assert_eq!(t.cycles, 0);
        assert!(t.waste_frac().is_nan(), "no compression -> n/a, not 0%");
    }

    #[test]
    fn governor_columns_match_their_keys() {
        let govs = governors();
        assert_eq!(govs.len(), GOV_KEYS.len());
        assert!(matches!(govs[0], GovernorSpec::AlwaysCompress));
        assert!(matches!(govs[1], GovernorSpec::Acc));
        assert!(matches!(govs[2], GovernorSpec::AccKagura(_)));
    }
}
