//! The abstract's headline numbers: total-energy reduction and speedup of
//! ACC+Kagura over the compressor-free baseline, average and maximum
//! across the 20 applications.

use ehs_sim::GovernorSpec;
use serde_json::{json, Value};

use super::{cfg, fmt_gain, mean_defined, run_grid};
use crate::{print_table, ExpContext};

/// Reproduces the abstract: "Kagura reduces the total energy consumption
/// by an average of 4.53% (up to 16.21%) and improves the performance by
/// an average of 4.74% (up to 17.87%) compared to the baseline EHS
/// without cache compression."
pub fn summary(ctx: &ExpContext) -> Value {
    println!("Headline numbers (paper abstract)");
    let configs =
        [cfg(GovernorSpec::NoCompression), cfg(GovernorSpec::AccKagura(Default::default()))];
    let grid = run_grid(ctx, &ctx.apps, &configs);
    let results: Vec<_> = ctx
        .apps
        .iter()
        .zip(&grid)
        .map(|(&app, row)| {
            let (base, kag) = (&row[0], &row[1]);
            let speedup = kag.try_speedup_over(base).map(|s| (s - 1.0) * 100.0);
            let energy = (1.0 - kag.total_energy() / base.total_energy()) * 100.0;
            (app, speedup, energy)
        })
        .collect();
    let mut rows = Vec::new();
    let mut out_rows = Vec::new();
    let mut speeds = Vec::new();
    let mut energies = Vec::new();
    for (app, speedup, energy) in &results {
        rows.push(vec![app.name().to_string(), fmt_gain(*speedup), format!("{energy:+.2}%")]);
        out_rows.push(json!({
            "app": app.name(), "speedup_pct": *speedup, "energy_reduction_pct": energy,
        }));
        if let Some(s) = speedup {
            speeds.push(*s);
        }
        energies.push(*energy);
    }
    let max_speed = speeds.iter().cloned().fold(f64::NAN, f64::max);
    let max_energy = energies.iter().cloned().fold(f64::NAN, f64::max);
    rows.push(vec![
        "MEAN (MAX)".into(),
        format!("{:+.2}% ({:+.2}%)", mean_defined(&speeds), max_speed),
        format!("{:+.2}% ({:+.2}%)", mean_defined(&energies), max_energy),
    ]);
    print_table(&["app", "speedup", "energy reduction"], &rows);
    println!("  (paper: speedup avg 4.74% / max 17.87%; energy avg 4.53% / max 16.21%)");
    let out = json!({
        "experiment": "summary",
        "rows": out_rows,
        "mean_speedup_pct": mean_defined(&speeds),
        "max_speedup_pct": max_speed,
        "mean_energy_reduction_pct": mean_defined(&energies),
        "max_energy_reduction_pct": max_energy,
    });
    ctx.save("summary", &out);
    out
}
