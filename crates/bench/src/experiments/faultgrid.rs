//! `faultgrid` — differential crash-consistency certification.
//!
//! Not a paper figure: this grid certifies the *correctness* substrate
//! the paper's performance claims stand on. Every (workload, EHS design,
//! governor) point is probed with forced power failures at chosen
//! instruction boundaries and its post-recovery NVM image is compared
//! byte-for-byte against a failure-free golden run
//! ([`ehs_sim::faultinject`]).
//!
//! Three passes:
//!
//! 1. **Exhaustive** — the short synthetic kernels take a failure after
//!    *every* instruction, across all three designs and every non-ideal
//!    governor.
//! 2. **Sampled** — each application takes ≥ 200 seeded-random failure
//!    points per design under ACC+Kagura (the paper's proposal).
//! 3. **Mutation** — deliberately broken checkpoint paths (torn
//!    checkpoint, corrupted compressed payload) must be *detected*;
//!    a silent pass here would mean the differential check is blind.
//!
//! The experiment panics on any unexpected divergence or undetected
//! mutation, so a broken recovery path fails `repro`/CI loudly.

use ehs_sim::faultinject::{run_campaign, short_kernels, FaultCampaignReport, InjectionPlan};
use ehs_sim::{EhsDesign, FaultKind, GovernorSpec, SimConfig};
use serde_json::{json, Value};

use crate::{print_table, ExpContext};

/// Every governor the simulator can drive directly (the ideal two-phase
/// specs realign work across power cycles under oracle replay, so an
/// injection point has no stable meaning there).
fn non_ideal_governors() -> Vec<GovernorSpec> {
    vec![
        GovernorSpec::NoCompression,
        GovernorSpec::AlwaysCompress,
        GovernorSpec::Acc,
        GovernorSpec::AccKagura(Default::default()),
    ]
}

/// Sampled injection points per app × design (acceptance floor: 200).
const SAMPLED_POINTS: u64 = 200;

/// Seed for the sampled plans — fixed so reruns probe identical points.
const SAMPLE_SEED: u64 = 0xFA17_6D1D;

fn report_row(r: &FaultCampaignReport) -> Vec<String> {
    vec![
        r.kernel.clone(),
        r.design.to_string(),
        r.governor.to_string(),
        r.injections.to_string(),
        r.converged.to_string(),
        r.divergences.len().to_string(),
        r.detected_decode_faults.to_string(),
        if r.is_consistent() { "yes".into() } else { "NO".into() },
    ]
}

fn report_json(r: &FaultCampaignReport) -> Value {
    json!({
        "kernel": r.kernel.clone(),
        "design": r.design,
        "governor": r.governor,
        "injections": r.injections,
        "converged": r.converged,
        "incomplete": r.incomplete,
        "divergent": r.divergences.len(),
        "decode_faults": r.detected_decode_faults,
        "consistent": r.is_consistent(),
        "first_divergence": r.divergences.first().map(|d| d.at_inst),
    })
}

pub fn faultgrid(ctx: &ExpContext) -> Value {
    let headers =
        ["workload", "design", "governor", "points", "converged", "divergent", "decoded", "ok"];

    // Pass 1: exhaustive per-instruction injection on the short kernels.
    let mut exhaustive = Vec::new();
    for program in short_kernels() {
        for design in EhsDesign::ALL {
            for gov in non_ideal_governors() {
                let cfg = SimConfig::table1().with_design(design).with_governor(gov);
                let report = run_campaign(
                    &program,
                    &cfg,
                    InjectionPlan::Exhaustive,
                    FaultKind::PowerFailure,
                );
                assert!(report.is_consistent(), "crash consistency broken: {}", report.summary());
                exhaustive.push(report);
            }
        }
    }
    println!("exhaustive per-instruction injection (short kernels):");
    print_table(&headers, &exhaustive.iter().map(report_row).collect::<Vec<_>>());

    // Pass 2: sampled injection on the application set. Each point
    // replays the whole app, so the scale is capped to keep a full-app
    // campaign minutes-sized.
    let scale = ctx.scale.min(0.02);
    let mut sampled = Vec::new();
    for &app in &ctx.apps {
        let program = app.build(scale);
        for design in EhsDesign::ALL {
            let cfg = SimConfig::table1()
                .with_design(design)
                .with_governor(GovernorSpec::AccKagura(Default::default()));
            let plan = InjectionPlan::Sampled { count: SAMPLED_POINTS, seed: SAMPLE_SEED };
            let report = run_campaign(&program, &cfg, plan, FaultKind::PowerFailure);
            assert!(report.is_consistent(), "crash consistency broken: {}", report.summary());
            sampled.push(report);
        }
    }
    println!("\nsampled injection ({SAMPLED_POINTS} points, apps at scale {scale}):");
    print_table(&headers, &sampled.iter().map(report_row).collect::<Vec<_>>());

    // Pass 3: mutation checks — broken checkpoint paths must be caught.
    let stream = short_kernels().into_iter().next().expect("at least one short kernel");
    let torn = run_campaign(
        &stream,
        &SimConfig::table1().with_governor(GovernorSpec::NoCompression),
        InjectionPlan::Stride { step: 97 },
        FaultKind::TornCheckpoint { persist_blocks: 0 },
    );
    assert!(
        torn.detected_violation(),
        "mutation NOT caught (torn checkpoint looked consistent): {}",
        torn.summary()
    );
    let corrupt = run_campaign(
        &stream,
        &SimConfig::table1().with_governor(GovernorSpec::AlwaysCompress),
        InjectionPlan::Stride { step: 61 },
        FaultKind::CorruptPayload { bit: 5 },
    );
    assert!(
        corrupt.detected_violation(),
        "mutation NOT caught (corrupted payload looked consistent): {}",
        corrupt.summary()
    );
    println!("\nmutation checks (must be detected):");
    print_table(
        &["fault", "points", "divergent", "decode faults", "detected"],
        &[
            vec![
                "torn checkpoint".into(),
                torn.injections.to_string(),
                torn.divergences.len().to_string(),
                torn.detected_decode_faults.to_string(),
                "yes".into(),
            ],
            vec![
                "corrupt payload".into(),
                corrupt.injections.to_string(),
                corrupt.divergences.len().to_string(),
                corrupt.detected_decode_faults.to_string(),
                "yes".into(),
            ],
        ],
    );

    let out = json!({
        "exhaustive": exhaustive.iter().map(report_json).collect::<Vec<_>>(),
        "sampled": sampled.iter().map(report_json).collect::<Vec<_>>(),
        "mutation": {
            "torn_checkpoint": report_json(&torn),
            "corrupt_payload": report_json(&corrupt),
        },
    });
    ctx.save("faultgrid", &out);
    out
}
