//! Closed-form and characterisation experiments (no full simulation):
//! Fig 3 (break-even analysis), Fig 11 (power traces), §VIII-A (hardware
//! overhead).

use ehs_energy::{PowerTrace, TraceKind};
use ehs_model::Energy;
use kagura_core::analysis::{min_delta_rhit, CompressionMix};
use kagura_core::overhead::HardwareOverhead;
use serde_json::{json, Value};

use crate::{print_table, ExpContext};

/// Fig 3: minimum ΔR_hit surfaces over compression cost and miss penalty
/// for the paper's three (a, e, f) corners.
pub fn fig3(ctx: &ExpContext) -> Value {
    println!("Fig 3: minimum hit-rate improvement for compression to pay off (Eq. 4)");
    let mixes = [
        ("a=0.25 e=0.25 f=0.25", CompressionMix::new(0.25, 0.25, 0.25)),
        ("a=0.50 e=0.50 f=0.50", CompressionMix::new(0.50, 0.50, 0.50)),
        ("a=0.75 e=0.50 f=0.50", CompressionMix::new(0.75, 0.50, 0.50)),
        ("a=1.00 e=1.00 f=1.00", CompressionMix::new(1.00, 1.00, 1.00)),
    ];
    // Sweep the combined (de)compression cost and the miss penalty. The
    // decompressor is modelled at 1/6 of the combined cost, as in Table I
    // (0.65 vs 3.84 pJ).
    let costs_pj = [1.0, 2.0, 4.49, 8.0, 16.0];
    let miss_pj = [50.0, 100.0, 150.0, 300.0, 600.0];
    let mut series = Vec::new();
    for (label, mix) in mixes {
        println!("  {label}");
        let mut rows = Vec::new();
        let mut json_rows = Vec::new();
        for &c in &costs_pj {
            let e_decomp = Energy::from_picojoules(c / 6.0);
            let e_comp = Energy::from_picojoules(c * 5.0 / 6.0);
            let mut row = vec![format!("{c:.2} pJ")];
            for &m in &miss_pj {
                let t = min_delta_rhit(mix, e_comp, e_decomp, Energy::from_picojoules(m));
                row.push(format!("{:.4}", t));
                json_rows.push(json!({
                    "mix": label, "cost_pj": c, "miss_pj": m, "min_delta_rhit": t,
                }));
            }
            rows.push(row);
        }
        let headers: Vec<String> = std::iter::once("Ecomp+Edecomp".to_string())
            .chain(miss_pj.iter().map(|m| format!("Emiss={m}pJ")))
            .collect();
        print_table(&headers.iter().map(String::as_str).collect::<Vec<_>>(), &rows);
        series.push(json!({ "mix": label, "rows": json_rows }));
    }
    let out = json!({ "experiment": "fig3", "series": series });
    ctx.save("fig3", &out);
    out
}

/// Fig 11: statistics of the three synthetic ambient traces.
pub fn fig11(ctx: &ExpContext) -> Value {
    println!("Fig 11: ambient power traces (synthetic, statistically matched)");
    let mut rows = Vec::new();
    let mut out_rows = Vec::new();
    for kind in TraceKind::ALL {
        let trace = PowerTrace::generate(kind, 7, 500_000);
        let stats = trace.stats();
        rows.push(vec![
            kind.name().to_string(),
            format!("{:.1}", stats.mean.microwatts()),
            format!("{:.1}", stats.std_dev.microwatts()),
            format!("{:.1}%", stats.stable_fraction * 100.0),
        ]);
        // First 200 windows as a plottable series sample.
        let sample: Vec<f64> = trace.samples().iter().take(200).map(|p| p.microwatts()).collect();
        out_rows.push(json!({
            "trace": kind.name(),
            "mean_uw": stats.mean.microwatts(),
            "std_uw": stats.std_dev.microwatts(),
            "stable_fraction": stats.stable_fraction,
            "sample_uw": sample,
        }));
    }
    print_table(&["trace", "mean (uW)", "std (uW)", "stable"], &rows);
    println!("  (paper: thermal most stable, solar next, RFHome burstiest)");
    let out = json!({ "experiment": "fig11", "traces": out_rows });
    ctx.save("fig11", &out);
    out
}

/// §VIII-A: Kagura's hardware overhead.
pub fn hw(ctx: &ExpContext) -> Value {
    println!("Hardware overhead (paper §VIII-A)");
    let mut rows = Vec::new();
    let mut out_rows = Vec::new();
    for bits in [1u32, 2, 3] {
        let hw = HardwareOverhead::with_counter_bits(bits);
        rows.push(vec![
            format!("5 regs + {bits}-bit counter"),
            hw.total_bits().to_string(),
            format!("{:.6}", hw.area_mm2()),
            format!("{:.2}%", hw.core_fraction() * 100.0),
        ]);
        out_rows.push(json!({
            "counter_bits": bits,
            "total_bits": hw.total_bits(),
            "area_mm2": hw.area_mm2(),
            "core_fraction": hw.core_fraction(),
        }));
    }
    print_table(&["configuration", "bits", "area (mm^2)", "% of core"], &rows);
    println!("  (paper: 162 bits, 0.000796 mm^2, 0.14% of the 0.538 mm^2 core)");
    let out = json!({ "experiment": "hw", "rows": out_rows });
    ctx.save("hw", &out);
    out
}
