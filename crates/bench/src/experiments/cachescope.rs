//! Cachescope experiment: per-app × design × governor cache reports.
//!
//! Every cell runs with a [`ehs_sim::CachescopeConfig`] attached — still
//! on the fast-forward loop, since cachescope does not force the
//! reference loop — and folds the probe stream into occupancy,
//! compressibility, lifetime and latency-attribution aggregates. The
//! canonical cell per app (NVSRAMCache × ACC+Kagura) additionally
//! samples periodic full-cache occupancy snapshots and, under
//! `--telemetry DIR`, dumps its whole stream as
//! `cachescope_<app>.jsonl` — the input `repro explain` renders and CI
//! parses back strictly.

use ehs_sim::{CachescopeConfig, CachescopeReport, EhsDesign, GovernorSpec, SimStats};
use ehs_workloads::App;
use kagura_core::KaguraConfig;
use serde_json::{json, Value};

use super::cfg;
use crate::cachescope::{report_to_json, write_jsonl, ScopeLabels};
use crate::{parallel_map, print_table, ExpContext};

/// Governor columns of the grid, in report order.
fn governors() -> [GovernorSpec; 3] {
    [
        GovernorSpec::NoCompression,
        GovernorSpec::Acc,
        GovernorSpec::AccKagura(KaguraConfig::default()),
    ]
}

/// Short JSON keys matching [`governors`] order.
const GOV_KEYS: [&str; 3] = ["baseline", "acc", "acc_kagura"];

/// Committed instructions between occupancy snapshots on canonical cells.
const SNAPSHOT_PERIOD: u64 = 8192;

fn pct(part: u64, total: u64) -> String {
    if total == 0 {
        "n/a".into()
    } else {
        format!("{:.1}%", part as f64 * 100.0 / total as f64)
    }
}

/// The cachescope grid: one cache report per app × design × governor.
pub fn cachescope(ctx: &ExpContext) -> Value {
    println!("Cachescope: occupancy/compressibility, eviction split, latency attribution");
    let jobs: Vec<(App, EhsDesign, usize)> = ctx
        .sens_apps
        .iter()
        .flat_map(|&app| {
            EhsDesign::ALL.iter().flat_map(move |&design| (0..3).map(move |g| (app, design, g)))
        })
        .collect();
    // The canonical cell whose raw stream `repro explain` renders.
    let canonical = |design: EhsDesign, g: usize| design == EhsDesign::NvsramCache && g == 2;
    let runs: Vec<(SimStats, CachescopeReport)> =
        parallel_map(jobs.clone(), |&(app, design, g)| {
            let mut config = cfg(governors()[g]).with_design(design);
            config.audit_strict |= ctx.audit_strict;
            let scope = if canonical(design, g) {
                CachescopeConfig::periodic(SNAPSHOT_PERIOD)
            } else {
                CachescopeConfig::default()
            };
            ehs_sim::run_app_with_cachescope(app, ctx.scale, &config, scope)
        });
    for (stats, _) in &runs {
        ctx.add_cell_stats(stats);
    }

    if let Some(dir) = &ctx.telemetry_dir {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
        for ((app, design, g), (_, report)) in jobs.iter().zip(&runs) {
            if !canonical(*design, *g) {
                continue;
            }
            let labels = ScopeLabels::new(app.name(), design.name(), GOV_KEYS[*g]);
            let path = dir.join(format!("cachescope_{}.jsonl", app.name()));
            write_jsonl(&path, &labels, report)
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        }
        println!("  [cachescope streams under {} — render with `repro explain`]", dir.display());
    }

    // The table shows each app × design's canonical-governor cell; the
    // JSON carries all three governor cells per row.
    let mut rows = Vec::new();
    let mut out_rows = Vec::new();
    for (job_row, cells) in jobs.chunks(3).zip(runs.chunks(3)) {
        let (app, design, _) = job_row[0];
        let (stats, report) = &cells[2];
        let d = &report.dcache.counters;
        let l = &report.latency;
        debug_assert_eq!(l.total(), stats.total_cycles, "attribution must partition the run");
        rows.push(vec![
            app.name().to_string(),
            design.name().to_string(),
            d.hits.to_string(),
            pct(d.compressed_fills, d.fills),
            format!("{:.2}", report.dcache.ratio.mean()),
            format!("{}/{}/{}", d.capacity_evictions, d.forced_evictions, d.power_loss_evictions),
            pct(l.nvm_cycles, l.total()),
            pct(l.decompress_cycles + l.writeback_cycles, l.total()),
        ]);
        let mut cells_json = Vec::new();
        for (key, (_, report)) in GOV_KEYS.iter().zip(cells) {
            let mut cell = json!({ "governor": *key });
            if let (Value::Object(members), Value::Object(body)) =
                (&mut cell, report_to_json(report))
            {
                members.extend(body);
            }
            cells_json.push(cell);
        }
        out_rows.push(json!({
            "app": app.name(),
            "design": design.name(),
            "cells": Value::Array(cells_json),
        }));
    }
    print_table(
        &[
            "app",
            "design",
            "d-hits",
            "fills compressed",
            "ratio",
            "evict c/f/p",
            "nvm stall",
            "(de)compress stall",
        ],
        &rows,
    );
    println!("  (canonical governor ACC+Kagura shown; all three governors in the JSON)");
    let out = json!({
        "experiment": "cachescope",
        "snapshot_period": SNAPSHOT_PERIOD,
        "rows": out_rows,
    });
    ctx.save("cachescope", &out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn governor_columns_match_their_keys() {
        let govs = governors();
        assert_eq!(govs.len(), GOV_KEYS.len());
        assert!(matches!(govs[0], GovernorSpec::NoCompression));
        assert!(matches!(govs[1], GovernorSpec::Acc));
        assert!(matches!(govs[2], GovernorSpec::AccKagura(_)));
    }

    #[test]
    fn pct_degrades_an_empty_denominator() {
        assert_eq!(pct(1, 4), "25.0%");
        assert_eq!(pct(0, 0), "n/a");
    }
}
