//! Estimator-accuracy report: how well Kagura's `N_remain` estimators
//! predict the memory operations actually left in a power cycle.
//!
//! At every power failure the controller has just compared its prediction
//! `R_prev` against the oracle answer `R_mem` (the memory operations the
//! dying cycle really committed); with telemetry attached that comparison
//! is emitted as an [`ehs_telemetry::Event::EstimatorSample`]. This
//! experiment replays that stream for the simple and sophisticated
//! estimators (paper §VI-A) and reports per-app prediction error.

use ehs_sim::{GovernorSpec, SimConfig};
use ehs_telemetry::{Event, Stamped, VecSink};
use ehs_workloads::App;
use kagura_core::{EstimatorKind, KaguraConfig};
use serde_json::{json, Value};

use super::{cfg, mean_defined};
use crate::{parallel_map, print_table, ExpContext};

/// `(prediction, oracle)` pairs pulled from one run's event stream.
fn sample_pairs(events: &[Stamped]) -> Vec<(u64, u64)> {
    events
        .iter()
        .filter_map(|s| match s.event {
            Event::EstimatorSample { predicted_remaining, actual_remaining } => {
                Some((predicted_remaining, actual_remaining))
            }
            _ => None,
        })
        .collect()
}

/// Accuracy summary of one `app × estimator` run.
struct Accuracy {
    n_samples: usize,
    /// Mean |predicted − actual| in memory operations.
    mae: f64,
    /// Mean |predicted − actual| / max(actual, 1), as a percentage.
    mape_pct: f64,
    /// Fraction of samples whose relative error is below 20 % — the same
    /// consistency yardstick the paper applies in Fig 12.
    within_20: f64,
}

fn accuracy(pairs: &[(u64, u64)]) -> Accuracy {
    let rel_errs: Vec<f64> =
        pairs.iter().map(|&(p, a)| (p as f64 - a as f64).abs() / (a.max(1) as f64)).collect();
    let abs_errs: Vec<f64> = pairs.iter().map(|&(p, a)| (p as f64 - a as f64).abs()).collect();
    let within = if pairs.is_empty() {
        f64::NAN
    } else {
        rel_errs.iter().filter(|&&e| e < 0.20).count() as f64 / pairs.len() as f64
    };
    Accuracy {
        n_samples: pairs.len(),
        mae: mean_defined(&abs_errs),
        mape_pct: mean_defined(&rel_errs) * 100.0,
        within_20: within,
    }
}

/// The headline telemetry experiment: per-app prediction error of the
/// simple vs sophisticated `N_remain` estimator against the oracle.
pub fn estimator_accuracy(ctx: &ExpContext) -> Value {
    println!("Estimator accuracy: N_remain prediction error vs oracle (per power failure)");
    let kinds =
        [(EstimatorKind::Simple, "simple"), (EstimatorKind::Sophisticated, "sophisticated")];
    let jobs: Vec<(App, EstimatorKind, &'static str)> =
        ctx.sens_apps.iter().flat_map(|&app| kinds.map(|(k, l)| (app, k, l))).collect();
    let streams: Vec<(App, &'static str, Vec<Stamped>)> =
        parallel_map(jobs, |&(app, estimator, label)| {
            let kcfg = KaguraConfig { estimator, ..Default::default() };
            let config: SimConfig = cfg(GovernorSpec::AccKagura(kcfg));
            let mut sink = VecSink::new();
            let _ = ehs_sim::run_app_with_telemetry(app, ctx.scale, &config, &mut sink);
            (app, label, sink.into_events())
        });

    if let Some(dir) = &ctx.telemetry_dir {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
        for (app, label, events) in &streams {
            let path = dir.join(format!("estimator_{}_{label}.jsonl", app.name()));
            let lines: String = events
                .iter()
                .filter(|s| matches!(s.event, Event::EstimatorSample { .. }))
                .map(|s| serde_json::to_string(&s.to_value()).expect("serializable") + "\n")
                .collect();
            crate::fsutil::atomic_write(&path, lines.as_bytes())
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        }
        println!("  [estimator sample streams under {}]", dir.display());
    }

    let mut rows = Vec::new();
    let mut out_rows = Vec::new();
    let mut mape_by_kind = vec![Vec::new(); kinds.len()];
    for (app, label, events) in &streams {
        let acc = accuracy(&sample_pairs(events));
        rows.push(vec![
            app.name().to_string(),
            label.to_string(),
            acc.n_samples.to_string(),
            format!("{:.1}", acc.mae),
            format!("{:.2}%", acc.mape_pct),
            format!("{:.1}%", acc.within_20 * 100.0),
        ]);
        out_rows.push(json!({
            "app": app.name(), "estimator": *label, "n_samples": acc.n_samples,
            "mae": acc.mae, "mape_pct": acc.mape_pct, "within_20_frac": acc.within_20,
        }));
        let slot = kinds.iter().position(|&(_, l)| l == *label).expect("known estimator");
        if acc.mape_pct.is_finite() {
            mape_by_kind[slot].push(acc.mape_pct);
        }
    }
    print_table(&["app", "estimator", "samples", "MAE", "MAPE", "<20% err"], &rows);
    let means: Vec<Value> = kinds
        .iter()
        .zip(&mape_by_kind)
        .map(|(&(_, label), m)| json!({ "estimator": label, "mean_mape_pct": mean_defined(m) }))
        .collect();
    for mv in &means {
        if let (Some(l), Some(m)) = (mv.get("estimator"), mv.get("mean_mape_pct")) {
            println!(
                "  mean MAPE {}: {:.2}%",
                l.as_str().unwrap_or("?"),
                m.as_f64().unwrap_or(f64::NAN)
            );
        }
    }
    println!(
        "  (paper §VI-A claims the R_adjust term tracks the oracle closer — compare the means)"
    );
    let out = json!({
        "experiment": "estimator_accuracy",
        "rows": out_rows,
        "mean_mape_pct": means,
    });
    ctx.save("estimator_accuracy", &out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_of_perfect_predictions_is_zero_error() {
        let acc = accuracy(&[(100, 100), (250, 250)]);
        assert_eq!(acc.n_samples, 2);
        assert_eq!(acc.mae, 0.0);
        assert_eq!(acc.mape_pct, 0.0);
        assert_eq!(acc.within_20, 1.0);
    }

    #[test]
    fn accuracy_flags_large_misses() {
        // 100 vs 50: |err| = 50, rel = 1.0; 90 vs 100: |err| = 10, rel = 0.1.
        let acc = accuracy(&[(100, 50), (90, 100)]);
        assert_eq!(acc.mae, 30.0);
        assert!((acc.mape_pct - 55.0).abs() < 1e-9);
        assert_eq!(acc.within_20, 0.5);
    }

    #[test]
    fn accuracy_of_empty_stream_degrades_to_nan() {
        let acc = accuracy(&[]);
        assert_eq!(acc.n_samples, 0);
        assert!(acc.mae.is_nan());
        assert!(acc.within_20.is_nan());
    }

    #[test]
    fn sample_pairs_selects_only_estimator_events() {
        let events = vec![
            Stamped { t_us: 1.0, cycle: 0, event: Event::PowerFailure { insts: 10, voltage: 2.0 } },
            Stamped {
                t_us: 2.0,
                cycle: 1,
                event: Event::EstimatorSample { predicted_remaining: 7, actual_remaining: 9 },
            },
        ];
        assert_eq!(sample_pairs(&events), vec![(7, 9)]);
    }
}
