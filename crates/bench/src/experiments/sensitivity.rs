//! Sensitivity studies and ablations: Fig 1, Fig 19–30, Tables II–IV.

use ehs_compress::Algorithm;
use ehs_energy::{CapacitorConfig, TraceKind};
use ehs_model::{NvmKind, NvmParams};
use ehs_sim::{EhsDesign, Extension, GovernorSpec, SimConfig};
use ehs_workloads::App;
use kagura_core::{AdaptScheme, EstimatorKind, KaguraConfig, ThresholdAdapter, TriggerKind};
use serde_json::{json, Value};

use super::{cfg, run_grid};
use crate::{amean, print_table, ExpContext};

/// Mean percentage gain of `variant` over `base` across `apps`, run as
/// one batch on the worker pool.
fn mean_gain(ctx: &ExpContext, apps: &[App], base: &SimConfig, variant: &SimConfig) -> f64 {
    mean_gains(ctx, apps, base, &[("", variant.clone())])[0].1
}

/// Mean percentage gains of several variants against one shared baseline,
/// with a single baseline run per app; the whole
/// `apps × (base + variants)` grid goes to the pool as one batch.
fn mean_gains(
    ctx: &ExpContext,
    apps: &[App],
    base: &SimConfig,
    variants: &[(&'static str, SimConfig)],
) -> Vec<(&'static str, f64)> {
    let mut configs = vec![base.clone()];
    configs.extend(variants.iter().map(|(_, v)| v.clone()));
    let grid = run_grid(ctx, apps, &configs);
    variants
        .iter()
        .enumerate()
        .map(|(i, &(label, _))| {
            // Truncated runs drop out of the mean; if every app truncated
            // the mean is NaN, which serializes as null in the JSON row.
            let gains: Vec<f64> = grid
                .iter()
                .filter_map(|row| row[i + 1].try_speedup_over(&row[0]).map(|s| (s - 1.0) * 100.0))
                .collect();
            (label, super::mean_defined(&gains))
        })
        .collect()
}

fn kagura_default() -> GovernorSpec {
    GovernorSpec::AccKagura(KaguraConfig::default())
}

/// Fig 1: baseline speedup across cache sizes (no compression anywhere).
pub fn fig1(ctx: &ExpContext) -> Value {
    println!("Fig 1: baseline EHS speedup vs cache size (normalized to 256B)");
    let sizes = [128u32, 256, 512, 1024, 2048, 4096];
    let apps = &ctx.sens_apps;
    let configs: Vec<SimConfig> = sizes
        .iter()
        .map(|&size| {
            let mut c = cfg(GovernorSpec::NoCompression);
            c.system.icache = c.system.icache.with_size(size);
            c.system.dcache = c.system.dcache.with_size(size);
            c
        })
        .collect();
    let ref_col = sizes.iter().position(|&s| s == 256).expect("256B column");
    let grid = run_grid(ctx, apps, &configs);
    let results: Vec<Vec<f64>> = grid
        .iter()
        .map(|row| {
            let reference = row[ref_col].sim_time.seconds();
            row.iter().map(|s| reference / s.sim_time.seconds()).collect()
        })
        .collect();
    let mut rows = Vec::new();
    let mut out_rows = Vec::new();
    for (i, &size) in sizes.iter().enumerate() {
        let speedups: Vec<f64> = results.iter().map(|r| r[i]).collect();
        let mean = amean(&speedups);
        rows.push(vec![format!("{size}B"), format!("{mean:.3}")]);
        out_rows.push(json!({ "cache_bytes": size, "speedup": mean }));
    }
    print_table(&["cache size", "speedup vs 256B"], &rows);
    println!("  (paper: peak at 256B; smaller thrashes, larger pays leakage + checkpoints)");
    let out = json!({ "experiment": "fig1", "rows": out_rows });
    ctx.save("fig1", &out);
    out
}

/// Fig 19: trigger strategies across EHS designs.
pub fn fig19(ctx: &ExpContext) -> Value {
    println!("Fig 19: trigger strategies on NVSRAMCache / NvMR / SweepCache");
    println!("  (speedups normalized to each design's own compressor-free baseline)");
    let vol =
        KaguraConfig { trigger: TriggerKind::Voltage { fraction: 0.2 }, ..Default::default() };
    let mut rows = Vec::new();
    let mut out_rows = Vec::new();
    for design in EhsDesign::ALL {
        let base = cfg(GovernorSpec::NoCompression).with_design(design);
        let variants = [
            ("+ACC", cfg(GovernorSpec::Acc).with_design(design)),
            ("+ACC+Kagura (mem)", cfg(kagura_default()).with_design(design)),
            ("+ACC+Kagura (vol)", cfg(GovernorSpec::AccKagura(vol)).with_design(design)),
        ];
        let gains = mean_gains(ctx, &ctx.sens_apps, &base, &variants);
        let mut row = vec![design.name().to_string()];
        for (label, g) in &gains {
            row.push(format!("{g:+.2}%"));
            out_rows.push(json!({ "design": design.name(), "config": label, "gain_pct": g }));
        }
        rows.push(row);
    }
    print_table(&["design", "+ACC", "+Kagura(mem)", "+Kagura(vol)"], &rows);
    println!(
        "  (paper: vol trigger fine on NVSRAMCache, degrades NvMR/SweepCache via monitor cost)"
    );
    let out = json!({ "experiment": "fig19", "rows": out_rows });
    ctx.save("fig19", &out);
    out
}

/// Fig 20: Kagura combined with EDBP and IPEX.
pub fn fig20(ctx: &ExpContext) -> Value {
    println!("Fig 20: Kagura with other cache managements");
    // Include the streaming apps (crc32, strings, adpcm) that prefetchers
    // actually help, alongside the usual sweep subset.
    let mut apps = ctx.sens_apps.clone();
    for extra in [App::Crc32, App::Strings, App::Adpcmd] {
        if !apps.contains(&extra) {
            apps.push(extra);
        }
    }
    let base = cfg(GovernorSpec::NoCompression);
    let with_ext = |ext: Extension, gov: GovernorSpec| {
        let mut c = cfg(gov);
        c.extension = ext;
        c
    };
    let variants = [
        ("EDBP", with_ext(Extension::edbp(), GovernorSpec::NoCompression)),
        ("EDBP+ACC+Kagura", with_ext(Extension::edbp(), kagura_default())),
        ("IPEX", with_ext(Extension::ipex(), GovernorSpec::NoCompression)),
        ("IPEX+ACC+Kagura", with_ext(Extension::ipex(), kagura_default())),
    ];
    let gains = mean_gains(ctx, &apps, &base, &variants);
    let mut rows = Vec::new();
    let mut out_rows = Vec::new();
    for (label, g) in &gains {
        rows.push(vec![label.to_string(), format!("{g:+.2}%")]);
        out_rows.push(json!({ "config": label, "gain_pct": g }));
    }
    print_table(&["configuration", "gain vs baseline"], &rows);
    println!("  (paper: EDBP 5.32%->12.14% with Kagura; IPEX 12.73%->18.37%)");
    let out = json!({ "experiment": "fig20", "rows": out_rows });
    ctx.save("fig20", &out);
    out
}

/// Fig 21: R_thres adaptation schemes.
pub fn fig21(ctx: &ExpContext) -> Value {
    println!("Fig 21: R_thres adaptation schemes");
    let base = cfg(GovernorSpec::NoCompression);
    let variants: Vec<(&'static str, SimConfig)> = AdaptScheme::ALL
        .into_iter()
        .map(|scheme| {
            let kcfg =
                KaguraConfig { adapter: ThresholdAdapter::new(scheme, 0.10), ..Default::default() };
            (scheme.name(), cfg(GovernorSpec::AccKagura(kcfg)))
        })
        .collect();
    let gains = mean_gains(ctx, &ctx.sens_apps, &base, &variants);
    let mut rows = Vec::new();
    let mut out_rows = Vec::new();
    for (label, g) in &gains {
        rows.push(vec![label.to_string(), format!("{g:+.2}%")]);
        out_rows.push(json!({ "scheme": label, "gain_pct": g }));
    }
    print_table(&["scheme", "gain vs baseline"], &rows);
    println!("  (paper: AIMD best; MIAD/MIMD suppress useful compressions)");
    let out = json!({ "experiment": "fig21", "rows": out_rows });
    ctx.save("fig21", &out);
    out
}

/// Fig 22: R_thres increase step.
pub fn fig22(ctx: &ExpContext) -> Value {
    println!("Fig 22: R_thres additive increase step");
    let base = cfg(GovernorSpec::NoCompression);
    let steps = [("5%", 0.05), ("10%", 0.10), ("15%", 0.15), ("20%", 0.20)];
    let variants: Vec<(&'static str, SimConfig)> = steps
        .iter()
        .map(|&(label, step)| {
            let kcfg = KaguraConfig {
                adapter: ThresholdAdapter::new(AdaptScheme::Aimd, step),
                ..Default::default()
            };
            (label, cfg(GovernorSpec::AccKagura(kcfg)))
        })
        .collect();
    let gains = mean_gains(ctx, &ctx.sens_apps, &base, &variants);
    let mut rows = Vec::new();
    let mut out_rows = Vec::new();
    for (label, g) in &gains {
        rows.push(vec![label.to_string(), format!("{g:+.2}%")]);
        out_rows.push(json!({ "step": label, "gain_pct": g }));
    }
    print_table(&["step", "gain vs baseline"], &rows);
    println!("  (paper: 10% balances energy saving vs compression efficiency)");
    let out = json!({ "experiment": "fig22", "rows": out_rows });
    ctx.save("fig22", &out);
    out
}

/// Fig 23: compression algorithms.
pub fn fig23(ctx: &ExpContext) -> Value {
    println!("Fig 23: ACC and ACC+Kagura across compression algorithms");
    let base = cfg(GovernorSpec::NoCompression);
    let mut rows = Vec::new();
    let mut out_rows = Vec::new();
    for alg in Algorithm::ALL {
        let mut acc = cfg(GovernorSpec::Acc);
        acc.algorithm = alg;
        let mut kag = cfg(kagura_default());
        kag.algorithm = alg;
        let gains = mean_gains(ctx, &ctx.sens_apps, &base, &[("ACC", acc), ("Kagura", kag)]);
        rows.push(vec![
            alg.name().to_string(),
            format!("{:+.2}%", gains[0].1),
            format!("{:+.2}%", gains[1].1),
        ]);
        out_rows.push(json!({
            "algorithm": alg.name(), "acc_gain_pct": gains[0].1, "kagura_gain_pct": gains[1].1,
        }));
    }
    print_table(&["algorithm", "ACC", "ACC+Kagura"], &rows);
    println!(
        "  (paper: Kagura improves every algorithm: BDI 4.74%, FPC 4.40%, C-Pack 4.10%, DZC 2.41%)"
    );
    let out = json!({ "experiment": "fig23", "rows": out_rows });
    ctx.save("fig23", &out);
    out
}

/// Fig 24: cache-size sweep, normalized to the 128 B baseline.
pub fn fig24(ctx: &ExpContext) -> Value {
    println!("Fig 24: cache size sweep (normalized to 128B baseline)");
    let sizes = [128u32, 256, 512, 1024, 2048, 4096];
    let apps = &ctx.sens_apps;
    let sized = |size: u32, gov: GovernorSpec| {
        let mut c = cfg(gov);
        c.system.icache = c.system.icache.with_size(size);
        c.system.dcache = c.system.dcache.with_size(size);
        c
    };
    // Two columns per size: baseline then ACC+Kagura. The 128 B baseline
    // (column 0) is the normalization reference.
    let configs: Vec<SimConfig> = sizes
        .iter()
        .flat_map(|&s| [sized(s, GovernorSpec::NoCompression), sized(s, kagura_default())])
        .collect();
    let grid = run_grid(ctx, apps, &configs);
    let results: Vec<Vec<(f64, f64)>> = grid
        .iter()
        .map(|row| {
            let reference = row[0].sim_time.seconds();
            (0..sizes.len())
                .map(|i| {
                    let b = reference / row[2 * i].sim_time.seconds();
                    let k = reference / row[2 * i + 1].sim_time.seconds();
                    (b, k)
                })
                .collect()
        })
        .collect();
    let mut rows = Vec::new();
    let mut out_rows = Vec::new();
    for (i, &size) in sizes.iter().enumerate() {
        let b = amean(&results.iter().map(|r| r[i].0).collect::<Vec<_>>());
        let k = amean(&results.iter().map(|r| r[i].1).collect::<Vec<_>>());
        rows.push(vec![
            format!("{size}B"),
            format!("{b:.3}"),
            format!("{k:.3}"),
            format!("{:+.2}%", (k / b - 1.0) * 100.0),
        ]);
        out_rows.push(json!({
            "cache_bytes": size, "baseline": b, "kagura": k, "kagura_gain_pct": (k/b-1.0)*100.0,
        }));
    }
    print_table(&["size", "baseline", "ACC+Kagura", "Kagura gain"], &rows);
    println!("  (paper: Kagura gains 1.97-5.85%, larger for smaller caches)");
    let out = json!({ "experiment": "fig24", "rows": out_rows });
    ctx.save("fig24", &out);
    out
}

/// Fig 25: associativity sweep.
pub fn fig25(ctx: &ExpContext) -> Value {
    println!("Fig 25: associativity sweep (same capacity)");
    let ways = [1u32, 2, 4, 8];
    let mut rows = Vec::new();
    let mut out_rows = Vec::new();
    for &w in &ways {
        let mut base = cfg(GovernorSpec::NoCompression);
        base.system.icache = base.system.icache.with_ways(w);
        base.system.dcache = base.system.dcache.with_ways(w);
        let mut kag = cfg(kagura_default());
        kag.system.icache = kag.system.icache.with_ways(w);
        kag.system.dcache = kag.system.dcache.with_ways(w);
        let g = mean_gain(ctx, &ctx.sens_apps, &base, &kag);
        rows.push(vec![format!("{w}-way"), format!("{g:+.2}%")]);
        out_rows.push(json!({ "ways": w, "kagura_gain_pct": g }));
    }
    print_table(&["ways", "ACC+Kagura gain"], &rows);
    println!("  (paper: consistent gains of 4.74-5.73% across associativities)");
    let out = json!({ "experiment": "fig25", "rows": out_rows });
    ctx.save("fig25", &out);
    out
}

/// Fig 26: block-size sweep.
pub fn fig26(ctx: &ExpContext) -> Value {
    println!("Fig 26: cache block size sweep");
    let blocks = [16u32, 32, 64];
    let mut rows = Vec::new();
    let mut out_rows = Vec::new();
    for &bs in &blocks {
        let shape = |gov: GovernorSpec| {
            let mut c = cfg(gov);
            c.system.icache = c.system.icache.with_block_size(bs);
            c.system.dcache = c.system.dcache.with_block_size(bs);
            // NVM transfer cost scales with the line size.
            let scale = bs as f64 / 32.0;
            c.system.nvm.read_energy = c.system.nvm.read_energy * scale;
            c.system.nvm.write_energy = c.system.nvm.write_energy * scale;
            c
        };
        let g = mean_gain(
            ctx,
            &ctx.sens_apps,
            &shape(GovernorSpec::NoCompression),
            &shape(kagura_default()),
        );
        rows.push(vec![format!("{bs}B"), format!("{g:+.2}%")]);
        out_rows.push(json!({ "block_bytes": bs, "kagura_gain_pct": g }));
    }
    print_table(&["block size", "ACC+Kagura gain"], &rows);
    println!("  (paper: good performance maintained from 16B to 64B)");
    let out = json!({ "experiment": "fig26", "rows": out_rows });
    ctx.save("fig26", &out);
    out
}

/// Fig 27: main-memory size sweep.
pub fn fig27(ctx: &ExpContext) -> Value {
    println!("Fig 27: main memory size sweep");
    let sizes_mb = [2u64, 4, 8, 16, 32];
    let mut rows = Vec::new();
    let mut out_rows = Vec::new();
    for &mb in &sizes_mb {
        let shape = |gov: GovernorSpec| {
            let mut c = cfg(gov);
            c.system.nvm = NvmParams::new(NvmKind::ReRam, mb << 20);
            c
        };
        let g = mean_gain(
            ctx,
            &ctx.sens_apps,
            &shape(GovernorSpec::NoCompression),
            &shape(kagura_default()),
        );
        rows.push(vec![format!("{mb}MB"), format!("{g:+.2}%")]);
        out_rows.push(json!({ "mem_mb": mb, "kagura_gain_pct": g }));
    }
    print_table(&["memory size", "ACC+Kagura gain"], &rows);
    println!("  (paper: gain shrinks slightly as memory grows, 4.22% -> 3.69%)");
    let out = json!({ "experiment": "fig27", "rows": out_rows });
    ctx.save("fig27", &out);
    out
}

/// Fig 28: main-memory technology sweep.
pub fn fig28(ctx: &ExpContext) -> Value {
    println!("Fig 28: main memory technology sweep");
    let mut rows = Vec::new();
    let mut out_rows = Vec::new();
    for kind in NvmKind::ALL {
        let shape = |gov: GovernorSpec| {
            let mut c = cfg(gov);
            c.system.nvm = NvmParams::new(kind, 16 << 20);
            c
        };
        let g = mean_gain(
            ctx,
            &ctx.sens_apps,
            &shape(GovernorSpec::NoCompression),
            &shape(kagura_default()),
        );
        rows.push(vec![kind.name().to_string(), format!("{g:+.2}%")]);
        out_rows.push(json!({ "nvm": kind.name(), "kagura_gain_pct": g }));
    }
    print_table(&["technology", "ACC+Kagura gain"], &rows);
    println!("  (paper: promising speedups for all NVMs, e.g. PCM 4.67%, STTRAM 4.68%)");
    let out = json!({ "experiment": "fig28", "rows": out_rows });
    ctx.save("fig28", &out);
    out
}

/// Fig 29: capacitor-size sweep, normalized to the 0.47 µF baseline.
pub fn fig29(ctx: &ExpContext) -> Value {
    println!("Fig 29: capacitor size sweep (normalized to 0.47uF baseline)");
    let caps_uf = [0.47f64, 1.0, 4.7, 10.0, 100.0];
    let apps = &ctx.sens_apps;
    let with_cap = |uf: f64, gov: GovernorSpec| {
        let mut c = cfg(gov);
        c.capacitor = CapacitorConfig::with_capacitance_uf(uf);
        c
    };
    // Three columns per capacitor: baseline, ACC, ACC+Kagura; the 0.47 uF
    // baseline (column 0) is the normalization reference.
    let configs: Vec<SimConfig> = caps_uf
        .iter()
        .flat_map(|&uf| {
            [
                with_cap(uf, GovernorSpec::NoCompression),
                with_cap(uf, GovernorSpec::Acc),
                with_cap(uf, kagura_default()),
            ]
        })
        .collect();
    let grid = run_grid(ctx, apps, &configs);
    let results: Vec<Vec<(f64, f64, f64)>> = grid
        .iter()
        .map(|row| {
            let reference = row[0].sim_time.seconds();
            (0..caps_uf.len())
                .map(|i| {
                    let b = reference / row[3 * i].sim_time.seconds();
                    let a = reference / row[3 * i + 1].sim_time.seconds();
                    let k = reference / row[3 * i + 2].sim_time.seconds();
                    (b, a, k)
                })
                .collect()
        })
        .collect();
    let mut rows = Vec::new();
    let mut out_rows = Vec::new();
    for (i, &uf) in caps_uf.iter().enumerate() {
        let b = amean(&results.iter().map(|r| r[i].0).collect::<Vec<_>>());
        let a = amean(&results.iter().map(|r| r[i].1).collect::<Vec<_>>());
        let k = amean(&results.iter().map(|r| r[i].2).collect::<Vec<_>>());
        rows.push(vec![
            format!("{uf}uF"),
            format!("{b:.3}"),
            format!("{a:.3}"),
            format!("{k:.3}"),
            format!("{:+.2}%", (k / a - 1.0) * 100.0),
        ]);
        out_rows.push(json!({
            "cap_uf": uf, "baseline": b, "acc": a, "kagura": k,
            "kagura_over_acc_pct": (k/a-1.0)*100.0,
        }));
    }
    print_table(&["capacitor", "baseline", "ACC", "ACC+Kagura", "Kagura vs ACC"], &rows);
    println!("  (paper: Kagura's edge over ACC peaks near 4.7uF, shrinks for large caps)");
    let out = json!({ "experiment": "fig29", "rows": out_rows });
    ctx.save("fig29", &out);
    out
}

/// Fig 30: ambient power-trace sweep.
pub fn fig30(ctx: &ExpContext) -> Value {
    println!("Fig 30: power traces");
    let mut rows = Vec::new();
    let mut out_rows = Vec::new();
    for kind in TraceKind::ALL {
        let shape = |gov: GovernorSpec| {
            let mut c = cfg(gov);
            c.trace_kind = kind;
            c
        };
        let gains = mean_gains(
            ctx,
            &ctx.sens_apps,
            &shape(GovernorSpec::NoCompression),
            &[("ACC", shape(GovernorSpec::Acc)), ("Kagura", shape(kagura_default()))],
        );
        rows.push(vec![
            kind.name().to_string(),
            format!("{:+.2}%", gains[0].1),
            format!("{:+.2}%", gains[1].1),
        ]);
        out_rows.push(json!({
            "trace": kind.name(), "acc_gain_pct": gains[0].1, "kagura_gain_pct": gains[1].1,
        }));
    }
    print_table(&["trace", "ACC", "ACC+Kagura"], &rows);
    println!("  (paper: 4.74% RFHome, 4.58% solar, 4.54% thermal)");
    let out = json!({ "experiment": "fig30", "rows": out_rows });
    ctx.save("fig30", &out);
    out
}

/// Table II: history depth for the `N_prev` estimate.
pub fn table2(ctx: &ExpContext) -> Value {
    println!("Table II: number of past power cycles used for estimation");
    let base = cfg(GovernorSpec::NoCompression);
    let variants: Vec<(&'static str, SimConfig)> = [(1usize, "1"), (2, "2"), (3, "3"), (4, "4")]
        .into_iter()
        .map(|(depth, label)| {
            let kcfg = KaguraConfig { history_depth: depth, ..Default::default() };
            (label, cfg(GovernorSpec::AccKagura(kcfg)))
        })
        .collect();
    let gains = mean_gains(ctx, &ctx.sens_apps, &base, &variants);
    let mut rows = Vec::new();
    let mut out_rows = Vec::new();
    for (label, g) in &gains {
        rows.push(vec![label.to_string(), format!("{g:+.2}%")]);
        out_rows.push(json!({ "history_depth": label, "gain_pct": g }));
    }
    print_table(&["# cycles", "speedup"], &rows);
    println!("  (paper: 4.74% / 4.09% / 3.35% / 2.60% — one cycle is best)");
    let out = json!({ "experiment": "table2", "rows": out_rows });
    ctx.save("table2", &out);
    out
}

/// Table III: capacitor leakage share of the total energy.
pub fn table3(ctx: &ExpContext) -> Value {
    println!("Table III: capacitor leakage over total energy");
    let caps_uf = [0.47f64, 1.0, 4.7, 10.0, 100.0, 1000.0];
    // Large capacitors only leak appreciably across *recharge* phases, so
    // the workload must be long enough that even a 1000 uF buffer cycles a
    // few times — run this table at an enlarged scale.
    let ctx = ExpContext { scale: ctx.scale.max(1.0) * 6.0, ..ctx.clone() };
    let ctx = &ctx;
    let configs: Vec<SimConfig> = caps_uf
        .iter()
        .map(|&uf| {
            let mut c = cfg(GovernorSpec::NoCompression);
            c.capacitor = CapacitorConfig::with_capacitance_uf(uf);
            c
        })
        .collect();
    let grid = run_grid(ctx, &ctx.sens_apps, &configs);
    let mut rows = Vec::new();
    let mut out_rows = Vec::new();
    for (i, &uf) in caps_uf.iter().enumerate() {
        let shares: Vec<f64> =
            grid.iter().map(|row| row[i].cap_leak / row[i].total_energy()).collect();
        let share = amean(&shares);
        rows.push(vec![format!("{uf}uF"), format!("{:.4}%", share * 100.0)]);
        out_rows.push(json!({ "cap_uf": uf, "leak_share": share }));
    }
    print_table(&["capacitor", "leakage share"], &rows);
    println!("  (paper: 0.001% at 0.47uF rising to 5.91% at 1000uF)");
    let out = json!({ "experiment": "table3", "rows": out_rows });
    ctx.save("table3", &out);
    out
}

/// Table IV: reward/punishment counter width.
pub fn table4(ctx: &ExpContext) -> Value {
    println!("Table IV: saturating counter width");
    let base = cfg(GovernorSpec::NoCompression);
    let variants: Vec<(&'static str, SimConfig)> = [(1u8, "1"), (2, "2"), (3, "3")]
        .into_iter()
        .map(|(bits, label)| {
            let kcfg = KaguraConfig { counter_bits: bits, ..Default::default() };
            (label, cfg(GovernorSpec::AccKagura(kcfg)))
        })
        .collect();
    let gains = mean_gains(ctx, &ctx.sens_apps, &base, &variants);
    let mut rows = Vec::new();
    let mut out_rows = Vec::new();
    for (label, g) in &gains {
        rows.push(vec![format!("{label}-bit"), format!("{g:+.2}%")]);
        out_rows.push(json!({ "counter_bits": label, "gain_pct": g }));
    }
    print_table(&["counter", "speedup"], &rows);
    println!("  (paper: 3.98% / 4.74% / 4.21% — 2 bits best)");
    let out = json!({ "experiment": "table4", "rows": out_rows });
    ctx.save("table4", &out);
    out
}

/// Extra ablation: the simple vs sophisticated `N_remain` estimator.
pub fn ablation_estimator(ctx: &ExpContext) -> Value {
    println!("Ablation: simple vs sophisticated estimator (paper §VI-A)");
    let base = cfg(GovernorSpec::NoCompression);
    let variants: Vec<(&'static str, SimConfig)> =
        [(EstimatorKind::Simple, "simple"), (EstimatorKind::Sophisticated, "sophisticated")]
            .into_iter()
            .map(|(estimator, label)| {
                let kcfg = KaguraConfig { estimator, ..Default::default() };
                (label, cfg(GovernorSpec::AccKagura(kcfg)))
            })
            .collect();
    let gains = mean_gains(ctx, &ctx.sens_apps, &base, &variants);
    let mut rows = Vec::new();
    let mut out_rows = Vec::new();
    for (label, g) in &gains {
        rows.push(vec![label.to_string(), format!("{g:+.2}%")]);
        out_rows.push(json!({ "estimator": label, "gain_pct": g }));
    }
    print_table(&["estimator", "speedup"], &rows);
    let out = json!({ "experiment": "ablation-estimator", "rows": out_rows });
    ctx.save("ablation-estimator", &out);
    out
}

/// Extra ablation (paper §VII-C): checkpoint region size on a
/// region-checkpointing EHS. Smaller regions mean more persist overhead
/// and more outages — more useless compressions for Kagura to avert;
/// larger regions shrink Kagura's opportunity.
pub fn ablation_region_size(ctx: &ExpContext) -> Value {
    println!("Ablation: checkpoint region size (paper \u{a7}VII-C, on SweepCache)");
    let regions = [128u64, 256, 512, 1024, 2048];
    let mut rows = Vec::new();
    let mut out_rows = Vec::new();
    for &region in &regions {
        let shape = |gov: GovernorSpec| {
            let mut c = cfg(gov).with_design(EhsDesign::SweepCache);
            c.costs.sweep_region = region;
            c
        };
        let g = mean_gain(
            ctx,
            &ctx.sens_apps,
            &shape(GovernorSpec::NoCompression),
            &shape(kagura_default()),
        );
        rows.push(vec![format!("{region} insts"), format!("{g:+.2}%")]);
        out_rows.push(json!({ "region_insts": region, "kagura_gain_pct": g }));
    }
    print_table(&["region size", "ACC+Kagura gain"], &rows);
    println!("  (paper: smaller checkpoint regions give Kagura more to avert)");
    let out = json!({ "experiment": "ablation-region-size", "rows": out_rows });
    ctx.save("ablation-region-size", &out);
    out
}
