//! `fleet` — population-scale campaign over heterogeneous deployment
//! cells.
//!
//! Samples `--fleet-size` cells (stratified over design × trace,
//! Latin-hypercube over app/NVM/capacitor; see `ehs_sim::fleet`), runs
//! each cell's baseline/Kagura pair through the shared worker pool in
//! shards of `--fleet-shard` cells, and streams every result into the
//! constant-memory [`FleetAggregate`] — peak RSS is flat whether the
//! population is 10³ or 10⁶ cells.
//!
//! Shards run sequentially (each shard's batch parallelizes internally
//! across `--jobs` workers) and every completed shard is journaled to
//! `fleet_journal.jsonl` with its exact-JSON aggregate, so a campaign
//! SIGKILLed mid-flight loses at most one shard and `repro fleet
//! --resume DIR` converges to byte-identical output. Because every
//! aggregate component merges exactly, `fleet.json`/`fleet.jsonl` are
//! also byte-identical at any `--jobs` value and any shard size.

use ehs_sim::fleet::FleetSpec;
use ehs_sim::parallel::SimJob;
use serde_json::{json, Value};

use crate::fleet::{
    parse_fleet_file, report_json, report_jsonl, FleetAggregate, FleetJournal, METRICS,
};
use crate::{fsutil, print_table, ExpContext};

/// Fleet cells cap the per-cell workload scale: a campaign is about
/// population breadth, not per-cell length, and 10⁴+ paired runs at
/// headline scale would take hours for no statistical gain.
const FLEET_SCALE_CAP: f64 = 0.01;

/// Runs cells `[start, end)` and returns the shard's aggregate plus
/// its failure records (for the shard journal).
fn run_shard(
    ctx: &ExpContext,
    spec: &FleetSpec,
    start: u64,
    end: u64,
) -> (FleetAggregate, Vec<Value>) {
    let cells: Vec<_> = (start..end).map(|i| spec.cell(i)).collect();
    let jobs: Vec<SimJob> = cells.iter().flat_map(|c| spec.cell_jobs(c)).collect();
    let results = ehs_sim::run_batch(jobs);
    let mut agg = FleetAggregate::new(spec.seed);
    let mut failures = Vec::new();
    for (cell, pair) in cells.iter().zip(results.chunks(2)) {
        for r in pair.iter().flatten() {
            ctx.add_cell_stats(r);
        }
        match (&pair[0], &pair[1]) {
            (Ok(base), Ok(kagura)) => agg.observe(cell, base, kagura),
            (base, kagura) => {
                for (governor, r) in [("baseline", base), ("kagura", kagura)] {
                    if let Err(failure) = r {
                        failures.push(json!({
                            "exp": ctx.exp_id.as_deref().unwrap_or("fleet"),
                            "cell": cell.index,
                            "app": cell.app.to_string(),
                            "stratum": cell.stratum(),
                            "governor": governor,
                            "kind": failure.kind(),
                            "detail": failure.to_string(),
                        }));
                    }
                }
                agg.record_failed(cell);
            }
        }
    }
    (agg, failures)
}

/// The `fleet` experiment entry point.
pub fn fleet(ctx: &ExpContext) -> Value {
    let params = ctx.fleet;
    let spec = FleetSpec {
        population: params.population,
        seed: params.seed,
        scale: ctx.scale.min(FLEET_SCALE_CAP),
        budget: ctx.job_budget,
        audit_strict: ctx.audit_strict,
    };
    println!(
        "fleet campaign: {} cells over {} strata (seed {:#x}, cell scale {}, {} cells/shard)",
        params.population,
        FleetSpec::STRATA,
        params.seed,
        spec.scale,
        params.shard_size,
    );

    // The shard journal fingerprints everything that changes a shard's
    // content — including the shard size, since shard boundaries decide
    // which cells each journal record covers.
    let fingerprint = json!({
        "population": params.population,
        "seed": params.seed,
        "shard_size": params.shard_size,
        "scale_bits": spec.scale.to_bits(),
        "audit_strict": spec.audit_strict,
    });
    let mut journal = if ctx.resume {
        FleetJournal::resume(&ctx.out_dir, fingerprint)
    } else {
        FleetJournal::create(&ctx.out_dir, fingerprint)
    }
    .unwrap_or_else(|e| panic!("fleet journal in {}: {e}", ctx.out_dir.display()));

    let shards = spec.shards(params.shard_size);
    let journaled = journal.len();
    if ctx.resume && journaled > 0 {
        println!(
            "  [resume: {journaled} of {} shard(s) already journaled in {}]",
            shards.len(),
            journal.path().display(),
        );
    }
    let mut agg = FleetAggregate::new(spec.seed);
    for (idx, &(start, end)) in shards.iter().enumerate() {
        let idx = idx as u64;
        // A journaled shard is folded back from its exact-JSON record —
        // bit-identical to re-running it — and its failure records are
        // re-fed so failures.json converges too.
        if let Some((shard_json, failures)) = journal.shard(idx) {
            let shard_agg = FleetAggregate::from_exact_json(shard_json)
                .unwrap_or_else(|e| panic!("corrupt journaled shard {idx}: {e}"));
            for f in failures.clone() {
                ctx.record_failure(f);
            }
            agg.merge(&shard_agg).unwrap_or_else(|e| panic!("shard {idx} merge: {e}"));
            continue;
        }
        let (shard_agg, failures) = run_shard(ctx, &spec, start, end);
        for f in &failures {
            ctx.record_failure(f.clone());
        }
        if let Err(e) = journal.record(idx, shard_agg.to_exact_json(), failures) {
            eprintln!("  [fleet] warning: could not journal shard {idx}: {e}");
        }
        agg.merge(&shard_agg).unwrap_or_else(|e| panic!("shard {idx} merge: {e}"));
        if !ctx.quiet {
            eprintln!("[fleet] shard {}/{} done ({} cells)", idx + 1, shards.len(), end - start);
        }
    }

    let report = report_json(&params, &spec, &agg);

    // Per-stratum population table: speedup distribution with its 95 %
    // bootstrap CI, plus the waste-fraction median.
    let fmt = |v: &Value, k: &str| {
        v.get(k).and_then(Value::as_f64).map_or_else(|| "n/a".into(), |x| format!("{x:.3}"))
    };
    let mut rows = Vec::new();
    for stratum in report.get("strata").and_then(Value::as_array).into_iter().flatten() {
        let metric = |name: &str| {
            stratum
                .get("metrics")
                .and_then(Value::as_array)
                .into_iter()
                .flatten()
                .find(|m| m.get("metric").and_then(Value::as_str) == Some(name))
                .cloned()
                .unwrap_or(Value::Null)
        };
        let speedup = metric("speedup");
        let waste = metric("waste_fraction");
        let ci = match (
            speedup.get("ci_lo").and_then(Value::as_f64),
            speedup.get("ci_hi").and_then(Value::as_f64),
        ) {
            (Some(lo), Some(hi)) => format!("[{lo:.3}, {hi:.3}]"),
            _ => "n/a".into(),
        };
        rows.push(vec![
            stratum.get("stratum").and_then(Value::as_str).unwrap_or("?").to_string(),
            stratum.get("cells").and_then(Value::as_u64).unwrap_or(0).to_string(),
            stratum.get("failed").and_then(Value::as_u64).unwrap_or(0).to_string(),
            fmt(&speedup, "mean"),
            fmt(&speedup, "p50"),
            fmt(&speedup, "p99"),
            ci,
            fmt(&waste, "p50"),
        ]);
    }
    print_table(
        &["stratum", "cells", "fail", "speedup", "p50", "p99", "95% CI (mean)", "waste p50"],
        &rows,
    );
    println!("  (metrics: {})", METRICS.iter().map(|&(n, _)| n).collect::<Vec<_>>().join(", "));

    // Stream the same report as JSONL and immediately parse it back
    // strictly — every campaign output is its own schema round-trip
    // check, like the cachescope streams.
    let jsonl_path = ctx.out_dir.join("fleet.jsonl");
    let stream = report_jsonl(&report);
    fsutil::atomic_write(&jsonl_path, stream.as_bytes())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", jsonl_path.display()));
    let parsed = parse_fleet_file(&jsonl_path)
        .unwrap_or_else(|e| panic!("fleet stream failed its own parse-back: {e}"));
    assert_eq!(
        parsed.cells, agg.overall.cells,
        "parsed stream disagrees with the aggregate on cell count"
    );
    println!("  [fleet stream in {} (parse-back ok)]", jsonl_path.display());

    ctx.save("fleet", &report);
    report
}
